"""The perf-regression gate: pass / fail / tolerance paths.

Synthetic baselines pin :func:`repro.obs.regress.compare`'s contract;
the CLI tests then drive the real loop the CI ``regression-gate`` job
uses: record an obs-baseline with ``repro stats --write-baseline``,
re-check it cleanly (exit 0), tamper the recorded makespan by more
than the tolerance and check again (exit 1).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import regress

# ---------------------------------------------------------------------------
# pure comparison semantics
# ---------------------------------------------------------------------------


def test_direction_classification():
    assert regress.direction("makespan_s") == "lower"
    assert regress.direction("messages") == "lower"
    assert regress.direction("fig6_nacl.runs_used") == "lower"
    assert regress.direction("gflops") == "higher"
    assert regress.direction("occupancy") == "higher"
    assert regress.direction("tuning_cache_hit_rate") == "higher"
    # config knobs and timestamps are informational, never gated
    assert regress.direction("winner_tile") is None
    assert regress.direction("budget") is None
    assert regress.direction("unix_time") is None
    assert regress.direction("paper_range") is None


def test_flatten_nested_numeric_leaves():
    doc = {"a": {"x": 1, "flag": True, "s": "text"}, "b": 2.5,
           "c": {"d": {"e": 3}}}
    assert regress.flatten(doc) == {"a.x": 1.0, "b": 2.5, "c.d.e": 3.0}


def test_compare_passes_identical_and_improved():
    base = {"makespan_s": 1.0, "gflops": 10.0}
    assert regress.compare(base, dict(base)).ok
    # improvements in either direction never fail
    assert regress.compare(base, {"makespan_s": 0.5, "gflops": 20.0}).ok


def test_compare_fails_beyond_tolerance():
    base = {"makespan_s": 1.0, "gflops": 10.0}
    slow = regress.compare(base, {"makespan_s": 1.2, "gflops": 10.0})
    assert not slow.ok
    assert [c.name for c in slow.failures] == ["makespan_s"]
    assert slow.failures[0].change == pytest.approx(0.2)
    weak = regress.compare(base, {"makespan_s": 1.0, "gflops": 8.0})
    assert not weak.ok and weak.failures[0].name == "gflops"


def test_compare_tolerance_widens_and_overrides():
    base = {"makespan_s": 1.0}
    measured = {"makespan_s": 1.2}
    assert not regress.compare(base, measured, tolerance=0.10).ok
    assert regress.compare(base, measured, tolerance=0.25).ok
    assert regress.compare(base, measured, tolerance=0.10,
                           tolerances={"makespan_s": 0.3}).ok
    with pytest.raises(ValueError):
        regress.compare(base, measured, tolerance=-0.1)


def test_compare_edge_cases():
    # within-tolerance drift passes (boundary is inclusive)
    assert regress.compare({"makespan_s": 1.0}, {"makespan_s": 1.1}).ok
    # zero baseline: any growth of a lower-better metric is infinite drift
    report = regress.compare({"messages": 0.0}, {"messages": 5.0})
    assert not report.ok
    assert report.failures[0].change == float("inf")
    assert regress.compare({"messages": 0.0}, {"messages": 0.0}).ok
    # gated-but-unmeasured keys warn instead of failing
    report = regress.compare({"gflops": 10.0, "tile": 64}, {})
    assert report.ok
    assert report.missing == ["gflops"]
    assert report.skipped == ["tile"]
    assert "PASS" in report.format()


def test_load_baseline_both_document_kinds(tmp_path):
    obs_doc = {"kind": regress.BASELINE_KIND, "schema": 1,
               "config": {"n": 128}, "metrics": {"gflops": 5.0}}
    p1 = tmp_path / "obs.json"
    p1.write_text(json.dumps(obs_doc))
    assert regress.load_baseline(p1) == {"gflops": 5.0}
    bench_doc = {"fig6": {"winner_gflops": 10.0, "unix_time": 1.0}}
    p2 = tmp_path / "bench.json"
    p2.write_text(json.dumps(bench_doc))
    flat = regress.load_baseline(p2)
    assert flat["fig6.winner_gflops"] == 10.0
    p3 = tmp_path / "bad.json"
    p3.write_text("[1, 2]")
    with pytest.raises(ValueError):
        regress.load_baseline(p3)


# ---------------------------------------------------------------------------
# the CLI loop the CI job drives
# ---------------------------------------------------------------------------

STATS_FLAGS = ["--n", "96", "--iterations", "4", "--tile", "24",
               "--steps", "2", "--nodes", "2"]


def test_stats_check_clean_rerun_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["stats", *STATS_FLAGS,
                 "--write-baseline", str(baseline)]) == 0
    assert main(["stats", "--check", str(baseline)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_stats_check_injected_regression_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["stats", *STATS_FLAGS,
                 "--write-baseline", str(baseline)]) == 0
    doc = json.loads(baseline.read_text())
    # pretend the recorded run was >=10% faster: the fresh (identical)
    # run now reads as an injected makespan regression
    doc["metrics"]["makespan_s"] *= 1 / 1.15
    baseline.write_text(json.dumps(doc))
    assert main(["stats", "--check", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "FAIL makespan_s" in out
    assert "REGRESSION" in out


def test_stats_summary_reports_census(capsys):
    assert main(["stats", *STATS_FLAGS]) == 0
    out = capsys.readouterr().out
    assert "tasks executed" in out
    assert "(census" in out


def test_direction_classification_serve_metrics():
    # hit/warm rates gate higher-is-better, expiries lower, rejects
    # and batch-size stats are informational (overload behaviour).
    assert regress.direction("serve_cache_hit_rate") == "higher"
    assert regress.direction("serve_warm_start_rate") == "higher"
    assert regress.direction("serve_cold_starts") == "lower"
    assert regress.direction("serve_deadline_expired") == "lower"
    assert regress.direction("serve_admission_rejects") is None
    assert regress.direction("serve_batch_size_p50") is None


def test_metrics_from_serve_rates():
    from repro.obs import MetricRegistry

    reg = MetricRegistry()
    reg.counter("serve_cache_hits_total", "h").inc(3)
    reg.counter("serve_cache_misses_total", "m").inc(1)
    reg.counter("serve_pool_warm_starts_total", "w").inc(2)
    reg.counter("serve_pool_cold_starts_total", "c").inc(2)
    reg.counter("serve_admission_rejects_total", "r").inc(5)
    reg.counter("serve_deadline_expired_total", "d").inc(1)
    out = regress.metrics_from_serve(reg.snapshot())
    assert out["serve_cache_hit_rate"] == pytest.approx(0.75)
    assert out["serve_warm_start_rate"] == pytest.approx(0.5)
    assert out["serve_admission_rejects"] == 5.0
    assert out["serve_deadline_expired"] == 1.0


def test_metrics_from_serve_empty_snapshot():
    from repro.obs import MetricRegistry

    assert regress.metrics_from_serve(MetricRegistry().snapshot()) == {}
