"""Test package (enables cross-module helpers like
tests.test_engine.simple_machine)."""
