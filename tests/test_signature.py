"""Shared fingerprint/signature helpers (:mod:`repro.core.signature`).

The solve signature is the serve result cache's correctness contract:
equal signatures must imply bit-identical solution grids, so every
number that shapes the answer (weights, initial data, boundary,
forcing, solver knobs) must move the hash, and nothing else may.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import signature as sig
from repro.distgrid.boundary import DirichletBC
from repro.machine.machine import nacl, stampede2
from repro.stencil.kernels import StencilWeights
from repro.stencil.problem import JacobiProblem


def _problem(seed=0, n=12, iterations=4, omega=0.9):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n, n))

    def init(rows, cols):
        return values[np.clip(rows, 0, n - 1), np.clip(cols, 0, n - 1)]

    return JacobiProblem(
        n=n,
        iterations=iterations,
        init=init,
        bc=DirichletBC(lambda r, c: np.sin(0.1 * r) + 0.2 * c),
        weights=StencilWeights.damped_jacobi(omega),
    )


# -- fingerprints --------------------------------------------------------


def test_machine_fingerprint_stable_and_sensitive():
    a, b = sig.machine_fingerprint(nacl(4)), sig.machine_fingerprint(nacl(4))
    assert a == b
    assert len(a) == sig.FINGERPRINT_LEN
    assert sig.machine_fingerprint(nacl(8)) != a
    assert sig.machine_fingerprint(stampede2(4)) != a


def test_machine_fingerprint_matches_machinespec_method():
    m = nacl(4)
    assert m.fingerprint() == sig.machine_fingerprint(m)


def test_problem_signature_format():
    p = JacobiProblem(n=48, iterations=7)
    s = sig.problem_signature(p)
    assert s.startswith("48x48-it7-")
    assert s.endswith("-nosrc")
    q = JacobiProblem(n=48, iterations=7, source=1.5)
    assert sig.problem_signature(q).endswith("-src")


def test_array_digest_covers_shape_dtype_and_bytes():
    a = np.arange(6, dtype=np.float64)
    assert sig.array_digest(a) == sig.array_digest(a.copy())
    assert sig.array_digest(a) != sig.array_digest(a.reshape(2, 3))
    assert sig.array_digest(a) != sig.array_digest(a.astype(np.float32))
    b = a.copy()
    b[0] += 1e-15
    assert sig.array_digest(a) != sig.array_digest(b)


def test_token_rejects_callables():
    with pytest.raises(TypeError, match="materialise"):
        sig._token(lambda: 1)


# -- solve signatures ----------------------------------------------------


def test_solve_signature_equal_for_equal_content():
    """Two problems built from *equal data through different callables*
    key identically: the content key materialises, it does not hash
    code objects."""
    m = nacl(4)
    a = _problem(seed=3)
    b = _problem(seed=3)
    assert a.init is not b.init  # different closures, same data
    assert (
        sig.solve_signature(a, m, "ca-parsec", tile=6, steps=2, ratio=1.0)
        == sig.solve_signature(b, m, "ca-parsec", tile=6, steps=2, ratio=1.0)
    )


@pytest.mark.parametrize(
    "mutate",
    [
        lambda: (_problem(seed=4), nacl(4), "ca-parsec", {"tile": 6}),
        lambda: (_problem(iterations=5), nacl(4), "ca-parsec", {"tile": 6}),
        lambda: (_problem(omega=0.8), nacl(4), "ca-parsec", {"tile": 6}),
        lambda: (_problem(), nacl(8), "ca-parsec", {"tile": 6}),
        lambda: (_problem(), nacl(4), "base-parsec", {"tile": 6}),
        lambda: (_problem(), nacl(4), "ca-parsec", {"tile": 4}),
        lambda: (_problem(), nacl(4), "ca-parsec", {"tile": 6, "steps": 2}),
    ],
)
def test_solve_signature_sensitive_to_answer_shaping_inputs(mutate):
    base = sig.solve_signature(_problem(), nacl(4), "ca-parsec", tile=6)
    problem, machine, impl, params = mutate()
    assert sig.solve_signature(problem, machine, impl, **params) != base


def test_problem_content_key_constant_vs_callable_fields():
    """Constant fields enter the key directly (no materialisation)."""
    doc = sig.problem_content_key(JacobiProblem(n=8, iterations=2))
    assert isinstance(doc["init"], float) and isinstance(doc["bc"], float)
    assert doc["source"] is None
    rich = sig.problem_content_key(_problem())
    assert "grid" in rich["init"] and "frame" in rich["bc"]


def test_tuning_cache_keys_via_shared_module():
    """Satellite contract: the tuning cache derives its keys from this
    module rather than a private duplicate."""
    from repro.tuning import cache as tuning_cache

    p = JacobiProblem(n=48, iterations=7)
    assert tuning_cache.problem_signature(p) == sig.problem_signature(p)
