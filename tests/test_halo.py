"""Sides, corners, strip and corner-block geometry."""

import pytest

from repro.distgrid.halo import (
    CORNERS,
    SIDES,
    Corner,
    CornerSpec,
    Side,
    StripSpec,
    corner_of,
)


def test_side_axes_and_directions():
    assert Side.NORTH.axis == 0 and Side.SOUTH.axis == 0
    assert Side.WEST.axis == 1 and Side.EAST.axis == 1
    assert Side.NORTH.is_low and Side.WEST.is_low
    assert not Side.SOUTH.is_low and not Side.EAST.is_low


def test_side_opposites_involutive():
    for s in SIDES:
        assert s.opposite.opposite == s
    assert Side.NORTH.opposite == Side.SOUTH
    assert Side.WEST.opposite == Side.EAST


def test_side_offsets():
    assert Side.NORTH.offset == (-1, 0)
    assert Side.EAST.offset == (0, 1)


def test_corner_sides_and_offsets():
    assert Corner.NW.sides == (Side.NORTH, Side.WEST)
    assert Corner.SE.offset == (1, 1)
    for c in CORNERS:
        assert c.opposite.opposite == c
    assert Corner.NE.opposite == Corner.SW


def test_corner_of():
    assert corner_of(Side.NORTH, Side.EAST) == Corner.NE
    with pytest.raises(ValueError):
        corner_of(Side.WEST, Side.NORTH)  # wrong axis order


def test_strip_pad_region_north():
    s = StripSpec(side=Side.NORTH, depth=3, ext_lo=0, ext_hi=2)
    rows, cols = s.pad_region(core_h=10, core_w=8)
    assert rows == (-3, 0)
    assert cols == (0, 10)  # 8 + ext_hi 2


def test_strip_source_region_mirrors():
    """A consumer's north pad comes from the producer's south rows."""
    s = StripSpec(side=Side.NORTH, depth=3)
    rows, cols = s.source_region(prod_h=10, prod_w=8)
    assert rows == (7, 10)
    assert cols == (0, 8)
    # East pad of the consumer = producer's westmost columns.
    e = StripSpec(side=Side.EAST, depth=2, ext_lo=1, ext_hi=0)
    rows, cols = e.source_region(prod_h=10, prod_w=8)
    assert cols == (0, 2)
    assert rows == (-1, 10)


def test_strip_nbytes():
    s = StripSpec(side=Side.SOUTH, depth=2, ext_lo=1, ext_hi=1)
    assert s.nbytes(core_h=10, core_w=8) == 2 * (8 + 2) * 8
    e = StripSpec(side=Side.WEST, depth=1)
    assert e.nbytes(core_h=10, core_w=8) == 10 * 8


def test_strip_validation():
    with pytest.raises(ValueError):
        StripSpec(side=Side.NORTH, depth=0)
    with pytest.raises(ValueError):
        StripSpec(side=Side.NORTH, depth=1, ext_lo=-1)


def test_corner_regions_mirror():
    c = CornerSpec(corner=Corner.NE, depth_r=3, depth_c=1)
    rows, cols = c.pad_region(core_h=10, core_w=8)
    assert rows == (-3, 0) and cols == (8, 9)
    # Source: the producer sits to the NE, so the block hugs its SW
    # corner: last rows, first cols.
    rows, cols = c.source_region(prod_h=6, prod_w=5)
    assert rows == (3, 6) and cols == (0, 1)
    assert c.nbytes() == 3 * 1 * 8


def test_corner_validation():
    with pytest.raises(ValueError):
        CornerSpec(corner=Corner.NW, depth_r=0, depth_c=1)
