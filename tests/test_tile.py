"""TileSpec: extended arrays and coordinate arithmetic."""

import numpy as np
import pytest

from repro.distgrid.tile import TileSpec


def make_tile(pads=(1, 1, 1, 1), remote=(False,) * 4, has=(True,) * 4):
    return TileSpec(
        i=1, j=2, r0=10, r1=16, c0=20, c1=24, node=0,
        pads=pads, remote=remote, has_neighbor=has,
    )


def test_shapes():
    t = make_tile(pads=(3, 1, 1, 3), remote=(True, False, False, True))
    assert (t.h, t.w) == (6, 4)
    assert t.ext_shape() == (6 + 4, 4 + 4)
    assert t.is_boundary()
    assert not make_tile().is_boundary()


def test_core_roundtrip():
    t = make_tile(pads=(2, 1, 1, 2), remote=(True, False, False, True))
    ext = t.alloc_ext(fill=-1.0)
    values = np.arange(24.0).reshape(6, 4)
    t.load_core(ext, values)
    assert np.array_equal(t.core(ext), values)
    # Pads untouched.
    assert ext[0, 0] == -1.0


def test_ext_slices_bounds_checked():
    t = make_tile(pads=(2, 1, 1, 2), remote=(True, False, False, True))
    rs, cs = t.ext_slices(((-2, 6), (0, 4)))
    assert rs == slice(0, 8) and cs == slice(1, 5)
    with pytest.raises(IndexError):
        t.ext_slices(((-3, 6), (0, 4)))  # beyond north pad
    with pytest.raises(IndexError):
        t.ext_slices(((0, 6), (0, 7)))  # beyond east pad


def test_extract_paste_roundtrip():
    t = make_tile(pads=(2, 2, 2, 2), remote=(True,) * 4)
    ext = t.alloc_ext()
    block = np.full((2, 4), 7.0)
    t.paste(ext, ((-2, 0), (0, 4)), block)
    assert np.array_equal(t.extract(ext, ((-2, 0), (0, 4))), block)
    # extract returns a copy.
    out = t.extract(ext, ((-2, 0), (0, 4)))
    out[:] = 0
    assert ext[0, 2] == 7.0


def test_paste_shape_mismatch():
    t = make_tile()
    ext = t.alloc_ext()
    with pytest.raises(ValueError):
        t.paste(ext, ((0, 2), (0, 2)), np.zeros((3, 3)))
    with pytest.raises(ValueError):
        t.load_core(ext, np.zeros((2, 2)))


def test_global_coords():
    t = make_tile(pads=(1, 1, 1, 1))
    gr, gc = t.global_coords()
    assert gr.shape == t.ext_shape()
    assert gr[0, 0] == 9 and gc[0, 0] == 19  # r0-1, c0-1
    assert gr[-1, -1] == 16 and gc[-1, -1] == 24


def test_validation():
    with pytest.raises(ValueError):
        TileSpec(i=0, j=0, r0=5, r1=5, c0=0, c1=2, node=0,
                 pads=(1,) * 4, remote=(False,) * 4, has_neighbor=(True,) * 4)
    with pytest.raises(ValueError):
        make_tile(pads=(-1, 1, 1, 1))
    with pytest.raises(ValueError):
        # remote side without a neighbour is contradictory
        make_tile(remote=(True, False, False, False),
                  has=(False, True, True, True))
