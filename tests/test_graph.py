"""TaskGraph: construction, validation, static analysis."""

import pytest

from repro.runtime.graph import GraphError, TaskGraph
from repro.runtime.task import Flow


def chain(n: int, node_of=lambda i: 0, nbytes: int = 8) -> TaskGraph:
    g = TaskGraph()
    for i in range(n):
        inputs = (Flow(i - 1, "out", nbytes),) if i > 0 else ()
        g.add_task(i, node=node_of(i), inputs=inputs, cost=1.0, out_nbytes={"out": nbytes})
    return g


def test_duplicate_keys_rejected():
    g = TaskGraph()
    g.add_task("a", node=0)
    with pytest.raises(GraphError):
        g.add_task("a", node=0)


def test_missing_producer_rejected():
    g = TaskGraph()
    g.add_task("a", node=0, inputs=(Flow("ghost", "out"),))
    with pytest.raises(GraphError, match="missing"):
        g.finalize()


def test_cycle_detected():
    g = TaskGraph()
    g.add_task("a", node=0, inputs=(Flow("b", "out"),), out_nbytes={"out": 8})
    g.add_task("b", node=0, inputs=(Flow("a", "out"),), out_nbytes={"out": 8})
    with pytest.raises(GraphError, match="cycle"):
        g.finalize()


def test_cycle_check_skippable():
    g = TaskGraph()
    g.add_task("a", node=0, inputs=(Flow("b", "out"),), out_nbytes={"out": 8})
    g.add_task("b", node=0, inputs=(Flow("a", "out"),), out_nbytes={"out": 8})
    g.finalize(validate=False)  # caller vouches for acyclicity
    assert g.finalized


def test_finalize_idempotent_and_freezes():
    g = chain(3)
    g.finalize()
    g.finalize()
    with pytest.raises(GraphError):
        g.add_task("late", node=0)


def test_consumers_and_out_tags():
    g = chain(3).finalize()
    assert g.consumers[(0, "out")] == [1]
    assert g.consumers[(1, "out")] == [2]
    assert "out" in g.out_tags[2]  # declared even with no consumer


def test_census_local_vs_remote():
    g = chain(4, node_of=lambda i: i % 2, nbytes=100).finalize()
    census = g.census()
    # Every edge crosses nodes (0-1-0-1).
    assert census.remote_messages == 3
    assert census.remote_bytes == 300
    assert census.local_edges == 0


def test_census_message_coalescing():
    """Two same-node consumers of one (producer, tag) share a message."""
    g = TaskGraph()
    g.add_task("p", node=0, out_nbytes={"out": 64})
    g.add_task("c1", node=1, inputs=(Flow("p", "out", 64),))
    g.add_task("c2", node=1, inputs=(Flow("p", "out", 64),))
    g.add_task("c3", node=2, inputs=(Flow("p", "out", 64),))
    census = g.finalize().census()
    assert census.remote_messages == 2  # node 1 once, node 2 once
    assert census.remote_bytes == 128


def test_census_requires_finalize():
    with pytest.raises(GraphError):
        chain(2).census()


def test_total_flops():
    g = TaskGraph()
    g.add_task("a", node=0, flops=100, redundant_flops=10)
    g.add_task("b", node=0, flops=50)
    assert g.finalize().total_flops() == (150, 10)


def test_critical_path_chain():
    g = chain(5).finalize()
    assert g.critical_path() == pytest.approx(5.0)


def test_topological_order():
    g = chain(5).finalize()
    order = g.topological_order()
    assert order == [0, 1, 2, 3, 4]
    g2 = chain(3)
    with pytest.raises(GraphError, match="finalize"):
        g2.topological_order()


def test_topological_order_detects_cycles():
    g = TaskGraph()
    g.add_task("a", node=0, inputs=(Flow("b", "o", 8),), out_nbytes={"o": 8})
    g.add_task("b", node=0, inputs=(Flow("a", "o", 8),), out_nbytes={"o": 8})
    g.finalize(validate=False)  # validation would already refuse this
    with pytest.raises(GraphError, match="cycle"):
        g.topological_order()


def test_critical_path_diamond():
    g = TaskGraph()
    g.add_task("s", node=0, cost=1.0, out_nbytes={"o": 8})
    g.add_task("a", node=0, cost=10.0, inputs=(Flow("s", "o", 8),), out_nbytes={"o": 8})
    g.add_task("b", node=0, cost=1.0, inputs=(Flow("s", "o", 8),), out_nbytes={"o": 8})
    g.add_task("t", node=0, cost=1.0, inputs=(Flow("a", "o", 8), Flow("b", "o", 8)))
    assert g.finalize().critical_path() == pytest.approx(12.0)


def test_nodes_used():
    g = chain(4, node_of=lambda i: i % 3).finalize()
    assert g.nodes_used() == {0, 1, 2}


def test_container_protocol():
    g = chain(3)
    assert len(g) == 3 and 1 in g and g[1].key == 1
    assert sorted(t.key for t in g) == [0, 1, 2]
