"""Wall-clock traces from the threaded backend: schema compatibility
with the simulator's trace tooling and Perfetto-loadable export."""

from __future__ import annotations

import json

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.occupancy import occupancy_report
from repro.core.runner import run
from repro.exec.wallclock_trace import HOST_NODE, WallClockRecorder
from repro.machine.machine import nacl
from repro.runtime import chrome_trace
from repro.runtime.trace import Trace
from tests.conftest import random_problem


@pytest.fixture(scope="module")
def threads_result():
    problem = random_problem(n=24, iterations=6, seed=5)
    return run(problem, impl="ca-parsec", machine=nacl(4), tile=6, steps=2,
               backend="threads", jobs=3, trace=True)


def test_trace_is_standard_schema(threads_result):
    trace = threads_result.trace
    assert isinstance(trace, Trace)
    assert len(trace) == threads_result.engine.tasks_run
    # All spans live on the host node, one lane per worker thread.
    assert {s.node for s in trace} == {HOST_NODE}
    assert {s.worker for s in trace} <= set(range(3))
    assert trace.kinds() <= {"init", "interior", "boundary"}
    assert trace.makespan() <= threads_result.elapsed + 1e-6


def test_trace_no_overlap_per_worker(threads_result):
    """A worker thread is a serial resource: its spans must not
    overlap.  This is the engine's own self-check applied to measured
    (wall-clock) data."""
    threads_result.trace.validate_no_overlap()


def test_existing_analyses_work_on_wallclock_trace(threads_result):
    rep = occupancy_report(threads_result.trace, HOST_NODE, workers=3)
    assert 0 < rep.occupancy <= 1
    assert rep.busy_s > 0
    chart = render_gantt(threads_result.trace, HOST_NODE, width=40,
                         include_comm=False)
    assert chart.strip()  # rendered rows exist


def test_chrome_trace_valid_perfetto_json(tmp_path, threads_result):
    """The exported document must load as Perfetto-style trace-event
    JSON with non-overlapping complete events per (pid, tid) lane."""
    path = tmp_path / "threads.json"
    chrome_trace.write(threads_result.trace, str(path))
    doc = json.loads(path.read_text())

    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == threads_result.engine.tasks_run
    for e in spans:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["pid"] == HOST_NODE
        assert isinstance(e["tid"], int)

    # Per-worker (pid, tid) lanes: intervals must not overlap.
    lanes: dict[tuple, list[tuple[float, float]]] = {}
    for e in spans:
        lanes.setdefault((e["pid"], e["tid"]), []).append((e["ts"], e["ts"] + e["dur"]))
    assert lanes  # at least one worker lane
    for intervals in lanes.values():
        intervals.sort()
        for (s0, e0), (s1, _e1) in zip(intervals, intervals[1:]):
            assert s1 >= e0 - 1e-9, f"overlap: {(s0, e0)} then {(s1, _e1)}"

    # Thread metadata names every worker lane.
    names = {(e["pid"], e["tid"]): e["args"]["name"]
             for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
    for lane in lanes:
        assert lane in names and names[lane].startswith("worker")


def test_recorder_normalises_to_run_start():
    rec = WallClockRecorder(jobs=2)
    rec.start()
    a0, a1 = rec.now(), rec.now()
    rec.record(0, "k", a0, a1, label="x")
    rec.record(1, "k", a0, a1)
    trace = rec.to_trace()
    assert len(trace) == 2
    for span in trace:
        assert span.start >= 0  # origin-relative
    busy = rec.busy_per_worker()
    assert set(busy) == {0, 1}
    assert busy[0] == pytest.approx(a1 - a0)


def test_recorder_disabled_records_nothing():
    rec = WallClockRecorder(jobs=1, enabled=False)
    rec.start()
    rec.record(0, "k", rec.now(), rec.now())
    assert rec.span_count() == 0
