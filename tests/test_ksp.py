"""KSP-lite solvers: CG, preconditioning, Richardson."""

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.petsclite.ksp import (
    cg,
    jacobi_preconditioner,
    poisson_system,
    richardson,
)
from repro.petsclite.mat import MatAIJ
from repro.petsclite.vec import Vec, VecLayout
from repro.stencil.problem import JacobiProblem


def spd_system(n=20, nranks=3, seed=0):
    """Random SPD system A = B'B + n*I distributed over nranks."""
    rng = np.random.default_rng(seed)
    B = rng.normal(size=(n, n))
    A_dense = B.T @ B + n * np.eye(n)
    rows, cols = np.nonzero(A_dense)
    lay = VecLayout(n=n, nranks=nranks)
    A = MatAIJ.from_coo(lay, lay, rows, cols, A_dense[rows, cols])
    x_true = rng.normal(size=n)
    b = Vec.from_global(lay, A_dense @ x_true)
    return A, b, x_true, lay


def test_cg_solves_random_spd():
    A, b, x_true, _ = spd_system()
    res = cg(A, b, rtol=1e-12, maxiter=200)
    assert res.converged
    assert np.allclose(res.x.to_global(), x_true, atol=1e-8)
    # Residuals decrease overall.
    assert res.residual_norms[-1] < 1e-10 * res.residual_norms[0]


def test_cg_counts_operations():
    A, b, _, _ = spd_system()
    res = cg(A, b, rtol=1e-10)
    # One SpMV per iteration plus the initial residual.
    assert res.spmvs == res.iterations + 1
    # Each iteration performs ~3 reductions (norm, pAp, rz).
    assert res.reductions >= 3 * res.iterations


def test_jacobi_preconditioner_accelerates_ill_conditioned():
    """Diagonal scaling fixes badly scaled SPD systems."""
    n = 40
    rng = np.random.default_rng(1)
    scales = 10.0 ** rng.uniform(-3, 3, size=n)
    B = rng.normal(size=(n, n))
    A_dense = (B.T @ B + n * np.eye(n)) * np.outer(scales, scales)
    rows, cols = np.nonzero(A_dense)
    lay = VecLayout(n=n, nranks=2)
    A = MatAIJ.from_coo(lay, lay, rows, cols, A_dense[rows, cols])
    x_true = rng.normal(size=n)
    b = Vec.from_global(lay, A_dense @ x_true)
    plain = cg(A, b, rtol=1e-8, maxiter=2000)
    pre = cg(A, b, rtol=1e-12, maxiter=2000, preconditioner=jacobi_preconditioner(A))
    assert pre.converged
    assert pre.iterations < plain.iterations
    # The system is deliberately ill conditioned, so compare loosely.
    assert np.allclose(pre.x.to_global(), x_true, rtol=1e-4, atol=1e-5)


def test_cg_rejects_indefinite():
    lay = VecLayout(n=2, nranks=1)
    A = MatAIJ.from_coo(lay, lay, np.array([0, 1]), np.array([0, 1]),
                        np.array([1.0, -1.0]))
    b = Vec.from_global(lay, np.array([1.0, 1.0]))
    with pytest.raises(ValueError, match="positive definite"):
        cg(A, b)


def test_richardson_matches_jacobi_fixed_point():
    """Richardson on the Poisson system converges to the same answer
    the paper's Jacobi iteration approaches."""
    problem = JacobiProblem(n=8, iterations=0, bc=DirichletBC(2.0))
    A, rhs = poisson_system(problem, nranks=2)
    res = richardson(A, rhs, omega=0.24, rtol=1e-10, maxiter=5000)
    assert res.converged
    # Laplace with constant boundary -> constant solution.
    assert np.allclose(res.x.to_global(), 2.0, atol=1e-6)


def test_poisson_system_solution_is_jacobi_limit():
    problem = JacobiProblem(
        n=10, iterations=4000, init=0.0,
        bc=DirichletBC(lambda r, c: 0.1 * r + 0.05 * c),
    )
    A, rhs = poisson_system(problem, nranks=3)
    krylov = cg(A, rhs, rtol=1e-13, maxiter=1000)
    assert krylov.converged
    jacobi_limit = problem.reference_solution().ravel()
    assert np.allclose(krylov.x.to_global(), jacobi_limit, atol=1e-8)
    # CG needs 10-100x fewer matrix applications than Jacobi sweeps.
    assert krylov.spmvs < 200


def test_cg_zero_rhs():
    A, b, _, lay = spd_system()
    res = cg(A, Vec(lay), rtol=1e-10)
    assert res.converged and np.all(res.x.to_global() == 0.0)


def test_layout_validation():
    A, b, _, lay = spd_system(nranks=3)
    with pytest.raises(ValueError):
        cg(A, Vec(VecLayout(n=20, nranks=2)))
    with pytest.raises(ValueError):
        cg(A, b, x0=Vec(VecLayout(n=20, nranks=2)))


def test_preconditioner_requires_nonzero_diagonal():
    lay = VecLayout(n=2, nranks=1)
    A = MatAIJ.from_coo(lay, lay, np.array([0, 1]), np.array([1, 0]),
                        np.array([1.0, 1.0]))
    with pytest.raises(ValueError):
        jacobi_preconditioner(A)
