"""PETSc-style task graph: structure and numerics."""

import numpy as np
import pytest

from repro.core.petsc_jacobi import build_petsc_graph
from repro.machine.machine import nacl
from repro.runtime.engine import Engine

from .conftest import random_problem


def test_one_rank_per_core():
    prob = random_problem(n=48, iterations=2)
    built = build_petsc_graph(prob, nacl(2), with_kernels=False)
    nranks = 2 * 12
    assert built.layout.nranks == nranks
    assert len(built.graph) == nranks * (2 + 1)


def test_ranks_packed_onto_nodes():
    prob = random_problem(n=48, iterations=1)
    built = build_petsc_graph(prob, nacl(2), with_kernels=False)
    for task in built.graph:
        _, rank, _ = task.key
        assert task.node == rank // 12


def test_numerics_match_reference():
    prob = random_problem(n=26, iterations=7, ncols=22, seed=9)
    built = build_petsc_graph(prob, nacl(2))
    rep = Engine(built.graph, nacl(2), execute=True, overlap=False).run()
    grid = built.assemble_grid(rep.results)
    assert np.allclose(grid, prob.reference_solution(), rtol=1e-12)


def test_strip_partition_messages():
    """1D row-block partition: only node-boundary ranks talk across
    nodes, two fat messages per node seam per iteration direction."""
    prob = random_problem(n=48, iterations=3)
    built = build_petsc_graph(prob, nacl(2), with_kernels=False)
    census = built.graph.census()
    # Ranks 0-11 on node 0, 12-23 on node 1; only ranks 11 and 12
    # exchange across the seam: 2 messages per iteration.
    assert census.remote_messages == 2 * 3
    # Each message carries one grid row (plus the +-1 stragglers
    # falling inside the window).
    assert census.remote_bytes >= 2 * 3 * 48 * 8


def test_execute_and_timing_census_agree():
    """The analytic ghost window must reproduce the assembled scatter
    exactly when ranks own whole rows."""
    prob = random_problem(n=48, iterations=2)
    with_k = build_petsc_graph(prob, nacl(2), with_kernels=True)
    without = build_petsc_graph(prob, nacl(2), with_kernels=False)
    cw = with_k.graph.census()
    co = without.graph.census()
    assert cw.remote_messages == co.remote_messages
    assert cw.remote_bytes == co.remote_bytes
    assert cw.local_edges == co.local_edges


def test_spmv_cost_model():
    from repro.petsclite.cost import SpMVCostModel

    m = nacl()
    cm = SpMVCostModel(m)
    # The paper's argument: twice the stencil's 20 B/point.
    assert cm.bytes_per_row == 40.0
    assert cm.task_cost(1000) == pytest.approx(1000 * cm.row_time())
    assert cm.node_gflops_bound() == pytest.approx(
        9 * 12 / cm.row_time() / 1e9
    )
    with pytest.raises(ValueError):
        cm.task_cost(-1)
    with pytest.raises(ValueError):
        SpMVCostModel(m, bytes_per_row=0)
