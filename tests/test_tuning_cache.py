"""Tuning-cache persistence: hit/miss/invalidation semantics.

The cache's one job is to never serve a stale winner: any change to
the machine's calibrated constants, the problem, the backend or the
implementation must miss.  Corruption and schema drift degrade to an
empty cache, never to an exception.
"""

import dataclasses
import json

import pytest

from repro.machine.machine import nacl, stampede2
from repro.machine import units
from repro.stencil.problem import JacobiProblem
from repro.tuning import TuningCache, cache_key, problem_signature
from repro.tuning.cache import SCHEMA_VERSION, default_cache_path
from repro.tuning.space import Candidate


PROBLEM = JacobiProblem(n=96, iterations=4)
WINNER = Candidate(tile=24, steps=2)


@pytest.fixture
def cache(tmp_path):
    return TuningCache(tmp_path / "tuning.json")


def test_miss_on_empty(cache):
    assert cache.get(nacl(4), PROBLEM, "sim", "ca-parsec") is None


def test_put_then_hit(cache):
    entry = cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER,
                      gflops=12.5)
    got = cache.get(nacl(4), PROBLEM, "sim", "ca-parsec")
    assert got is not None
    assert cache.candidate_of(got) == WINNER
    assert got["gflops"] == 12.5
    assert entry["machine"] == "NaCL" and entry["nodes"] == 4


def test_fingerprint_change_invalidates(cache):
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    # Same preset, one calibrated constant edited: the fingerprint
    # moves and the entry must miss.
    m = nacl(4)
    edited = dataclasses.replace(
        m, node=dataclasses.replace(m.node, task_overhead=7 * units.MICROSECOND)
    )
    assert edited.fingerprint() != m.fingerprint()
    assert cache.get(edited, PROBLEM, "sim", "ca-parsec") is None
    assert cache.get(m, PROBLEM, "sim", "ca-parsec") is not None


def test_key_discriminates_every_axis(cache):
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    assert cache.get(stampede2(4), PROBLEM, "sim", "ca-parsec") is None
    assert cache.get(nacl(16), PROBLEM, "sim", "ca-parsec") is None
    assert cache.get(nacl(4), JacobiProblem(n=96, iterations=8),
                     "sim", "ca-parsec") is None
    assert cache.get(nacl(4), PROBLEM, "threads", "ca-parsec") is None
    assert cache.get(nacl(4), PROBLEM, "sim", "base-parsec") is None
    assert cache.get(nacl(4), PROBLEM, "sim", "ca-parsec", "ratio=0.2") is None


def test_extra_key_separates_entries(cache):
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    other = Candidate(tile=12, steps=4)
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", other, "ratio=0.2")
    plain = cache.get(nacl(4), PROBLEM, "sim", "ca-parsec")
    adjusted = cache.get(nacl(4), PROBLEM, "sim", "ca-parsec", "ratio=0.2")
    assert cache.candidate_of(plain) == WINNER
    assert cache.candidate_of(adjusted) == other


def test_invalidate_and_clear(cache):
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    assert cache.invalidate(nacl(4), PROBLEM, "sim", "ca-parsec")
    assert not cache.invalidate(nacl(4), PROBLEM, "sim", "ca-parsec")
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    cache.clear()
    assert cache.entries() == {}


def test_corrupt_file_degrades_to_empty(cache):
    cache.path.write_text("not json {{{")
    assert cache.entries() == {}
    # And writes still work afterwards (atomic replace, not append).
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    assert cache.get(nacl(4), PROBLEM, "sim", "ca-parsec") is not None


def test_unknown_schema_ignored_wholesale(cache):
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    doc = json.loads(cache.path.read_text())
    assert doc["schema"] == SCHEMA_VERSION
    doc["schema"] = SCHEMA_VERSION + 1
    cache.path.write_text(json.dumps(doc))
    assert cache.get(nacl(4), PROBLEM, "sim", "ca-parsec") is None


def test_incomplete_entry_rejected(cache):
    key = cache_key(nacl(4), PROBLEM, "sim", "ca-parsec")
    cache.path.write_text(json.dumps({
        "schema": SCHEMA_VERSION,
        "entries": {key: {"tile": 24}},  # missing steps/policy/...
    }))
    assert cache.get(nacl(4), PROBLEM, "sim", "ca-parsec") is None


def test_concurrent_writers_merge_not_clobber(cache):
    other_problem = JacobiProblem(n=96, iterations=8)
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    cache.put(nacl(4), other_problem, "sim", "ca-parsec", Candidate(tile=12))
    assert cache.get(nacl(4), PROBLEM, "sim", "ca-parsec") is not None
    assert cache.get(nacl(4), other_problem, "sim", "ca-parsec") is not None


def test_atomic_write_leaves_no_droppings(cache):
    cache.put(nacl(4), PROBLEM, "sim", "ca-parsec", WINNER)
    leftovers = [p for p in cache.path.parent.iterdir()
                 if p.name != cache.path.name]
    assert leftovers == []


def test_problem_signature_fields():
    sig = problem_signature(PROBLEM)
    assert "96x96" in sig and "it4" in sig and "nosrc" in sig


def test_default_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "alt.json"))
    assert default_cache_path() == tmp_path / "alt.json"
    assert TuningCache().path == tmp_path / "alt.json"
