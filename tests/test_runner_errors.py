"""The runner's front-door argument validation: every selector typo
must fail fast with the list of choices, before any graph is built."""

from __future__ import annotations

import pytest

from repro.core.runner import BACKENDS, IMPLEMENTATIONS, MODES, run
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=16, iterations=2)


def test_unknown_impl_lists_choices():
    with pytest.raises(ValueError) as err:
        run(PROBLEM, impl="parsec")  # plausible typo
    msg = str(err.value)
    assert "parsec" in msg
    for impl in IMPLEMENTATIONS:
        assert impl in msg


def test_unknown_mode_lists_choices():
    with pytest.raises(ValueError) as err:
        run(PROBLEM, impl="base-parsec", mode="exec")
    msg = str(err.value)
    assert "exec" in msg
    for mode in MODES:
        assert mode in msg


def test_unknown_policy_lists_choices():
    with pytest.raises(ValueError) as err:
        run(PROBLEM, impl="base-parsec", policy="random")
    msg = str(err.value)
    assert "random" in msg
    for policy in ("fifo", "lifo", "priority"):
        assert policy in msg


def test_unknown_backend_lists_choices():
    with pytest.raises(ValueError) as err:
        run(PROBLEM, impl="base-parsec", backend="mpi")  # plausible typo
    msg = str(err.value)
    assert "mpi" in msg
    for backend in BACKENDS:
        assert backend in msg


@pytest.mark.parametrize("procs", [0, -2])
def test_nonpositive_procs_rejected(procs):
    with pytest.raises(ValueError, match="procs"):
        run(PROBLEM, impl="base-parsec", backend="processes", procs=procs)


def test_procs_requires_processes_backend():
    with pytest.raises(ValueError, match="backend='processes'"):
        run(PROBLEM, impl="base-parsec", backend="threads", procs=2)
    with pytest.raises(ValueError, match="backend='processes'"):
        run(PROBLEM, impl="base-parsec", procs=2)  # sim backend


@pytest.mark.parametrize("jobs", [0, -3])
def test_nonpositive_jobs_rejected(jobs):
    with pytest.raises(ValueError, match="jobs"):
        run(PROBLEM, impl="base-parsec", backend="threads", jobs=jobs)


def test_validation_happens_before_graph_construction(monkeypatch):
    """A bad policy must not reach the (expensive) graph builders."""
    import repro.core.runner as runner_mod

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("graph construction reached with bad args")

    monkeypatch.setattr(runner_mod, "build_base_graph", explode)
    monkeypatch.setattr(runner_mod, "build_ca_graph", explode)
    monkeypatch.setattr(runner_mod, "build_petsc_graph", explode)
    for bad in (
        {"impl": "nope"},
        {"impl": "base-parsec", "mode": "nope"},
        {"impl": "base-parsec", "policy": "nope"},
        {"impl": "base-parsec", "backend": "nope"},
        {"impl": "base-parsec", "backend": "threads", "jobs": 0},
        {"impl": "base-parsec", "backend": "processes", "procs": 0},
        {"impl": "base-parsec", "backend": "threads", "procs": 2},
    ):
        with pytest.raises(ValueError):
            run(PROBLEM, machine=nacl(4), **bad)


def test_valid_arguments_still_run():
    result = run(PROBLEM, impl="base-parsec", machine=nacl(1), tile=8,
                 policy="fifo", mode="simulate")
    assert result.elapsed > 0
