"""The solver service end to end (``repro.serve.service``).

Covers the serving smoke the CI job runs -- two tenants, mixed
workload, cache hit on repeat with *zero* task executions, clean
shutdown with no orphan threads or processes -- plus the deadline and
admission-control behaviours at the service boundary.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runner import run
from repro.exec import fork_available
from repro.machine.machine import nacl
from repro.serve import (
    DeadlineExpired,
    QueueFullError,
    ServiceClosed,
    ServiceConfig,
    SolveRequest,
    SolverClient,
    SolverService,
)

from .test_serve_pool import random_problem

pytestmark = pytest.mark.timeout(300)


def _request(problem, **overrides) -> SolveRequest:
    knobs = dict(
        impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="threads", jobs=2,
    )
    knobs.update(overrides)
    return SolveRequest(problem=problem, **knobs)


def _no_serve_leftovers():
    threads = [t.name for t in threading.enumerate()
               if t.name.startswith("repro-serve")]
    children = [p.name for p in multiprocessing.active_children()
                if p.name.startswith("repro-serve")]
    return threads + children


# -- the smoke (mirrors the CI serve-smoke job) --------------------------


def test_smoke_two_tenants_cache_hit_and_clean_shutdown(tmp_path):
    problems = [random_problem(24, 4, seed=s) for s in (1, 2)]
    direct = [
        run(p, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
            mode="execute", backend="threads", jobs=2).grid
        for p in problems
    ]
    service = SolverService(ServiceConfig(workers=2, cache=tmp_path))
    with service:
        alice = SolverClient(service, tenant="alice")
        bob = SolverClient(service, tenant="bob")
        futures = [alice.submit(problems[0]), bob.submit(problems[1]),
                   alice.submit(problems[1]), bob.submit(problems[0])]
        outcomes = [f.result(timeout=120) for f in futures]
        for outcome, grid in zip(outcomes, (direct[0], direct[1],
                                            direct[1], direct[0])):
            assert np.array_equal(outcome.grid, grid)
        assert {o.tenant for o in outcomes} == {"alice", "bob"}

        # Repeat submissions: served from the cache, zero tasks run.
        before = service.metrics.snapshot().counter("tasks_executed_total")
        repeat = alice.solve(problems[0])
        assert repeat.cached
        assert np.array_equal(repeat.grid, direct[0])
        after = service.metrics.snapshot().counter("tasks_executed_total")
        assert after == before  # the acceptance criterion, literally

        snap = service.metrics.snapshot()
        assert snap.counter("serve_cache_hits_total") >= 1
        assert snap.counter("serve_jobs_submitted_total") == 5
        stats = service.stats()
        assert stats["submitted"] == 5 and stats["finished"] == 5
    # clean shutdown: no orphan runner/reaper threads, no children
    assert _no_serve_leftovers() == []
    with pytest.raises(ServiceClosed):
        service.submit(_request(problems[0]))


@pytest.mark.skipif(not fork_available(), reason="needs POSIX fork")
def test_processes_pool_serves_and_leaves_no_orphans():
    problem = random_problem(24, 4, seed=3)
    direct = run(problem, impl="ca-parsec", machine=nacl(4), tile=6,
                 steps=3, mode="execute", backend="threads", jobs=2).grid
    with SolverService(ServiceConfig(pool="processes", workers=1,
                                     cache=False)) as service:
        client = SolverClient(service, tenant="alice")
        outcomes = [f.result(timeout=120)
                    for f in client.map([problem, problem])]
        for outcome in outcomes:
            assert np.array_equal(outcome.grid, direct)
        # the child's task counters merged back into the service registry
        assert service.metrics.snapshot().counter("tasks_executed_total") > 0
    deadline = time.monotonic() + 10.0
    while _no_serve_leftovers() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _no_serve_leftovers() == []


# -- admission control at the service boundary ---------------------------


def test_queue_full_raises_synchronously_and_fast():
    """White box: an accepting service whose runners never drain, so
    depth-based admission is deterministic."""
    service = SolverService(ServiceConfig(workers=1, queue_depth=3,
                                          tenant_limit=None, cache=False))
    service._started = True  # accept submissions, run nothing
    try:
        futures = [
            service.submit(_request(random_problem(24, 2, seed=s)))
            for s in range(3)
        ]
        t0 = time.monotonic()
        with pytest.raises(QueueFullError):
            service.submit(_request(random_problem(24, 2, seed=9)))
        assert time.monotonic() - t0 < 0.1
        snap = service.metrics.snapshot()
        assert snap.counter("serve_admission_rejects_total") == 1
        labelled = snap.labelled("serve_jobs_completed_total")
        statuses = {dict(ls)["status"]: v for ls, v in labelled.items()}
        assert statuses.get("rejected") == 1
    finally:
        service.stop()
    for future in futures:
        with pytest.raises(ServiceClosed):
            future.result(timeout=0)


def test_submit_before_start_raises():
    service = SolverService(ServiceConfig(cache=False))
    with pytest.raises(ServiceClosed):
        service.submit(_request(random_problem(24, 2)))


# -- deadlines (property iii at the service boundary) --------------------


@given(deadlines=st.lists(
    st.floats(min_value=0.001, max_value=0.01), min_size=1, max_size=3,
))
@settings(max_examples=5, deadline=None)
def test_expired_jobs_cancelled_and_workers_reclaimed(deadlines):
    """Whatever tiny deadlines arrive, every such job fails with the
    typed error and the service keeps serving afterwards (workers
    reclaimed, capacity intact)."""
    config = ServiceConfig(workers=1, cache=False, reap_interval_s=0.01)
    with SolverService(config) as service:
        blocker = service.submit(
            _request(random_problem(48, 8, seed=1), jobs=1)
        )
        doomed = [
            service.submit(_request(random_problem(24, 2, seed=2 + i),
                                    deadline_s=dl))
            for i, dl in enumerate(deadlines)
        ]
        for future in doomed:
            with pytest.raises(DeadlineExpired):
                future.result(timeout=30)
        blocker.result(timeout=120)
        # capacity survived: a fresh job still completes
        fresh = service.submit(_request(random_problem(24, 2, seed=42)))
        assert fresh.result(timeout=120).grid is not None
        assert service.pool.size() <= config.workers
        snap = service.metrics.snapshot()
        assert snap.counter("serve_deadline_expired_total") >= len(deadlines)


def test_default_deadline_from_config():
    config = ServiceConfig(workers=1, cache=False, reap_interval_s=0.01,
                           default_deadline_s=0.001)
    with SolverService(config) as service:
        blocker = service.submit(
            _request(random_problem(48, 8, seed=1), jobs=1,
                     deadline_s=120.0)
        )
        doomed = service.submit(_request(random_problem(24, 2, seed=5)))
        with pytest.raises(DeadlineExpired):
            doomed.result(timeout=30)
        blocker.result(timeout=120)


# -- batching ------------------------------------------------------------


def test_identical_requests_deduplicate_within_a_batch():
    problem = random_problem(24, 4, seed=7)
    config = ServiceConfig(workers=1, cache=False, tenant_limit=None,
                           batch_window_s=0.25, max_batch=8)
    with SolverService(config) as service:
        client = SolverClient(service, tenant="alice")
        futures = client.map([problem] * 6)
        grids = [f.result(timeout=120).grid for f in futures]
        for grid in grids[1:]:
            assert np.array_equal(grid, grids[0])
        snap = service.metrics.snapshot()
        assert snap.counter("serve_dedup_total") >= 1
        assert snap.counter("serve_batches_total") < 6
        # dedup means strictly fewer executions than submissions
        completed = snap.labelled("serve_jobs_completed_total")
        total_ok = sum(v for ls, v in completed.items()
                       if dict(ls)["status"] == "ok")
        assert total_ok == 6


# -- client ergonomics ---------------------------------------------------


def test_client_binds_tenant_priority_and_deadline():
    service = SolverService(ServiceConfig(cache=False))
    client = SolverClient(service, tenant="alice", priority=3,
                          deadline_s=60.0)
    request = client._request(random_problem(24, 2))
    assert request.tenant == "alice"
    assert request.priority == 3
    assert request.deadline_s == 60.0
    override = client._request(random_problem(24, 2), priority=9)
    assert override.priority == 9 and override.tenant == "alice"


def test_client_requires_problem_or_request():
    service = SolverService(ServiceConfig(cache=False))
    client = SolverClient(service)
    with pytest.raises(TypeError, match="problem or a request"):
        client.submit()


# -- faults under load (repro.chaos x repro.serve) -----------------------


def test_chaos_job_retries_from_checkpoint_other_tenants_unaffected(tmp_path):
    """A worker killed mid-batch by a fault plan: the job is re-queued
    within its retry budget and its second attempt *resumes* from the
    checkpoint the first one persisted; a fault-free tenant sharing
    the service never notices."""
    from repro.obs.monitor import format_serve_summary

    chaos_problem = random_problem(24, 6, seed=11)
    steady_problem = random_problem(24, 4, seed=12)
    direct_chaos = run(chaos_problem, impl="ca-parsec", machine=nacl(4),
                       tile=6, steps=3, mode="execute", backend="threads",
                       jobs=2).grid
    direct_steady = run(steady_problem, impl="ca-parsec", machine=nacl(4),
                        tile=6, steps=3, mode="execute", backend="threads",
                        jobs=2).grid
    config = ServiceConfig(workers=2, cache=False, retry_budget=2,
                           checkpoint_dir=tmp_path)
    with SolverService(config) as service:
        # jobs=1 keeps the priority order exact: every sweep-3 tile is
        # checkpointed before the first sweep-3 task can fire the kill
        chaos_future = service.submit(_request(
            chaos_problem, tenant="chaos", chaos_plan="kill:node=3,step=1s",
            jobs=1,
        ))
        steady_futures = [
            service.submit(_request(steady_problem, tenant="steady"))
            for _ in range(2)
        ]
        for future in steady_futures:
            outcome = future.result(timeout=120)
            assert np.array_equal(outcome.grid, direct_steady)
            assert outcome.retries == 0 and not outcome.recovered
        outcome = chaos_future.result(timeout=120)
        assert np.array_equal(outcome.grid, direct_chaos)
        assert outcome.retries == 1
        assert outcome.recovered  # attempt 2 resumed from the checkpoint
        assert outcome.faults_injected == 1

        snap = service.metrics.snapshot()
        assert snap.counter("serve_jobs_retried_total") == 1
        summary = format_serve_summary(snap)
        assert "jobs retried" in summary
        assert "chaos faults / recoveries" in summary
    assert _no_serve_leftovers() == []


def test_retry_budget_exhausted_fails_leader_and_skips_followers(tmp_path):
    """Three kills against a budget of one: the first retry dies too,
    the leader surfaces the real error and a deduplicated follower of
    the same signature gets JobSkipped (the ParallelX skip-downstream
    outcome), not a silent hang."""
    from repro.serve import JobSkipped, WorkerDied

    problem = random_problem(24, 6, seed=13)
    plan = "kill:node=0,step=1;kill:node=1,step=2;kill:node=2,step=3"
    config = ServiceConfig(workers=1, cache=False, retry_budget=1,
                           checkpoint_dir=tmp_path, batch_window_s=0.25,
                           max_batch=8, tenant_limit=None)
    with SolverService(config) as service:
        futures = [
            service.submit(_request(problem, tenant="alice", chaos_plan=plan))
            for _ in range(2)
        ]
        errors = []
        for future in futures:
            with pytest.raises(Exception) as info:
                future.result(timeout=120)
            errors.append(info.value)
        kinds = {type(e) for e in errors}
        assert WorkerDied in kinds
        assert JobSkipped in kinds
        snap = service.metrics.snapshot()
        # both deduplicated jobs were re-queued on the first retry
        assert snap.counter("serve_jobs_retried_total") == 2
    assert _no_serve_leftovers() == []


def test_retry_budget_zero_keeps_legacy_fail_behaviour(tmp_path):
    """Without a budget a lost node is a plain failure for every job in
    the batch -- the pre-chaos contract, verbatim."""
    problem = random_problem(24, 6, seed=14)
    config = ServiceConfig(workers=1, cache=False,
                           checkpoint_dir=tmp_path)
    with SolverService(config) as service:
        future = service.submit(_request(
            problem, tenant="alice", chaos_plan="kill:node=1,step=1s",
        ))
        with pytest.raises(Exception):
            future.result(timeout=120)
        snap = service.metrics.snapshot()
        assert snap.counter("serve_jobs_retried_total") == 0
    assert _no_serve_leftovers() == []
