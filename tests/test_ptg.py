"""Parameterized Task Graph front-end."""

import pytest

from repro.machine.machine import nacl
from repro.runtime.engine import Engine
from repro.runtime.ptg import PTG, Dependency, TaskClass


def pipeline_ptg(n=10, nodes=2):
    ptg = PTG()
    ptg.add_class(TaskClass(
        name="f",
        parameter_space=lambda: ((i,) for i in range(n)),
        node=lambda i: i % nodes,
        dependencies=[Dependency(
            producer=lambda i: ("f", i - 1) if i > 0 else None,
            tag="out",
            nbytes=8,
        )],
        outputs={"out": 8},
        cost=lambda i: 1e-6 * (i + 1),
        flops=10.0,
        kernel=lambda ins, task: {"out": sum(v for v in ins.values() if v) + 1},
    ))
    return ptg


def test_unroll_counts_and_keys():
    g = pipeline_ptg().build()
    assert len(g) == 10
    assert ("f", 0) in g and ("f", 9) in g
    assert g[("f", 3)].node == 1
    assert g[("f", 3)].cost == pytest.approx(4e-6)


def test_boundary_dependency_none():
    g = pipeline_ptg().build()
    assert g[("f", 0)].inputs == ()
    assert g[("f", 1)].inputs[0].producer == ("f", 0)


def test_executes_numerically():
    g = pipeline_ptg().build()
    rep = Engine(g, nacl(2), execute=True).run()
    assert rep.results[(("f", 9), "out")] == 10


def test_callable_attributes():
    ptg = PTG()
    ptg.add_class(TaskClass(
        name="g",
        parameter_space=lambda: ((i, j) for i in range(2) for j in range(3)),
        node=0,
        outputs=lambda i, j: {"o": 8 * (i + j + 1)},
        priority=lambda i, j: i * 10 + j,
        kind="grid",
    ))
    g = ptg.build()
    assert len(g) == 6
    assert g[("g", 1, 2)].priority == 12
    assert g[("g", 1, 2)].out_nbytes == {"o": 32}
    assert g[("g", 0, 0)].kind == "grid"


def test_two_classes_cross_dependencies():
    """A producer class feeding a reducer class -- the one-to-many /
    many-to-one flows PTG is built for."""
    ptg = PTG()
    ptg.add_class(TaskClass(
        name="produce",
        parameter_space=lambda: ((i,) for i in range(4)),
        node=lambda i: i % 2,
        outputs={"v": 8},
        kernel=lambda ins, task: {"v": float(task.key[1])},
    ))
    ptg.add_class(TaskClass(
        name="reduce",
        parameter_space=lambda: ((),),
        node=0,
        dependencies=[
            Dependency(producer=lambda *_, k=k: ("produce", k), tag="v", nbytes=8)
            for k in range(4)
        ],
        outputs={"sum": 8},
        kernel=lambda ins, task: {"sum": sum(ins.values())},
    ))
    g = ptg.build()
    rep = Engine(g, nacl(2), execute=True).run()
    assert rep.results[(("reduce",), "sum")] == 0 + 1 + 2 + 3


def test_duplicate_class_rejected():
    ptg = pipeline_ptg()
    with pytest.raises(ValueError):
        ptg.add_class(TaskClass(name="f", parameter_space=lambda: [()], node=0))
