"""Successive-halving search: budget accounting, determinism,
failure containment and the cache fast path."""

import time

import pytest

from repro.exec import backends
from repro.experiments.sweeper import Sweep
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem
from repro.tuning import SearchSpace, TuningCache, tune
from repro.tuning.search import _fidelity_ladder


PROBLEM = JacobiProblem(n=96, iterations=4)
MACHINE = nacl(4)


def small_tune(**kwargs):
    kwargs.setdefault("impl", "ca-parsec")
    kwargs.setdefault("machine", MACHINE)
    kwargs.setdefault("cache", False)
    return tune(PROBLEM, **kwargs)


def test_budget_is_a_hard_ceiling():
    for budget in (1, 3, 6, 24):
        result = small_tune(budget=budget)
        assert result.runs_used <= budget
        assert sum(n for _, n in result.rungs) == result.runs_used
        assert len(result.trials) == result.runs_used


def test_budget_zero_is_model_only():
    result = small_tune(budget=0)
    assert result.source == "model"
    assert result.runs_used == 0
    assert result.winner == result.predictions[0].candidate


def test_negative_budget_rejected():
    with pytest.raises(ValueError, match="budget"):
        small_tune(budget=-1)


def test_unknown_impl_and_backend_rejected():
    with pytest.raises(ValueError, match="PaRSEC"):
        small_tune(impl="petsc")
    with pytest.raises(ValueError, match="unknown backend"):
        small_tune(backend="quantum")


def test_determinism_same_seed_same_winner():
    a = small_tune(budget=8, seed=3)
    b = small_tune(budget=8, seed=3)
    assert a.winner == b.winner
    assert [t.candidate for t in a.trials] == [t.candidate for t in b.trials]
    assert a.rungs == b.rungs
    assert a.winner_gflops == b.winner_gflops


def test_fidelity_ladder_monotone():
    assert _fidelity_ladder(1) == [1]
    assert _fidelity_ladder(8) == [2, 4, 8]
    ladder = _fidelity_ladder(20)
    assert ladder == sorted(set(ladder)) and ladder[-1] == 20


def test_halving_doubles_fidelity_and_halves_pool():
    # base-parsec: no step axis, so the fidelity ladder is not floored
    # and the classic halving schedule is visible.
    result = small_tune(budget=12, impl="base-parsec")
    fidelities = [fid for fid, n in result.rungs if n]
    assert fidelities == sorted(fidelities)
    assert fidelities[-1] == PROBLEM.iterations
    pools = [n for _, n in result.rungs if n]
    assert pools == sorted(pools, reverse=True)


def test_ca_fidelity_floored_at_pool_max_step():
    # Every rung must run at least as many iterations as the largest
    # step in the pool, or step sizes cannot be told apart.
    result = small_tune(budget=12)
    max_step = max(t.candidate.steps for t in result.trials)
    assert all(fid >= min(PROBLEM.iterations, max_step)
               for fid, _ in result.rungs)


def test_memoised_rerun_costs_no_budget():
    # At full fidelity the halving loop revisits survivors; the
    # deterministic simulator must not be charged twice for them.
    result = small_tune(budget=24)
    keys = [(t.candidate, t.fidelity) for t in result.trials]
    assert len(keys) == len(set(keys))


def test_failure_containment(monkeypatch):
    """One exploding configuration becomes an 'error' trial; the search
    still returns a winner from the survivors."""
    real = Sweep.run_configs

    def explode(self, configs, **kwargs):
        if any(c.get("tile") == 24 for c in configs):
            raise RuntimeError("kaboom")
        return real(self, configs, **kwargs)

    monkeypatch.setattr(Sweep, "run_configs", explode)
    space = SearchSpace(tiles=(12, 24), steps=(1, 2))
    result = small_tune(budget=8, space=space)
    errors = [t for t in result.trials if t.status == "error"]
    assert errors and all("kaboom" in t.detail for t in errors)
    assert result.winner.tile == 12
    # Failed trials still count against the budget.
    assert result.runs_used == len(result.trials)


def test_timeout_containment(monkeypatch):
    """A measured run that hangs becomes a 'timeout' trial instead of
    hanging the session.  The simulator is never run under a timeout."""
    real = Sweep.run_configs

    def slow(self, configs, backend="sim", **kwargs):
        if backend == "threads" and any(c.get("tile") == 24 for c in configs):
            time.sleep(0.6)
        return real(self, configs, backend=backend, **kwargs)

    monkeypatch.setattr(Sweep, "run_configs", slow)
    space = SearchSpace(tiles=(12, 24), steps=(1,))
    result = small_tune(budget=6, space=space, backend="threads",
                        timeout=0.15)
    timeouts = [t for t in result.trials if t.status == "timeout"]
    assert timeouts and all(t.backend == "threads" for t in timeouts)
    assert result.winner.tile == 12


def test_empty_space_raises():
    space = SearchSpace(tiles=(96,))  # exceeds the 48-cell node block
    with pytest.raises(ValueError, match="empty after constraint pruning"):
        small_tune(budget=4, space=space)


def test_backend_unavailable_falls_back_to_model(monkeypatch):
    monkeypatch.setattr(backends, "backend_available", lambda name: False)
    result = small_tune(budget=8, backend="processes")
    assert result.source == "model"
    assert result.runs_used == 0


def test_cache_roundtrip(tmp_path):
    store = TuningCache(tmp_path / "t.json")
    cold = tune(PROBLEM, machine=MACHINE, budget=6, cache=store, seed=1)
    assert cold.source == "search" and cold.runs_used > 0
    warm = tune(PROBLEM, machine=MACHINE, budget=6, cache=store, seed=1)
    assert warm.source == "cache"
    assert warm.runs_used == 0
    assert warm.winner == cold.winner
    forced = tune(PROBLEM, machine=MACHINE, budget=6, cache=store, seed=1,
                  force=True)
    assert forced.source == "search" and forced.runs_used > 0


def test_run_kwargs_fold_into_cache_key(tmp_path):
    store = TuningCache(tmp_path / "t.json")
    plain = tune(PROBLEM, machine=MACHINE, budget=4, cache=store)
    adjusted = tune(PROBLEM, machine=MACHINE, budget=4, cache=store,
                    run_kwargs={"ratio": 0.2})
    # The adjusted search did not hit the plain entry.
    assert adjusted.source == "search"
    assert plain.source == "search"
    assert len(store.entries()) == 2


def test_measured_refinement_uses_real_backend():
    result = small_tune(budget=9, backend="threads")
    assert result.measured_runs > 0
    assert result.measured_runs < result.runs_used  # sim screened first
    measured = [t for t in result.trials if t.backend == "threads"]
    assert all(t.fidelity == PROBLEM.iterations for t in measured)


def test_records_share_sweep_export_path(tmp_path):
    result = small_tune(budget=4)
    path = tmp_path / "trials.csv"
    text = result.to_csv(str(path))
    assert path.read_bytes().decode() == text
    header = text.splitlines()[0].split(",")
    assert {"tile", "steps", "gflops", "status", "predicted_gflops"} <= set(header)
    assert len(text.splitlines()) == result.runs_used + 1
