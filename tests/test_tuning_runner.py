"""``run(tile="auto")`` integration: cache consumption, budgeted
search, and the graceful model-only fallback."""

import warnings

import pytest

from repro.core.runner import run
from repro.exec import backends
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem
from repro.tuning import TuningCache, tune


PROBLEM = JacobiProblem(n=96, iterations=4)
MACHINE = nacl(4)


def test_auto_budget_zero_warns_and_uses_model():
    with pytest.warns(UserWarning, match="budget is 0"):
        result = run(PROBLEM, impl="ca-parsec", machine=MACHINE,
                     tile="auto", steps="auto", tune_cache=False)
    assert result.params["tune_source"] == "model"
    assert isinstance(result.params["tile"], int)
    assert isinstance(result.params["steps"], int)


def test_auto_backend_unavailable_warns_and_uses_model(monkeypatch):
    monkeypatch.setattr(backends, "backend_available", lambda name: False)
    with pytest.warns(UserWarning, match="unavailable"):
        result = run(PROBLEM, impl="ca-parsec", machine=MACHINE,
                     tile="auto", steps="auto", tune=True, tune_budget=8,
                     tune_cache=False)
    assert result.params["tune_source"] == "model"


def test_tune_true_spends_budget_and_caches(tmp_path):
    store = TuningCache(tmp_path / "t.json")
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a budgeted search must not warn
        result = run(PROBLEM, impl="ca-parsec", machine=MACHINE,
                     tile="auto", steps="auto", tune=True, tune_budget=6,
                     tune_cache=store)
    assert result.params["tune_source"] == "search"
    assert len(store.entries()) == 1


def test_auto_consumes_cached_winner_end_to_end(tmp_path):
    store = TuningCache(tmp_path / "t.json")
    tuned = tune(PROBLEM, impl="ca-parsec", machine=MACHINE, budget=6,
                 cache=store)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # warm cache: no fallback warning
        result = run(PROBLEM, impl="ca-parsec", machine=MACHINE,
                     tile="auto", steps="auto", tune_cache=store)
    assert result.params["tune_source"] == "cache"
    assert result.params["tile"] == tuned.winner.tile
    assert result.params["steps"] == tuned.winner.steps


def test_pinned_tile_respected_over_cache(tmp_path):
    store = TuningCache(tmp_path / "t.json")
    tuned = tune(PROBLEM, impl="ca-parsec", machine=MACHINE, budget=6,
                 cache=store)
    other_tile = 12 if tuned.winner.tile != 12 else 24
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = run(PROBLEM, impl="ca-parsec", machine=MACHINE,
                     tile=other_tile, steps="auto", tune_cache=store)
    assert result.params["tile"] == other_tile
    # The constrained resolution must not clobber the real winner.
    entry = store.get(MACHINE, PROBLEM, "sim", "ca-parsec")
    assert store.candidate_of(entry) == tuned.winner


def test_base_parsec_auto_tile():
    with pytest.warns(UserWarning):
        result = run(PROBLEM, impl="base-parsec", machine=MACHINE,
                     tile="auto", tune_cache=False)
    assert result.params["tune_source"] == "model"
    assert "steps" not in result.params


def test_petsc_rejects_auto():
    with pytest.raises(ValueError, match="petsc has no tile/step knobs"):
        run(PROBLEM, impl="petsc", machine=MACHINE, tile="auto")


def test_bogus_auto_strings_rejected():
    with pytest.raises(ValueError, match="tile must be"):
        run(PROBLEM, impl="ca-parsec", machine=MACHINE, tile="automatic")
    with pytest.raises(ValueError, match="steps must be"):
        run(PROBLEM, impl="ca-parsec", machine=MACHINE, tile=24, steps="many")
