"""Task and Flow basics."""

import pytest

from repro.runtime.task import EdgeCensus, Flow, Task


def test_task_defaults():
    t = Task("a", node=0)
    assert t.inputs == () and t.cost == 0.0 and t.kind == "task"
    assert t.out_nbytes == {} and t.priority == 0


def test_task_validation():
    with pytest.raises(ValueError):
        Task("a", node=-1)
    with pytest.raises(ValueError):
        Task("a", node=0, cost=-1.0)
    with pytest.raises(ValueError):
        Task("a", node=0, flops=-1)
    with pytest.raises(ValueError):
        Task("a", node=0, redundant_flops=-1)


def test_flow_validation():
    Flow("p", "out", 0)  # zero-byte control edges are legal
    with pytest.raises(ValueError):
        Flow("p", "out", -1)


def test_task_keys_arbitrary_hashables():
    t = Task(("st", 1, 2, 3), node=1, inputs=(Flow(("st", 1, 2, 2), "tile"),))
    assert t.key == ("st", 1, 2, 3)
    assert t.inputs[0].producer == ("st", 1, 2, 2)


def test_edge_census_accumulates():
    c = EdgeCensus()
    c.add_local(100)
    c.add_local(50)
    c.add_remote(0, 1, 1000)
    c.add_remote(0, 1, 2000)
    c.add_remote(1, 0, 10)
    assert c.local_edges == 2 and c.local_bytes == 150
    assert c.remote_messages == 3 and c.remote_bytes == 3010
    assert c.by_pair[(0, 1)] == (2, 3000)
    assert c.by_pair[(1, 0)] == (1, 10)
