"""Distributed vectors and layouts."""

import numpy as np
import pytest

from repro.petsclite.vec import Vec, VecLayout


def test_layout_ranges_partition_vector():
    lay = VecLayout(n=10, nranks=3)
    assert lay.ranges == (0, 4, 7, 10)
    assert lay.range_of(0) == (0, 4)
    assert lay.local_size(2) == 3
    with pytest.raises(IndexError):
        lay.range_of(3)


def test_owner_lookup():
    lay = VecLayout(n=10, nranks=3)
    assert [lay.owner(i) for i in range(10)] == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]
    with pytest.raises(IndexError):
        lay.owner(10)
    owners = lay.owners(np.array([0, 4, 9]))
    assert owners.tolist() == [0, 1, 2]
    with pytest.raises(IndexError):
        lay.owners(np.array([-1]))


def test_layout_validation():
    with pytest.raises(ValueError):
        VecLayout(n=2, nranks=3)
    with pytest.raises(ValueError):
        VecLayout(n=2, nranks=0)


def test_from_global_roundtrip():
    lay = VecLayout(n=11, nranks=4)
    data = np.arange(11.0)
    v = Vec.from_global(lay, data)
    assert np.array_equal(v.to_global(), data)
    assert v.local(0).shape == (3,)
    with pytest.raises(ValueError):
        Vec.from_global(lay, np.zeros(5))


def test_blas_operations():
    lay = VecLayout(n=8, nranks=2)
    x = Vec.from_global(lay, np.arange(8.0))
    y = x.duplicate()
    y.axpy(2.0, x)
    assert np.array_equal(y.to_global(), 3.0 * np.arange(8.0))
    y.scale(0.5)
    assert np.array_equal(y.to_global(), 1.5 * np.arange(8.0))
    assert x.dot(x) == pytest.approx(float((np.arange(8.0) ** 2).sum()))
    assert x.norm() == pytest.approx(np.linalg.norm(np.arange(8.0)))
    assert x.norm(np.inf) == 7.0


def test_swap():
    lay = VecLayout(n=4, nranks=2)
    x = Vec.from_global(lay, np.zeros(4))
    y = Vec.from_global(lay, np.ones(4))
    x.swap(y)
    assert np.all(x.to_global() == 1.0) and np.all(y.to_global() == 0.0)


def test_set():
    lay = VecLayout(n=4, nranks=2)
    v = Vec(lay)
    v.set(7.0)
    assert np.all(v.to_global() == 7.0)


def test_layout_mismatch_rejected():
    x = Vec(VecLayout(n=4, nranks=2))
    y = Vec(VecLayout(n=4, nranks=4))
    with pytest.raises(ValueError):
        x.axpy(1.0, y)


def test_local_sizes_checked():
    lay = VecLayout(n=4, nranks=2)
    with pytest.raises(ValueError):
        Vec(lay, [np.zeros(3), np.zeros(1)])
    with pytest.raises(ValueError):
        Vec(lay, [np.zeros(2)])
