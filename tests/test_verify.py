"""The static schedule verifier: accepts the real schedule, rejects
broken ones."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.spec import StencilSpec
from repro.core.verify import ScheduleError, verify_schedule
from repro.distgrid.halo import StripSpec
from repro.distgrid.partition import GridPartition, ProcessGrid
from repro.stencil.problem import JacobiProblem


def make_spec(n=24, nodes=4, tile=4, steps=3, T=9):
    return StencilSpec.create(
        JacobiProblem(n=n, iterations=T), nodes=nodes, tile=tile, steps=steps
    )


def test_real_schedule_verifies():
    checks = verify_schedule(make_spec())
    assert checks > 0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(1, 3), st.integers(1, 3), st.integers(2, 6),
    st.integers(1, 4), st.integers(0, 8),
)
def test_schedule_valid_for_arbitrary_configs(prows, pcols, tile, steps, T):
    pgrid = ProcessGrid(prows, pcols)
    nrows = max(prows * tile, 12)
    ncols = max(pcols * tile, 10)
    partition = GridPartition(nrows, ncols, pgrid, tile)
    steps = min(steps, partition.min_tile_dim())
    spec = StencilSpec(
        problem=JacobiProblem(n=nrows, ncols=ncols, iterations=T),
        partition=partition,
        steps=steps,
    )
    verify_schedule(spec)


class _NoCorners(StencilSpec):
    """A deliberately broken schedule: PA1 without the corner blocks
    the paper says boundary tiles must buffer."""

    def corner_block(self, consumer, corner):
        return None


class _ShallowRemote(StencilSpec):
    """Remote refresh strips one layer too shallow."""

    def deep_strip(self, consumer, side):
        strip = super().deep_strip(consumer, side)
        if strip is None or self.steps == 1:
            return strip
        return StripSpec(side=strip.side, depth=strip.depth - 1)


class _NoLocalExtension(StencilSpec):
    """Local strips without the perpendicular extension into the
    redundantly computed halo."""

    def local_strip(self, consumer, side, t_consumer):
        strip = super().local_strip(consumer, side, t_consumer)
        if strip is None:
            return None
        return StripSpec(side=strip.side, depth=strip.depth)


def _variant(cls, steps=3):
    base = make_spec(steps=steps)
    return cls(problem=base.problem, partition=base.partition, steps=base.steps)


def test_missing_corners_detected():
    with pytest.raises(ScheduleError):
        verify_schedule(_variant(_NoCorners))


def test_shallow_remote_strips_detected():
    with pytest.raises(ScheduleError):
        verify_schedule(_variant(_ShallowRemote))


def test_missing_local_extension_detected():
    with pytest.raises(ScheduleError):
        verify_schedule(_variant(_NoLocalExtension))


def test_base_schedule_unaffected_by_corner_removal():
    """The base (s=1) scheme needs no corners, so removing them must
    still verify -- the verifier is not over-strict."""
    verify_schedule(_variant(_NoCorners, steps=1))


def test_iteration_cap():
    spec = make_spec(T=50)
    checks_small = verify_schedule(spec, iterations=2)
    checks_more = verify_schedule(spec, iterations=4)
    assert checks_more > checks_small
