"""Dirichlet boundary handling."""

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.distgrid.tile import TileSpec


def corner_tile():
    """Tile at the global NW corner of an 8x8 grid (no N/W neighbours)."""
    return TileSpec(
        i=0, j=0, r0=0, r1=4, c0=0, c1=4, node=0,
        pads=(1, 1, 1, 1),
        remote=(False, False, False, False),
        has_neighbor=(False, True, False, True),
    )


def test_constant_bc_fills_exterior_only():
    t = corner_tile()
    ext = t.alloc_ext(fill=5.0)
    DirichletBC(9.0).fill_exterior(ext, t, nrows=8, ncols=8)
    # North pad (global row -1) and west pad (global col -1) are BC...
    assert np.all(ext[0, :] == 9.0)
    assert np.all(ext[:, 0] == 9.0)
    # ...interior pads (south/east, real neighbours) untouched.
    assert np.all(ext[-1, 1:] == 5.0)
    assert np.all(ext[1:, -1] == 5.0)
    assert np.all(ext[1:-1, 1:-1] == 5.0)


def test_function_bc_values():
    t = corner_tile()
    ext = t.alloc_ext()
    bc = DirichletBC(lambda r, c: 100.0 * r + c)
    bc.fill_exterior(ext, t, nrows=8, ncols=8)
    # Global cell (-1, 2) sits at ext[0, 3].
    assert ext[0, 3] == pytest.approx(-100.0 + 2.0)
    # Corner (-1, -1).
    assert ext[0, 0] == pytest.approx(-101.0)


def test_function_bc_shape_checked():
    bad = DirichletBC(lambda r, c: np.zeros(3))
    with pytest.raises(ValueError):
        bad.evaluate(np.zeros((2, 2)), np.zeros((2, 2)))


def test_frame():
    bc = DirichletBC(2.5)
    framed = bc.frame(3, 4, depth=1)
    assert framed.shape == (5, 6)
    assert np.all(framed[0, :] == 2.5) and np.all(framed[:, 0] == 2.5)
    assert np.all(framed[1:-1, 1:-1] == 0.0)


def test_frame_function_matches_coordinates():
    bc = DirichletBC(lambda r, c: r * 10.0 + c)
    framed = bc.frame(2, 2, depth=1)
    assert framed[0, 0] == pytest.approx(-11.0)  # (-1, -1)
    assert framed[3, 3] == pytest.approx(2 * 10 + 2)  # (2, 2)
