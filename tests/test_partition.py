"""Process grids and the two-level block/tile partition."""

import pytest

from repro.distgrid.halo import Corner, Side
from repro.distgrid.partition import (
    GridPartition,
    ProcessGrid,
    even_split,
    tile_split,
)


def test_even_split_balanced():
    assert even_split(10, 3) == [4, 3, 3]
    assert even_split(9, 3) == [3, 3, 3]
    assert sum(even_split(1000, 7)) == 1000
    assert max(even_split(1000, 7)) - min(even_split(1000, 7)) <= 1
    with pytest.raises(ValueError):
        even_split(2, 3)
    with pytest.raises(ValueError):
        even_split(5, 0)


def test_tile_split():
    assert tile_split(10, 4) == [4, 4, 2]
    assert tile_split(8, 4) == [4, 4]
    assert tile_split(3, 5) == [3]
    with pytest.raises(ValueError):
        tile_split(10, 0)


def test_process_grid_square():
    assert ProcessGrid.square(16) == ProcessGrid(4, 4)
    assert ProcessGrid.square(6) == ProcessGrid(2, 3)
    assert ProcessGrid.square(7) == ProcessGrid(1, 7)
    assert ProcessGrid.square(1) == ProcessGrid(1, 1)


def test_process_grid_rank_coords_roundtrip():
    pg = ProcessGrid(3, 4)
    for pr in range(3):
        for pc in range(4):
            assert pg.coords(pg.rank(pr, pc)) == (pr, pc)
    with pytest.raises(IndexError):
        pg.rank(3, 0)
    with pytest.raises(IndexError):
        pg.coords(12)


def make_partition(n=24, nodes=4, tile=4):
    return GridPartition(n, n, ProcessGrid.square(nodes), tile)


def test_tiles_cover_grid_exactly():
    p = make_partition(n=25, tile=4)
    covered = set()
    for (i, j) in p.tiles():
        r0, r1 = p.tile_rows(i)
        c0, c1 = p.tile_cols(j)
        for r in range(r0, r1):
            for c in range(c0, c1):
                assert (r, c) not in covered
                covered.add((r, c))
    assert len(covered) == 25 * 25


def test_tiles_never_span_nodes():
    p = make_partition(n=26, nodes=4, tile=5)
    for (i, j) in p.tiles():
        owner = p.owner(i, j)
        r0, r1 = p.tile_rows(i)
        # All rows of the tile belong to one node-row block.
        assert p._row_layout[1][i] == owner // p.pgrid.cols


def test_neighbors_and_boundaries():
    p = make_partition(n=24, nodes=4, tile=4)  # 2x2 nodes, 6x6 tiles
    assert p.tile_shape == (6, 6)
    assert p.neighbor(0, 0, Side.NORTH) is None
    assert p.neighbor(0, 0, Side.SOUTH) == (1, 0)
    assert p.diagonal(0, 0, Corner.SE) == (1, 1)
    assert p.diagonal(0, 0, Corner.NW) is None
    # Tile (2, 0) is the last row of node (0, 0): south neighbour is
    # remote.
    assert p.is_remote(2, 0, Side.SOUTH)
    assert not p.is_remote(2, 0, Side.NORTH)
    assert p.is_node_boundary(2, 0)
    assert not p.is_node_boundary(1, 1)


def test_owner_matches_blocks():
    p = make_partition(n=24, nodes=4, tile=4)
    assert p.owner(0, 0) == 0
    assert p.owner(0, 3) == 1  # east half
    assert p.owner(3, 0) == 2
    assert p.owner(5, 5) == 3


def test_tiles_of_node_partition_the_tiles():
    p = make_partition(n=24, nodes=4, tile=4)
    seen = set()
    for rank in range(4):
        for t in p.tiles_of_node(rank):
            assert t not in seen
            seen.add(t)
    assert len(seen) == 36


def test_counts():
    p = make_partition(n=24, nodes=4, tile=4)
    stats = p.counts()
    assert stats["tiles"] == 36
    assert stats["boundary_tiles"] + stats["interior_tiles"] == 36
    # 2x2 node grid with 3x3 tiles per node: boundary tiles are the
    # tiles hugging the internal cross: 5 per node.
    assert stats["boundary_tiles"] == 20


def test_min_tile_dim_uneven():
    p = GridPartition(27, 27, ProcessGrid(2, 2), 5)  # 14=5+5+4, 13=5+5+3
    assert p.min_tile_dim() == 3


def test_validation():
    with pytest.raises(ValueError):
        GridPartition(3, 3, ProcessGrid(2, 2), 0)
    with pytest.raises(ValueError):
        GridPartition(1, 8, ProcessGrid(2, 2), 2)
    with pytest.raises(IndexError):
        make_partition().tile_rows(99)
