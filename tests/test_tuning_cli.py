"""The ``tune`` and ``sweep`` subcommands."""

import json

import pytest

from repro.cli import main


TINY = ["--n", "96", "--nodes", "4", "--iterations", "4"]


def test_tune_cold_then_warm(tmp_path, capsys):
    cache = str(tmp_path / "tuning.json")
    argv = ["tune", "--machine", "nacl", "--impl", "ca-parsec",
            *TINY, "--budget", "6", "--cache-path", cache]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "source: search" in cold
    assert "halving schedule" in cold
    assert "best: tile=" in cold
    # Warm: same command answers from the cache with zero runs.
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "source: cache -- 0 of 6 budgeted runs used" in warm


def test_tune_no_cache_and_csv(tmp_path, capsys):
    csv_path = tmp_path / "trials.csv"
    rc = main(["tune", *TINY, "--budget", "4", "--no-cache",
               "--csv-out", str(csv_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "source: search" in out
    header = csv_path.read_text().splitlines()[0]
    assert "tile" in header and "gflops" in header


def test_tune_budget_zero_reports_model(capsys):
    rc = main(["tune", *TINY, "--budget", "0", "--no-cache"])
    assert rc == 0
    assert "source: model" in capsys.readouterr().out


def test_tune_wide_searches_policies(capsys):
    rc = main(["tune", *TINY, "--budget", "4", "--no-cache", "--wide",
               "--seed", "2"])
    assert rc == 0
    assert "best: tile=" in capsys.readouterr().out


def test_sweep_table_and_exports(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    json_path = tmp_path / "sweep.json"
    rc = main(["sweep", "--n", "96", "--iterations", "3",
               "--axis", "impl=base-parsec,ca-parsec",
               "--axis", "tile=24,48",
               "--csv-out", str(csv_path), "--json-out", str(json_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "4 configurations" in out and "gflops" in out
    rows = csv_path.read_text().splitlines()
    assert len(rows) == 5  # header + 4 records
    records = json.loads(json_path.read_text())
    assert len(records) == 4
    assert {r["impl"] for r in records} == {"base-parsec", "ca-parsec"}


def test_sweep_seed_shuffles_reproducibly(capsys):
    argv = ["sweep", "--n", "96", "--iterations", "3",
            "--axis", "impl=base-parsec", "--axis", "tile=12,24,48",
            "--seed", "5"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second


def test_sweep_rejects_bad_axis():
    with pytest.raises(SystemExit):
        main(["sweep", "--axis", "flavour=spicy"])
    with pytest.raises(SystemExit):
        main(["sweep", "--axis", "tile"])  # no '=' separator
