"""Property-based invariants of the engine and graph machinery."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.runtime.engine import Engine
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Flow

from .test_engine import simple_machine


@st.composite
def layered_graphs(draw):
    """Random layered DAGs: tasks in layer L depend on a subset of
    layer L-1 (always acyclic, arbitrary fan-in/out and node mix)."""
    nodes = draw(st.integers(1, 4))
    layers = draw(st.integers(1, 5))
    width = draw(st.integers(1, 6))
    g = TaskGraph()
    prev: list = []
    for layer in range(layers):
        current = []
        count = draw(st.integers(1, width))
        for k in range(count):
            key = (layer, k)
            node = draw(st.integers(0, nodes - 1))
            deps = []
            if prev:
                chosen = draw(st.lists(st.sampled_from(prev), unique=True, max_size=len(prev)))
                deps = [Flow(p, "o", draw(st.integers(0, 4096))) for p in chosen]
            g.add_task(
                key, node=node, cost=draw(st.floats(0.0, 1e-3)),
                inputs=tuple(deps), out_nbytes={"o": 8},
                priority=draw(st.integers(-5, 5)),
            )
            current.append(key)
        prev = current
    return g, nodes


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(layered_graphs(), st.sampled_from(["fifo", "lifo", "priority"]),
       st.booleans())
def test_every_task_runs_exactly_once(data, policy, overlap):
    g, nodes = data
    machine = simple_machine(nodes=nodes)
    rep = Engine(g, machine, policy=policy, overlap=overlap).run()
    assert rep.tasks_run == len(g)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(layered_graphs())
def test_dynamic_message_accounting_equals_census(data):
    g, nodes = data
    census = g.finalize().census()
    rep = Engine(g, simple_machine(nodes=nodes)).run()
    assert rep.messages == census.remote_messages
    assert rep.message_bytes == census.remote_bytes
    assert rep.local_edges == census.local_edges


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(layered_graphs(), st.sampled_from(["fifo", "lifo", "priority"]))
def test_trace_spans_never_overlap_and_cover_busy_time(data, policy):
    g, nodes = data
    machine = simple_machine(nodes=nodes)
    eng = Engine(g, machine, policy=policy, trace=True)
    rep = eng.run()
    eng.trace.validate_no_overlap()
    # Trace compute time equals accounted busy time.
    traced = sum(s.duration for s in eng.trace.compute_spans())
    assert abs(traced - sum(rep.node_busy.values())) < 1e-9


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(layered_graphs())
def test_elapsed_at_least_critical_path(data):
    g, nodes = data
    g.finalize()
    cp = g.critical_path()
    rep = Engine(g, simple_machine(nodes=nodes), charge_task_overhead=False).run()
    assert rep.elapsed >= cp - 1e-12


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(layered_graphs())
def test_elapsed_at_most_serialized_work_plus_comm(data):
    """Sanity upper bound: a single worker doing everything plus every
    message end to end."""
    g, nodes = data
    g.finalize()
    machine = simple_machine(nodes=nodes)
    total_cost = sum(t.cost for t in g) + len(g) * machine.node.task_overhead
    census = g.census()
    per_msg = (
        2 * machine.network.software_overhead
        + machine.network.latency
    )
    comm = census.remote_messages * per_msg + census.remote_bytes / machine.network.effective_bw
    rep = Engine(g, machine).run()
    assert rep.elapsed <= total_cost + comm + 1e-9
