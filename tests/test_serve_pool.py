"""Warm executor pools (``repro.serve.pool``).

The load-bearing test is the warm-reuse regression: two sequential
jobs through one warm slot must produce grids bit-identical to two
cold ``run()`` calls -- executor reuse is an optimisation, never an
answer change.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.runner import run
from repro.distgrid.boundary import DirichletBC
from repro.exec import fork_available
from repro.machine.machine import nacl
from repro.serve import SolveRequest, WarmSlot, WorkerPool, execute_request
from repro.serve.pool import InProcessWorker, ProcessWorker
from repro.serve.request import DeadlineExpired, WorkerDied
from repro.stencil.kernels import StencilWeights
from repro.stencil.problem import JacobiProblem


class _GridInit:
    """Picklable random-data initialiser: requests cross the process
    pool's pipes, so closures are off the table."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = values

    def __call__(self, rows, cols):
        n, nc = self.values.shape
        return self.values[np.clip(rows, 0, n - 1), np.clip(cols, 0, nc - 1)]


def _bc(rows, cols):
    return np.sin(0.1 * rows) + np.cos(0.2 * cols)


def random_problem(n, iterations, seed=0):
    rng = np.random.default_rng(seed)
    return JacobiProblem(
        n=n,
        iterations=iterations,
        init=_GridInit(rng.normal(size=(n, n))),
        bc=DirichletBC(_bc),
        weights=StencilWeights.damped_jacobi(0.9),
    )


def _request(problem, **overrides) -> SolveRequest:
    knobs = dict(
        impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="threads", jobs=2,
    )
    knobs.update(overrides)
    return SolveRequest(problem=problem, **knobs)


# -- warm reuse ----------------------------------------------------------


def test_warm_reuse_bit_identical_to_cold_runs():
    """Two sequential jobs on one warm slot == two cold runs, bit for
    bit (the satellite regression test for the reset() contract)."""
    problems = [random_problem(24, 6, seed=1), random_problem(24, 6, seed=2)]
    cold_grids = [
        run(p, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
            mode="execute", backend="threads", jobs=2).grid
        for p in problems
    ]
    slot = WarmSlot("t")
    warm = [execute_request(_request(p), slot=slot) for p in problems]
    assert not warm[0].warm and warm[1].warm  # first cold, second reused
    assert slot.cold_starts == 1 and slot.warm_starts == 1
    for outcome, grid in zip(warm, cold_grids):
        assert np.array_equal(outcome.grid, grid)


def test_warm_slot_drops_unhealthy_executor():
    class DeadExecutor:
        def is_healthy(self):
            return False

        def _run_in_flight(self):
            return False

    slot = WarmSlot("t")
    slot._executor = DeadExecutor()
    outcome = execute_request(_request(random_problem(24, 2)), slot=slot)
    assert not outcome.warm  # unhealthy survivor replaced, not reused
    assert slot.cold_starts == 1
    assert not isinstance(slot._executor, DeadExecutor)


def test_processes_backend_always_cold():
    if not fork_available():
        pytest.skip("processes backend needs POSIX fork")
    slot = WarmSlot("t")
    request = _request(random_problem(24, 2), backend="processes", jobs=2)
    for _ in range(2):
        outcome = execute_request(request, slot=slot)
        assert not outcome.warm
    assert slot.cold_starts == 2 and slot.warm_starts == 0


# -- workers -------------------------------------------------------------


def test_inprocess_worker_batch_with_pre_expired_item():
    worker = InProcessWorker("w")
    fresh = _request(random_problem(24, 2, seed=3))
    items = [
        (0, fresh, None),
        (1, _request(random_problem(24, 2, seed=4)), time.monotonic() - 1.0),
    ]
    results, snapshot, spans = worker.run_batch(items)
    (status_a, outcome), (status_b, error) = results
    assert spans == []  # untraced items produce no lifecycle spans
    assert status_a == "ok" and outcome.grid is not None
    assert status_b == "expired" and isinstance(error, DeadlineExpired)
    assert snapshot.counter("tasks_executed_total") > 0
    assert snapshot.counter("serve_pool_cold_starts_total") == 1


@pytest.mark.skipif(not fork_available(), reason="needs POSIX fork")
def test_process_worker_solves_and_dies_on_cancel():
    worker = ProcessWorker("w")
    try:
        problem = random_problem(24, 2, seed=5)
        results, snapshot, _spans = worker.run_batch(
            [(0, _request(problem), None)]
        )
        status, outcome = results[0]
        assert status == "ok"
        direct = run(problem, impl="ca-parsec", machine=nacl(4), tile=6,
                     steps=3, mode="execute", backend="threads", jobs=2)
        assert np.array_equal(outcome.grid, direct.grid)
        assert snapshot.counter("tasks_executed_total") > 0  # merged home
        assert worker.alive()
        assert worker.cancel(0)  # the blunt instrument: kill the child
        worker._proc.join(timeout=5.0)
        assert not worker.alive()
        with pytest.raises(WorkerDied):
            worker.run_batch([(1, _request(problem), None)])
    finally:
        worker.close()


# -- the pool ------------------------------------------------------------


def test_pool_replaces_dead_idle_worker():
    from repro.obs import MetricRegistry

    reg = MetricRegistry()
    pool = WorkerPool(kind="threads", max_workers=1, metrics=reg)
    try:
        first = pool.acquire(timeout=1.0)
        pool.release(first)
        first.alive = lambda: False  # simulate death while idle
        second = pool.acquire(timeout=1.0)
        assert second is not first  # health check swapped it out
        pool.release(second)
        assert reg.snapshot().counter("serve_pool_replaced_total") == 1
    finally:
        pool.shutdown()


def test_pool_counts_dead_worker_on_release():
    from repro.obs import MetricRegistry

    reg = MetricRegistry()
    pool = WorkerPool(kind="threads", max_workers=1, metrics=reg)
    try:
        worker = pool.acquire(timeout=1.0)
        worker.alive = lambda: False
        pool.release(worker)
        assert pool.size() == 0  # dropped, successor spawns on demand
        assert reg.snapshot().counter("serve_pool_replaced_total") == 1
        assert pool.acquire(timeout=1.0) is not worker
    finally:
        pool.shutdown()


def test_pool_reap_idle_down_to_min_workers():
    from repro.obs import MetricRegistry

    reg = MetricRegistry()
    pool = WorkerPool(kind="threads", max_workers=2, min_workers=1,
                      idle_timeout_s=0.01, metrics=reg)
    try:
        a, b = pool.acquire(timeout=1.0), pool.acquire(timeout=1.0)
        pool.release(a), pool.release(b)
        assert pool.size() == 2
        assert pool.reap_idle(now=time.monotonic() + 1.0) == 1
        assert pool.size() == 1  # the floor holds
        assert reg.snapshot().counter("serve_pool_retired_total") == 1
    finally:
        pool.shutdown()


def test_pool_acquire_blocks_at_capacity_then_frees():
    pool = WorkerPool(kind="threads", max_workers=1)
    try:
        worker = pool.acquire(timeout=1.0)
        assert pool.acquire(timeout=0.05) is None  # capacity exhausted
        pool.release(worker)
        assert pool.acquire(timeout=1.0) is worker  # warm body reused
    finally:
        pool.shutdown()


def test_pool_shutdown_rejects_acquire():
    pool = WorkerPool(kind="threads", max_workers=1)
    pool.shutdown()
    with pytest.raises(WorkerDied):
        pool.acquire(timeout=0.1)
