"""Property tests of the threaded backend's central invariant: real
parallel execution is bit-identical to the single-array reference
solver for every implementation, any worker count, and any legal
(grid, tile, pgrid, steps) configuration -- including step sizes that
do not divide the iteration count."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runner import run
from repro.distgrid.partition import GridPartition, ProcessGrid
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem
from tests.conftest import random_problem

JOBS = (1, 2, 4)


@st.composite
def threads_configs(draw):
    """Random, always-valid (problem geometry, pgrid, tile, steps)."""
    prows = draw(st.integers(1, 2))
    pcols = draw(st.integers(1, 2))
    tile = draw(st.integers(2, 6))
    nrows = draw(st.integers(prows * tile, 24))
    ncols = draw(st.integers(pcols * tile, 24))
    pgrid = ProcessGrid(prows, pcols)
    partition = GridPartition(nrows, ncols, pgrid, tile)
    steps = draw(st.integers(1, min(4, partition.min_tile_dim())))
    # Deliberately allow iterations not divisible by steps (the final
    # CA superstep is then partial -- the paper's s | T restriction is
    # lifted by the spec's phase algebra and must stay correct here).
    iterations = draw(st.integers(1, 9))
    seed = draw(st.integers(0, 2**16))
    jobs = draw(st.sampled_from(JOBS))
    return nrows, ncols, pgrid, tile, steps, iterations, seed, jobs


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(threads_configs())
def test_threads_backend_bit_identical_to_reference(config):
    nrows, ncols, pgrid, tile, steps, iterations, seed, jobs = config
    problem = random_problem(n=nrows, ncols=ncols, iterations=iterations, seed=seed)
    machine = nacl(pgrid.size)
    ref = problem.reference_solution()
    for impl, kwargs in (
        ("base-parsec", {"tile": tile, "pgrid": pgrid}),
        ("ca-parsec", {"tile": tile, "steps": steps, "pgrid": pgrid}),
    ):
        result = run(problem, impl=impl, machine=machine, backend="threads",
                     jobs=jobs, **kwargs)
        assert np.array_equal(result.grid, ref), (
            f"{impl} mismatch: grid {nrows}x{ncols}, pgrid {pgrid}, "
            f"tile {tile}, steps {steps}, T {iterations}, jobs {jobs}: "
            f"max err {np.max(np.abs(result.grid - ref)):.3e}"
        )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(6, 20), st.integers(1, 6), st.integers(0, 2**16),
       st.sampled_from(JOBS))
def test_threads_backend_petsc_matches_reference(n, iterations, seed, jobs):
    """PETSc agrees to FP association (CSR accumulation order), same
    tolerance contract as the simulated backend."""
    problem = random_problem(n=n, iterations=iterations, seed=seed)
    result = run(problem, impl="petsc", machine=nacl(2), backend="threads",
                 jobs=jobs)
    ref = problem.reference_solution()
    scale = max(1.0, float(np.max(np.abs(ref))))
    assert np.max(np.abs(result.grid - ref)) <= 1e-12 * scale


@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("impl,kwargs", [
    ("petsc", {}),
    ("base-parsec", {"tile": 8}),
    ("ca-parsec", {"tile": 8, "steps": 3}),
])
def test_all_implementations_all_job_counts(impl, kwargs, jobs):
    """The acceptance matrix, deterministically: every implementation
    at jobs in {1, 2, 4}, steps=3 not dividing T=8."""
    problem = random_problem(n=24, iterations=8, seed=7)
    result = run(problem, impl=impl, machine=nacl(4), backend="threads",
                 jobs=jobs, **kwargs)
    ref = problem.reference_solution()
    if impl == "petsc":
        scale = max(1.0, float(np.max(np.abs(ref))))
        assert np.max(np.abs(result.grid - ref)) <= 1e-12 * scale
    else:
        assert np.array_equal(result.grid, ref)
    assert result.params["backend"] == "threads"
    assert result.params["jobs"] == jobs


@pytest.mark.parametrize("policy", ["fifo", "lifo", "priority"])
def test_threads_result_independent_of_policy(policy):
    """Any legal schedule produces the same bits (dataflow semantics
    survive real concurrency)."""
    problem = random_problem(n=20, iterations=6, seed=3)
    result = run(problem, impl="ca-parsec", machine=nacl(4), tile=5, steps=2,
                 backend="threads", jobs=4, policy=policy)
    assert np.array_equal(result.grid, problem.reference_solution())


def test_determinism_across_runs():
    """Two identical threads-backend runs: identical grids (bitwise)
    and identical task-completion *sets* -- schedules may differ, the
    set of executed tasks may not.  Guards against data races in the
    tile ghost exchange."""
    problem = random_problem(n=24, iterations=7, seed=11)
    results = []
    for _ in range(2):
        res = run(problem, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
                  backend="threads", jobs=4)
        results.append(res)
    a, b = results
    assert np.array_equal(a.grid, b.grid)
    assert a.grid.tobytes() == b.grid.tobytes()  # bitwise, not just value
    assert a.engine.completed == b.engine.completed
    assert len(a.engine.completed) == a.engine.tasks_run


def test_determinism_base_vs_jobs():
    """Worker count never changes the numerics, only the wall clock."""
    problem = random_problem(n=20, iterations=5, seed=13)
    grids = [
        run(problem, impl="base-parsec", machine=nacl(1), tile=5,
            backend="threads", jobs=jobs).grid.tobytes()
        for jobs in JOBS
    ]
    assert len(set(grids)) == 1


def test_threads_run_result_plumbs_through():
    """RunResult wall-clock accessors behave on a threads run."""
    problem = JacobiProblem(n=24, iterations=4)
    result = run(problem, impl="base-parsec", machine=nacl(1), tile=6,
                 backend="threads", jobs=2, trace=True)
    assert result.backend == "threads"
    assert result.elapsed > 0
    assert result.gflops > 0
    assert 0 < result.occupancy() <= 1
    assert result.messages == 0  # shared memory: nothing crossed a wire
    assert result.trace is not None and len(result.trace) == len(
        result.engine.completed
    )
    assert "threads" in result.summary() or "worker threads" in result.summary()
    d = result.to_dict()
    assert d["backend"] == "threads" and d["jobs"] == 2
