"""Every example script must run clean (they contain their own
assertions about physics and agreement with the reference)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable: quickstart + >= 2 scenarios


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
