"""Engine core semantics: scheduling, timing, kernel execution."""

import numpy as np
import pytest

from repro.machine import units
from repro.machine.machine import MachineSpec
from repro.machine.network import NetworkSpec
from repro.machine.node import NodeSpec
from repro.runtime.engine import Engine
from repro.runtime.graph import GraphError, TaskGraph
from repro.runtime.task import Flow


def simple_machine(nodes=2, cores=3, task_overhead=0.0, so=10e-6, latency=1e-6):
    node = NodeSpec(
        name="t", cores=cores, core_stream_bw=10e9, node_stream_bw=10e9 * cores,
        core_peak_flops=1e9, task_overhead=task_overhead,
    )
    net = NetworkSpec(
        name="t", peak_bw=units.gbit_s(10), effective_bw=units.gbit_s(8),
        latency=latency, software_overhead=so,
    )
    return MachineSpec(name="test", nodes=nodes, node=node, network=net)


def test_single_task():
    g = TaskGraph()
    g.add_task("a", node=0, cost=2.0)
    rep = Engine(g, simple_machine(), charge_task_overhead=False).run()
    assert rep.elapsed == pytest.approx(2.0)
    assert rep.tasks_run == 1 and rep.messages == 0


def test_independent_tasks_fill_workers():
    """4 independent unit tasks on 2 compute workers -> 2 waves."""
    g = TaskGraph()
    for i in range(4):
        g.add_task(i, node=0, cost=1.0)
    rep = Engine(g, simple_machine(cores=3), charge_task_overhead=False).run()
    assert rep.elapsed == pytest.approx(2.0)


def test_chain_serializes():
    g = TaskGraph()
    for i in range(5):
        inputs = (Flow(i - 1, "o", 8),) if i > 0 else ()
        g.add_task(i, node=0, cost=1.0, inputs=inputs, out_nbytes={"o": 8})
    rep = Engine(g, simple_machine(), charge_task_overhead=False).run()
    assert rep.elapsed == pytest.approx(5.0)


def test_task_overhead_charged():
    g = TaskGraph()
    g.add_task("a", node=0, cost=1.0)
    m = simple_machine(task_overhead=0.5)
    rep = Engine(g, m).run()
    assert rep.elapsed == pytest.approx(1.5)


def test_remote_edge_costs_message_time():
    g = TaskGraph()
    g.add_task("p", node=0, cost=1.0, out_nbytes={"o": 8000})
    g.add_task("c", node=1, cost=1.0, inputs=(Flow("p", "o", 8000),))
    m = simple_machine(so=10e-6, latency=1e-6)
    rep = Engine(g, m, charge_task_overhead=False).run()
    wire = 8000 / m.network.effective_bw
    # send overhead + NIC serialization + latency + recv overhead.
    expected = 1.0 + 10e-6 + wire + 1e-6 + 10e-6 + 1.0
    assert rep.elapsed == pytest.approx(expected)
    assert rep.messages == 1 and rep.message_bytes == 8000


def test_local_edge_costs_nothing():
    g = TaskGraph()
    g.add_task("p", node=0, cost=1.0, out_nbytes={"o": 8000})
    g.add_task("c", node=0, cost=1.0, inputs=(Flow("p", "o", 8000),))
    rep = Engine(g, simple_machine(), charge_task_overhead=False).run()
    assert rep.elapsed == pytest.approx(2.0)
    assert rep.messages == 0
    assert rep.local_edges == 1 and rep.local_bytes == 8000


def test_message_coalescing_one_send_for_two_consumers():
    g = TaskGraph()
    g.add_task("p", node=0, cost=0.0, out_nbytes={"o": 100})
    g.add_task("c1", node=1, cost=0.0, inputs=(Flow("p", "o", 100),))
    g.add_task("c2", node=1, cost=0.0, inputs=(Flow("p", "o", 100),))
    rep = Engine(g, simple_machine(), charge_task_overhead=False).run()
    assert rep.messages == 1


def test_comm_thread_serializes_sends():
    """Two messages from one node: the comm thread handles them one
    after the other."""
    so = 100e-6
    g = TaskGraph()
    g.add_task("p1", node=0, cost=0.0, out_nbytes={"o": 8})
    g.add_task("p2", node=0, cost=0.0, out_nbytes={"o": 8})
    g.add_task("c1", node=1, cost=0.0, inputs=(Flow("p1", "o", 8),))
    g.add_task("c2", node=1, cost=0.0, inputs=(Flow("p2", "o", 8),))
    m = simple_machine(so=so, latency=0.0)
    rep = Engine(g, m, charge_task_overhead=False).run()
    wire = 8 / m.network.effective_bw
    # Sender thread serializes the two sends; the receiver thread
    # pipelines behind them: send1 [0,so], send2 [so,2so], recv1
    # [so+wire, 2so+wire], recv2 [2so+wire, 3so+wire].
    assert rep.elapsed == pytest.approx(3 * so + wire, rel=1e-3)


def test_engine_rejects_undersized_machine():
    g = TaskGraph()
    g.add_task("a", node=5, cost=1.0)
    with pytest.raises(GraphError):
        Engine(g, simple_machine(nodes=2))


def test_deterministic_elapsed():
    rng_graph = TaskGraph()
    for i in range(50):
        inputs = (Flow(i - 10, "o", 64),) if i >= 10 else ()
        rng_graph.add_task(i, node=i % 2, cost=0.001 * (i % 7 + 1),
                           inputs=inputs, out_nbytes={"o": 64})
    m = simple_machine()
    e1 = Engine(rng_graph, m).run().elapsed
    # Rebuild an identical graph (Engine mutates bookkeeping only).
    g2 = TaskGraph()
    for i in range(50):
        inputs = (Flow(i - 10, "o", 64),) if i >= 10 else ()
        g2.add_task(i, node=i % 2, cost=0.001 * (i % 7 + 1),
                    inputs=inputs, out_nbytes={"o": 64})
    e2 = Engine(g2, m).run().elapsed
    assert e1 == e2


def test_execute_routes_payloads():
    g = TaskGraph()
    g.add_task("p", node=0, kernel=lambda ins, t: {"o": np.arange(4.0)},
               out_nbytes={"o": 32})
    g.add_task(
        "c", node=1, inputs=(Flow("p", "o", 32),),
        kernel=lambda ins, t: {"r": float(ins[("p", "o")].sum())},
        out_nbytes={"r": 8},
    )
    rep = Engine(g, simple_machine(), execute=True).run()
    assert rep.results[("c", "r")] == 6.0


def test_execute_payloads_read_only():
    """Producer arrays are frozen; consumer mutation raises."""
    def bad_consumer(ins, t):
        arr = ins[("p", "o")]
        arr[0] = 99.0  # must fail
        return {}

    g = TaskGraph()
    g.add_task("p", node=0, kernel=lambda ins, t: {"o": np.zeros(3)},
               out_nbytes={"o": 24})
    g.add_task("c", node=0, inputs=(Flow("p", "o", 24),), kernel=bad_consumer)
    from repro.runtime.engine import KernelError

    with pytest.raises(KernelError, match="read-only"):
        Engine(g, simple_machine(), execute=True).run()


def test_kernel_errors_carry_task_identity():
    from repro.runtime.engine import KernelError

    def boom(ins, t):
        raise ZeroDivisionError("boom")

    g = TaskGraph()
    g.add_task(("st", 3, 4, 5), node=0, kernel=boom, kind="boundary")
    with pytest.raises(KernelError, match=r"\('st', 3, 4, 5\).*boundary"):
        Engine(g, simple_machine(), execute=True).run()


def test_execute_missing_output_detected():
    g = TaskGraph()
    g.add_task("p", node=0, kernel=lambda ins, t: {}, out_nbytes={"o": 8})
    g.add_task("c", node=0, inputs=(Flow("p", "o", 8),), kernel=lambda ins, t: {})
    with pytest.raises(RuntimeError, match="consumers expect"):
        Engine(g, simple_machine(), execute=True).run()


def test_execute_mailbox_freed_after_consumption():
    g = TaskGraph()
    g.add_task("p", node=0, kernel=lambda ins, t: {"o": np.zeros(8)},
               out_nbytes={"o": 64})
    g.add_task("c", node=0, inputs=(Flow("p", "o", 64),),
               kernel=lambda ins, t: {})
    engine = Engine(g, simple_machine(), execute=True)
    engine.run()
    assert engine._store == {}


def test_occupancy_metric():
    g = TaskGraph()
    for i in range(4):
        g.add_task(i, node=0, cost=1.0)
    m = simple_machine(nodes=1, cores=3)  # 2 compute workers, 1 node
    eng = Engine(g, m, charge_task_overhead=False)
    rep = eng.run()
    assert rep.occupancy(eng.workers_per_node) == pytest.approx(1.0)
