"""Stencil kernels: weights, vectorised updates, FLOP accounting."""

import numpy as np
import pytest

from repro.stencil.kernels import (
    FLOP_PER_POINT,
    StencilWeights,
    jacobi_sweep_framed,
    jacobi_update_region,
    region_flops,
)


def test_default_weights_are_laplace_jacobi():
    w = StencilWeights()
    assert w.center == 0.0
    assert w.north == w.south == w.west == w.east == 0.25


def test_damped_jacobi_weights():
    w = StencilWeights.damped_jacobi(0.8)
    assert w.center == pytest.approx(0.2)
    assert w.north == pytest.approx(0.2)
    with pytest.raises(ValueError):
        StencilWeights.damped_jacobi(0.0)


def test_heat_weights_stability_guard():
    w = StencilWeights.heat_explicit(0.25)
    assert w.center == pytest.approx(0.0)
    with pytest.raises(ValueError):
        StencilWeights.heat_explicit(0.3)


def test_update_region_matches_naive_loop():
    rng = np.random.default_rng(3)
    ext = rng.normal(size=(7, 9))
    w = StencilWeights.damped_jacobi(0.7)
    got = jacobi_update_region(ext, w, slice(2, 5), slice(1, 8))
    wc, wn, ws, ww, we = w.as_tuple()
    for r in range(2, 5):
        for c in range(1, 8):
            want = (wc * ext[r, c] + wn * ext[r - 1, c] + ws * ext[r + 1, c]
                    + ww * ext[r, c - 1] + we * ext[r, c + 1])
            assert got[r - 2, c - 1] == pytest.approx(want, rel=1e-15)


def test_update_region_does_not_modify_input():
    ext = np.ones((5, 5))
    before = ext.copy()
    jacobi_update_region(ext, StencilWeights(), slice(1, 4), slice(1, 4))
    assert np.array_equal(ext, before)


def test_update_region_needs_neighbour_ring():
    ext = np.ones((5, 5))
    with pytest.raises(IndexError):
        jacobi_update_region(ext, StencilWeights(), slice(0, 4), slice(1, 4))
    with pytest.raises(IndexError):
        jacobi_update_region(ext, StencilWeights(), slice(1, 5), slice(1, 4))


def test_update_region_out_parameter():
    ext = np.random.default_rng(0).normal(size=(6, 6))
    out = np.empty((4, 4))
    got = jacobi_update_region(ext, StencilWeights(), slice(1, 5), slice(1, 5), out=out)
    assert got is out


def test_empty_region():
    ext = np.ones((5, 5))
    got = jacobi_update_region(ext, StencilWeights(), slice(2, 2), slice(1, 4))
    assert got.shape == (0, 3)


def test_framed_sweep_preserves_frame():
    framed = np.zeros((6, 6))
    framed[0, :] = framed[-1, :] = framed[:, 0] = framed[:, -1] = 1.0
    swept = jacobi_sweep_framed(framed, StencilWeights())
    assert np.all(swept[0, :] == 1.0) and np.all(swept[:, -1] == 1.0)
    # Interior cells adjacent to two frame edges get 0.5.
    assert swept[1, 1] == pytest.approx(0.5)
    with pytest.raises(ValueError):
        jacobi_sweep_framed(np.zeros((2, 2)), StencilWeights())


def test_region_flops():
    assert region_flops(slice(0, 4), slice(0, 5)) == FLOP_PER_POINT * 20
    assert region_flops((0, 4), (0, 5)) == FLOP_PER_POINT * 20
    assert region_flops((3, 3), (0, 5)) == 0
    assert FLOP_PER_POINT == 9  # paper's 5 multiplies + 4 adds
