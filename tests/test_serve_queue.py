"""Admission control and multi-tenant fair share (``repro.serve.queue``).

The three serving-policy properties the ISSUE gates on live here:
over-limit tenants never exceed their concurrency cap, queue-full
submissions reject fast with a typed error, and deadline-expired jobs
are failed without ever dispatching.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import Future

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricRegistry
from repro.serve import (
    DeadlineExpired,
    Job,
    JobQueue,
    QueueFullError,
    ServiceClosed,
    SolveRequest,
)
from repro.stencil.problem import JacobiProblem

PROBLEM = JacobiProblem(n=8, iterations=2)


def make_job(
    queue: JobQueue,
    tenant: str = "t",
    priority: int = 0,
    deadline: float | None = None,
) -> Job:
    request = SolveRequest(problem=PROBLEM, tenant=tenant, priority=priority)
    seq = queue.next_seq()
    return Job(
        request=request,
        future=Future(),
        signature=f"sig-{seq}",
        seq=seq,
        enqueued=time.monotonic(),
        deadline=deadline,
    )


# -- ordering ------------------------------------------------------------


def test_priority_order_fifo_among_equals():
    q = JobQueue(max_depth=16, tenant_limit=None)
    low = make_job(q, priority=0)
    high = make_job(q, priority=5)
    mid_a = make_job(q, priority=1)
    mid_b = make_job(q, priority=1)
    for job in (low, high, mid_a, mid_b):
        q.submit(job)
    order = [q.take(timeout=0) for _ in range(4)]
    assert order == [high, mid_a, mid_b, low]


def test_fair_share_interleaves_tenants():
    q = JobQueue(max_depth=16, tenant_limit=None)
    a1, a2 = make_job(q, "a"), make_job(q, "a")
    b1, b2 = make_job(q, "b"), make_job(q, "b")
    for job in (a1, a2, b1, b2):
        q.submit(job)
    order = [q.take(timeout=0) for _ in range(4)]
    # a flooded first, but b is served every other slot
    assert order == [a1, b1, a2, b2]


# -- admission control ---------------------------------------------------


def test_queue_full_rejects_fast_with_typed_error():
    reg = MetricRegistry()
    q = JobQueue(max_depth=4, tenant_limit=None, metrics=reg)
    for _ in range(4):
        q.submit(make_job(q))
    t0 = time.monotonic()
    with pytest.raises(QueueFullError, match="queue full"):
        q.submit(make_job(q))
    assert time.monotonic() - t0 < 0.1  # fast-reject, no blocking
    snap = reg.snapshot()
    assert snap.counter("serve_admission_rejects_total") == 1
    labelled = snap.labelled("serve_admission_rejects_total")
    assert {dict(ls)["reason"] for ls in labelled} == {"queue-full"}
    # the queue itself is intact: admitted jobs still dispatch
    assert q.take(timeout=0) is not None


@given(
    tenants=st.lists(st.sampled_from("abc"), min_size=1, max_size=32),
    cap=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_inflight_never_exceeds_cap(tenants, cap):
    """Property (i): whatever the submission mix and drain schedule,
    no tenant ever has more than ``cap`` jobs in flight."""
    q = JobQueue(max_depth=1024, tenant_limit=cap)
    for tenant in tenants:
        q.submit(make_job(q, tenant))
    inflight: list[Job] = []
    dispatched = 0
    while True:
        job = q.take(timeout=0)
        if job is not None:
            inflight.append(job)
            dispatched += 1
            counts = Counter(j.tenant for j in inflight)
            assert all(n <= cap for n in counts.values()), counts
            continue
        if not inflight:
            break
        done = inflight.pop(0)  # complete the oldest, freeing a slot
        q.task_done(done.tenant)
    assert dispatched == len(tenants)  # caps delay, they never drop


def test_tenant_at_cap_queues_rather_than_rejects():
    q = JobQueue(max_depth=16, tenant_limit=1)
    first, second = make_job(q, "a"), make_job(q, "a")
    q.submit(first)
    q.submit(second)  # admitted, not rejected
    assert q.take(timeout=0) is first
    assert q.take(timeout=0.02) is None  # "a" is at its cap
    q.task_done("a")
    assert q.take(timeout=0) is second


def test_per_tenant_cap_override():
    q = JobQueue(max_depth=16, tenant_limit=1, tenant_limits={"vip": 2})
    assert q.cap("anyone") == 1
    assert q.cap("vip") == 2
    v1, v2 = make_job(q, "vip"), make_job(q, "vip")
    q.submit(v1), q.submit(v2)
    assert q.take(timeout=0) is v1
    assert q.take(timeout=0) is v2  # cap 2 lets both fly


# -- deadlines -----------------------------------------------------------


def test_purge_expired_fails_queued_jobs():
    reg = MetricRegistry()
    q = JobQueue(max_depth=16, metrics=reg)
    dead = make_job(q, deadline=time.monotonic() - 0.01)
    live = make_job(q)
    q.submit(dead), q.submit(live)
    assert q.purge_expired() == 1
    with pytest.raises(DeadlineExpired):
        dead.future.result(timeout=0)
    assert q.take(timeout=0) is live
    labelled = reg.snapshot().labelled("serve_deadline_expired_total")
    assert {dict(ls)["where"] for ls in labelled} == {"queued"}


def test_take_purges_opportunistically():
    q = JobQueue(max_depth=16)
    dead = make_job(q, deadline=time.monotonic() - 0.01)
    live = make_job(q)
    q.submit(dead), q.submit(live)
    assert q.take(timeout=0) is live  # never dispatches the corpse
    assert dead.future.done()


# -- batching companion --------------------------------------------------


def test_take_more_stays_within_tenant_and_cap():
    q = JobQueue(max_depth=16, tenant_limit=3)
    a = [make_job(q, "a") for _ in range(3)]
    b = make_job(q, "b")
    for job in (*a, b):
        q.submit(job)
    leader = q.take(timeout=0)
    assert leader is a[0]
    more = q.take_more("a", match=lambda j: True, limit=8)
    assert more == [a[1], a[2]]  # never crosses into tenant b
    assert q.take(timeout=0) is b
    # cap accounting covered the whole batch
    assert q.inflight("a") == 3


def test_take_more_respects_match_predicate():
    q = JobQueue(max_depth=16, tenant_limit=None)
    lo, hi = make_job(q, "a", priority=0), make_job(q, "a", priority=2)
    q.submit(lo), q.submit(hi)
    leader = q.take(timeout=0)
    assert leader is hi
    assert q.take_more("a", match=lambda j: j.priority > 1, limit=8) == []
    assert q.take(timeout=0) is lo


# -- lifecycle -----------------------------------------------------------


def test_close_fails_queued_and_rejects_later_submits():
    q = JobQueue(max_depth=16)
    jobs = [make_job(q) for _ in range(2)]
    for job in jobs:
        q.submit(job)
    assert q.close() == 2
    for job in jobs:
        with pytest.raises(ServiceClosed):
            job.future.result(timeout=0)
    with pytest.raises(ServiceClosed):
        q.submit(make_job(q))
    assert q.take(timeout=0) is None
    assert q.depth == 0


def test_job_completion_is_idempotent():
    q = JobQueue(max_depth=4)
    job = make_job(q)
    job.fail(DeadlineExpired("first"))
    job.complete(object())  # late result after a failure: swallowed
    job.fail(DeadlineExpired("second"))
    with pytest.raises(DeadlineExpired, match="first"):
        job.future.result(timeout=0)
