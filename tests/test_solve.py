"""Convergence-driven solves."""

import numpy as np
import pytest

from repro.core.solve import solve_to_tolerance
from repro.distgrid.boundary import DirichletBC
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem
from repro.stencil.reference import jacobi_reference

from .test_source_term import poisson_problem


def laplace_problem(n=24):
    return JacobiProblem(n=n, iterations=0, init=0.0, bc=DirichletBC(1.0))


def test_converges_to_constant_boundary():
    res = solve_to_tolerance(
        laplace_problem(), nacl(4), impl="base-parsec", tol=1e-6,
        check_every=100, max_iterations=5000, tile=6,
    )
    assert res.converged
    # residual 1e-6 => error ~1e-6/(1-rho) ~ 1e-4 on this grid
    assert np.allclose(res.grid, 1.0, atol=1e-3)
    assert res.residual_norms[-1] <= 1e-6
    assert res.model_elapsed > 0 and res.messages > 0


def test_chunked_equals_unchunked():
    """Restarting the task graph every chunk must not change the bits
    (Jacobi is memoryless)."""
    prob, _ = poisson_problem(n=20, iterations=0)
    res = solve_to_tolerance(
        prob, nacl(4), impl="ca-parsec", tol=0.0 + 1e-300,
        check_every=7, max_iterations=21, tile=5, steps=3,
    )
    direct = jacobi_reference(
        prob.initial_grid(), prob.weights, 21, prob.bc, source=prob.source_grid()
    )
    assert res.iterations == 21
    assert np.array_equal(res.grid, direct)


def test_poisson_time_to_solution():
    prob, u_exact = poisson_problem(n=31, iterations=0)
    res = solve_to_tolerance(
        prob, nacl(4), impl="ca-parsec", tol=1e-7,
        check_every=200, max_iterations=8000, tile=8, steps=7,
    )
    assert res.converged
    assert np.max(np.abs(res.grid - u_exact)) < 5e-3
    # Residuals decrease monotonically for this contraction.
    assert all(b < a for a, b in zip(res.residual_norms, res.residual_norms[1:]))


def test_max_iterations_cap():
    res = solve_to_tolerance(
        laplace_problem(), nacl(4), impl="base-parsec", tol=1e-300,
        check_every=10, max_iterations=25, tile=6,
    )
    assert not res.converged
    assert res.iterations == 25  # 10 + 10 + 5 (final partial chunk)


def test_already_converged_initial_guess():
    prob = JacobiProblem(n=8, iterations=0, init=2.0, bc=DirichletBC(2.0))
    res = solve_to_tolerance(prob, nacl(1), tol=1e-12, tile=4)
    assert res.converged and res.iterations == 0 and res.messages == 0


def test_ca_steps_capped_to_chunk():
    res = solve_to_tolerance(
        laplace_problem(), nacl(4), impl="ca-parsec", tol=1e-4,
        check_every=4, max_iterations=2000, tile=6, steps=50,
    )
    assert res.converged  # would raise inside the builder if not capped


def test_validation():
    with pytest.raises(ValueError):
        solve_to_tolerance(laplace_problem(), nacl(1), tol=0.0)
    with pytest.raises(ValueError):
        solve_to_tolerance(laplace_problem(), nacl(1), tol=1e-3, check_every=0)
