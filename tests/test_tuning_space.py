"""Search-space construction and constraint pruning.

The tuner's contract is that configurations the decomposition forbids
are rejected *before* any run -- these tests pin both the individual
constraints and the end-to-end guarantee that :func:`repro.tuning.tune`
never hands an invalid candidate to the evaluator.
"""

import pytest

from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem
from repro.tuning import SearchSpace, invalid_reason, tune
from repro.tuning.space import Candidate, block_extents
from repro.tuning import model
from repro.tuning import search as search_mod


PROBLEM = JacobiProblem(n=96, iterations=4)
MACHINE = nacl(4)


def test_block_extents():
    # 96x96 over a 2x2 process grid -> every node block is 48x48.
    assert block_extents(PROBLEM, MACHINE) == [48]


@pytest.mark.parametrize("candidate,fragment", [
    (Candidate(tile=0), "tile size must be >= 1"),
    (Candidate(tile=96), "exceeds the smallest node block"),
    (Candidate(tile=5), "does not divide the node blocks"),
    (Candidate(tile=8, steps=0), "step size must be >= 1"),
    (Candidate(tile=8, steps=12), "exceeds tile"),
    (Candidate(tile=8, policy="psychic"), "unknown policy"),
])
def test_invalid_reason_ca(candidate, fragment):
    reason = invalid_reason(candidate, PROBLEM, MACHINE, "ca-parsec")
    assert reason is not None and fragment in reason


def test_invalid_reason_steps_are_ca_only():
    reason = invalid_reason(Candidate(tile=8, steps=4), PROBLEM, MACHINE,
                            "base-parsec")
    assert reason is not None and "ca-parsec only" in reason
    assert invalid_reason(Candidate(tile=8, steps=4), PROBLEM, MACHINE,
                          "ca-parsec") is None


def test_non_divisible_allowed_when_relaxed():
    cand = Candidate(tile=5)
    assert invalid_reason(cand, PROBLEM, MACHINE, "ca-parsec",
                          require_divisible=False) is None


def test_for_problem_tiles_divide_blocks():
    space = SearchSpace.for_problem(PROBLEM, MACHINE, impl="ca-parsec")
    assert space.require_divisible
    assert all(48 % t == 0 for t in space.tiles)
    # Every generated candidate passes its own validity check.
    cands = space.candidates(PROBLEM, MACHINE, "ca-parsec")
    assert cands
    assert all(invalid_reason(c, PROBLEM, MACHINE, "ca-parsec") is None
               for c in cands)


def test_for_problem_caps_steps_at_iterations():
    space = SearchSpace.for_problem(PROBLEM, MACHINE, impl="ca-parsec")
    assert max(space.steps) <= PROBLEM.iterations
    deep = SearchSpace.for_problem(
        JacobiProblem(n=96, iterations=100), MACHINE, impl="ca-parsec"
    )
    assert max(deep.steps) > PROBLEM.iterations


def test_for_problem_base_has_single_step():
    space = SearchSpace.for_problem(PROBLEM, MACHINE, impl="base-parsec")
    assert space.steps == (1,)


def test_for_problem_ragged_grid_falls_back():
    # 101 is prime: the node blocks (51, 50) share no divisor >= 2, so
    # the space relaxes divisibility and still produces fitting tiles.
    ragged = JacobiProblem(n=101, iterations=3)
    space = SearchSpace.for_problem(ragged, MACHINE, impl="ca-parsec")
    assert not space.require_divisible
    extents = block_extents(ragged, MACHINE)
    assert space.tiles and all(t <= extents[0] for t in space.tiles)
    assert space.candidates(ragged, MACHINE, "ca-parsec")


def test_for_problem_wide_adds_scheduling_axes():
    narrow = SearchSpace.for_problem(PROBLEM, MACHINE)
    wide = SearchSpace.for_problem(PROBLEM, MACHINE, wide=True)
    assert narrow.policies == ("priority",)
    assert len(wide.policies) > 1
    assert set(wide.overlaps) == {False, True}


def test_narrowed_pins_axes():
    space = SearchSpace.for_problem(PROBLEM, MACHINE)
    pinned = space.narrowed(tile=7, steps=2)
    assert pinned.tiles == (7,) and pinned.steps == (2,)
    # A hand-picked tile stands even when it does not divide the block.
    assert not pinned.require_divisible


def test_pruned_reports_reasons():
    space = SearchSpace(tiles=(8, 96), steps=(1, 12))
    rejected = dict(space.pruned(PROBLEM, MACHINE, "ca-parsec"))
    assert Candidate(tile=96, steps=1) in rejected
    assert Candidate(tile=8, steps=12) in rejected


def test_empty_tiles_rejected():
    with pytest.raises(ValueError, match="at least one tile"):
        SearchSpace(tiles=())


def test_tune_never_evaluates_invalid_candidates(monkeypatch):
    """End-to-end pruning guarantee: hand tune() a space full of junk
    and record every candidate that reaches the evaluator."""
    evaluated = []
    real_evaluate = search_mod._evaluate

    def spy(problem, impl, machine, candidate, *args, **kwargs):
        evaluated.append(candidate)
        return real_evaluate(problem, impl, machine, candidate, *args, **kwargs)

    monkeypatch.setattr(search_mod, "_evaluate", spy)
    space = SearchSpace(tiles=(5, 8, 16, 96, 200), steps=(1, 2, 12, 50))
    result = tune(PROBLEM, impl="ca-parsec", machine=MACHINE, budget=6,
                  space=space, cache=False)
    assert evaluated, "the search should have spent some budget"
    assert all(
        invalid_reason(c, PROBLEM, MACHINE, "ca-parsec") is None
        for c in evaluated
    )
    assert invalid_reason(result.winner, PROBLEM, MACHINE, "ca-parsec") is None


def test_model_prediction_shapes():
    space = SearchSpace.for_problem(PROBLEM, MACHINE)
    preds = model.rank(PROBLEM, MACHINE, "ca-parsec",
                       space.candidates(PROBLEM, MACHINE, "ca-parsec"))
    assert preds == sorted(preds, key=lambda p: (p.time_s, p.candidate))
    assert all(p.time_s > 0 and p.gflops > 0 for p in preds)


def test_model_rejects_petsc():
    with pytest.raises(ValueError, match="PaRSEC"):
        model.predict(PROBLEM, MACHINE, "petsc", Candidate(tile=8))


def test_model_overhead_punishes_tiny_tiles():
    tiny = model.predict(PROBLEM, MACHINE, "ca-parsec", Candidate(tile=2))
    sane = model.predict(PROBLEM, MACHINE, "ca-parsec", Candidate(tile=24))
    assert tiny.time_s > sane.time_s
