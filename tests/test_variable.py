"""Variable-coefficient stencils across the whole stack."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runner import run
from repro.distgrid.boundary import DirichletBC
from repro.machine.machine import nacl
from repro.stencil.kernels import StencilWeights, jacobi_update_region
from repro.stencil.problem import JacobiProblem
from repro.stencil.reference import jacobi_reference
from repro.stencil.variable import (
    VariableStencilWeights,
    apply_stencil_region,
    jacobi_update_region_variable,
)


def wavy():
    return VariableStencilWeights(
        center=lambda r, c: 0.1 + 0.01 * r,
        north=lambda r, c: 0.2 + 0.02 * np.sin(c),
        south=0.2,
        west=lambda r, c: 0.15 + 0.001 * c,
        east=0.25,
    )


def variable_problem(n=24, T=6, seed=0):
    rng = np.random.default_rng(seed)
    vals = rng.normal(size=(n, n))
    return JacobiProblem(
        n=n, iterations=T,
        init=lambda r, c: vals[np.clip(r, 0, n - 1), np.clip(c, 0, n - 1)],
        bc=DirichletBC(lambda r, c: 0.3 * r - 0.1 * c),
        weights=wavy(),
    )


def test_constant_fields_reduce_to_constant_weights():
    ext = np.random.default_rng(1).normal(size=(8, 8))
    const = StencilWeights.damped_jacobi(0.8)
    var = VariableStencilWeights(*const.as_tuple())
    a = jacobi_update_region(ext, const, slice(1, 7), slice(1, 7))
    b = jacobi_update_region_variable(ext, var, slice(1, 7), slice(1, 7), origin=(0, 0))
    assert np.allclose(a, b, rtol=1e-15)


def test_origin_shifts_coefficients():
    ext = np.ones((5, 5))
    w = VariableStencilWeights(center=lambda r, c: r * 1.0, north=0, south=0,
                               west=0, east=0)
    at0 = jacobi_update_region_variable(ext, w, slice(1, 4), slice(1, 4), origin=(0, 0))
    at10 = jacobi_update_region_variable(ext, w, slice(1, 4), slice(1, 4), origin=(10, 0))
    assert np.allclose(at10 - at0, 10.0)


def test_apply_stencil_region_dispatch():
    ext = np.random.default_rng(2).normal(size=(6, 6))
    const = StencilWeights()
    got = apply_stencil_region(ext, const, slice(1, 5), slice(1, 5), origin=(3, 3))
    want = jacobi_update_region(ext, const, slice(1, 5), slice(1, 5))
    assert np.array_equal(got, want)
    with pytest.raises(TypeError):
        apply_stencil_region(ext, object(), slice(1, 5), slice(1, 5), (0, 0))


def test_field_shape_validated():
    w = VariableStencilWeights(center=lambda r, c: np.zeros(3))
    with pytest.raises(ValueError):
        w.evaluate(np.zeros((2, 2)), np.zeros((2, 2)))


def test_all_implementations_agree_on_variable_weights():
    prob = variable_problem()
    ref = prob.reference_solution()
    m = nacl(4)
    base = run(prob, impl="base-parsec", machine=m, tile=4, mode="execute")
    ca = run(prob, impl="ca-parsec", machine=m, tile=4, steps=3, mode="execute")
    petsc = run(prob, impl="petsc", machine=m, mode="execute")
    assert np.array_equal(base.grid, ref)
    assert np.array_equal(ca.grid, ref)
    assert np.allclose(petsc.grid, ref, rtol=1e-12)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 5), st.integers(0, 2**16))
def test_ca_variable_property(steps, seed):
    prob = variable_problem(n=20, T=7, seed=seed)
    ref = prob.reference_solution()
    ca = run(prob, impl="ca-parsec", machine=nacl(4), tile=5, steps=steps,
             mode="execute")
    assert np.array_equal(ca.grid, ref)


def test_from_diffusivity_conserves_flat_field():
    """With row-sum-1 weights, a constant temperature away from the
    boundary is stationary."""
    w = VariableStencilWeights.from_diffusivity(
        lambda r, c: 1.0 + 0.3 * np.cos(0.2 * r * c), dt_h2=0.15
    )
    grid = np.full((12, 12), 5.0)
    out = jacobi_reference(grid, w, 3, DirichletBC(5.0))
    assert np.allclose(out, 5.0, atol=1e-12)
    with pytest.raises(ValueError):
        VariableStencilWeights.from_diffusivity(lambda r, c: r, dt_h2=0.0)


def test_heterogeneous_diffusion_slows_in_low_kappa_region():
    """Physics check: heat crosses a high-diffusivity half faster."""
    def kappa(r, c):
        return np.where(np.asarray(c) < 10, 1.0, 0.05)

    w = VariableStencilWeights.from_diffusivity(kappa, dt_h2=0.2)
    grid = np.zeros((20, 20))
    grid[9:11, 9:11] = 100.0  # source at the interface
    out = jacobi_reference(grid, w, 40, DirichletBC(0.0))
    fast_side = out[10, 4]  # 5 cells into the k=1.0 half
    slow_side = out[10, 15]  # 5 cells into the k=0.05 half
    assert fast_side > 5 * slow_side


def test_extra_traffic_estimate():
    assert VariableStencilWeights.bytes_per_point_extra() == 40
