"""Roofline model and the paper's section VI-A brackets."""

import pytest

from repro.machine.machine import nacl, stampede2
from repro.machine.roofline import (
    AI_HIGH,
    AI_LOW,
    FLOP_PER_POINT,
    attainable,
    node_attainable,
    ridge_point,
    stencil_peak_range,
)


def test_arithmetic_intensity_range_matches_paper():
    # Paper: "we will use the range of 0.37 to 0.56".
    assert AI_LOW == pytest.approx(0.375)
    assert AI_HIGH == pytest.approx(0.5625)
    assert FLOP_PER_POINT == 9


def test_memory_bound_attainable():
    pt = attainable(ai=0.5, bandwidth=40e9, peak_flops=1e12)
    assert pt.memory_bound
    assert pt.attainable_flops == pytest.approx(20e9)


def test_compute_bound_attainable():
    pt = attainable(ai=100.0, bandwidth=40e9, peak_flops=1e12)
    assert not pt.memory_bound
    assert pt.attainable_flops == 1e12


def test_stencil_is_memory_bound_on_both_machines():
    for machine in (nacl(), stampede2()):
        for ai in (AI_LOW, AI_HIGH):
            assert node_attainable(machine.node, ai).memory_bound


def test_paper_brackets():
    lo, hi = stencil_peak_range(nacl().node)
    # Paper: 14.5 to 21.9 GFLOP/s (using rounded 39.1 GB/s).
    assert lo / 1e9 == pytest.approx(14.5, rel=0.05)
    assert hi / 1e9 == pytest.approx(21.9, rel=0.05)
    lo, hi = stencil_peak_range(stampede2().node)
    # Paper: 63.8 to 96.6 GFLOP/s.
    assert lo / 1e9 == pytest.approx(63.8, rel=0.05)
    assert hi / 1e9 == pytest.approx(96.6, rel=0.05)


def test_ridge_point():
    assert ridge_point(40e9, 120e9) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        ridge_point(0, 1)
    with pytest.raises(ValueError):
        attainable(-1, 1, 1)
