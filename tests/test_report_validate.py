"""RunResult metrics and the cross-implementation validator."""

import numpy as np
import pytest

from repro.core.report import RunResult
from repro.core.runner import run
from repro.core.validate import validate_implementations
from repro.machine.machine import nacl
from repro.runtime.engine import EngineReport
from repro.stencil.problem import JacobiProblem

from .conftest import random_problem


def make_result(elapsed=2.0, useful=18e9, redundant=0.0):
    problem = JacobiProblem(n=1000, iterations=2)
    engine = EngineReport(
        elapsed=elapsed, tasks_run=10, messages=5, message_bytes=500,
        local_edges=3, local_bytes=100, useful_flops=useful,
        redundant_flops=redundant,
    )
    return RunResult(impl="base-parsec", problem=problem,
                     machine=nacl(4), engine=engine, params={"tile": 100})


def test_gflops_uses_nominal_problem_flops():
    res = make_result(elapsed=2.0)
    assert res.gflops == pytest.approx(res.problem.total_flops / 2.0 / 1e9)


def test_redundant_fraction():
    assert make_result(useful=100.0, redundant=25.0).redundant_fraction == 0.25
    assert make_result(useful=0.0).redundant_fraction == 0.0


def test_speedup_over():
    fast = make_result(elapsed=1.0)
    slow = make_result(elapsed=3.0)
    assert fast.speedup_over(slow) == pytest.approx(3.0)


def test_to_dict_and_summary():
    res = make_result()
    d = res.to_dict()
    assert d["impl"] == "base-parsec" and d["tile"] == 100
    assert d["nodes"] == 4 and d["messages"] == 5
    assert "GFLOP/s" in res.summary()


def test_validator_passes_on_valid_configuration():
    prob = random_problem(n=20, iterations=5, seed=8)
    rep = validate_implementations(prob, nacl(4), tile=5, steps=2)
    assert rep.ok
    assert rep.base_error == 0.0 and rep.ca_error == 0.0
    assert rep.petsc_error <= 1e-12 * max(rep.scale, 1.0)


def test_grid_only_in_execute_mode():
    prob = random_problem(n=16, iterations=3)
    sim = run(prob, impl="base-parsec", machine=nacl(4), tile=4, mode="simulate")
    exe = run(prob, impl="base-parsec", machine=nacl(4), tile=4, mode="execute")
    assert sim.grid is None
    assert isinstance(exe.grid, np.ndarray)
