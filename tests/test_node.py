"""NodeSpec: validation and the shared-bandwidth model."""

import pytest

from repro.machine.node import NodeSpec


def make_node(**over):
    base = dict(
        name="test",
        cores=12,
        core_stream_bw=10e9,
        node_stream_bw=40e9,
        core_peak_flops=10e9,
    )
    base.update(over)
    return NodeSpec(**base)


def test_compute_cores_reserves_comm_thread():
    assert make_node(cores=12).compute_cores == 11
    assert make_node(cores=1).compute_cores == 1  # never below one


def test_node_peak_flops():
    assert make_node().node_peak_flops == 12 * 10e9


def test_worker_bandwidth_saturates():
    node = make_node()
    # One worker gets full single-core bandwidth...
    assert node.worker_stream_bw(1) == 10e9
    # ...many workers share the node interface...
    assert node.worker_stream_bw(8) == pytest.approx(40e9 / 8)
    # ...and the share never exceeds a single core's capability.
    assert node.worker_stream_bw(2) == 10e9  # 40/2=20 > 10 -> capped


def test_invalid_nodes_rejected():
    with pytest.raises(ValueError):
        make_node(cores=0)
    with pytest.raises(ValueError):
        make_node(core_stream_bw=-1)
    with pytest.raises(ValueError):
        make_node(node_stream_bw=5e9)  # below single core
    with pytest.raises(ValueError):
        make_node(kernel_efficiency=0.0)
    with pytest.raises(ValueError):
        make_node(kernel_efficiency=1.5)
    with pytest.raises(ValueError):
        make_node().worker_stream_bw(0)
