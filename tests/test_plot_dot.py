"""ASCII plotting and DOT export utilities."""

import pytest

from repro.analysis.asciiplot import plot
from repro.machine.machine import nacl
from repro.runtime.dot import to_dot, write_dot
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Flow


def test_plot_basic_shape():
    out = plot([1, 2, 3, 4], {"up": [1.0, 2.0, 3.0, 4.0]}, width=20, height=6)
    lines = out.splitlines()
    assert lines[0].endswith("|" + " " * 19 + "*")  # max at top right
    assert "*=up" in lines[-1]
    assert "4" in lines[0]  # ymax label


def test_plot_two_series_legend():
    out = plot([1, 2], {"a": [0.0, 1.0], "b": [1.0, 0.0]}, width=10, height=4)
    assert "*=a" in out and "o=b" in out


def test_plot_log_x():
    sizes = [2**k for k in range(8, 20)]
    fracs = [k / 20 for k in range(12)]
    out = plot(sizes, {"bw": fracs}, logx=True)
    assert "(log x)" in out


def test_plot_flat_series():
    out = plot([0, 1], {"flat": [2.0, 2.0]}, width=10, height=4)
    assert "*" in out  # does not divide by zero


def test_plot_validation():
    with pytest.raises(ValueError):
        plot([1], {"a": [1.0]})
    with pytest.raises(ValueError):
        plot([1, 2], {})
    with pytest.raises(ValueError):
        plot([1, 2], {"a": [1.0]})
    with pytest.raises(ValueError):
        plot([0, 1], {"a": [1.0, 2.0]}, logx=True)
    with pytest.raises(ValueError):
        plot([1, 2], {"a": [1.0, 2.0]}, width=2)


def test_plot_fig5_series():
    from repro.experiments import fig5_netpipe

    sizes, na, s2 = fig5_netpipe.curves()
    out = plot(sizes, {"NaCL": na, "Stampede2": s2}, logx=True,
               title="Fig. 5 (ASCII)")
    assert out.startswith("Fig. 5 (ASCII)")


def make_graph():
    g = TaskGraph()
    g.add_task(("t", 0), node=0, out_nbytes={"o": 8}, kind="init")
    g.add_task(("t", 1), node=0, inputs=(Flow(("t", 0), "o", 8),), kind="interior")
    g.add_task(("t", 2), node=1, inputs=(Flow(("t", 0), "o", 8),), kind="boundary")
    return g.finalize()


def test_dot_structure():
    dot = to_dot(make_graph())
    assert dot.startswith("digraph")
    assert "cluster_node0" in dot and "cluster_node1" in dot
    assert "fillcolor=salmon" in dot  # boundary kind
    assert "color=red" in dot  # the remote edge
    assert dot.count("->") == 2


def test_dot_requires_finalized_and_caps_size():
    g = TaskGraph()
    g.add_task("a", node=0)
    with pytest.raises(ValueError, match="finalize"):
        to_dot(g)
    g.finalize()
    with pytest.raises(ValueError, match="capped"):
        to_dot(g, max_tasks=0)


def test_write_dot_roundtrip(tmp_path):
    path = tmp_path / "g.dot"
    write_dot(make_graph(), str(path))
    assert path.read_text().startswith("digraph")


def test_dot_of_real_stencil_graph():
    from repro.core.base_parsec import build_base_graph
    from repro.stencil.problem import JacobiProblem

    built = build_base_graph(JacobiProblem(n=8, iterations=2), nacl(4),
                             tile=4, with_kernels=False)
    dot = to_dot(built.graph)
    # One tile per node: every exchange is a remote (deep) strip.
    assert "dN:32B" in dot or "dS:32B" in dot
    assert "color=red" in dot
