"""Dynamic Task Discovery: dependence inference from access modes."""

import pytest

from repro.machine.machine import nacl
from repro.runtime.dtd import IN, INOUT, OUT, DTDRuntime
from repro.runtime.engine import Engine
from repro.runtime.graph import TaskGraph


def writer_kernel(value):
    def kernel(ins, task):
        return {next(iter(task.out_nbytes)): value}

    return kernel


def test_raw_chain_executes_in_order():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8, initial=0.0)

    def increment(ins, task):
        (prev,) = [v for v in ins.values()]
        return {next(iter(task.out_nbytes)): prev + 1.0}

    for _ in range(5):
        dtd.insert_task(increment, node=0, accesses=[(x, INOUT)], cost=1e-6)
    g = dtd.graph()
    rep = Engine(g, nacl(1), execute=True).run()
    final = [v for (key, tag), v in rep.results.items() if tag.startswith("x#")]
    assert final == [5.0]


def test_raw_dependency_edges():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    w = dtd.insert_task(None, node=0, accesses=[(x, INOUT)])
    r = dtd.insert_task(None, node=0, accesses=[(x, IN)])
    assert any(f.producer == w.key and f.nbytes == 8 for f in r.inputs)


def test_war_dependency_is_control_edge():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    r = dtd.insert_task(None, node=0, accesses=[(x, IN)])
    w = dtd.insert_task(None, node=0, accesses=[(x, INOUT)])
    war = [f for f in w.inputs if f.producer == r.key]
    assert len(war) == 1 and war[0].nbytes == 0


def test_waw_ordering_for_pure_out():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    w1 = dtd.insert_task(None, node=0, accesses=[(x, OUT)])
    w2 = dtd.insert_task(None, node=0, accesses=[(x, OUT)])
    # w2 must order after w1 (control edge), but not read its data.
    ctl = [f for f in w2.inputs if f.producer == w1.key]
    assert len(ctl) == 1 and ctl[0].nbytes == 0


def test_parallel_readers_share_version():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    w = dtd.insert_task(None, node=0, accesses=[(x, INOUT)])
    r1 = dtd.insert_task(None, node=0, accesses=[(x, IN)])
    r2 = dtd.insert_task(None, node=0, accesses=[(x, IN)])
    # Both readers consume the same version; neither depends on the other.
    assert not any(f.producer == r1.key for f in r2.inputs)
    tag1 = [f.tag for f in r1.inputs if f.producer == w.key]
    tag2 = [f.tag for f in r2.inputs if f.producer == w.key]
    assert tag1 == tag2


def test_versions_bump_per_write():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    assert x.version == 0
    dtd.insert_task(None, node=0, accesses=[(x, INOUT)])
    assert x.version == 1
    dtd.insert_task(None, node=0, accesses=[(x, OUT)])
    assert x.version == 2


def test_cross_node_dtd_generates_messages():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=1000, initial=2.0)
    dtd.insert_task(
        lambda ins, task: {next(iter(task.out_nbytes)): 3.0},
        node=1, accesses=[(x, INOUT)], cost=1e-6,
    )
    g = dtd.graph()
    rep = Engine(g, nacl(2), execute=True).run()
    assert rep.messages >= 1  # version 0 moved from node 0 to node 1


def test_duplicate_handle_name_rejected():
    dtd = DTDRuntime()
    dtd.data("x", node=0, nbytes=8)
    with pytest.raises(ValueError):
        dtd.data("x", node=0, nbytes=8)


def test_handle_listed_twice_rejected():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    with pytest.raises(ValueError):
        dtd.insert_task(None, node=0, accesses=[(x, IN), (x, OUT)])


def test_bad_access_mode_rejected():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    with pytest.raises(ValueError):
        dtd.insert_task(None, node=0, accesses=[(x, "RW")])


def test_graph_is_valid_taskgraph():
    dtd = DTDRuntime()
    x = dtd.data("x", node=0, nbytes=8)
    y = dtd.data("y", node=0, nbytes=8)
    dtd.insert_task(None, node=0, accesses=[(x, IN), (y, INOUT)])
    g = dtd.graph()
    assert isinstance(g, TaskGraph) and g.finalized
    assert len(g) == 3  # 2 init + 1 task
