"""JacobiProblem specification."""

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.stencil.problem import JacobiProblem


def test_shape_and_points():
    p = JacobiProblem(n=10, iterations=5)
    assert p.shape == (10, 10) and p.points == 100
    q = JacobiProblem(n=4, ncols=6, iterations=1)
    assert q.shape == (4, 6) and q.points == 24


def test_total_flops_is_nominal_9n2():
    p = JacobiProblem(n=100, iterations=7)
    assert p.total_flops == 9 * 100 * 100 * 7


def test_constant_initializer():
    p = JacobiProblem(n=3, iterations=0, init=2.5)
    assert np.all(p.initial_grid() == 2.5)


def test_callable_initializer_gets_global_indices():
    p = JacobiProblem(n=3, ncols=4, iterations=0, init=lambda r, c: 10.0 * r + c)
    grid = p.initial_grid()
    assert grid[2, 3] == pytest.approx(23.0)
    assert grid.shape == (3, 4)


def test_initializer_shape_checked():
    p = JacobiProblem(n=3, iterations=0, init=lambda r, c: np.zeros(2))
    with pytest.raises(ValueError):
        p.initial_grid()


def test_reference_solution_matches_solver():
    p = JacobiProblem(n=8, iterations=4, init=1.0, bc=DirichletBC(0.0))
    ref = p.reference_solution()
    assert ref.shape == (8, 8)
    # Dirichlet 0 pulls interior down from 1.0.
    assert ref.max() < 1.0


def test_validation():
    with pytest.raises(ValueError):
        JacobiProblem(n=0, iterations=1)
    with pytest.raises(ValueError):
        JacobiProblem(n=4, iterations=-1)
    with pytest.raises(ValueError):
        JacobiProblem(n=4, ncols=0, iterations=1)
