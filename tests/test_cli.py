"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_machines_lists_presets(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "nacl" in out and "stampede2" in out and "summit-like" in out


def test_run_simulate(capsys):
    rc = main(["run", "--impl", "base-parsec", "--machine", "nacl",
               "--nodes", "4", "--n", "576", "--iterations", "5",
               "--tile", "144"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GFLOP/s" in out and "base-parsec" in out


def test_run_execute_validates(capsys):
    rc = main(["run", "--impl", "ca-parsec", "--n", "48", "--iterations", "6",
               "--tile", "12", "--steps", "4", "--execute"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "max |error| vs reference: 0.000e+00" in out


def test_run_writes_chrome_trace(tmp_path, capsys):
    path = tmp_path / "t.json"
    rc = main(["run", "--n", "288", "--iterations", "4", "--tile", "96",
               "--steps", "4", "--trace-out", str(path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_validate_command(capsys):
    rc = main(["validate", "--n", "24", "--iterations", "4",
               "--tile", "6", "--steps", "2"])
    assert rc == 0
    assert "OK" in capsys.readouterr().out


def test_experiment_list(capsys):
    assert main(["experiment", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "headlines" in out


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "9,814.2" in out and "paper (MB/s)" in out


def test_experiment_roofline(capsys):
    assert main(["experiment", "roofline"]) == 0
    assert "paper brackets" in capsys.readouterr().out


def test_experiment_unknown():
    with pytest.raises(KeyError):
        main(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_threads_backend(capsys):
    rc = main(["run", "--impl", "ca-parsec", "--n", "48", "--iterations", "6",
               "--tile", "12", "--steps", "3", "--backend", "threads",
               "--jobs", "2", "--execute"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker threads" in out and "ms wall" in out
    assert "max |error| vs reference: 0.000e+00" in out


def test_run_threads_writes_chrome_trace(tmp_path, capsys):
    path = tmp_path / "wall.json"
    rc = main(["run", "--n", "48", "--iterations", "4", "--tile", "12",
               "--steps", "2", "--backend", "threads", "--jobs", "2",
               "--trace-out", str(path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])


def test_compare_command(capsys):
    rc = main(["compare", "--impl", "ca-parsec", "--n", "32",
               "--iterations", "4", "--tile", "8", "--steps", "2",
               "--jobs", "2", "--curve"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "model ms" in out and "wall ms" in out
    assert "measured strong scaling" in out
