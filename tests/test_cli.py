"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_machines_lists_presets(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "nacl" in out and "stampede2" in out and "summit-like" in out


def test_run_simulate(capsys):
    rc = main(["run", "--impl", "base-parsec", "--machine", "nacl",
               "--nodes", "4", "--n", "576", "--iterations", "5",
               "--tile", "144"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GFLOP/s" in out and "base-parsec" in out


def test_run_execute_validates(capsys):
    rc = main(["run", "--impl", "ca-parsec", "--n", "48", "--iterations", "6",
               "--tile", "12", "--steps", "4", "--execute"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "max |error| vs reference: 0.000e+00" in out


def test_run_writes_chrome_trace(tmp_path, capsys):
    path = tmp_path / "t.json"
    rc = main(["run", "--n", "288", "--iterations", "4", "--tile", "96",
               "--steps", "4", "--trace-out", str(path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_validate_command(capsys):
    rc = main(["validate", "--n", "24", "--iterations", "4",
               "--tile", "6", "--steps", "2"])
    assert rc == 0
    assert "OK" in capsys.readouterr().out


def test_experiment_list(capsys):
    assert main(["experiment", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "headlines" in out


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "9,814.2" in out and "paper (MB/s)" in out


def test_experiment_roofline(capsys):
    assert main(["experiment", "roofline"]) == 0
    assert "paper brackets" in capsys.readouterr().out


def test_experiment_unknown():
    with pytest.raises(KeyError):
        main(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_threads_backend(capsys):
    rc = main(["run", "--impl", "ca-parsec", "--n", "48", "--iterations", "6",
               "--tile", "12", "--steps", "3", "--backend", "threads",
               "--jobs", "2", "--execute"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker threads" in out and "ms wall" in out
    assert "max |error| vs reference: 0.000e+00" in out


def test_run_threads_writes_chrome_trace(tmp_path, capsys):
    path = tmp_path / "wall.json"
    rc = main(["run", "--n", "48", "--iterations", "4", "--tile", "12",
               "--steps", "2", "--backend", "threads", "--jobs", "2",
               "--trace-out", str(path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])


def test_compare_command(capsys):
    rc = main(["compare", "--impl", "ca-parsec", "--n", "32",
               "--iterations", "4", "--tile", "8", "--steps", "2",
               "--jobs", "2", "--curve"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "model ms" in out and "wall ms" in out
    assert "measured strong scaling" in out


# -- the serving face ----------------------------------------------------


def test_serve_synthetic_traffic(capsys):
    rc = main(["serve", "--n", "48", "--iterations", "3", "--tile", "12",
               "--requests", "4", "--tenants", "2", "--workers", "2",
               "--interval", "0.2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "serve summary" in out
    assert "result cache hit-rate" in out
    assert "tenant-a" in out and "tenant-b" in out
    assert "0 rejected, 0 failed" in out


def test_submit_repeat_hits_disk_cache(tmp_path, capsys):
    args = ["submit", "--n", "48", "--iterations", "3", "--tile", "12",
            "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "served by      cold executor" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "served by      result cache" in second
    assert "tasks executed 0" in second
    # bit-identical signature across invocations (same content key)
    sig_line = [l for l in first.splitlines() if l.startswith("signature")]
    assert sig_line[0] in second


def test_submit_no_cache_always_executes(tmp_path, capsys):
    args = ["submit", "--n", "48", "--iterations", "3", "--tile", "12",
            "--no-cache"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "served by      cold executor" in out


def test_stats_section_serve_writes_and_checks_baseline(tmp_path, capsys):
    base = tmp_path / "serve-base.json"
    rc = main(["stats", "--section", "serve", "--n", "48", "--iterations",
               "3", "--tile", "12", "--impl", "base-parsec",
               "--write-baseline", str(base)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "serve summary" in out and base.exists()
    doc = json.loads(base.read_text())
    assert doc["kind"] == "serve-baseline"
    assert "serve_cache_hit_rate" in doc["metrics"]
    rc = main(["stats", "--section", "serve", "--n", "48", "--iterations",
               "3", "--tile", "12", "--impl", "base-parsec",
               "--check", str(base), "--tolerance", "0.5"])
    out = capsys.readouterr().out
    assert "serve_cache_hit_rate" in out
    assert rc == 0


def _recorded_series(tmp_path):
    """A small synthetic series: queue depth spikes, then drains."""
    from repro.obs import MetricRegistry, TimeSeriesStore

    store = TimeSeriesStore(capacity=64)
    for i, depth in enumerate([0, 1, 0, 1, 0, 1, 0, 12, 12, 0, 0, 0]):
        reg = MetricRegistry()
        reg.gauge("serve_queue_depth").set(depth)
        reg.counter("serve_jobs_submitted_total").inc(i + 1)
        reg.counter("slo_requests_total").inc(i + 1, tenant="a",
                                              status="ok")
        store.observe(reg.snapshot(), t=float(i), wall=100.0 + i)
    return store.to_jsonl(tmp_path / "series.jsonl")


def test_alerts_replay_is_byte_identical(tmp_path, capsys):
    series = _recorded_series(tmp_path)
    rules = tmp_path / "rules.json"
    rules.write_text(json.dumps({"rules": [{
        "name": "queue-deep", "metric": "serve_queue_depth",
        "signal": "latest", "op": ">", "threshold": 5.0,
    }]}))

    def replay(log_name):
        rc = main(["alerts", "--series", str(series), "--rules",
                   str(rules), "--log-out", str(tmp_path / log_name)])
        assert rc == 0
        return (tmp_path / log_name).read_text()

    first = replay("a.jsonl")
    out = capsys.readouterr().out
    assert "ALERT queue-deep" in out and "inactive -> firing" in out
    assert "firing -> resolved" in out
    assert "2 transitions (1 firing, 1 resolved)" in out
    # a second replay of the same series is byte-identical
    assert replay("b.jsonl") == first
    events = [json.loads(line) for line in first.splitlines()]
    assert [e["to"] for e in events] == ["firing", "resolved"]


def test_alerts_replay_rejects_foreign_series(tmp_path):
    bogus = tmp_path / "x.jsonl"
    bogus.write_text('{"kind": "not-a-series"}\n')
    with pytest.raises(ValueError):
        main(["alerts", "--series", str(bogus)])


def test_top_renders_a_recorded_series(tmp_path, capsys):
    series = _recorded_series(tmp_path)
    assert main(["top", "--series", str(series)]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out and "queue depth" in out
    assert "requests/s" in out
