"""NetworkSpec: the alpha-beta/NetPIPE model."""

import math

import pytest

from repro.machine import units
from repro.machine.network import NetworkSpec, bisect_size_for_fraction


def make_net(**over):
    base = dict(
        name="test-net",
        peak_bw=units.gbit_s(32.0),
        effective_bw=units.gbit_s(27.0),
        latency=1e-6,
        software_overhead=20e-6,
        half_bw_size=8192,
    )
    base.update(over)
    return NetworkSpec(**base)


def test_wire_time_is_affine_in_size():
    net = make_net()
    t1 = net.wire_time(1000)
    t2 = net.wire_time(2000)
    assert t2 - t1 == pytest.approx(1000 / net.effective_bw)
    assert net.wire_time(0) == pytest.approx(net.alpha)


def test_message_time_adds_software_overhead():
    net = make_net()
    assert net.message_time(100) == pytest.approx(net.wire_time(100) + 20e-6)


def test_achieved_bandwidth_monotone_and_saturating():
    net = make_net()
    sizes = [2**k for k in range(6, 24)]
    bws = [net.achieved_bandwidth(s) for s in sizes]
    assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))
    assert bws[-1] < net.effective_bw
    assert bws[-1] > 0.95 * net.effective_bw


def test_half_bandwidth_at_n_half():
    net = make_net()
    # By the n_1/2 definition, the curve reaches half the effective
    # bandwidth exactly at half_bw_size.
    assert net.achieved_bandwidth(net.half_bw_size) == pytest.approx(
        net.effective_bw / 2
    )


def test_fraction_of_peak_below_one():
    net = make_net()
    assert 0 < net.fraction_of_peak(4 * 1024 * 1024) < 27 / 32 + 1e-9
    assert net.fraction_of_peak(0) == 0.0


def test_saturation_size():
    net = make_net()
    n90 = net.saturation_size(0.9)
    assert net.achieved_bandwidth(n90) == pytest.approx(0.9 * net.effective_bw)
    with pytest.raises(ValueError):
        net.saturation_size(1.0)


def test_bisect_size_for_fraction():
    net = make_net()
    n = bisect_size_for_fraction(net, 0.5)
    assert net.fraction_of_peak(n) == pytest.approx(0.5, rel=1e-3)
    # Unreachable fraction (effective is 27/32 = 84% of peak).
    assert bisect_size_for_fraction(net, 0.9) == math.inf


def test_validation():
    with pytest.raises(ValueError):
        make_net(effective_bw=units.gbit_s(33.0))  # above peak
    with pytest.raises(ValueError):
        make_net(latency=-1.0)
    with pytest.raises(ValueError):
        make_net().wire_time(-5)
