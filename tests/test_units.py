"""Unit conversions must be exact and self-inverse."""

import pytest

from repro.machine import units


def test_network_units_roundtrip():
    assert units.gbit_s(32.0) == 32e9 / 8
    assert units.to_gbit_s(units.gbit_s(27.0)) == pytest.approx(27.0)


def test_stream_units_roundtrip():
    assert units.mb_s(9814.2) == pytest.approx(9.8142e9)
    assert units.to_mb_s(units.mb_s(40091.3)) == pytest.approx(40091.3)
    assert units.to_gb_s(units.gb_s(39.1)) == pytest.approx(39.1)


def test_flops_units():
    assert units.gflops(11.0) == 11e9
    assert units.to_gflops(units.gflops(43.5)) == pytest.approx(43.5)


def test_time_units():
    assert units.usec(1.0) == 1e-6
    assert units.MICROSECOND * 1e6 == pytest.approx(1.0)


def test_binary_vs_decimal_sizes():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3
    assert units.KILO == 1e3 and units.MEGA == 1e6 and units.GIGA == 1e9


def test_item_sizes():
    assert units.DOUBLE == 8
    assert units.INT64 == 8
