"""Cross-backend conformance: every backend computes the same bits.

The three execution backends -- the discrete-event simulator in
execute mode, the shared-memory thread pool, and the multiprocess
backend with real IPC halo exchange -- run the *same* task graphs.
Dataflow semantics promise that any legal schedule (and any placement
of the schedule onto threads or processes) produces a final grid that
is bit-identical to the single-array reference solver.  This suite
holds every backend to that promise over random shapes, tiles, step
sizes and iteration counts, very much including step sizes that do
not divide the iteration count (the CA remainder-epoch path).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.runner import run
from repro.distgrid.boundary import DirichletBC
from repro.exec import fork_available
from repro.machine.machine import nacl
from repro.stencil.kernels import StencilWeights
from repro.stencil.problem import JacobiProblem

pytestmark = [
    pytest.mark.skipif(not fork_available(), reason="processes backend needs POSIX fork"),
    pytest.mark.timeout(600),
]


def random_problem(n, iterations, seed=0, ncols=None):
    """Random data, non-trivial boundary and damped weights, as in the
    shared fixture helpers: constants would mask routing bugs."""
    rng = np.random.default_rng(seed)
    nc = ncols or n
    values = rng.normal(size=(n, nc))

    def init(rows, cols):
        return values[np.clip(rows, 0, n - 1), np.clip(cols, 0, nc - 1)]

    def bc(rows, cols):
        return np.sin(0.1 * rows) + np.cos(0.2 * cols)

    return JacobiProblem(
        n=n,
        ncols=ncols,
        iterations=iterations,
        init=init,
        bc=DirichletBC(bc),
        weights=StencilWeights.damped_jacobi(0.9),
    )


def _impl_kwargs(impl: str, tile: int, steps: int) -> dict:
    if impl == "petsc":
        return {}
    if impl == "base-parsec":
        return {"tile": tile}
    return {"tile": tile, "steps": steps}


def _grids(problem, impl, nodes, tile, steps, policy="priority"):
    """Final grid from each backend, same problem, same graph shape."""
    machine = nacl(nodes)
    kwargs = _impl_kwargs(impl, tile, steps)
    sim = run(problem, impl=impl, machine=machine, mode="execute",
              policy=policy, **kwargs)
    threads = run(problem, impl=impl, machine=machine, backend="threads",
                  jobs=2, policy=policy, **kwargs)
    procs = run(problem, impl=impl, machine=machine, backend="processes",
                procs=nodes, jobs=1, policy=policy, **kwargs)
    return sim.grid, threads.grid, procs.grid


@st.composite
def conformance_configs(draw):
    """(impl, problem, nodes, tile, steps) always valid for a 2x2 grid:
    the grid is an exact multiple of 2*tile, so every tile is full-size
    and any steps <= tile is legal."""
    impl = draw(st.sampled_from(["petsc", "base-parsec", "ca-parsec"]))
    nodes = draw(st.sampled_from([1, 2, 4]))
    tile = draw(st.integers(4, 6))
    n = 2 * tile * draw(st.integers(1, 2))
    ncols = 2 * tile * draw(st.integers(1, 2))
    iterations = draw(st.integers(1, 7))
    steps = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**16))
    return impl, n, ncols, iterations, tile, steps, nodes, seed


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(conformance_configs())
def test_backends_bit_identical(config):
    impl, n, ncols, iterations, tile, steps, nodes, seed = config
    if impl == "petsc":
        # The rank layout needs one grid entry per rank.
        assume(n * ncols >= nodes * nacl(nodes).node.cores)
    problem = random_problem(n=n, iterations=iterations, seed=seed, ncols=ncols)
    sim_grid, threads_grid, procs_grid = _grids(
        problem, impl, nodes, tile, steps
    )
    label = (f"{impl}, {n}x{ncols}, T={iterations}, tile={tile}, "
             f"steps={steps}, nodes={nodes}")
    assert np.array_equal(sim_grid, threads_grid), f"sim != threads for {label}"
    assert np.array_equal(sim_grid, procs_grid), f"sim != processes for {label}"
    ref = problem.reference_solution()
    if impl == "petsc":
        # SpMV sums in matrix order, not stencil order: equal across
        # backends bit for bit, equal to the reference to rounding.
        assert np.allclose(sim_grid, ref, rtol=1e-12, atol=1e-12), label
    else:
        assert np.array_equal(sim_grid, ref), f"backends != reference for {label}"


def test_ca_nondividing_steps_across_backends():
    """The remainder epoch (s does not divide T) explicitly, on every
    backend: 12 iterations in steps of 5 is 5 + 5 + 2."""
    problem = random_problem(n=20, iterations=12, seed=7)
    sim_grid, threads_grid, procs_grid = _grids(
        problem, "ca-parsec", nodes=4, tile=5, steps=5
    )
    ref = problem.reference_solution()
    assert np.array_equal(sim_grid, ref)
    assert np.array_equal(threads_grid, ref)
    assert np.array_equal(procs_grid, ref)


@pytest.mark.parametrize("impl", ["petsc", "base-parsec", "ca-parsec"])
def test_all_impls_on_processes_match_reference(impl):
    """One deterministic mid-size case per implementation through the
    multiprocess backend alone (the conformance suite's anchor)."""
    problem = random_problem(n=24, iterations=6, seed=3)
    result = run(problem, impl=impl, machine=nacl(4), backend="processes",
                 procs=4, jobs=2, **_impl_kwargs(impl, tile=6, steps=3))
    assert result.params["backend"] == "processes"
    assert result.params["procs"] == 4
    ref = problem.reference_solution()
    if impl == "petsc":  # SpMV summation order vs the stencil reference
        assert np.allclose(result.grid, ref, rtol=1e-12, atol=1e-12)
    else:
        assert np.array_equal(result.grid, ref)


@pytest.mark.parametrize("impl", ["petsc", "base-parsec", "ca-parsec"])
def test_serve_path_matches_direct_run(impl):
    """The serving layer (warm slots, batching, reduced outcomes) is
    transparent: grids served over the threads and processes pools are
    bit-identical to direct run() on every backend, per implementation."""
    from repro.serve import ServiceConfig, SolveRequest, SolverService

    problem = random_problem(n=24, iterations=6, seed=13)
    sim_grid, threads_grid, procs_grid = _grids(
        problem, impl, nodes=4, tile=6, steps=3
    )
    assert np.array_equal(sim_grid, threads_grid)
    assert np.array_equal(sim_grid, procs_grid)
    request_kwargs = dict(problem=problem, impl=impl, machine=nacl(4))
    if impl != "petsc":
        request_kwargs["tile"] = 6
    if impl == "ca-parsec":
        request_kwargs["steps"] = 3
    with SolverService(ServiceConfig(workers=1, cache=False)) as service:
        served_threads = service.submit(SolveRequest(
            backend="threads", jobs=2, **request_kwargs
        )).result(timeout=300)
        served_procs = service.submit(SolveRequest(
            backend="processes", jobs=1, **request_kwargs
        )).result(timeout=300)
    assert np.array_equal(served_threads.grid, sim_grid)
    assert np.array_equal(served_procs.grid, sim_grid)
