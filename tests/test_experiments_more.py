"""Experiment-module helpers not exercised by the tiny smoke tests."""

import pytest

from repro.experiments import (
    fig5_netpipe,
    fig6_tilesize,
    fig8_kernel_ratio,
    fig9_stepsize,
    headline,
    projection,
    table1_stream,
    weak_scaling,
)
from repro.experiments.fig6_tilesize import TilePoint
from repro.experiments.fig8_kernel_ratio import RatioPoint
from repro.experiments.projection import ProjectionPoint
from repro.experiments.weak_scaling import WeakPoint


def test_fig5_rows_structure():
    rows = fig5_netpipe.rows()
    assert rows[0][0] == 256 and rows[-1][0] == 4 * 1024 * 1024
    # Percent columns.
    assert all(0 <= r[1] <= 100 and 0 <= r[2] <= 100 for r in rows)


def test_table1_host_row_appended():
    rows = table1_stream.rows(include_host=True, host_elements=200_000)
    assert len(rows) == 5
    assert rows[-1][0] == "host"


def test_fig6_best_and_rows():
    points = [TilePoint(100, 5.0, 10), TilePoint(200, 9.0, 5), TilePoint(400, 7.0, 2)]
    assert fig6_tilesize.best(points).tile == 200
    # rows() runs a real (tiny through monkey problem) sweep elsewhere;
    # here we just check the static tables agree with the paper text.
    assert fig6_tilesize.PAPER_OPTIMUM["NaCL"] == (200, 300)
    assert fig6_tilesize.PAPER_PLATEAU["Stampede2"] == 43.5


def test_fig8_gain_and_best():
    pts = [
        RatioPoint(16, 0.2, base_gflops=100.0, ca_gflops=150.0),
        RatioPoint(16, 0.4, base_gflops=100.0, ca_gflops=110.0),
        RatioPoint(64, 0.2, base_gflops=100.0, ca_gflops=130.0),
    ]
    assert pts[0].gain == pytest.approx(0.5)
    assert fig8_kernel_ratio.best_gain(pts).ratio == 0.2
    assert fig8_kernel_ratio.best_gain(pts, nodes=64).ca_gflops == 130.0
    assert RatioPoint(4, 0.2, 0.0, 10.0).gain == 0.0


def test_fig9_rows_grid():
    points = [
        fig9_stepsize.StepPoint(16, 0.2, s, float(s)) for s in (5, 15, 25, 40)
    ]
    # optimal_step picks the max gflops entry.
    opt = fig9_stepsize.optimal_step(points, nodes=16, ratio=0.2)
    assert opt.steps == 40


def test_headline_rows_formatting():
    h = headline.Headlines(
        parsec_over_petsc_nacl=2.04,
        parsec_over_petsc_s2=2.06,
        ca_gain_nacl=0.53,
        ca_gain_nacl_at=(16, 0.2),
        ca_gain_s2=0.36,
        ca_gain_s2_at=(64, 0.2),
    )
    rows = headline.rows(h)
    assert rows[0][2] == "2.04x"
    assert rows[2][1] == "+57%" and rows[2][2] == "+53%"
    assert "nodes=64" in rows[3][0]


def test_projection_rows():
    pts = [ProjectionPoint(1.0, 100.0, 99.0), ProjectionPoint(25.0, 110.0, 150.0)]
    rows = projection.rows(pts)
    assert rows[0][3] == "-1%" and rows[1][3] == "+36%"


def test_weak_scaling_rows():
    pts = [WeakPoint(1, 1440, 10.0, 10.0, 1.0, 1.0),
           WeakPoint(4, 2880, 38.0, 39.0, 0.95, 0.975)]
    rows = weak_scaling.rows(pts)
    assert rows[1][0] == 4 and rows[1][1] == "2880^2"
    assert rows[1][4] == "95%"
