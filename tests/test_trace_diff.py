"""Trace diffing and the causal CLI faces (critpath, trace-diff)."""

import pytest

from repro.cli import main
from repro.core.runner import run
from repro.machine.machine import nacl
from repro.obs.diff import diff_results, diff_traces
from repro.stencil.problem import JacobiProblem

#: A small NaCL configuration where CA measurably removes
#: communication from the critical path (comm-bound at ratio 0.2).
SMALL = dict(n=576, iterations=6, tile=144, steps=3, ratio=0.2, nodes=4)


def small_run(impl, ratio=SMALL["ratio"], **overrides):
    cfg = {**SMALL, **overrides}
    return run(
        JacobiProblem(n=cfg["n"], iterations=cfg["iterations"]),
        impl=impl, machine=nacl(cfg["nodes"]), tile=cfg["tile"],
        steps=cfg["steps"], ratio=ratio, trace=True,
    )


def test_self_diff_is_empty():
    result = small_run("ca-parsec")
    diff = diff_results(result, result, label_a="x", label_b="y")
    assert diff.empty()
    assert diff.makespan_delta == 0.0
    assert diff.comm_share_drop == 0.0
    assert diff.only_a == 0 and diff.only_b == 0
    assert diff.format() == "no differences between x and y"


def test_ca_drops_comm_share_vs_base():
    base = small_run("base-parsec")
    ca = small_run("ca-parsec")
    diff = diff_results(base, ca, label_a="base-parsec", label_b="ca-parsec")
    assert diff.comm_share_drop > 0.0, (
        "CA must put less communication on the critical path than base "
        f"(got {diff.critpath_a.comm_share:.1%} -> "
        f"{diff.critpath_b.comm_share:.1%})"
    )
    text = diff.format()
    assert "comm share of critical path" in text
    assert "base-parsec -> ca-parsec" in text


def test_same_impl_ratio_change_shows_movers():
    slow = small_run("ca-parsec", ratio=1.0)
    fast = small_run("ca-parsec", ratio=0.2)
    diff = diff_results(slow, fast, label_a="r1.0", label_b="r0.2")
    # Same task-key namespace: every compute task matches across runs.
    assert diff.matched > 0
    assert diff.only_a == 0 and diff.only_b == 0
    assert diff.movers, "a 5x kernel-cost change must surface movers"
    # ratio 0.2 makes every kernel cheaper, so the makespan shrinks.
    assert diff.makespan_delta < 0.0
    kinds = {k.kind for k in diff.kinds}
    assert kinds, "per-kind rollup must not be empty"


def test_diff_kind_rollup_totals():
    a = small_run("base-parsec")
    b = small_run("ca-parsec")
    diff = diff_traces(a.trace, b.trace, graph_a=a.graph, graph_b=b.graph)
    for k in diff.kinds:
        assert k.count_a >= 0 and k.count_b >= 0
        assert k.count_a > 0 or k.count_b > 0
        assert k.delta_total == pytest.approx(k.total_b - k.total_a)


def test_diff_results_requires_traces():
    traced = small_run("ca-parsec")
    untraced = run(
        JacobiProblem(n=SMALL["n"], iterations=2), impl="ca-parsec",
        machine=nacl(SMALL["nodes"]), tile=SMALL["tile"],
        steps=SMALL["steps"],
    )
    with pytest.raises(ValueError, match="trace"):
        diff_results(untraced, traced)
    with pytest.raises(ValueError, match="trace"):
        diff_results(traced, untraced)


# -- CLI ------------------------------------------------------------------


CLI_SIZE = ["--machine", "nacl", "--nodes", "4", "--n", "576",
            "--iterations", "6", "--tile", "144", "--steps", "3",
            "--ratio", "0.2"]


def test_cli_critpath(capsys):
    rc = main(["critpath", "--impl", "ca-parsec", *CLI_SIZE])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "blame" in out


def test_cli_critpath_gantt_and_flame(tmp_path, capsys):
    flame = tmp_path / "flame.folded"
    rc = main(["critpath", "--impl", "ca-parsec", *CLI_SIZE,
               "--gantt", "--flame-out", str(flame)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crit |" in out
    folded = flame.read_text()
    assert "critical path;" in folded


def test_cli_trace_diff_assert_comm_drop(capsys):
    rc = main(["trace-diff", *CLI_SIZE, "--assert-comm-drop"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace diff: base-parsec -> ca-parsec" in out
    assert "OK:" in out
    assert "less communication on the critical path" in out


def test_cli_trace_diff_same_impl_no_drop(capsys):
    # Diffing an implementation against itself cannot drop comm share;
    # the assertion flag must then fail the command.
    rc = main(["trace-diff", *CLI_SIZE, "--impl-a", "base-parsec",
               "--impl-b", "base-parsec", "--assert-comm-drop"])
    assert rc == 1
    assert "FAIL:" in capsys.readouterr().err


def test_cli_stats_prints_critpath_rows(capsys):
    rc = main(["stats", "--impl", "ca-parsec", *CLI_SIZE])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "top critical-path segments" in out
