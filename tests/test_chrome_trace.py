"""Chrome trace-event export."""

import json

import pytest

from repro.runtime import chrome_trace
from repro.runtime.trace import Trace


def sample_trace():
    t = Trace()
    t.record(0, 0, "interior", 0.0, 1e-3, label=("st", 1, 1, 0))
    t.record(0, -1, "send", 0.5e-3, 0.6e-3)
    t.record(1, 2, "boundary", 0.0, 2e-3)
    return t


def test_events_complete_and_typed():
    events = chrome_trace.to_events(sample_trace())
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 3
    interior = next(e for e in spans if e["name"] == "interior")
    assert interior["pid"] == 0 and interior["tid"] == 0
    assert interior["dur"] == pytest.approx(1e3)  # 1 ms in us
    assert interior["args"]["label"] == repr(("st", 1, 1, 0))
    send = next(e for e in spans if e["name"] == "send")
    assert send["tid"] == 9999 and send["cat"] == "comm"


def test_metadata_names_processes_and_threads():
    events = chrome_trace.to_events(sample_trace())
    meta = [e for e in events if e["ph"] == "M"]
    thread_names = {(e["pid"], e["tid"]): e["args"]["name"]
                    for e in meta if e["name"] == "thread_name"}
    assert thread_names[(0, 9999)] == "comm"
    assert thread_names[(1, 2)] == "worker 2"
    process_names = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert process_names == {0, 1}


def test_time_scale():
    base = chrome_trace.to_events(sample_trace())
    scaled = chrome_trace.to_events(sample_trace(), time_scale=10.0)
    b = next(e for e in base if e.get("name") == "boundary")
    s = next(e for e in scaled if e.get("name") == "boundary")
    assert s["dur"] == pytest.approx(10 * b["dur"])
    with pytest.raises(ValueError):
        chrome_trace.to_events(sample_trace(), time_scale=0)


def test_dumps_and_write_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    chrome_trace.write(sample_trace(), str(path))
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert any(e.get("name") == "interior" for e in doc["traceEvents"])
    assert json.loads(chrome_trace.dumps(sample_trace())) == doc


def test_engine_trace_exports(machine4, small_problem):
    from repro.core.runner import run

    res = run(small_problem, impl="ca-parsec", machine=machine4, tile=6,
              steps=3, mode="simulate", trace=True)
    doc = json.loads(chrome_trace.dumps(res.trace))
    kinds = {e.get("name") for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"interior", "boundary", "init", "send", "recv"} <= kinds
