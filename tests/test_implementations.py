"""The three implementations through the public runner."""

import numpy as np
import pytest

from repro.core.runner import IMPLEMENTATIONS, default_tile, run
from repro.machine.machine import nacl

from .conftest import random_problem


def test_all_implementations_match_reference(machine4):
    prob = random_problem(n=24, iterations=6, seed=42)
    ref = prob.reference_solution()
    base = run(prob, impl="base-parsec", machine=machine4, tile=4, mode="execute")
    ca = run(prob, impl="ca-parsec", machine=machine4, tile=4, steps=3, mode="execute")
    petsc = run(prob, impl="petsc", machine=machine4, mode="execute")
    assert np.array_equal(base.grid, ref)
    assert np.array_equal(ca.grid, ref)
    assert np.allclose(petsc.grid, ref, rtol=1e-12)


def test_base_equals_ca_with_step_one(machine4):
    prob = random_problem(n=20, iterations=5, seed=1)
    base = run(prob, impl="base-parsec", machine=machine4, tile=5, mode="execute")
    ca1 = run(prob, impl="ca-parsec", machine=machine4, tile=5, steps=1, mode="execute")
    assert np.array_equal(base.grid, ca1.grid)
    # Same communication volume too.
    assert base.messages == ca1.messages
    assert base.message_bytes == ca1.message_bytes


def test_ca_sends_fewer_messages(machine4):
    prob = random_problem(n=24, iterations=6)
    base = run(prob, impl="base-parsec", machine=machine4, tile=4, mode="simulate")
    ca = run(prob, impl="ca-parsec", machine=machine4, tile=4, steps=3, mode="simulate")
    assert ca.messages < base.messages
    assert ca.message_bytes > base.message_bytes  # replication costs bytes
    assert ca.redundant_fraction > 0 and base.redundant_fraction == 0


def test_petsc_slower_than_base_at_scale():
    """The 2x kernel-traffic gap shows on a realistic configuration."""
    from repro.stencil.problem import JacobiProblem

    prob = JacobiProblem(n=2880, iterations=6)
    m = nacl(4)
    base = run(prob, impl="base-parsec", machine=m, tile=144, mode="simulate")
    petsc = run(prob, impl="petsc", machine=m, mode="simulate")
    assert 1.6 < base.gflops / petsc.gflops < 2.6


def test_simulate_timing_independent_of_execute(machine4):
    """Virtual time must be identical whether kernels actually run."""
    prob = random_problem(n=24, iterations=5)
    sim = run(prob, impl="ca-parsec", machine=machine4, tile=4, steps=2, mode="simulate")
    exe = run(prob, impl="ca-parsec", machine=machine4, tile=4, steps=2, mode="execute")
    assert sim.elapsed == pytest.approx(exe.elapsed, rel=1e-12)
    assert sim.messages == exe.messages


def test_single_node_runs_have_no_messages(small_problem):
    res = run(small_problem, impl="ca-parsec", machine=nacl(1), tile=6, steps=3,
              mode="execute")
    assert res.messages == 0
    assert np.array_equal(res.grid, small_problem.reference_solution())


def test_runner_validation(machine4, small_problem):
    with pytest.raises(ValueError):
        run(small_problem, impl="chapel", machine=machine4)
    with pytest.raises(ValueError):
        run(small_problem, impl="petsc", machine=machine4, ratio=0.5)
    with pytest.raises(ValueError):
        run(small_problem, impl="base-parsec", machine=machine4, mode="emulate")
    assert set(IMPLEMENTATIONS) == {"petsc", "base-parsec", "ca-parsec"}


def test_default_tile_sane():
    from repro.stencil.problem import JacobiProblem

    assert 1 <= default_tile(JacobiProblem(n=64, iterations=1), nacl(4)) <= 64
    assert default_tile(JacobiProblem(n=23040, iterations=1), nacl(16)) <= 1024


def test_ratio_speeds_up_parsec(machine16):
    from repro.stencil.problem import JacobiProblem

    prob = JacobiProblem(n=2880, iterations=5)
    full = run(prob, impl="base-parsec", machine=machine16, tile=144, mode="simulate")
    tuned = run(prob, impl="base-parsec", machine=machine16, tile=144, ratio=0.5,
                mode="simulate")
    assert tuned.elapsed < full.elapsed
    # GFLOP/s uses nominal flops, so it *rises* with the tuned kernel.
    assert tuned.gflops > full.gflops


def test_trace_capture_through_runner(small_problem, machine4):
    res = run(small_problem, impl="base-parsec", machine=machine4, tile=6,
              mode="simulate", trace=True)
    assert res.trace is not None and len(res.trace) > 0
    res.trace.validate_no_overlap()
    assert 0 < res.occupancy() <= 1.0
