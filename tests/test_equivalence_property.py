"""Property-based tests of the central numerical invariant:

    CA-PaRSEC(s) == base-PaRSEC == single-array reference, bit-exact,

for arbitrary grid shapes, process grids, tile sizes, step sizes,
iteration counts, weights, initial data and boundary values.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.dataflow import build_stencil_graph
from repro.core.spec import StencilSpec
from repro.distgrid.boundary import DirichletBC
from repro.distgrid.partition import GridPartition, ProcessGrid
from repro.machine.machine import nacl
from repro.runtime.engine import Engine
from repro.stencil.kernels import StencilWeights
from repro.stencil.problem import JacobiProblem


@st.composite
def stencil_configs(draw):
    """A random, always-valid (problem, partition, steps) triple."""
    prows = draw(st.integers(1, 3))
    pcols = draw(st.integers(1, 3))
    tile = draw(st.integers(2, 6))
    # Grid sized so every node block exists and min tile dim >= steps.
    nrows = draw(st.integers(prows * tile, 30))
    ncols = draw(st.integers(pcols * tile, 30))
    pgrid = ProcessGrid(prows, pcols)
    partition = GridPartition(nrows, ncols, pgrid, tile)
    steps = draw(st.integers(1, min(4, partition.min_tile_dim())))
    iterations = draw(st.integers(0, 9))
    seed = draw(st.integers(0, 2**16))
    omega = draw(st.floats(0.3, 1.0))
    return nrows, ncols, pgrid, tile, steps, iterations, seed, omega


def build_problem(nrows, ncols, seed, omega, iterations):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(nrows, ncols))

    def init(r, c):
        return values[np.clip(r, 0, nrows - 1), np.clip(c, 0, ncols - 1)]

    return JacobiProblem(
        n=nrows,
        ncols=ncols,
        iterations=iterations,
        init=init,
        bc=DirichletBC(lambda r, c: np.cos(0.3 * r) - np.sin(0.2 * c)),
        weights=StencilWeights.damped_jacobi(omega),
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stencil_configs())
def test_ca_dataflow_equals_reference(config):
    nrows, ncols, pgrid, tile, steps, iterations, seed, omega = config
    problem = build_problem(nrows, ncols, seed, omega, iterations)
    spec = StencilSpec(problem=problem, partition=GridPartition(nrows, ncols, pgrid, tile), steps=steps)
    machine = nacl(pgrid.size)
    built = build_stencil_graph(spec, machine)
    rep = Engine(built.graph, machine, execute=True).run()
    grid = built.assemble_grid(rep.results)
    ref = problem.reference_solution()
    assert np.array_equal(grid, ref), (
        f"mismatch for grid {nrows}x{ncols}, pgrid {pgrid}, tile {tile}, "
        f"steps {steps}, T {iterations}: max err "
        f"{np.max(np.abs(grid - ref)):.3e}"
    )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stencil_configs(), st.sampled_from(["fifo", "lifo", "priority"]))
def test_result_independent_of_schedule(config, policy):
    """Dataflow semantics: any legal schedule produces the same bits."""
    nrows, ncols, pgrid, tile, steps, iterations, seed, omega = config
    problem = build_problem(nrows, ncols, seed, omega, iterations)
    spec = StencilSpec(problem=problem, partition=GridPartition(nrows, ncols, pgrid, tile), steps=steps)
    machine = nacl(pgrid.size)
    built = build_stencil_graph(spec, machine)
    rep = Engine(built.graph, machine, execute=True, policy=policy).run()
    assert np.array_equal(built.assemble_grid(rep.results), problem.reference_solution())


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(1, 4),  # nranks per node knob via node count
    st.integers(6, 24),
    st.integers(6, 20),
    st.integers(0, 6),
    st.integers(0, 2**16),
)
def test_petsc_spmv_equals_reference(nodes, nrows, ncols, iterations, seed):
    from repro.core.petsc_jacobi import build_petsc_graph

    problem = build_problem(nrows, ncols, seed, 0.8, iterations)
    machine = nacl(nodes)
    if nrows * ncols < machine.nodes * machine.node.cores:
        return  # layout requires one entry per rank
    built = build_petsc_graph(problem, machine)
    rep = Engine(built.graph, machine, execute=True, overlap=False).run()
    grid = built.assemble_grid(rep.results)
    ref = problem.reference_solution()
    assert np.allclose(grid, ref, rtol=1e-12, atol=1e-12)
