"""Fault injection must itself be deterministic (``repro.chaos``).

A fault plan is replayed by *identity*, not by schedule: a fault
applies as a pure function of (node, global sweep), so the same seed
and plan produce the same firing log, the same trace shape, and the
same metrics on every repetition -- the property that makes a chaos
failure reproducible enough to debug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    ChaosContext,
    FaultInjector,
    parse_plan,
    random_plan,
    run_with_recovery,
)
from repro.core.runner import run
from repro.machine.machine import nacl
from repro.obs.metrics import MetricRegistry

from .conftest import random_problem

pytestmark = pytest.mark.timeout(300)

PLAN = "kill:node=2,step=1s;delay:node=1,step=2,secs=0.001;slow:node=0,factor=2"


def _one_run(tmp_path, tag):
    problem = random_problem(n=24, iterations=6)
    plan = parse_plan(PLAN, seed=7)
    metrics = MetricRegistry()
    chaos = run_with_recovery(
        problem, plan, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="sim", checkpoint_dir=tmp_path / tag, metrics=metrics,
        trace=True,
    )
    return chaos, metrics.snapshot()


def test_same_seed_same_firing_order(tmp_path):
    first, _ = _one_run(tmp_path, "a")
    second, _ = _one_run(tmp_path, "b")
    assert first.faults == second.faults
    assert [f["kind"] for f in first.faults] == ["kill", "delay", "slow"]
    assert first.attempts == second.attempts
    assert [r["checkpoint"] for r in first.restarts] == \
        [r["checkpoint"] for r in second.restarts]


def test_same_seed_same_grid_and_trace_shape(tmp_path):
    first, _ = _one_run(tmp_path, "a")
    second, _ = _one_run(tmp_path, "b")
    assert np.array_equal(first.grid, second.grid)
    assert first.result.trace is not None
    assert len(first.result.trace.spans) == len(second.result.trace.spans)


def test_same_seed_same_metrics(tmp_path):
    _, snap_a = _one_run(tmp_path, "a")
    _, snap_b = _one_run(tmp_path, "b")
    for name in ("chaos_faults_injected_total", "chaos_recoveries_total",
                 "tasks_executed_total"):
        assert snap_a.counter(name) == snap_b.counter(name), name
    assert snap_a.labelled("chaos_faults_injected_total") == \
        snap_b.labelled("chaos_faults_injected_total")


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_plans_are_stable(seed):
    a = random_plan(seed, nodes=4, iterations=6,
                    kinds=("kill", "delay", "slow", "drop"))
    b = random_plan(seed, nodes=4, iterations=6,
                    kinds=("kill", "delay", "slow", "drop"))
    assert a == b
    assert a.spec() == b.spec()
    assert a.fingerprint() == b.fingerprint()


def test_firing_is_identity_based_not_schedule_based(tmp_path):
    """The same plan attached under two different scheduling policies
    fires the same faults (identity: node x sweep), even though the
    task execution order differs."""
    problem = random_problem(n=24, iterations=6)
    logs = []
    for policy in ("priority", "fifo"):
        injector = FaultInjector(
            parse_plan(PLAN, seed=7), s=3, workdir=tmp_path / policy
        )
        ctx = ChaosContext(injector, store=None, base=0)
        from repro.exec import NodeLostError

        with pytest.raises(NodeLostError):
            run(problem, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
                mode="execute", backend="sim", policy=policy, chaos=ctx)
        logs.append(injector.firing_log())
    # the kill raises before the run completes under both policies, so
    # compare what actually fired: identical identity-keyed records
    assert logs[0] == logs[1]


def test_durable_markers_survive_and_gate_refire(tmp_path):
    """A consumed kill is marked on disk; a fresh injector over the
    same workdir sees it as fired and will not re-kill."""
    injector = FaultInjector(parse_plan("kill:node=1,step=2", seed=0),
                             s=1, workdir=tmp_path)
    assert injector.kill_action(1, 2) is not None
    assert injector.kill_action(1, 2) is None  # fired once
    fresh = FaultInjector(parse_plan("kill:node=1,step=2", seed=0),
                          s=1, workdir=tmp_path)
    assert fresh.fired(0)
    assert fresh.kill_action(1, 2) is None
    assert fresh.firing_log() == injector.firing_log()
