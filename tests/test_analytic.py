"""Closed-form communication forecasts vs the graph census."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analytic import forecast, remote_edges, supersteps, surface_to_volume
from repro.core.dataflow import build_stencil_graph
from repro.core.spec import StencilSpec
from repro.distgrid.partition import GridPartition, ProcessGrid
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem


def make_spec(n=24, nodes=4, tile=4, steps=3, T=9, pgrid=None):
    return StencilSpec.create(
        JacobiProblem(n=n, iterations=T), nodes=nodes, tile=tile, steps=steps,
        pgrid=pgrid,
    )


def test_remote_edges_2x2():
    # 2x2 nodes, 6x6 tiles: 2 seams x 6 pairs x 2 directions.
    assert remote_edges(make_spec()) == 24


def test_supersteps():
    assert supersteps(make_spec(T=9, steps=3)) == 3
    assert supersteps(make_spec(T=10, steps=3)) == 4  # partial tail counts
    assert supersteps(make_spec(T=0, steps=3)) == 0
    assert supersteps(make_spec(T=5, steps=1)) == 5


def test_forecast_matches_census_base():
    spec = make_spec(steps=1, T=6)
    fc = forecast(spec)
    census = build_stencil_graph(spec, nacl(4), with_kernels=False).graph.census()
    assert fc.messages == census.remote_messages
    assert fc.bytes == census.remote_bytes
    assert fc.redundant_points == 0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(1, 3), st.integers(1, 3), st.integers(2, 6),
    st.integers(1, 4), st.integers(0, 9),
)
def test_forecast_matches_census_property(prows, pcols, tile, steps, T):
    """Formula vs graph enumeration, arbitrary configurations."""
    pgrid = ProcessGrid(prows, pcols)
    nrows = max(prows * tile, 12)
    ncols = max(pcols * tile, 10)
    partition = GridPartition(nrows, ncols, pgrid, tile)
    steps = min(steps, partition.min_tile_dim())
    spec = StencilSpec(
        problem=JacobiProblem(n=nrows, ncols=ncols, iterations=T),
        partition=partition, steps=steps,
    )
    fc = forecast(spec)
    graph = build_stencil_graph(spec, nacl(pgrid.size), with_kernels=False).graph
    census = graph.census()
    assert fc.messages == census.remote_messages
    assert fc.bytes == census.remote_bytes
    useful, redundant = graph.total_flops()
    assert fc.redundant_points * 9 == redundant


def test_forecast_redundant_counts_partial_tail():
    full = forecast(make_spec(steps=3, T=9)).redundant_points
    partial = forecast(make_spec(steps=3, T=10)).redundant_points
    # The 10th iteration is a refresh phase (max halo): strictly more.
    assert partial > full


def test_surface_to_volume_prefers_square_grids():
    """The paper's 2D block distribution argument, quantified."""
    square = surface_to_volume(make_spec(n=24, nodes=4, tile=4, steps=2,
                                         pgrid=ProcessGrid(2, 2)))
    strip = surface_to_volume(make_spec(n=24, nodes=4, tile=4, steps=2,
                                        pgrid=ProcessGrid(1, 4)))
    assert square < strip
    # Single node: no surface at all.
    assert surface_to_volume(make_spec(nodes=1, pgrid=ProcessGrid(1, 1))) == 0.0


def test_runner_accepts_custom_pgrid():
    import numpy as np

    from repro.core.runner import run
    from tests.conftest import random_problem

    prob = random_problem(n=24, iterations=5, seed=3)
    strip = run(prob, impl="ca-parsec", machine=nacl(4), tile=4, steps=2,
                mode="execute", pgrid=ProcessGrid(1, 4))
    assert np.array_equal(strip.grid, prob.reference_solution())
    square = run(prob, impl="base-parsec", machine=nacl(4), tile=4,
                 mode="simulate", pgrid=ProcessGrid(2, 2))
    stripe = run(prob, impl="base-parsec", machine=nacl(4), tile=4,
                 mode="simulate", pgrid=ProcessGrid(1, 4))
    # Strips move more ghost bytes (worse surface-to-volume).
    assert stripe.message_bytes > square.message_bytes
