"""Message accounting of the processes backend.

The backend's whole reason to exist is that the base-vs-CA message
gap becomes *measured*: every inter-process pipe message is counted
with its census-declared payload size.  These tests pin the contract:

* the measured message count/bytes equal the static graph census and
  the simulator's runtime tally exactly (same unit: one message per
  (producer, tag, destination node));
* base-parsec sends ~s x the messages of ca-parsec(s), the paper's
  communication-avoiding claim;
* send/recv spans land on the standard comm lanes of the Trace schema,
  so occupancy analysis and the Chrome-trace exporter work unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.core.base_parsec import build_base_graph
from repro.core.ca_parsec import build_ca_graph
from repro.core.runner import run
from repro.distgrid.partition import ProcessGrid
from repro.exec import fork_available
from repro.machine.machine import nacl
from repro.runtime import chrome_trace
from repro.stencil.problem import JacobiProblem

pytestmark = [
    pytest.mark.skipif(not fork_available(), reason="needs POSIX fork"),
    pytest.mark.timeout(600),
]

# Full-width tiles on a 1D process grid: one producer tile per node
# boundary and no diagonal neighbours, so the base/CA message ratio is
# *exactly* s (the paper's regime: tiles of 288/864 are node-sized).
N = 48
TILE = 48
ITERATIONS = 12
STEPS = 4
PGRID = ProcessGrid(4, 1)
MACHINE = nacl(4)
PROBLEM = JacobiProblem(n=N, iterations=ITERATIONS)


def _real(impl: str, trace: bool = False, **kwargs):
    return run(PROBLEM, impl=impl, machine=MACHINE, backend="processes",
               procs=4, jobs=1, trace=trace, pgrid=PGRID, **kwargs)


def _census(impl: str, **kwargs):
    builder = build_base_graph if impl == "base-parsec" else build_ca_graph
    built = builder(PROBLEM, MACHINE, with_kernels=False, pgrid=PGRID, **kwargs)
    built.graph.finalize()
    return built.graph.census()


@pytest.fixture(scope="module")
def base_run():
    return _real("base-parsec", tile=TILE)


@pytest.fixture(scope="module")
def ca_run():
    return _real("ca-parsec", tile=TILE, steps=STEPS)


def test_measured_messages_equal_graph_census(base_run, ca_run):
    for result, census in (
        (base_run, _census("base-parsec", tile=TILE)),
        (ca_run, _census("ca-parsec", tile=TILE, steps=STEPS)),
    ):
        assert result.messages == census.remote_messages, result.impl
        assert result.message_bytes == census.remote_bytes, result.impl
        assert result.engine.by_pair == census.by_pair, result.impl


def test_measured_messages_equal_simulator_tally(base_run, ca_run):
    for result, kwargs in (
        (base_run, {"tile": TILE}),
        (ca_run, {"tile": TILE, "steps": STEPS}),
    ):
        sim = run(PROBLEM, impl=result.impl, machine=MACHINE, pgrid=PGRID,
                  **kwargs)
        assert result.messages == sim.messages, result.impl
        assert result.message_bytes == sim.message_bytes, result.impl


def test_ca_sends_s_times_fewer_messages(base_run, ca_run):
    assert ca_run.messages > 0
    # s divides the iteration count and every node boundary is one
    # tile, so PA1's coalescing is exact: base exchanges every
    # iteration what CA exchanges once per s-step epoch.
    assert base_run.messages == STEPS * ca_run.messages, (
        f"base sent {base_run.messages} real messages, CA "
        f"{ca_run.messages}; expected exactly {STEPS}x"
    )
    # The avoided messages were not free: CA's messages are fatter
    # (s-deep ghost strips instead of single rows).
    assert ca_run.message_bytes / ca_run.messages > (
        base_run.message_bytes / base_run.messages
    )


def test_wire_bytes_cover_declared_payloads(base_run, ca_run):
    for result in (base_run, ca_run):
        assert result.engine.wire_bytes >= result.message_bytes, result.impl
        total_pair_msgs = sum(m for m, _ in result.engine.by_pair.values())
        total_pair_bytes = sum(b for _, b in result.engine.by_pair.values())
        assert total_pair_msgs == result.messages, result.impl
        assert total_pair_bytes == result.message_bytes, result.impl


def test_occupancy_and_summary(base_run, ca_run):
    for result in (base_run, ca_run):
        assert 0 < result.occupancy() <= 1, result.impl
        text = result.summary()
        assert "processes" in text and "real msgs" in text


def test_trace_has_comm_lanes_and_exports(tmp_path):
    result = _real("ca-parsec", trace=True, tile=TILE, steps=STEPS)
    trace = result.trace
    assert trace is not None
    kinds = {span.kind for span in trace.spans if span.worker < 0}
    assert kinds == {"send", "recv"}
    sends = [s for s in trace.spans if s.kind == "send"]
    assert len(sends) == result.messages
    nodes = {span.node for span in trace.spans}
    assert nodes == {0, 1, 2, 3}  # every process contributed spans
    out = tmp_path / "procs_trace.json"
    chrome_trace.write(trace, str(out))
    events = json.loads(out.read_text())["traceEvents"]
    assert any(e.get("cat") == "comm" for e in events)
