"""Geometric multigrid: transfers, cycles, textbook invariants."""

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.multigrid import (
    apply_operator,
    coarse_shape,
    direct_coarsest,
    fmg,
    frame_solution,
    jacobi_smooth,
    levels_for,
    prolong_bilinear,
    residual,
    restrict_full_weighting,
    restrict_injection,
    solve,
)


def manufactured(n: int):
    """u = sin(pi x) sin(2 pi y), f = 5 pi^2 u, zero boundary."""
    h = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * h
    X, Y = np.meshgrid(x, x, indexing="ij")
    u = np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    return u, 5.0 * np.pi**2 * u, h


# -- transfers ---------------------------------------------------------


def test_coarse_shape_and_levels():
    assert coarse_shape((7, 7)) == (3, 3)
    assert coarse_shape((15, 7)) == (7, 3)
    assert levels_for(31) >= 4
    with pytest.raises(ValueError):
        coarse_shape((8, 7))
    with pytest.raises(ValueError):
        coarse_shape((1, 7))


def test_restriction_preserves_constants():
    fine = np.full((15, 15), 3.0)
    assert np.allclose(restrict_full_weighting(fine)[1:-1, 1:-1], 3.0)
    assert np.allclose(restrict_injection(fine), 3.0)


def test_prolongation_reproduces_linears():
    """Bilinear interpolation is exact on linear functions (interior,
    away from the implied zero boundary)."""
    cr = cc = 7
    ci, cj = np.meshgrid(np.arange(cr), np.arange(cc), indexing="ij")
    coarse = 2.0 * ci + 3.0 * cj
    fine = prolong_bilinear(coarse, (15, 15))
    fi, fj = np.meshgrid(np.arange(15), np.arange(15), indexing="ij")
    # Fine (i, j) sits at coarse coordinate ((i-1)/2, (j-1)/2).
    want = 2.0 * (fi - 1) / 2.0 + 3.0 * (fj - 1) / 2.0
    assert np.allclose(fine[2:-2, 2:-2], want[2:-2, 2:-2])


def test_transfer_adjointness():
    """Full weighting is the (scaled) transpose of bilinear
    prolongation: <P e, r>_fine = 4 <e, R r>_coarse."""
    rng = np.random.default_rng(0)
    r = rng.normal(size=(15, 15))
    e = rng.normal(size=(7, 7))
    lhs = float(np.sum(prolong_bilinear(e, (15, 15)) * r))
    rhs = 4.0 * float(np.sum(e * restrict_full_weighting(r)))
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_prolong_shape_validated():
    with pytest.raises(ValueError):
        prolong_bilinear(np.zeros((7, 7)), (17, 15))


# -- operator & smoother -------------------------------------------------


def test_operator_on_manufactured_solution():
    u, f, h = manufactured(63)
    framed = frame_solution(u, DirichletBC(0.0))
    got = apply_operator(framed, h)
    # Second-order discretisation: O(h^2) agreement.
    assert np.max(np.abs(got - f)) < 0.6


def test_smoother_reduces_high_frequency_error():
    n = 31
    u, f, h = manufactured(n)
    rng = np.random.default_rng(1)
    framed = frame_solution(u + 0.1 * rng.normal(size=u.shape), DirichletBC(0.0))
    before = np.linalg.norm(residual(framed, f, h))
    after = np.linalg.norm(residual(jacobi_smooth(framed, f, h, sweeps=5), f, h))
    assert after < 0.35 * before


def test_smoother_validation():
    with pytest.raises(ValueError):
        jacobi_smooth(np.zeros((5, 5)), np.zeros((3, 3)), 0.1, sweeps=-1)


def test_direct_coarsest_exact():
    f = np.array([[1.0, 2.0], [3.0, 4.0]])
    u = direct_coarsest(f, h=0.5)
    framed = frame_solution(u, DirichletBC(0.0))
    assert np.allclose(apply_operator(framed, 0.5), f, atol=1e-12)


# -- cycles ----------------------------------------------------------------


def test_vcycle_grid_independent_convergence():
    """The multigrid invariant: the per-cycle residual reduction is
    bounded away from 1 *independently of n* (plain Jacobi's factor
    approaches 1 like 1 - O(h^2))."""
    factors = {}
    for k in (4, 5, 6):
        n = 2**k - 1
        _, f, _ = manufactured(n)
        res = solve(f, rtol=1e-9, max_cycles=30)
        assert res.converged
        factors[n] = res.convergence_factor
    assert all(f < 0.35 for f in factors.values())
    spread = max(factors.values()) - min(factors.values())
    assert spread < 0.12


def test_solution_reaches_discretisation_accuracy():
    for n in (31, 63):
        u_exact, f, _ = manufactured(n)
        res = solve(f, rtol=1e-10)
        err = np.max(np.abs(res.u - u_exact))
        # O(h^2): ~2.7e-3 at n=31, ~6.8e-4 at n=63.
        assert err < 4.0 / (n + 1) ** 2 * 10


def test_wcycle_at_least_as_fast_as_v():
    _, f, _ = manufactured(31)
    v = solve(f, rtol=1e-9, gamma=1)
    w = solve(f, rtol=1e-9, gamma=2)
    assert w.converged and w.cycles <= v.cycles


def test_nonzero_dirichlet_boundary():
    """Laplace (f=0) with boundary r+c has the harmonic solution
    u = r + c (global indices), which the solver must reproduce."""
    n = 15
    bc = DirichletBC(lambda r, c: 1.0 * r + 1.0 * c)
    res = solve(np.zeros((n, n)), bc=bc, h=1.0, rtol=1e-12, max_cycles=40)
    assert res.converged
    ri, ci = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    assert np.allclose(res.u, ri + ci, atol=1e-8)


def test_fmg_one_shot_accuracy():
    """FMG reaches discretisation-level accuracy with one cycle per
    level -- O(N) total work."""
    u_exact, f, _ = manufactured(63)
    u = fmg(f)
    assert np.max(np.abs(u - u_exact)) < 2e-3


def test_solve_zero_rhs():
    res = solve(np.zeros((7, 7)))
    assert res.converged and np.all(res.u == 0.0)


def test_multigrid_crushes_plain_jacobi():
    """The motivation: MG solves in ~17 cycles what Jacobi cannot
    finish in hundreds of sweeps."""
    n = 63
    u_exact, f, h = manufactured(n)
    res = solve(f, rtol=1e-8)
    framed = frame_solution(np.zeros((n, n)), DirichletBC(0.0))
    smoothed = jacobi_smooth(framed, f, h, sweeps=300, omega=0.8)
    jacobi_res = np.linalg.norm(residual(smoothed, f, h))
    mg_res = res.residual_norms[-1]
    assert res.converged
    assert mg_res < 1e-4 * jacobi_res
