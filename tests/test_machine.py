"""Machine presets: calibration against the paper's numbers."""

import pytest

from repro.machine import units
from repro.machine.machine import MachineSpec, nacl, preset, stampede2, summit_like


def test_nacl_matches_paper():
    m = nacl()
    assert m.nodes == 64
    assert m.node.cores == 12
    assert units.to_mb_s(m.node.core_stream_bw) == pytest.approx(9814.2)
    assert units.to_mb_s(m.node.node_stream_bw) == pytest.approx(40091.3)
    assert units.to_gbit_s(m.network.peak_bw) == pytest.approx(32.0)
    assert units.to_gbit_s(m.network.effective_bw) == pytest.approx(27.0)
    assert m.network.latency == pytest.approx(1e-6)


def test_stampede2_matches_paper():
    m = stampede2()
    assert m.node.cores == 48
    assert units.to_mb_s(m.node.node_stream_bw) == pytest.approx(176701.1)
    assert units.to_gbit_s(m.network.peak_bw) == pytest.approx(100.0)
    assert units.to_gbit_s(m.network.effective_bw) == pytest.approx(86.0)


def test_with_nodes_strong_scaling():
    m = nacl(64).with_nodes(16)
    assert m.nodes == 16
    assert m.node == nacl().node  # same node model
    assert m.total_cores == 16 * 12


def test_preset_lookup():
    assert preset("NaCL").name == "NaCL"
    assert preset("stampede2", nodes=4).nodes == 4
    assert preset("summit-like").node.node_stream_bw == pytest.approx(900e9)
    with pytest.raises(KeyError):
        preset("frontier")


def test_local_copy_time():
    m = nacl()
    one_mb = 1e6
    assert m.local_copy_time(one_mb) == pytest.approx(
        2e6 / m.node.core_stream_bw
    )
    with pytest.raises(ValueError):
        m.local_copy_time(-1)


def test_machine_validation():
    with pytest.raises(ValueError):
        MachineSpec(name="x", nodes=0, node=nacl().node, network=nacl().network)


def test_summit_like_is_network_bound_ready():
    """The conclusion's projection: much faster memory, similar network
    latency -- the regime where CA should shine."""
    s = summit_like()
    assert s.node.node_stream_bw > 5 * stampede2().node.node_stream_bw
    assert s.network.latency == pytest.approx(1e-6)
