"""STREAM benchmark: model calibration and host measurement."""

import pytest

from repro.machine.machine import nacl, stampede2
from repro.machine.node import NodeSpec
from repro.machine.stream import (
    MODES,
    PAPER_TABLE1,
    model,
    run_host,
    scaling_curve,
)


@pytest.mark.parametrize("machine,scale", [
    (nacl(), "1-core"), (nacl(), "1-node"),
    (stampede2(), "1-core"), (stampede2(), "1-node"),
])
def test_model_reproduces_table1(machine, scale):
    got = model(machine.node, scale, system=machine.name)
    want = PAPER_TABLE1[(machine.name, scale)]
    for mode in MODES:
        assert got[mode] == pytest.approx(want[mode], rel=1e-9)


def test_model_unknown_system_uses_average_ratios():
    node = NodeSpec(
        name="generic", cores=8, core_stream_bw=10e9, node_stream_bw=50e9,
        core_peak_flops=10e9,
    )
    row = model(node, "1-node", system="generic")
    assert row.copy == pytest.approx(50e9 / 1e6)
    assert row.add > 0 and row.triad > 0


def test_model_rejects_bad_scale():
    with pytest.raises(ValueError):
        model(nacl().node, "2-nodes")


def test_run_host_produces_positive_bandwidths():
    result = run_host(elements=200_000, repeats=2)
    for mode in MODES:
        assert result[mode] > 0
    # COPY and SCALE move the same bytes; both should be the same
    # order of magnitude (loose: host variance).
    assert 0.2 < result["COPY"] / result["SCALE"] < 5


def test_run_host_validation():
    with pytest.raises(ValueError):
        run_host(elements=10)
    with pytest.raises(ValueError):
        run_host(repeats=0)


def test_scaling_curve_saturates():
    node = nacl().node
    curve = scaling_curve(node)
    bws = [bw for _, bw in curve]
    assert bws == sorted(bws)
    assert bws[0] == node.core_stream_bw
    assert bws[-1] == node.node_stream_bw
    # A single core cannot saturate the interface (paper's observation).
    assert bws[0] < node.node_stream_bw


def test_stream_result_row_shape():
    row = model(nacl().node, "1-core").as_row()
    assert row[0] == "NaCL" and row[1] == "1-core" and len(row) == 6
