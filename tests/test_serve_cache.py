"""Content-keyed result cache (``repro.serve.cache``): persistence,
schema versioning, the LRU bound and atomic-write hygiene."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import MetricRegistry
from repro.serve import ResultCache
from repro.serve.cache import SCHEMA_VERSION, default_cache_dir
from repro.serve.request import SolveOutcome


def make_outcome(signature: str, value: float = 1.0) -> SolveOutcome:
    return SolveOutcome(
        signature=signature,
        impl="base-parsec",
        elapsed=0.25,
        gflops=1.5,
        messages=12,
        message_bytes=960,
        params={"tile": 6, "ratio": 1.0},
        grid=np.full((6, 6), value),
    )


def test_roundtrip_bit_identical(tmp_path):
    reg = MetricRegistry()
    cache = ResultCache(tmp_path, metrics=reg)
    original = make_outcome("sig-a", 3.25)
    cache.put("sig-a", original)
    hit = cache.get("sig-a")
    assert hit is not None and hit.cached
    assert np.array_equal(hit.grid, original.grid)
    assert hit.impl == "base-parsec" and hit.elapsed == 0.25
    assert hit.params == {"tile": 6, "ratio": 1.0}
    snap = reg.snapshot()
    assert snap.counter("serve_cache_hits_total") == 1
    assert snap.counter("serve_cache_stores_total") == 1


def test_persists_across_instances(tmp_path):
    ResultCache(tmp_path).put("sig-a", make_outcome("sig-a", 2.0))
    fresh = ResultCache(tmp_path)  # cold in-memory layer: disk path
    hit = fresh.get("sig-a")
    assert hit is not None
    assert np.array_equal(hit.grid, np.full((6, 6), 2.0))


def test_miss_returns_none(tmp_path):
    reg = MetricRegistry()
    cache = ResultCache(tmp_path, metrics=reg)
    assert cache.get("never-stored") is None
    assert reg.snapshot().counter("serve_cache_misses_total") == 1


def test_hit_grids_are_read_only(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("sig-a", make_outcome("sig-a"))
    hit = cache.get("sig-a")
    assert not hit.grid.flags.writeable  # hits share one array
    with pytest.raises(ValueError):
        hit.grid[0, 0] = 99.0


def test_lru_eviction_honours_get_recency(tmp_path):
    reg = MetricRegistry()
    cache = ResultCache(tmp_path, max_entries=2, metrics=reg)
    cache.put("sig-a", make_outcome("sig-a"))
    cache.put("sig-b", make_outcome("sig-b"))
    cache.get("sig-a")  # a is now more recently used than b
    cache.put("sig-c", make_outcome("sig-c"))
    assert ResultCache(tmp_path).get("sig-b") is None  # b was the LRU
    assert cache.get("sig-a") is not None
    assert cache.get("sig-c") is not None
    assert reg.snapshot().counter("serve_cache_evictions_total") == 1
    # the evicted entry's payload was unlinked, not leaked
    npz_files = list(tmp_path.glob("*.npz"))
    assert len(npz_files) == 2


def test_unknown_schema_treated_as_empty(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("sig-a", make_outcome("sig-a"))
    index = json.loads((tmp_path / "index.json").read_text())
    index["schema"] = SCHEMA_VERSION + 99
    (tmp_path / "index.json").write_text(json.dumps(index))
    fresh = ResultCache(tmp_path)
    assert len(fresh) == 0
    assert fresh.get("sig-a") is None  # never migrated, never crashed
    fresh.put("sig-b", make_outcome("sig-b"))  # writes the current schema
    doc = json.loads((tmp_path / "index.json").read_text())
    assert doc["schema"] == SCHEMA_VERSION
    assert list(doc["entries"]) == ["sig-b"]


def test_corrupt_index_treated_as_empty(tmp_path):
    (tmp_path / "index.json").write_text("{ not json !")
    cache = ResultCache(tmp_path)
    assert cache.get("sig-a") is None
    cache.put("sig-a", make_outcome("sig-a"))  # heals by rewriting
    assert ResultCache(tmp_path).get("sig-a") is not None


def test_lost_payload_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("sig-a", make_outcome("sig-a"))
    for npz in tmp_path.glob("*.npz"):
        npz.unlink()
    assert ResultCache(tmp_path).get("sig-a") is None


def test_atomic_writes_leave_no_temp_droppings(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.put(f"sig-{i}", make_outcome(f"sig-{i}", float(i)))
    assert not list(tmp_path.glob("*.tmp"))
    json.loads((tmp_path / "index.json").read_text())  # always parseable


def test_concurrent_stores_merge_not_clobber(tmp_path):
    """Two service processes sharing one cache dir: the second put
    re-reads the index before replacing it, so the first's entry
    survives."""
    first, second = ResultCache(tmp_path), ResultCache(tmp_path)
    first.put("sig-a", make_outcome("sig-a"))
    second.put("sig-b", make_outcome("sig-b"))
    entries = ResultCache(tmp_path).entries()
    assert set(entries) == {"sig-a", "sig-b"}


def test_clear_empties_index_and_payloads(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("sig-a", make_outcome("sig-a"))
    cache.clear()
    assert len(cache) == 0
    assert not list(tmp_path.glob("*.npz"))
    assert cache.get("sig-a") is None


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SERVE_CACHE", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
