"""The alert rules engine (``repro.obs.alerts``) in isolation: rule
parsing and validation, the pending/firing/resolved lifecycle with its
``for_s`` holdoff, multi-window burn-rate semantics over the SLO
counters, anomaly rules, sinks, flight-recorder dumps on fire, and the
deterministic replay of a recorded series.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricRegistry, TimeSeriesStore
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    JsonlSink,
    default_rules,
    format_transition,
    load_rules,
    parse_rule,
    parse_rules,
    replay_rules,
)
from repro.obs.lifecycle import FlightRecorder


def _gauge_snap(value: float):
    reg = MetricRegistry()
    reg.gauge("depth").set(value)
    return reg.snapshot()


def _slo_snap(ok: int, error: int, tenant: str = "a"):
    """Cumulative slo_requests_total in the lifecycle tracer's shape."""
    reg = MetricRegistry()
    c = reg.counter("slo_requests_total")
    if ok:
        c.inc(ok, tenant=tenant, status="ok")
    if error:
        c.inc(error, tenant=tenant, status="error")
    return reg.snapshot()


def _depth_rule(**overrides) -> AlertRule:
    base = dict(name="deep", metric="depth", signal="latest",
                op=">", threshold=5.0)
    base.update(overrides)
    return parse_rule(base)


# -- parsing ----------------------------------------------------------------


def test_parse_rule_validates_every_field():
    rule = parse_rule({
        "name": "p95", "metric": "lat_seconds", "signal": "quantile",
        "q": 0.95, "window_s": 10, "op": ">=", "threshold": 2,
        "for_s": 1, "labels": {"tenant": "a"}, "severity": "ticket",
    })
    assert rule.kind == "threshold" and rule.q == 0.95
    assert rule.labels == (("tenant", "a"),)
    for bad in (
        {"metric": "m"},                                # no name
        {"name": "x", "kind": "nope"},
        {"name": "x", "metric": "m", "signal": "nope"},
        {"name": "x", "metric": "m", "op": "!="},
        {"name": "x"},                                  # threshold, no metric
        {"name": "x", "metric": "m", "for_s": -1},
        {"name": "x", "metric": "m", "window_s": 0},
        {"name": "x", "kind": "burn_rate", "objective": 1.0},
        {"name": "x", "kind": "burn_rate", "windows": [[0, 2]]},
    ):
        with pytest.raises(ValueError):
            parse_rule(bad)
    # anomaly rules default to the classic 3.5 modified-z cutoff
    anomaly = parse_rule({"name": "a", "kind": "anomaly", "metric": "m"})
    assert anomaly.threshold == 3.5
    # burn_rate needs no metric (defaults to slo_requests_total)
    assert parse_rule({"name": "b", "kind": "burn_rate"}).metric == ""


def test_parse_rules_accepts_both_shapes_and_rejects_duplicates(tmp_path):
    docs = [{"name": "a", "metric": "m"}, {"name": "b", "metric": "m"}]
    assert [r.name for r in parse_rules(docs)] == ["a", "b"]
    assert [r.name for r in parse_rules({"rules": docs})] == ["a", "b"]
    # AlertRule instances pass through untouched
    pre = default_rules()
    assert parse_rules(pre) == pre
    with pytest.raises(ValueError):
        parse_rules([{"name": "a", "metric": "m"},
                     {"name": "a", "metric": "m"}])
    path = tmp_path / "rules.json"
    path.write_text(json.dumps({"rules": docs}))
    assert [r.name for r in load_rules(path)] == ["a", "b"]


# -- lifecycle ----------------------------------------------------------------


def test_threshold_fires_immediately_without_holdoff():
    store = TimeSeriesStore()
    engine = AlertEngine(store, [_depth_rule()])
    store.ingest(_gauge_snap(1.0).data, t=0.0)
    assert engine.evaluate(0.0) == []
    store.ingest(_gauge_snap(9.0).data, t=1.0)
    (fired,) = engine.evaluate(1.0)
    assert (fired["from"], fired["to"]) == ("inactive", "firing")
    assert fired["value"] == 9.0 and fired["t"] == 1.0
    assert engine.state("deep") == "firing"
    assert engine.active()[0]["state"] == "firing"
    # still breached: no new transition (idempotent while firing)
    store.ingest(_gauge_snap(9.5).data, t=2.0)
    assert engine.evaluate(2.0) == []
    store.ingest(_gauge_snap(1.0).data, t=3.0)
    (resolved,) = engine.evaluate(3.0)
    assert (resolved["from"], resolved["to"]) == ("firing", "resolved")
    assert engine.state("deep") == "inactive"  # resolved is a transition
    assert engine.active() == []


def test_for_holdoff_requires_sustained_breach():
    store = TimeSeriesStore()
    engine = AlertEngine(store, [_depth_rule(for_s=2.0)])
    for t, v in [(0.0, 9.0), (1.0, 9.0), (2.0, 9.0), (3.0, 1.0)]:
        store.ingest(_gauge_snap(v).data, t=t)
        engine.evaluate(t)
    # breach held exactly for_s at t=2 -> fired, then resolved at t=3
    path = [(e["from"], e["to"]) for e in engine.transitions]
    assert path == [
        ("inactive", "pending"),
        ("pending", "firing"),
        ("firing", "resolved"),
    ]


def test_pending_cancels_when_the_breach_clears_early():
    store = TimeSeriesStore()
    engine = AlertEngine(store, [_depth_rule(for_s=5.0)])
    for t, v in [(0.0, 9.0), (1.0, 1.0)]:
        store.ingest(_gauge_snap(v).data, t=t)
        engine.evaluate(t)
    path = [(e["from"], e["to"]) for e in engine.transitions]
    assert path == [("inactive", "pending"), ("pending", "inactive")]
    assert engine.state("deep") == "inactive"


def test_bad_rule_never_crashes_the_evaluation_pass():
    store = TimeSeriesStore()
    store.ingest(_gauge_snap(9.0).data, t=0.0)
    # `increase` on a gauge raises inside the store; the engine must
    # treat it as "no data", not die (the sampler thread calls this)
    broken = _depth_rule(name="broken", signal="increase")
    engine = AlertEngine(store, [broken, _depth_rule()])
    (fired,) = engine.evaluate(0.0)
    assert fired["rule"] == "deep"
    assert engine.state("broken") == "inactive"


def test_duplicate_rule_names_rejected():
    store = TimeSeriesStore()
    with pytest.raises(ValueError):
        AlertEngine(store, [_depth_rule(), _depth_rule()])


# -- burn rate -----------------------------------------------------------------


def test_burn_rate_needs_every_window_breached():
    rule = AlertRule(name="burn", kind="burn_rate", objective=0.9,
                     windows=((8.0, 2.0), (2.0, 2.0)))
    store = TimeSeriesStore()
    engine = AlertEngine(store, [rule])
    # healthy traffic: no burn
    store.ingest(_slo_snap(ok=8, error=0).data, t=0.0)
    assert engine.evaluate(0.0) == []
    # a small error blip breaches the short window but not the long
    # one (the budget is not really being consumed) -> still inactive
    store.ingest(_slo_snap(ok=8, error=1).data, t=6.0)
    assert engine.evaluate(6.0) == []
    assert engine.state("burn") == "inactive"
    # errors keep flowing: both windows burn -> fires
    store.ingest(_slo_snap(ok=8, error=9).data, t=7.0)
    (fired,) = engine.evaluate(7.0)
    assert fired["to"] == "firing"
    # display value is the most conservative (minimum) window burn
    assert fired["value"] >= 2.0
    # recovery: only-ok traffic drains the long window -> resolves
    store.ingest(_slo_snap(ok=100, error=9).data, t=12.0)
    transitions = engine.evaluate(12.0)
    assert [e["to"] for e in transitions] == ["resolved"]


def test_burn_rate_tenant_filter_ignores_other_tenants():
    rule = AlertRule(name="burn-b", kind="burn_rate", objective=0.9,
                     windows=((4.0, 1.0),), tenant="b")
    store = TimeSeriesStore()
    engine = AlertEngine(store, [rule])
    reg = MetricRegistry()
    reg.counter("slo_requests_total").inc(10, tenant="a", status="error")
    reg.counter("slo_requests_total").inc(10, tenant="b", status="ok")
    store.ingest(reg.snapshot().data, t=1.0)
    assert engine.evaluate(1.0) == []  # tenant-a's errors are not b's burn


# -- anomaly --------------------------------------------------------------------


def test_anomaly_rule_fires_on_the_spike():
    rule = AlertRule(name="spike", kind="anomaly", metric="depth",
                     threshold=3.5)
    store = TimeSeriesStore()
    engine = AlertEngine(store, [rule])
    for i in range(8):
        store.ingest(_gauge_snap(2.0 + 0.1 * (i % 2)).data, t=float(i))
        assert engine.evaluate(float(i)) == []
    store.ingest(_gauge_snap(60.0).data, t=8.0)
    (fired,) = engine.evaluate(8.0)
    assert fired["to"] == "firing" and fired["value"] > 3.5


# -- sinks and dumps -------------------------------------------------------------


def test_sinks_receive_transitions_and_jsonl_sink_appends(tmp_path):
    store = TimeSeriesStore()
    seen: list[dict] = []
    jsonl = JsonlSink(tmp_path / "alerts.jsonl")
    engine = AlertEngine(store, [_depth_rule()], sinks=[seen.append, jsonl])
    store.ingest(_gauge_snap(9.0).data, t=1.0)
    engine.evaluate(1.0)
    store.ingest(_gauge_snap(1.0).data, t=2.0)
    engine.evaluate(2.0)
    engine.close()
    assert [e["to"] for e in seen] == ["firing", "resolved"]
    lines = (tmp_path / "alerts.jsonl").read_text().splitlines()
    assert [json.loads(line)["to"] for line in lines] == [
        "firing", "resolved",
    ]
    text = format_transition(seen[0])
    assert "ALERT deep" in text and "inactive -> firing" in text
    # a value-less transition formats as '-'
    assert format_transition({**seen[0], "value": None}).endswith("value=-")


def test_firing_dumps_the_flight_recorder(tmp_path):
    recorder = FlightRecorder(capacity=16)
    recorder.note("tick", seq=1)
    store = TimeSeriesStore()
    noted: list = []
    engine = AlertEngine(
        store, [_depth_rule(name="deep rule!")], recorder=recorder,
        dump_dir=tmp_path, on_dump=noted.append,
    )
    store.ingest(_gauge_snap(9.0).data, t=1.0)
    engine.evaluate(1.0)
    (path,) = engine.dumps
    assert noted == [path]
    assert path.name.startswith("postmortem-alert-deep-rule")
    doc = json.loads(path.read_text())
    assert doc["alert"]["rule"] == "deep rule!"
    assert doc["alert"]["value"] == 9.0 and doc["alert"]["t"] == 1.0
    assert doc["events"]  # the ring as it was when the alert fired
    # resolution does not dump; a re-fire dumps again
    store.ingest(_gauge_snap(1.0).data, t=2.0)
    engine.evaluate(2.0)
    store.ingest(_gauge_snap(9.0).data, t=3.0)
    engine.evaluate(3.0)
    assert len(engine.dumps) == 2


# -- replay ------------------------------------------------------------------------


def test_replay_is_deterministic_and_matches_live(tmp_path):
    store = TimeSeriesStore()
    engine = AlertEngine(store, [_depth_rule(for_s=1.0)])
    for t, v in [(0.0, 1.0), (1.0, 9.0), (2.0, 9.0), (3.0, 1.0)]:
        store.ingest(_gauge_snap(v).data, t=t)
        engine.evaluate(t)
    series = store.to_jsonl(tmp_path / "series.jsonl")

    def run(log_name: str) -> str:
        sink = JsonlSink(tmp_path / log_name)
        transitions = replay_rules([_depth_rule(for_s=1.0)], series,
                                   sinks=[sink])
        sink.close()
        assert transitions == engine.transitions  # replay == live
        return (tmp_path / log_name).read_text()

    assert run("a.jsonl") == run("b.jsonl")  # byte-identical logs
