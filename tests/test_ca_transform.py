"""The automatic-CA transform (the paper's future-work feature)."""

import numpy as np
import pytest

from repro.core.base_parsec import build_base_graph
from repro.machine.machine import nacl
from repro.runtime.ca_transform import (
    CATransformError,
    apply_communication_avoidance,
    plan,
    transform_build,
)
from repro.runtime.engine import Engine

from .conftest import random_problem


def base_build(n=24, nodes=4, tile=4, T=6, seed=0):
    prob = random_problem(n=n, iterations=T, seed=seed)
    return build_base_graph(prob, nacl(nodes), tile=tile, with_kernels=False)


def test_transform_preserves_problem_and_partition():
    b = base_build()
    ca_spec = apply_communication_avoidance(b.spec, steps=3)
    assert ca_spec.steps == 3
    assert ca_spec.problem is b.spec.problem
    assert ca_spec.partition == b.spec.partition


def test_transform_validation():
    b = base_build()
    with pytest.raises(ValueError):
        apply_communication_avoidance(b.spec, steps=0)
    with pytest.raises(ValueError, match="smallest tile"):
        apply_communication_avoidance(b.spec, steps=9)
    ca_spec = apply_communication_avoidance(b.spec, steps=2)
    with pytest.raises(ValueError, match="base"):
        apply_communication_avoidance(ca_spec, steps=3)
    with pytest.raises(TypeError):
        apply_communication_avoidance("not a spec", steps=2)


def test_transform_raises_typed_error_on_oversized_steps():
    """Regression: steps > min tile dimension must fail in the
    transform itself with a typed error, not leak an untyped
    ValueError out of the spec constructor."""
    b = base_build()  # tile=4, so the smallest tile dimension is 4
    with pytest.raises(CATransformError, match="smallest tile dimension"):
        apply_communication_avoidance(b.spec, steps=5)
    with pytest.raises(CATransformError):
        apply_communication_avoidance(b.spec, steps=0)
    assert issubclass(CATransformError, ValueError)  # old catches still work
    # The boundary case (steps == min dim) remains legal.
    assert apply_communication_avoidance(b.spec, steps=4).steps == 4


def test_plan_quantifies_replication():
    b = base_build()
    p = plan(b.spec, steps=3)
    assert p.steps == 3
    assert p.boundary_tiles == 20 and p.interior_tiles == 16
    assert p.extra_ghost_bytes > 0
    # 24 remote edges per superstep: 24 deep strips + corner blocks vs
    # 24 * 3 base messages (corners weigh heavily on this tiny config).
    assert 0.0 < p.messages_saved_fraction < 0.9
    # Deeper steps amortise the corners away.
    deeper = plan(b.spec, steps=4)
    assert deeper.messages_saved_fraction > p.messages_saved_fraction
    assert deeper.extra_ghost_bytes > p.extra_ghost_bytes


def test_transformed_build_is_numerically_exact():
    prob = random_problem(n=24, iterations=7, seed=5)
    machine = nacl(4)
    base = build_base_graph(prob, machine, tile=4, with_kernels=False)
    ca = transform_build(base, machine, steps=3)
    rep = Engine(ca.graph, machine, execute=True).run()
    assert np.array_equal(ca.assemble_grid(rep.results), prob.reference_solution())


def test_transformed_build_saves_messages():
    prob = random_problem(n=24, iterations=6, seed=2)
    machine = nacl(4)
    base = build_base_graph(prob, machine, tile=4, with_kernels=False)
    ca = transform_build(base, machine, steps=3, with_kernels=False)
    assert ca.graph.census().remote_messages < base.graph.census().remote_messages
    assert ca.name == "ca-auto"
