"""The bounded time-series store (``repro.obs.timeseries``) in
isolation: ingest discipline, ring eviction, the derived signals the
alert engine consumes (increase / rate / ewma / windowed quantiles /
MAD z-scores), the deterministic JSONL export, and the sampler thread
that feeds the store from a live registry.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricRegistry, TelemetrySampler, TimeSeriesStore
from repro.obs.timeseries import SERIES_KIND, read_series_jsonl


def _snap(counter=None, gauge=None, hist=None):
    """One registry snapshot with the given cumulative state."""
    reg = MetricRegistry()
    if counter:
        for labels, value in counter.items():
            reg.counter("req_total").inc(value, **dict(labels))
    if gauge is not None:
        reg.gauge("depth").set(gauge)
    if hist:
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for labels, values in hist.items():
            for v in values:
                h.observe(v, **dict(labels))
    return reg.snapshot()


def _feed(store, frames):
    """Ingest ``frames`` of ``(t, snapshot)`` in order."""
    for t, snap in frames:
        store.observe(snap, t=t, wall=1000.0 + t)


# -- ingest discipline -----------------------------------------------------


def test_capacity_floor_and_monotone_sample_times():
    with pytest.raises(ValueError):
        TimeSeriesStore(capacity=1)
    store = TimeSeriesStore(capacity=4)
    store.observe(_snap(gauge=1.0), t=1.0)
    with pytest.raises(ValueError):
        store.observe(_snap(gauge=2.0), t=1.0)  # same instant
    with pytest.raises(ValueError):
        store.observe(_snap(gauge=2.0), t=0.5)  # going backwards
    store.observe(_snap(gauge=2.0), t=1.5)
    assert len(store) == 2


def test_ring_evicts_but_samples_counts_everything():
    store = TimeSeriesStore(capacity=4)
    for i in range(10):
        store.observe(_snap(gauge=float(i)), t=float(i))
    assert len(store) == 4
    assert store.samples == 10
    assert [t for t, _ in store.points("depth")] == [6.0, 7.0, 8.0, 9.0]
    assert store.latest_time() == 9.0
    assert store.latest("depth") == 9.0


def test_observe_records_live_progress_as_gauges():
    store = TimeSeriesStore()
    snap = _snap(gauge=1.0)
    store.observe(snap, live={"workers": 2, "phase": "solve"}, t=1.0)
    assert store.kind("live_workers") == "gauge"
    assert store.latest("live_workers") == 2.0
    assert "live_phase" not in store.names()  # non-numeric fields dropped


# -- derived signals --------------------------------------------------------


def test_increase_and_rate_over_trailing_window():
    store = TimeSeriesStore()
    _feed(store, [
        (0.0, _snap(counter={(("tenant", "a"),): 10})),
        (1.0, _snap(counter={(("tenant", "a"),): 14})),
        (2.0, _snap(counter={(("tenant", "a"),): 20})),
    ])
    # the series is born inside a 10 s window: its whole cumulative
    # value counts (the counter started from zero inside the window)
    assert store.increase("req_total", 10.0) == 20.0
    assert store.rate("req_total", 10.0) == pytest.approx(10.0)
    # a window that starts after the birth sees only the delta
    assert store.increase("req_total", 1.9) == 6.0
    assert store.rate("req_total", 1.9) == pytest.approx(6.0)
    # labels select one cell; a missing cell is None
    assert store.increase("req_total", 1.9, tenant="a") == 6.0
    assert store.increase("req_total", 10.0, tenant="zz") is None
    with pytest.raises(ValueError):
        store.increase("req_total", 0.0)


def test_counter_born_inside_window_counts_from_zero():
    store = TimeSeriesStore()
    store.observe(_snap(counter={(("tenant", "a"),): 5}), t=0.0)
    reg = MetricRegistry()
    reg.counter("req_total").inc(5, tenant="a")
    reg.counter("req_total").inc(7, tenant="b")  # born at t=10
    store.observe(reg.snapshot(), t=10.0)
    per_cell = store.cell_increases("req_total", 5.0, now=10.0)
    # tenant-b was born inside the window: its cumulative 7 all counts;
    # tenant-a predates the window and did not move inside it
    assert per_cell == {(("tenant", "a"),): 0.0, (("tenant", "b"),): 7.0}
    # a window containing both births counts both from zero
    assert store.increase("req_total", 20.0, now=10.0) == 12.0
    # kind mismatch raises instead of returning a wrong number
    store.observe(_snap(gauge=3.0), t=11.0)
    with pytest.raises(ValueError):
        store.increase("depth", 5.0)


def test_ewma_weights_irregular_intervals():
    store = TimeSeriesStore()
    _feed(store, [
        (0.0, _snap(gauge=0.0)),
        (1.0, _snap(gauge=10.0)),
        (100.0, _snap(gauge=4.0)),  # long gap: old state forgotten
    ])
    smoothed = store.ewma("depth", tau_s=5.0)
    assert smoothed == pytest.approx(4.0, abs=0.01)
    # multi-cell gauges are ambiguous without labels
    reg = MetricRegistry()
    reg.gauge("inflight").set(1, tenant="a")
    reg.gauge("inflight").set(2, tenant="b")
    store.observe(reg.snapshot(), t=101.0)
    with pytest.raises(ValueError):
        store.ewma("inflight")
    assert store.ewma("inflight", tenant="b") == 2.0


def test_window_quantile_sees_only_in_window_observations():
    store = TimeSeriesStore()
    # cumulative states: fast observations early, slow ones late
    _feed(store, [
        (0.0, _snap(hist={(): [0.05, 0.05, 0.05]})),
        (10.0, _snap(hist={(): [0.05, 0.05, 0.05, 5.0, 5.0, 5.0]})),
    ])
    lifetime = store.window_quantile("lat_seconds", 0.5, window_s=100.0)
    recent = store.window_quantile("lat_seconds", 0.5, window_s=5.0)
    # the trailing window holds only the three slow points
    assert recent > 1.0 >= lifetime
    # nothing new in the window -> None, not a stale number
    store.observe(_snap(hist={(): [0.05, 0.05, 0.05, 5.0, 5.0, 5.0]}),
                  t=20.0)
    assert store.window_quantile("lat_seconds", 0.5, window_s=5.0,
                                 now=20.0) is None


def test_window_quantile_merges_labelled_cells():
    store = TimeSeriesStore()
    store.observe(_snap(hist={
        (("tenant", "a"),): [0.05, 0.05],
        (("tenant", "b"),): [5.0, 5.0],
    }), t=1.0)
    merged = store.window_quantile("lat_seconds", 0.75, window_s=10.0)
    only_a = store.window_quantile("lat_seconds", 0.75, window_s=10.0,
                                   tenant="a")
    assert only_a <= 0.1 < 1.0 < merged


def test_mad_z_flags_the_spike_and_tolerates_flat_history():
    store = TimeSeriesStore()
    for i in range(8):
        store.observe(_snap(gauge=2.0 + 0.1 * (i % 2)), t=float(i))
    calm = store.mad_z("depth")
    store.observe(_snap(gauge=50.0), t=8.0)
    spiked = store.mad_z("depth")
    assert abs(calm) < 3.5 < spiked
    # dead-flat history: nothing is anomalous against a flat line
    flat = TimeSeriesStore()
    for i in range(6):
        flat.observe(_snap(gauge=1.0), t=float(i))
    assert flat.mad_z("depth") == 0.0
    # below 4 points the score is undefined
    short = TimeSeriesStore()
    for i in range(3):
        short.observe(_snap(gauge=float(i)), t=float(i))
    assert short.mad_z("depth") is None


def test_mad_z_scores_counters_on_per_interval_increments():
    store = TimeSeriesStore()
    # steady +1/s for 8 samples, then a +50 burst
    for i in range(8):
        store.observe(_snap(counter={(): i}), t=float(i))
    store.observe(_snap(counter={(): 7 + 50}), t=8.0)
    assert store.mad_z("req_total") > 3.5


# -- export / import ---------------------------------------------------------


def test_jsonl_round_trip_is_byte_identical(tmp_path):
    store = TimeSeriesStore(capacity=16)
    _feed(store, [
        (0.0, _snap(counter={(("tenant", "a"),): 1}, gauge=2.0,
                    hist={(): [0.5]})),
        (1.0, _snap(counter={(("tenant", "a"),): 3}, gauge=1.0,
                    hist={(): [0.5, 2.0]})),
    ])
    first = store.to_jsonl(tmp_path / "series.jsonl")
    text = first.read_text()
    header, samples = read_series_jsonl(first)
    assert header["kind"] == SERIES_KIND and len(samples) == 2
    rebuilt = TimeSeriesStore.from_jsonl(first)
    assert rebuilt.to_jsonl(tmp_path / "again.jsonl").read_text() == text
    # derived signals survive the round trip
    assert rebuilt.increase("req_total", 10.0) == store.increase(
        "req_total", 10.0
    )


def test_read_series_jsonl_rejects_foreign_files(tmp_path):
    bogus = tmp_path / "x.jsonl"
    bogus.write_text('{"kind": "something-else"}\n')
    with pytest.raises(ValueError):
        read_series_jsonl(bogus)
    (tmp_path / "empty.jsonl").write_text("")
    with pytest.raises(ValueError):
        read_series_jsonl(tmp_path / "empty.jsonl")


# -- the sampler --------------------------------------------------------------


def test_sampler_feeds_store_and_fires_on_sample():
    reg = MetricRegistry()
    reg.counter("req_total").inc(3)
    store = TimeSeriesStore()
    seen: list[float] = []
    got_two = threading.Event()

    def on_sample(t: float) -> None:
        seen.append(t)
        if len(seen) >= 2:
            got_two.set()

    sampler = TelemetrySampler(
        reg, store, interval_s=0.02,
        progress=lambda: {"workers": 2}, on_sample=on_sample,
    )
    with sampler:
        assert got_two.wait(5.0)
    # stop() took a final sample on top of the periodic ones
    assert store.samples >= 3
    assert store.latest("req_total") == 3.0
    assert store.latest("live_workers") == 2.0
    assert seen == sorted(seen)  # monotonic sample times
    with pytest.raises(ValueError):
        TelemetrySampler(reg, store, interval_s=0.0)


def test_sampler_survives_progress_failures():
    reg = MetricRegistry()
    store = TimeSeriesStore()

    def bad_progress():
        raise RuntimeError("service tearing down")

    sampler = TelemetrySampler(reg, store, interval_s=0.01,
                               progress=bad_progress)
    assert sampler.sample() is not None
    assert len(store) == 1  # the snapshot still landed, sans live gauges
    assert store.names() == []  # empty registry, no live_* series
