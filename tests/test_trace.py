"""Trace capture and analysis."""

import pytest

from repro.runtime.engine import Engine
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Flow
from repro.runtime.trace import (
    Span,
    Trace,
    idle_fraction_timeline,
    kind_statistics,
)

from .test_engine import simple_machine


def make_trace():
    t = Trace()
    t.record(0, 0, "interior", 0.0, 1.0)
    t.record(0, 0, "interior", 1.0, 2.0)
    t.record(0, 1, "boundary", 0.0, 3.0)
    t.record(0, -1, "send", 0.5, 0.6)
    t.record(1, 0, "interior", 0.0, 0.5)
    return t


def test_span_validation():
    with pytest.raises(ValueError):
        Span(0, 0, "x", 2.0, 1.0)
    assert Span(0, 0, "x", 1.0, 3.0).duration == 2.0


def test_selection_helpers():
    t = make_trace()
    assert len(t.for_node(0)) == 4
    assert len(t.compute_spans()) == 4
    assert len(t.comm_spans()) == 1
    assert t.kinds() == {"interior", "boundary", "send"}
    assert t.makespan() == 3.0


def test_median_and_busy():
    t = make_trace()
    assert t.median_duration("interior") == pytest.approx(1.0)
    assert t.busy_time(node=0) == pytest.approx(1 + 1 + 3)
    assert t.busy_time(node=0, compute_only=False) == pytest.approx(5.1)


def test_occupancy():
    t = make_trace()
    # node 0: workers busy 5.0 of 2 workers x 3.0 horizon.
    assert t.occupancy(0, workers=2) == pytest.approx(5.0 / 6.0)
    with pytest.raises(ValueError):
        t.occupancy(0, workers=0)


def test_validate_no_overlap_passes_engine_traces():
    g = TaskGraph()
    for i in range(20):
        inputs = (Flow(i - 4, "o", 8),) if i >= 4 else ()
        g.add_task(i, node=i % 2, cost=0.01, inputs=inputs, out_nbytes={"o": 8})
    eng = Engine(g, simple_machine(), trace=True)
    eng.run()
    eng.trace.validate_no_overlap()


def test_validate_no_overlap_detects_conflict():
    t = Trace()
    t.record(0, 0, "a", 0.0, 2.0)
    t.record(0, 0, "b", 1.0, 3.0)
    with pytest.raises(ValueError, match="overlapping"):
        t.validate_no_overlap()


def test_kind_statistics_sorted_by_total():
    stats = kind_statistics(make_trace())
    assert stats[0].kind == "boundary"  # 3.0 total beats interior's 2.0
    interior = next(s for s in stats if s.kind == "interior")
    assert interior.count == 3 and interior.median == pytest.approx(1.0)
    # Comm spans are excluded from compute statistics.
    assert all(s.kind != "send" for s in stats)


def test_idle_fraction_timeline():
    t = Trace()
    t.record(0, 0, "k", 0.0, 1.0)  # busy first half only
    t.record(0, 1, "k", 0.0, 2.0)  # busy throughout
    frac = idle_fraction_timeline(t, 0, workers=2, buckets=2)
    assert frac == [pytest.approx(1.0), pytest.approx(0.5)]
    with pytest.raises(ValueError):
        idle_fraction_timeline(t, 0, 2, buckets=0)


def test_disabled_trace_records_nothing():
    t = Trace()
    t.enabled = False
    t.record(0, 0, "k", 0.0, 1.0)
    assert len(t) == 0
