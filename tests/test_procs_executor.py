"""Unit and stress tests of the multiprocess executor: cross-process
payload routing, failure containment (a raising kernel must propagate
as KernelError without hanging the pool), cancellation/timeout under
load with no orphan worker processes, and argument validation."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exec import (
    ExecutionTimeout,
    ProcessExecutor,
    RunCancelled,
    execute,
    execute_procs,
    fork_available,
)
from repro.exec.procs import default_procs
from repro.runtime.engine import KernelError
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Flow, Task

pytestmark = [
    pytest.mark.skipif(not fork_available(), reason="needs POSIX fork"),
    pytest.mark.timeout(300),
]


def kernel(inputs, task):
    total = sum(v for v in inputs.values() if v is not None) or 1.0
    return {"v": total + 1.0}


def cross_diamond() -> TaskGraph:
    """a -> (b, c) -> d with the two branches on different nodes, so
    a->c and b->d are real inter-process messages."""
    g = TaskGraph()
    g.add(Task("a", node=0, kernel=kernel, out_nbytes={"v": 8}))
    g.add(Task("b", node=0, inputs=(Flow("a", "v", 8),), kernel=kernel,
               out_nbytes={"v": 8}))
    g.add(Task("c", node=1, inputs=(Flow("a", "v", 8),), kernel=kernel,
               out_nbytes={"v": 8}))
    g.add(Task("d", node=1,
               inputs=(Flow("b", "v", 8), Flow("c", "v", 8)),
               kernel=kernel, out_nbytes={"v": 8}))
    return g


def cross_chain(n: int = 12, nodes: int = 2, delay: float = 0.0) -> TaskGraph:
    """A chain that ping-pongs between nodes every task."""

    def make():
        def k(inputs, task):
            if delay:
                time.sleep(delay)
            return {"v": sum(v for v in inputs.values() if v is not None) + 1.0}

        return k

    g = TaskGraph()
    g.add(Task(0, node=0, kernel=make(), out_nbytes={"v": 8}))
    for i in range(1, n):
        g.add(Task(i, node=i % nodes, inputs=(Flow(i - 1, "v", 8),),
                   kernel=make(), out_nbytes={"v": 8}))
    return g


def assert_no_orphans(ex: ProcessExecutor) -> None:
    """Every node process must be dead once the handle resolved."""
    deadline = time.monotonic() + 10
    while any(p.is_alive() for p in ex.processes):
        if time.monotonic() > deadline:
            alive = [p.name for p in ex.processes if p.is_alive()]
            pytest.fail(f"orphan node processes survived the run: {alive}")
        time.sleep(0.05)


# -- happy path ---------------------------------------------------------


def test_cross_process_diamond_routes_payloads():
    g = cross_diamond()
    report = execute_procs(g, procs=2, jobs=1)
    assert report.tasks_run == 4
    assert report.completed == {"a", "b", "c", "d"}
    # a=2, b=c=3, d=7: the payloads really crossed the pipes.
    assert report.results[("d", "v")] == 7.0
    # a->c and b->d are remote (8 declared bytes each); a->b, c->d local.
    assert report.messages == 2
    assert report.message_bytes == 16
    assert report.wire_bytes > report.message_bytes  # pickle framing
    assert report.by_pair == {(0, 1): (2, 16)}
    assert report.procs == 2 and report.jobs == 1
    assert report.local_edges == 2


def test_matches_threads_backend_results():
    n = 14
    procs_report = execute_procs(cross_chain(n), procs=2, jobs=1)
    threads_report = execute(cross_chain(n), jobs=2)
    assert procs_report.results[(n - 1, "v")] == threads_report.results[(n - 1, "v")]
    assert procs_report.completed == threads_report.completed
    # Every node hand-over is one message.
    assert procs_report.messages == n - 1


def test_numpy_payloads_cross_processes_intact():
    payload = np.arange(6, dtype=np.float64)

    def producer(inputs, task):
        return {"x": payload.copy()}

    def consumer(inputs, task):
        return {"y": inputs[("p", "x")] * 2.0}

    g = TaskGraph()
    g.add(Task("p", node=0, kernel=producer, out_nbytes={"x": 48}))
    g.add(Task("c", node=1, inputs=(Flow("p", "x", 48),), kernel=consumer,
               out_nbytes={"y": 48}))
    report = execute_procs(g, procs=2, jobs=1)
    assert np.array_equal(report.results[("c", "y")], payload * 2.0)


def test_node_without_tasks_still_participates():
    report = execute_procs(cross_diamond(), procs=3, jobs=1)
    assert report.procs == 3
    assert report.results[("d", "v")] == 7.0


def test_per_node_worker_accounting():
    report = execute_procs(cross_chain(16), procs=2, jobs=2)
    # Global worker ids: node * jobs + wid.
    assert set(report.worker_busy) == {0, 1, 2, 3}
    assert set(report.node_busy) == {0, 1}
    assert 0 <= report.worker_occupancy <= 1


# -- failure containment ------------------------------------------------


def test_kernel_error_propagates_across_processes():
    def boom(inputs, task):
        raise RuntimeError("numerical disaster")

    g = TaskGraph()
    g.add(Task("ok", node=0, kernel=kernel, out_nbytes={"v": 8}))
    # The bad task is on node 1; node 0 would wait forever on its
    # output if the abort did not travel back.
    g.add(Task("bad", node=1, inputs=(Flow("ok", "v", 8),), kernel=boom,
               out_nbytes={"v": 8}))
    g.add(Task("waiter", node=0, inputs=(Flow("bad", "v", 8),), kernel=kernel,
               out_nbytes={}))
    ex = ProcessExecutor(g, procs=2, jobs=1)
    with pytest.raises(KernelError, match="numerical disaster"):
        ex.run()
    assert_no_orphans(ex)


def test_silent_child_death_is_reported():
    def die(inputs, task):
        import os

        os._exit(3)  # no exception, no report: the process just vanishes

    g = TaskGraph()
    g.add(Task("doomed", node=1, kernel=die, out_nbytes={}))
    g.add(Task("other", node=0, kernel=kernel, out_nbytes={"v": 8}))
    g.add(Task("waiter", node=0, inputs=(Flow("other", "v", 8),),
               kernel=lambda i, t: time.sleep(0.2) or {}, out_nbytes={}))
    ex = ProcessExecutor(g, procs=2, jobs=1)
    # Depending on what the parent notices first, the diagnosis names
    # the dead process or its closed control pipe; both identify node 1.
    with pytest.raises(KernelError,
                       match="died without reporting|closed its control pipe"):
        ex.run()
    assert_no_orphans(ex)


def test_cancel_under_load_leaves_no_orphans():
    ex = ProcessExecutor(cross_chain(400, delay=0.05), procs=2, jobs=1)
    handle = ex.start()
    time.sleep(0.3)  # let the pipeline get going
    assert handle.cancel()
    with pytest.raises(RunCancelled):
        handle.result(timeout=60)
    assert_no_orphans(ex)


def test_timeout_then_cancel_under_load():
    ex = ProcessExecutor(cross_chain(400, delay=0.05), procs=2, jobs=1)
    handle = ex.start()
    with pytest.raises(ExecutionTimeout):
        handle.result(timeout=0.2)
    assert handle.running()  # a timeout alone does not cancel
    handle.cancel()
    with pytest.raises(RunCancelled):
        handle.result(timeout=60)
    assert isinstance(handle.exception(), RunCancelled)
    assert_no_orphans(ex)


def test_stuck_kernel_is_forcibly_terminated(monkeypatch):
    """A kernel that ignores cancellation (stuck in C code, say) must
    not keep the run handle or the process alive forever."""
    monkeypatch.setattr("repro.exec.procs.JOIN_GRACE", 1.0)

    def stuck(inputs, task):
        time.sleep(120)
        return {}

    g = TaskGraph()
    g.add(Task("stuck", node=0, kernel=stuck, out_nbytes={}))
    ex = ProcessExecutor(g, procs=1, jobs=1)
    handle = ex.start()
    time.sleep(0.2)
    handle.cancel()
    with pytest.raises(RunCancelled):
        handle.result(timeout=30)
    assert_no_orphans(ex)


# -- validation and handle contract -------------------------------------


def test_default_procs_covers_used_nodes():
    assert default_procs(cross_diamond()) == 2
    assert default_procs(TaskGraph()) == 1
    ex = ProcessExecutor(cross_diamond(), jobs=1)
    assert ex.procs == 2
    report = ex.run()
    assert report.results[("d", "v")] == 7.0


def test_validation_errors():
    with pytest.raises(ValueError, match="at least one process"):
        ProcessExecutor(cross_diamond(), procs=0)
    with pytest.raises(ValueError, match="node 1 but only 1"):
        ProcessExecutor(cross_diamond(), procs=1)
    with pytest.raises(ValueError, match="worker thread"):
        ProcessExecutor(cross_diamond(), procs=2, jobs=0)


def test_timing_only_graph_rejected():
    g = TaskGraph()
    g.add(Task("p", node=0, out_nbytes={"x": 8}))
    g.add(Task("c", node=1, inputs=(Flow("p", "x", 8),)))
    with pytest.raises(ValueError, match="with_kernels=True"):
        ProcessExecutor(g, procs=2)


def test_executor_is_single_shot():
    ex = ProcessExecutor(cross_diamond(), procs=2, jobs=1)
    ex.run()
    with pytest.raises(RuntimeError, match="exactly once"):
        ex.start()


def test_per_task_futures_unavailable_across_processes():
    ex = ProcessExecutor(cross_diamond(), procs=2, jobs=1)
    handle = ex.start()
    with pytest.raises(NotImplementedError, match="process boundaries"):
        handle.future("d")
    report = handle.result(timeout=60)
    assert report.tasks_run == 4


def test_silent_child_death_raises_typed_node_lost_error():
    """Regression: a vanished child must surface as NodeLostError (not
    a bare KernelError) carrying the lost node id, so recovery layers
    can repartition without parsing message text."""
    from repro.exec import NodeLostError

    def die(inputs, task):
        import os

        os._exit(3)

    g = TaskGraph()
    g.add(Task("doomed", node=1, kernel=die, out_nbytes={}))
    g.add(Task("other", node=0, kernel=kernel, out_nbytes={"v": 8}))
    ex = ProcessExecutor(g, procs=2, jobs=1)
    with pytest.raises(NodeLostError) as info:
        ex.run()
    assert info.value.node == 1
    assert info.value.checkpoint_step is None  # no store attached
    assert_no_orphans(ex)


def test_node_lost_error_reports_last_checkpoint(tmp_path):
    """With a checkpoint store attached, the error names the sweep a
    recovery can restart from."""
    import numpy as np

    from repro.chaos import CheckpointStore
    from repro.exec import NodeLostError

    store = CheckpointStore(tmp_path)
    store.ensure_meta(ntiles=1, shape=(2, 2), cadence=1)
    store.save(5, 0, 0, np.zeros((2, 2)), r0=0, c0=0)

    def die(inputs, task):
        import os

        os._exit(3)

    g = TaskGraph()
    g.add(Task("doomed", node=1, kernel=die, out_nbytes={}))
    ex = ProcessExecutor(g, procs=2, jobs=1)
    ex.checkpoint_store = store
    with pytest.raises(NodeLostError) as info:
        ex.run()
    assert info.value.node == 1
    assert info.value.checkpoint_step == 5
    assert_no_orphans(ex)
