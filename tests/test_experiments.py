"""Experiment modules: smoke tests on tiny configurations plus the
cheap calibration checks (the full-size shape checks live in
benchmarks/)."""

import pytest

from repro.experiments import (
    NACL,
    REGISTRY,
    STAMPEDE2,
    MachineSetup,
    full_mode,
    get,
    iterations,
    setup_by_name,
)
from repro.experiments import (
    fig5_netpipe,
    fig7_strong_scaling,
    fig8_kernel_ratio,
    fig9_stepsize,
    roofline_exp,
    table1_stream,
)

TINY = MachineSetup(name="NaCL", problem_n=1152, tile=144,
                    tuning_problem_n=1152, steps=12)


def test_registry_covers_every_artifact():
    assert set(REGISTRY) == {
        "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "roofline", "headlines",
    }
    assert get("fig7").paper_artifact == "Figure 7"
    with pytest.raises(KeyError):
        get("fig11")


def test_full_mode_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert not full_mode()
    assert iterations(8, 100) == 8
    monkeypatch.setenv("REPRO_FULL", "1")
    assert full_mode()
    assert iterations(8, 100) == 100


def test_setup_lookup():
    assert setup_by_name("nacl") is NACL
    assert setup_by_name("Stampede2") is STAMPEDE2
    with pytest.raises(KeyError):
        setup_by_name("summit")


def test_paper_parameters():
    assert NACL.problem_n == 23040 and NACL.tile == 288
    assert STAMPEDE2.problem_n == 55296 and STAMPEDE2.tile == 864
    assert NACL.steps == 15
    assert NACL.machine(16).nodes == 16


def test_table1_calibrated():
    assert table1_stream.max_relative_error() < 1e-6
    assert len(table1_stream.rows()) == 4


def test_roofline_calibrated():
    assert roofline_exp.max_relative_error() < 0.05


def test_fig5_effective_peaks():
    na, s2 = fig5_netpipe.effective_peaks_gbit()
    assert na == pytest.approx(27.0) and s2 == pytest.approx(86.0)
    sizes, na_frac, s2_frac = fig5_netpipe.curves(1024, 65536)
    assert len(sizes) == 7
    assert na_frac == sorted(na_frac)


def test_fig7_sweep_tiny():
    points = fig7_strong_scaling.sweep(TINY, node_counts=(4,))
    impls = {p.impl for p in points}
    assert impls == {"petsc", "base-parsec", "ca-parsec"}
    ratios = fig7_strong_scaling.parsec_over_petsc(points)
    assert len(ratios) == 1 and ratios[0] > 1.0


def test_fig8_sweep_tiny():
    points = fig8_kernel_ratio.sweep(TINY, node_counts=(4,), ratios=(0.5, 1.0))
    assert len(points) == 2
    best = fig8_kernel_ratio.best_gain(points)
    assert best.ratio in (0.5, 1.0)
    rows = fig8_kernel_ratio.rows(TINY, node_counts=(4,), ratios=(0.5,))
    assert rows[0][0] == 4 and rows[0][1] == 0.5


def test_fig9_optimal_step_lookup():
    points = fig9_stepsize.sweep(
        TINY, node_counts=(4,), ratios=(0.5,), step_sizes=(4, 12)
    )
    opt = fig9_stepsize.optimal_step(points, nodes=4, ratio=0.5)
    assert opt.steps in (4, 12)
    with pytest.raises(KeyError):
        fig9_stepsize.optimal_step(points, nodes=16, ratio=0.5)
