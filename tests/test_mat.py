"""MPIAIJ matrices: assembly, diag/offdiag split, SpMV."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.petsclite.mat import MatAIJ
from repro.petsclite.vec import Vec, VecLayout


def random_coo(n, density, seed):
    rng = np.random.default_rng(seed)
    nnz = int(n * n * density)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.normal(size=nnz)
    return rows, cols, vals


@pytest.mark.parametrize("nranks", [1, 2, 3, 5])
def test_mult_matches_scipy(nranks):
    n = 17
    rows, cols, vals = random_coo(n, 0.2, seed=nranks)
    lay = VecLayout(n=n, nranks=nranks)
    A = MatAIJ.from_coo(lay, lay, rows, cols, vals)
    dense = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).toarray()
    x = np.random.default_rng(7).normal(size=n)
    got = A.mult(Vec.from_global(lay, x)).to_global()
    assert np.allclose(got, dense @ x, rtol=1e-13)


def test_duplicates_summed():
    lay = VecLayout(n=4, nranks=2)
    A = MatAIJ.from_coo(
        lay, lay,
        np.array([0, 0]), np.array([3, 3]), np.array([1.0, 2.0]),
    )
    x = Vec.from_global(lay, np.array([0.0, 0.0, 0.0, 1.0]))
    assert A.mult(x).to_global()[0] == pytest.approx(3.0)


def test_diag_offdiag_split():
    lay = VecLayout(n=6, nranks=2)  # rank 0 owns 0-2, rank 1 owns 3-5
    rows = np.array([0, 0, 4, 4])
    cols = np.array([1, 4, 4, 0])
    vals = np.ones(4)
    A = MatAIJ.from_coo(lay, lay, rows, cols, vals)
    assert A.blocks[0].diag.nnz == 1  # (0,1)
    assert A.blocks[0].garray.tolist() == [4]  # remote column
    assert A.blocks[1].diag.nnz == 1  # (4,4)
    assert A.blocks[1].garray.tolist() == [0]


def test_to_dense_roundtrip():
    n = 9
    rows, cols, vals = random_coo(n, 0.3, seed=2)
    lay = VecLayout(n=n, nranks=3)
    A = MatAIJ.from_coo(lay, lay, rows, cols, vals)
    dense = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).toarray()
    assert np.allclose(A.to_dense(), dense)


def test_nnz():
    lay = VecLayout(n=4, nranks=2)
    A = MatAIJ.from_coo(lay, lay, np.array([0, 1, 3]), np.array([0, 3, 1]),
                        np.ones(3))
    assert A.nnz() == 3


def test_mult_local_equals_global_rows():
    n = 12
    rows, cols, vals = random_coo(n, 0.25, seed=5)
    lay = VecLayout(n=n, nranks=4)
    A = MatAIJ.from_coo(lay, lay, rows, cols, vals)
    x = Vec.from_global(lay, np.random.default_rng(0).normal(size=n))
    full = A.mult(x).to_global()
    for rank in range(4):
        lo, hi = lay.range_of(rank)
        assert np.allclose(A.mult_local(x, rank), full[lo:hi])


def test_shape_validation():
    lay = VecLayout(n=4, nranks=2)
    with pytest.raises(ValueError):
        MatAIJ.from_coo(lay, lay, np.zeros(2), np.zeros(3), np.zeros(2))
    A = MatAIJ.from_coo(lay, lay, np.array([0]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        A.mult(Vec(VecLayout(n=4, nranks=4)))
