"""Telemetry sampling and alerting through a live
:class:`SolverService`: the zero-cost contract when sampling is off,
the sampler feeding the time-series store under real traffic, the
node-lost alert firing on a chaos kill and resolving after the retry
recovers, the JSONL alert log, and postmortem retention.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.machine.machine import nacl
from repro.obs.alerts import AlertRule
from repro.serve import (
    ServeError,
    ServiceConfig,
    SolveRequest,
    SolverService,
)

from .test_serve_pool import random_problem
from .test_serve_service import _no_serve_leftovers

pytestmark = pytest.mark.timeout(300)


def _request(problem, **overrides) -> SolveRequest:
    knobs = dict(
        impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="threads", jobs=2,
    )
    knobs.update(overrides)
    return SolveRequest(problem=problem, **knobs)


def _node_lost_rule(window_s: float = 1.0) -> AlertRule:
    return AlertRule(
        name="node-lost", kind="threshold",
        metric="serve_node_lost_total", signal="increase",
        window_s=window_s, op=">", threshold=0.0,
    )


def test_sampling_disabled_builds_nothing(tmp_path):
    problem = random_problem(24, 3, seed=41)
    config = ServiceConfig(workers=1, cache=tmp_path)  # the default
    with SolverService(config) as service:
        assert service.series is None and service.alerts is None
        service.submit(_request(problem)).result(timeout=120)
        stats = service.stats()
        with pytest.raises(ServeError):
            service.sample_now()
    assert not _no_serve_leftovers()
    assert "samples" not in stats and "alerts" not in stats


def test_sampler_feeds_the_store_under_real_traffic(tmp_path):
    problems = [random_problem(24, 3, seed=s) for s in (42, 43)]
    config = ServiceConfig(workers=2, cache=tmp_path,
                           sampling_interval_s=0.05)
    with SolverService(config) as service:
        futures = [
            service.submit(_request(p, tenant=t))
            for p, t in zip(problems, ("alice", "bob"))
        ]
        for f in futures:
            f.result(timeout=120)
        # small solves can finish before the first 50 ms tick: wait
        # for the sampler thread to land a few samples of its own
        deadline = time.monotonic() + 30
        while service.series.samples < 3 and time.monotonic() < deadline:
            time.sleep(0.02)
        stats = service.stats()
        store = service.series
    assert not _no_serve_leftovers()
    assert stats["samples"] >= 2
    assert "alerts" not in stats  # sampling without rules: no engine
    # stop() took a terminal sample: the final counter state landed
    assert store.latest("slo_requests_total") == 2.0
    assert store.increase("slo_requests_total", 300.0,
                          tenant="alice", status="ok") == 1.0
    # live progress() fields ride along as gauges
    assert store.latest("live_workers") == 2.0
    assert store.kind("serve_queue_depth") == "gauge"


def test_node_lost_alert_fires_and_resolves_after_recovery(tmp_path):
    problem = random_problem(24, 6, seed=44)
    log = tmp_path / "alerts.jsonl"
    config = ServiceConfig(
        workers=1, cache=False, retry_budget=2,
        checkpoint_dir=tmp_path / "ckpt", dump_dir=tmp_path / "dumps",
        sampling_interval_s=0.05, alert_rules=[_node_lost_rule()],
        alert_log=log,
    )
    with SolverService(config) as service:
        # the deterministic resume recipe test_serve_lifecycle.py pins:
        # jobs=1 so every sweep-3 tile checkpoints before the kill
        request = SolveRequest(
            problem=problem, impl="ca-parsec", machine=nacl(4), tile=6,
            steps=3, backend="threads", jobs=1, tenant="chaos",
            chaos_plan="kill:node=3,step=1s",
        )
        outcome = service.submit(request).result(timeout=120)
        assert outcome.recovered and outcome.retries == 1
        engine = service.alerts
        # the lost attempt bumped the counter; the next samples must
        # fire the alert, then resolve it once the window drains
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if any(e["to"] == "resolved" for e in engine.transitions):
                break
            time.sleep(0.05)
        path = [(e["rule"], e["to"]) for e in engine.transitions]
        assert ("node-lost", "firing") in path
        assert ("node-lost", "resolved") in path
        # firing dumped the flight recorder, linked into stats()
        (dump,) = engine.dumps
        assert "alert-node-lost" in dump.name
        assert str(dump) in service.stats()["postmortems"]
        doc = json.loads(dump.read_text())
        assert doc["alert"]["rule"] == "node-lost"
        assert doc["events"], "the ring travelled with the alert"
        stats = service.stats()
        assert stats["alerts"]["transitions"] >= 2
        assert stats["alerts"]["active"] == []
    assert not _no_serve_leftovers()
    # the JSONL sink recorded the full lifecycle, in order
    events = [json.loads(line) for line in log.read_text().splitlines()]
    assert [e["to"] for e in events if e["rule"] == "node-lost"] == [
        "firing", "resolved",
    ]


def test_rules_load_from_a_file_path(tmp_path):
    rules = tmp_path / "rules.json"
    rules.write_text(json.dumps({"rules": [{
        "name": "node-lost", "kind": "threshold",
        "metric": "serve_node_lost_total", "signal": "increase",
        "window_s": 1.0, "op": ">", "threshold": 0.0,
    }]}))
    config = ServiceConfig(workers=1, cache=False,
                           sampling_interval_s=0.05, alert_rules=rules)
    with SolverService(config) as service:
        assert [r.name for r in service.alerts.rules] == ["node-lost"]
        service.sample_now()
        assert service.alerts.state("node-lost") == "inactive"
    assert not _no_serve_leftovers()


def test_max_postmortems_caps_the_dump_directory(tmp_path):
    dumps = tmp_path / "dumps"
    config = ServiceConfig(workers=1, cache=False, dump_dir=dumps,
                           max_postmortems=2)
    with SolverService(config) as service:
        assert service.recorder.max_dumps == 2
        service.recorder.note("tick")
        for _ in range(5):
            service.recorder.dump(dumps, reason="flood")
    assert not _no_serve_leftovers()
    survivors = sorted(p.name for p in dumps.glob("postmortem-*.json"))
    assert survivors == ["postmortem-flood-004.json",
                         "postmortem-flood-005.json"]
    # None lifts the cap (the historical keep-everything behaviour)
    uncapped = ServiceConfig(workers=1, cache=False,
                             max_postmortems=None)
    with SolverService(uncapped) as service:
        assert service.recorder.max_dumps is None
    assert not _no_serve_leftovers()
