"""The task-graph IR: pass pipelines, invariants, and equivalence.

The load-bearing properties:

* any pipeline of structural passes keeps the solution grid
  bit-identical on every backend (sim execute, threads, processes);
* the census of the executed graph matches the PassReport's "after"
  stats -- the reports are evidence, not estimates;
* the CA-insertion pass reproduces the hand-built CA graph's message
  census exactly;
* the manager refuses rewrites that violate their declared invariants.
"""

import random

import numpy as np
import pytest

from repro.core.base_parsec import build_base_graph
from repro.core.runner import run
from repro.ir import (
    FusePass,
    PassContext,
    PassError,
    PassManager,
    canonical_pipeline,
    parse_pipeline,
    pipeline_spec,
    terminal_outputs,
)
from repro.ir.core import GraphPass
from repro.ir.rewrite import clone_task
from repro.machine.machine import nacl
from repro.runtime.ca_transform import transform_build
from repro.stencil.cost import KernelCostModel

from .conftest import random_problem


def small_build(n=24, nodes=4, tile=6, T=4, seed=0, with_kernels=True):
    prob = random_problem(n=n, iterations=T, seed=seed)
    m = nacl(nodes)
    return prob, m, build_base_graph(
        prob, m, tile=tile, cost=KernelCostModel(m), with_kernels=with_kernels
    )


# -- spec parsing ---------------------------------------------------------


def test_parse_pipeline_specs():
    passes = parse_pipeline("fuse,coarsen:factor=4,latency:horizon=3,boost=2")
    assert [p.name for p in passes] == ["fuse", "coarsen", "latency"]
    assert passes[1].factor == 4
    assert passes[2].horizon == 3 and passes[2].boost == 2
    # Canonical spec renders every parameter, sorted.
    assert pipeline_spec(passes) == (
        "fuse:max_chain=0,coarsen:factor=4,latency:boost=2,horizon=3"
    )
    # Equivalent spellings canonicalise identically.
    assert canonical_pipeline("coarsen") == canonical_pipeline("coarsen:factor=4")
    assert canonical_pipeline("") == ""
    assert canonical_pipeline(None) == ""
    assert parse_pipeline([FusePass(), "coarsen:factor=2"])[1].factor == 2


def test_parse_pipeline_rejects_garbage():
    with pytest.raises(PassError, match="unknown pass"):
        parse_pipeline("fuze")
    with pytest.raises(PassError, match="not an integer"):
        parse_pipeline("coarsen:factor=two")
    with pytest.raises(PassError, match=">= 2"):
        parse_pipeline("coarsen:factor=1")
    with pytest.raises(PassError, match="unknown parameters"):
        parse_pipeline("fuse:depth=3")
    with pytest.raises(PassError, match="duplicate"):
        parse_pipeline("latency:horizon=2,horizon=3")
    with pytest.raises(PassError, match="steps"):
        parse_pipeline("ca")  # ca requires steps=<s>
    with pytest.raises(PassError, match="empty"):
        PassManager("")


# -- structural passes ----------------------------------------------------


def test_fuse_contracts_single_tile_time_chain():
    # One tile on one node: init -> t0 -> ... -> t_last is a pure chain.
    prob, m, build = small_build(n=12, nodes=1, tile=12, T=5)
    out, report = PassManager("fuse").run(build, PassContext(machine=m, with_kernels=True))
    assert report.passes[0].notes["chains"] == 1
    assert report.passes[0].notes["members_fused"] == 5
    assert len(out.graph) == 1
    # The terminal result slot survives under the root's key.
    assert terminal_outputs(out.graph) == terminal_outputs(build.graph)


def test_fuse_max_chain_caps_component_size():
    prob, m, build = small_build(n=12, nodes=1, tile=12, T=5)
    out, report = PassManager("fuse:max_chain=2").run(
        build, PassContext(machine=m, with_kernels=True)
    )
    assert len(out.graph) == 3  # 6 tasks in chains of <= 2 members + root


def test_coarsen_groups_same_level_tasks():
    prob, m, build = small_build()
    before = build.graph.census()
    out, report = PassManager("coarsen:factor=4").run(
        build, PassContext(machine=m, with_kernels=True)
    )
    after = out.graph.census()
    assert len(out.graph) < len(build.graph)
    assert after.remote_messages < before.remote_messages
    assert after.remote_bytes == before.remote_bytes  # aggregation, not volume
    assert terminal_outputs(out.graph) == terminal_outputs(build.graph)
    rep = report.passes[0]
    assert rep.messages_saved == before.remote_messages - after.remote_messages
    assert rep.notes["super_tasks"] > 0


def test_latency_pass_only_moves_priorities():
    prob, m, build = small_build()
    out, report = PassManager("latency:horizon=2").run(
        build, PassContext(machine=m, with_kernels=True)
    )
    b, a = build.graph.census(), out.graph.census()
    assert (a.remote_messages, a.remote_bytes, a.local_edges) == (
        b.remote_messages, b.remote_bytes, b.local_edges
    )
    assert report.passes[0].notes["reprioritized"] > 0
    boosted = [
        out.graph[t.key].priority - t.priority
        for t in build.graph
        if out.graph[t.key].priority != t.priority
    ]
    assert boosted and all(d > 0 for d in boosted)


# -- the manager's verification -------------------------------------------


class _EvilPass(GraphPass):
    """Moves a task to another node but claims the census is intact."""

    name = "evil"
    preserves = ("remote_census",)

    def apply(self, build, ctx):
        from repro.ir.rewrite import rebuild_graph, with_graph

        tasks = list(build.graph)
        victim = max(tasks, key=lambda t: len(t.inputs))
        rewritten = [
            clone_task(t, node=(t.node + 1) % 2) if t.key == victim.key else t
            for t in tasks
        ]
        return with_graph(build, rebuild_graph(rewritten)), {}


def test_manager_rejects_invariant_violations():
    prob, m, build = small_build(with_kernels=False)
    manager = PassManager([_EvilPass()])
    with pytest.raises(PassError, match="violated invariant 'remote_census'"):
        manager.run(build, PassContext(machine=m))


def test_reports_match_executed_graph():
    prob, m, _ = small_build()
    result = run(prob, impl="base-parsec", machine=m, tile=6,
                 passes="fuse,coarsen:factor=4", mode="execute")
    rep = result.pass_reports
    census = result.graph.census()
    assert rep.after.remote_messages == census.remote_messages
    assert rep.after.remote_bytes == census.remote_bytes
    assert rep.after.tasks == len(result.graph)
    assert result.params["passes"] == "fuse:max_chain=0,coarsen:factor=4"


# -- end-to-end equivalence (the tentpole property) -----------------------

PIPELINE_POOL = (
    "fuse",
    "fuse:max_chain=3",
    "coarsen:factor=2",
    "coarsen:factor=4",
    "latency:horizon=2",
    "latency:horizon=4,boost=3",
)


def _random_pipelines(seed, count):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        k = rng.randint(1, 3)
        out.append(",".join(rng.sample(PIPELINE_POOL, k)))
    return out


@pytest.mark.parametrize("spec", _random_pipelines(seed=7, count=5))
def test_random_pipelines_keep_grids_bit_identical(spec):
    prob = random_problem(n=24, iterations=4, seed=3)
    m = nacl(4)
    base = run(prob, impl="base-parsec", machine=m, tile=6, mode="execute")
    for backend_kwargs in (
        dict(mode="execute"),
        dict(backend="threads", jobs=2),
    ):
        r = run(prob, impl="base-parsec", machine=m, tile=6, passes=spec,
                **backend_kwargs)
        assert np.array_equal(base.grid, r.grid), (spec, backend_kwargs)
        # Census consistency: the report's "after" is the graph that ran.
        assert (r.pass_reports.after.remote_messages
                == r.graph.census().remote_messages)


def test_pipeline_grids_identical_on_processes_backend():
    prob = random_problem(n=16, iterations=3, seed=5)
    m = nacl(2)
    base = run(prob, impl="base-parsec", machine=m, tile=4, mode="execute")
    r = run(prob, impl="base-parsec", machine=m, tile=4,
            passes="fuse,coarsen:factor=3,latency",
            backend="processes", procs=2, jobs=2)
    assert np.array_equal(base.grid, r.grid)


def test_pipelines_compose_on_ca_graphs():
    prob = random_problem(n=24, iterations=4, seed=11)
    m = nacl(4)
    base = run(prob, impl="ca-parsec", machine=m, tile=6, steps=2,
               mode="execute")
    r = run(prob, impl="ca-parsec", machine=m, tile=6, steps=2,
            passes="coarsen:factor=2,latency", mode="execute")
    assert np.array_equal(base.grid, r.grid)
    assert r.pass_reports.messages_saved >= 0


# -- CA as a pass ---------------------------------------------------------


def test_ca_pass_census_identical_to_transform_build():
    prob, m, build = small_build(n=24, nodes=4, tile=6, T=4)
    ctx = PassContext(machine=m, with_kernels=True)
    by_pass, _ = PassManager("ca:steps=2").run(build, ctx)
    by_hand = transform_build(build, m, steps=2,
                              cost=KernelCostModel(m), with_kernels=True)
    ca, cb = by_pass.graph.census(), by_hand.graph.census()
    assert ca.remote_messages == cb.remote_messages
    assert ca.remote_bytes == cb.remote_bytes
    assert ca.by_pair == cb.by_pair
    assert len(by_pass.graph) == len(by_hand.graph)


def test_ca_pass_grid_matches_hand_built_ca():
    prob = random_problem(n=24, iterations=4, seed=2)
    m = nacl(4)
    hand = run(prob, impl="ca-parsec", machine=m, tile=6, steps=2,
               mode="execute")
    auto = run(prob, impl="base-parsec", machine=m, tile=6,
               passes="ca:steps=2", mode="execute")
    assert np.array_equal(hand.grid, auto.grid)
    assert hand.graph.census().by_pair == auto.graph.census().by_pair


def test_ca_pass_demands_base_build():
    prob, m, build = small_build()
    ctx = PassContext(machine=m, with_kernels=False)
    ca_build, _ = PassManager("ca:steps=2").run(build, ctx)
    with pytest.raises(PassError, match="steps=1"):
        PassManager("ca:steps=2").run(ca_build, ctx)
    with pytest.raises(PassError, match="smallest tile"):
        PassManager("ca:steps=64").run(build, ctx)


# -- runner / tuning / serve integration ----------------------------------


def test_runner_rejects_passes_with_chaos(tmp_path):
    from repro.chaos.harness import ChaosContext
    from repro.chaos.inject import FaultInjector
    from repro.chaos.plan import parse_plan

    prob = random_problem(n=16, iterations=3, seed=0)
    injector = FaultInjector(parse_plan("delay:node=0,step=1,secs=0.001"),
                             workdir=tmp_path)
    chaos = ChaosContext(injector)
    with pytest.raises(ValueError, match="passes and chaos"):
        run(prob, impl="base-parsec", machine=nacl(2), tile=4,
            passes="fuse", chaos=chaos, backend="threads", jobs=2)


def test_runner_rejects_bad_pipeline_before_building():
    prob = random_problem(n=16, iterations=3, seed=0)
    with pytest.raises(PassError, match="unknown pass"):
        run(prob, impl="base-parsec", machine=nacl(2), tile=4, passes="bogus")


def test_ir_metrics_published():
    from repro.obs import MetricRegistry

    prob = random_problem(n=24, iterations=4, seed=0)
    reg = MetricRegistry()
    run(prob, impl="base-parsec", machine=nacl(4), tile=6,
        passes="fuse,coarsen:factor=4", metrics=reg)
    snap = reg.snapshot()
    assert snap.counter("ir_pass_applied") == 2
    assert snap.counter("ir_pass_messages_saved", **{"pass": "coarsen"}) > 0
    assert snap.gauge("ir_messages_saved") > 0


def test_candidate_passes_axis():
    from repro.tuning.space import Candidate, SearchSpace, invalid_reason

    prob = random_problem(n=24, iterations=4, seed=0)
    m = nacl(4)
    good = Candidate(tile=6, passes="fuse,coarsen:factor=4")
    assert invalid_reason(good, prob, m, "base-parsec") is None
    assert good.run_kwargs("base-parsec")["passes"] == "fuse,coarsen:factor=4"
    assert "passes=" in good.label()
    bad = Candidate(tile=6, passes="fuze")
    assert "bad pass pipeline" in invalid_reason(bad, prob, m, "base-parsec")
    ca = Candidate(tile=6, passes="ca:steps=2")
    assert "steps axis" in invalid_reason(ca, prob, m, "base-parsec")
    space = SearchSpace(tiles=(6,), pipelines=("", "fuse"))
    assert space.size == 2
    assert {c.passes for c in space.all_candidates()} == {"", "fuse"}


def test_tuning_cache_round_trips_passes(tmp_path):
    from repro.tuning.cache import TuningCache
    from repro.tuning.space import Candidate

    prob = random_problem(n=24, iterations=4, seed=0)
    m = nacl(4)
    cache = TuningCache(tmp_path / "cache.json")
    cand = Candidate(tile=6, steps=2, passes="fuse,coarsen:factor=4")
    cache.put(m, prob, "sim", "ca-parsec", cand)
    entry = cache.get(m, prob, "sim", "ca-parsec")
    assert cache.candidate_of(entry) == cand
    # Entries written before the passes axis rehydrate with no rewrite.
    del entry["passes"]
    assert cache.candidate_of(entry).passes == ""


def test_serve_request_canonicalises_passes():
    from repro.serve.request import SolveRequest

    prob = random_problem(n=16, iterations=3, seed=0)
    m = nacl(2)
    req = SolveRequest(problem=prob, machine=m, tile=4, passes="coarsen")
    assert req.passes == "coarsen:factor=4"
    plain = SolveRequest(problem=prob, machine=m, tile=4)
    assert req.signature() != plain.signature()
    assert req.batch_key() != plain.batch_key()
    with pytest.raises(ValueError, match="passes and chaos"):
        SolveRequest(problem=prob, machine=m, tile=4, passes="fuse",
                     chaos_plan="kill:node=1,step=1s")


def test_passes_token_normalisation():
    from repro.core.signature import passes_token

    assert passes_token(None) is None
    assert passes_token("") is None
    assert passes_token(" fuse , coarsen:factor=4 ") == "fuse,coarsen:factor=4"
