"""The stencil graph builder: structure, costs, numerical execution."""

import numpy as np

from repro.core.dataflow import build_stencil_graph
from repro.core.spec import StencilSpec
from repro.machine.machine import nacl
from repro.runtime.engine import Engine

from .conftest import random_problem


def build(n=24, nodes=4, tile=4, steps=3, T=7, seed=0, with_kernels=True):
    prob = random_problem(n=n, iterations=T, seed=seed)
    spec = StencilSpec.create(prob, nodes=nodes, tile=tile, steps=steps)
    return build_stencil_graph(spec, nacl(nodes), with_kernels=with_kernels)


def test_task_count():
    built = build(T=7)
    tiles = 6 * 6
    assert len(built.graph) == tiles * (7 + 1)  # init + 7 iterations


def test_kind_labels():
    built = build()
    kinds = {}
    for task in built.graph:
        kinds[task.kind] = kinds.get(task.kind, 0) + 1
    assert kinds["init"] == 36
    assert kinds["boundary"] == 20 * 7
    assert kinds["interior"] == 16 * 7


def test_message_counts_base_vs_ca():
    """Base sends every iteration; CA only at refreshes (plus corners)."""
    base = build(steps=1, T=6, with_kernels=False).graph.census()
    ca = build(steps=3, T=6, with_kernels=False).graph.census()
    # 2x2 nodes, 6x6 tiles: two internal seams x 6 tile pairs x 2
    # directions -> 24 messages per exchanging iteration.
    assert base.remote_messages == 24 * 6
    # CA: refreshes at t = 0, 3 -> 2 per seam-edge, plus corner blocks.
    deep = 24 * 2
    corners = ca.remote_messages - deep
    assert corners > 0
    assert ca.remote_messages < base.remote_messages
    # CA moves more bytes total (replication).
    assert ca.remote_bytes > base.remote_bytes


def test_redundant_flops_only_in_ca():
    base = build(steps=1, with_kernels=False).graph
    ca = build(steps=3, with_kernels=False).graph
    assert base.total_flops()[1] == 0
    assert ca.total_flops()[1] > 0
    # Useful flops identical: 9 per core point per iteration.
    assert base.total_flops()[0] == ca.total_flops()[0] == 9 * 24 * 24 * 7


def test_boundary_priority_bias():
    built = build()
    t = 3
    boundary = built.graph[("st", 2, 2, t)]
    interior = built.graph[("st", 1, 1, t)]
    assert boundary.kind == "boundary" and interior.kind == "interior"
    assert boundary.priority == interior.priority + 1
    # Earlier iterations always outrank later ones.
    assert built.graph[("st", 1, 1, t)].priority > built.graph[("st", 2, 2, t + 1)].priority


def test_execution_matches_reference():
    built = build(seed=11)
    rep = Engine(built.graph, nacl(4), execute=True).run()
    grid = built.assemble_grid(rep.results)
    ref = built.spec.problem.reference_solution()
    assert np.array_equal(grid, ref)


def test_zero_iterations_returns_initial_grid():
    prob = random_problem(n=12, iterations=0, seed=3)
    spec = StencilSpec.create(prob, nodes=4, tile=3, steps=1)
    built = build_stencil_graph(spec, nacl(4))
    rep = Engine(built.graph, nacl(4), execute=True).run()
    assert np.array_equal(built.assemble_grid(rep.results), prob.initial_grid())


def test_with_kernels_false_has_no_kernels():
    built = build(with_kernels=False)
    assert all(t.kernel is None for t in built.graph)


def test_costs_positive_and_boundary_heavier_at_refresh():
    built = build(steps=3, with_kernels=False)
    g = built.graph
    interior = g[("st", 1, 1, 0)]
    boundary_refresh = g[("st", 2, 2, 0)]
    boundary_quiet = g[("st", 2, 2, 2)]
    assert interior.cost > 0
    # Refresh tasks paste deep strips + redundant halo work.
    assert boundary_refresh.cost > boundary_quiet.cost
    assert boundary_refresh.cost > interior.cost


def test_same_node_tile_flow_is_zero_bytes():
    built = build(with_kernels=False)
    for task in built.graph:
        for flow in task.inputs:
            if flow.tag == "tile":
                assert flow.nbytes == 0
