"""Request lifecycle tracing (``repro.obs.lifecycle``) in isolation:
deterministic ids, the tracer's span/SLO fold, the flight-recorder
ring, postmortem dumps, and the combined timeline exports that hang
execution-level task spans under their lifecycle ``execute`` span.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.lifecycle import (
    ERROR_STATUSES,
    FlightRecorder,
    LifecycleTracer,
    SpanLog,
    combined_events,
    combined_otel,
    format_postmortem,
    lifecycle_events,
    load_postmortem,
    request_trace_id,
    root_span_id,
    span_id_for,
    write_timeline,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.export import build_trace

SIG = "a" * 64


# -- ids -----------------------------------------------------------------


def test_ids_are_deterministic_hex_of_the_right_width():
    tid = request_trace_id(SIG, 7)
    assert tid == request_trace_id(SIG, 7)
    assert len(tid) == 32 and int(tid, 16) >= 0
    assert request_trace_id(SIG, 8) != tid
    root = root_span_id(tid)
    assert len(root) == 16 and root == root_span_id(tid)
    sid = span_id_for(tid, "svc", "admit", 0)
    assert len(sid) == 16
    assert sid != span_id_for(tid, "svc", "admit", 1)
    # origin namespacing: a worker's counter never collides with the
    # service loop's
    assert sid != span_id_for(tid, "pool-threads-1", "admit", 0)


# -- the tracer ----------------------------------------------------------


def test_tracer_spans_parent_under_root_and_fold_slo_histograms():
    reg = MetricRegistry()
    tracer = LifecycleTracer(metrics=reg)
    tid = tracer.begin(SIG, 1, tenant="alice", t_admit=10.0)
    tracer.span(tid, "admit", 10.0, 10.001, seq=1)
    tracer.span(tid, "queued", 10.001, 10.101)
    tracer.span(tid, "execute", 10.2, 10.7, worker="w0")
    summary = tracer.finish(tid, "ok", now=11.0)
    assert summary["tenant"] == "alice"
    assert summary["queue_wait_s"] == pytest.approx(0.1)
    assert summary["exec_s"] == pytest.approx(0.5)
    assert summary["e2e_s"] == pytest.approx(1.0)
    spans = tracer.spans_of(tid)
    names = [s.name for s in spans]
    assert names == ["admit", "queued", "execute", "respond", "request"]
    root = root_span_id(tid)
    by_name = {s.name: s for s in spans}
    assert by_name["request"].span_id == root
    assert by_name["request"].parent_span_id is None
    for name in ("admit", "queued", "execute", "respond"):
        assert by_name[name].parent_span_id == root
    snap = reg.snapshot()
    h = snap.data["slo_e2e_seconds"]["values"][(("tenant", "alice"),)]
    assert h["count"] == 1 and h["sum"] == pytest.approx(1.0)
    assert snap.counter("slo_requests_total") == 1
    # idempotent: a second finish neither re-observes nor errors
    assert tracer.finish(tid, "error") is None
    assert reg.snapshot().counter("slo_requests_total") == 1


def test_tracer_error_statuses_mark_terminal_spans():
    tracer = LifecycleTracer()
    for status in ERROR_STATUSES:
        tid = tracer.begin(SIG, hash(status) % 1000, t_admit=0.0)
        tracer.finish(tid, status, now=1.0)
        by_name = {s.name: s for s in tracer.spans_of(tid)}
        assert by_name["request"].status == "error"
        assert by_name["respond"].attrs["outcome"] == status


def test_tracer_eviction_prefers_done_traces_and_bounds_memory():
    tracer = LifecycleTracer(max_traces=4)
    open_tid = tracer.begin(SIG, 0)
    for i in range(1, 10):
        tid = tracer.begin(SIG, i, t_admit=0.0)
        tracer.finish(tid, "ok", now=1.0)
    assert len(tracer) <= 4
    # the in-flight trace survived while finished ones were evicted
    assert open_tid in tracer.trace_ids()


def test_worker_span_log_allocate_then_adopt():
    log = SpanLog("worker-3")
    tid = request_trace_id(SIG, 5)
    exec_id = log.allocate(tid, "execute")
    log.span(tid, "ir_passes", 1.0, 1.2, parent_span_id=exec_id)
    log.span(tid, "execute", 1.0, 2.0, span_id=exec_id, worker="worker-3")
    tracer = LifecycleTracer()
    tracer.begin(SIG, 5, t_admit=0.5)
    tracer.adopt(log.spans)
    by_name = {s.name: s for s in tracer.spans_of(tid)}
    assert by_name["execute"].span_id == exec_id
    assert by_name["ir_passes"].parent_span_id == exec_id


# -- the flight recorder -------------------------------------------------


def test_recorder_ring_is_bounded_and_dump_round_trips(tmp_path):
    rec = FlightRecorder(capacity=8)
    tracer = LifecycleTracer(recorder=rec)
    for i in range(5):
        tid = tracer.begin(SIG, i, t_admit=0.0)
        tracer.span(tid, "admit", 0.0, 0.1)
        tracer.finish(tid, "ok", now=1.0)
    assert len(rec) == 8  # 5 * 3 events, clamped at capacity
    path = rec.dump(tmp_path, reason="worker-died",
                    error="WorkerDied('boom')", trace_ids=(tid,),
                    extra={"attempts": 2})
    doc = load_postmortem(path)
    assert doc["reason"] == "worker-died"
    assert doc["trace_ids"] == [tid]
    assert doc["attempts"] == 2
    assert len(doc["events"]) == 8
    # a second dump gets a fresh ordinal, never clobbers the first
    again = rec.dump(tmp_path, reason="worker-died")
    assert again != path and again.exists() and path.exists()


def test_recorder_ring_wraparound_keeps_newest_events():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.note("tick", seq=i)
    assert len(rec) == 4
    # the ring holds exactly the last `capacity` events, in order
    assert [e["seq"] for e in rec.events()] == [6, 7, 8, 9]
    rec.note("tick", seq=10)
    assert [e["seq"] for e in rec.events()] == [7, 8, 9, 10]


def test_recorder_concurrent_record_and_dump(tmp_path):
    import threading

    rec = FlightRecorder(capacity=256)
    stop = threading.Event()
    torn: list[str] = []

    def writer(worker: int) -> None:
        seq = 0
        while not stop.is_set():
            rec.note("tick", worker=worker, seq=seq)
            seq += 1

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
    for t in threads:
        t.start()
    try:
        paths = [rec.dump(tmp_path, reason="race") for _ in range(5)]
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert len({p.name for p in paths}) == 5  # fresh ordinal every time
    for path in paths:
        doc = load_postmortem(path)  # atomic: never a torn file
        for event in doc["events"]:
            # every event is whole -- both fields or it was torn
            if event["event"] == "tick" and (
                "worker" not in event or "seq" not in event
            ):
                torn.append(str(event))
    assert not torn
    # no stray temp files survive the dumps
    assert not list(tmp_path.glob(".pm-*"))


def test_recorder_dump_retention_prunes_oldest(tmp_path):
    rec = FlightRecorder(capacity=8, max_dumps=3)
    rec.note("tick")
    paths = [rec.dump(tmp_path, reason="flood") for _ in range(6)]
    survivors = sorted(p.name for p in tmp_path.glob("postmortem-*.json"))
    assert survivors == sorted(p.name for p in paths[-3:])
    # uncapped recorder keeps everything (the historical behaviour)
    rec2 = FlightRecorder(capacity=8)
    for _ in range(4):
        rec2.dump(tmp_path / "uncapped", reason="flood")
    assert len(list((tmp_path / "uncapped").glob("*.json"))) == 4
    with pytest.raises(ValueError):
        FlightRecorder(max_dumps=0)


def test_load_postmortem_rejects_foreign_documents(tmp_path):
    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError):
        load_postmortem(bogus)


def test_format_postmortem_blames_the_failing_span(tmp_path):
    rec = FlightRecorder()
    tracer = LifecycleTracer(recorder=rec)
    tid = tracer.begin(SIG, 1, tenant="chaos", t_admit=0.0)
    tracer.span(tid, "queued", 0.0, 0.05)
    tracer.span(tid, "execute", 0.1, 0.6, status="error",
                error="NodeLostError('node 1 lost')")
    tracer.finish(tid, "error", now=0.7)
    path = rec.dump(tmp_path, reason="node-lost", trace_ids=(tid,))
    text = format_postmortem(load_postmortem(path))
    assert "reason=node-lost" in text
    assert f"trace {tid[:16]}" in text
    assert "tenant=chaos" in text
    assert "blame: execute" in text
    assert "NodeLostError" in text


# -- combined exports (the acceptance shape) -----------------------------


def _traced_request(tracer, seq):
    tid = tracer.begin(SIG, seq, tenant="alice", t_admit=0.0)
    tracer.span(tid, "admit", 0.0, 0.01)
    tracer.span(tid, "queued", 0.01, 0.11)
    tracer.span(tid, "execute", 0.2, 1.2, worker="w0")
    tracer.finish(tid, "ok", now=1.3)
    trace = build_trace([
        (0, 0, "interior", 0.0, 0.5, ("i", 0)),
        (0, 1, "boundary", 0.5, 0.9, ("b", 0)),
        (0, -1, "send", 0.9, 1.0, ("msg", 1)),
    ])
    return tid, trace


def test_combined_otel_hangs_exec_spans_under_the_execute_span():
    tracer = LifecycleTracer()
    tid, trace = _traced_request(tracer, 1)
    spans = tracer.all_spans()
    doc = combined_otel(spans, {tid: trace})
    life = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
    exec_span = next(s for s in life if s["name"] == "execute")
    assert {s["traceId"] for s in life} == {tid}
    # the execution-level task spans ride the SAME trace id and parent
    # under the lifecycle execute span
    task_blocks = doc["resourceSpans"][1:]
    assert task_blocks
    for block in task_blocks:
        tasks = block["scopeSpans"][0]["spans"]
        assert {s["traceId"] for s in tasks} == {tid}
        ids = {s["spanId"] for s in tasks}
        roots = {s["parentSpanId"] for s in tasks} - ids
        assert roots == {exec_span["spanId"]}
        # exec timestamps land inside the execute span's window
        for s in tasks:
            assert int(s["startTimeUnixNano"]) >= int(
                exec_span["startTimeUnixNano"]
            )


def test_combined_chrome_and_otel_share_trace_ids(tmp_path):
    tracer = LifecycleTracer()
    tid, trace = _traced_request(tracer, 2)
    spans = tracer.all_spans()
    events = combined_events(spans, {tid: trace})
    chrome_tids = {
        e["args"]["trace_id"] for e in events
        if e.get("ph") == "X" and "trace_id" in e.get("args", {})
    }
    otel = combined_otel(spans, {tid: trace})
    otel_tids = {
        s["traceId"]
        for block in otel["resourceSpans"]
        for s in block["scopeSpans"][0]["spans"]
    }
    assert chrome_tids == otel_tids == {tid}
    # every task event was shifted onto the execute span's clock
    exec_ts = next(
        e["ts"] for e in events
        if e.get("ph") == "X" and e["name"] == "execute"
    )
    task_events = [e for e in events
                   if e.get("ph") == "X" and e.get("cat") != "lifecycle"]
    assert task_events
    assert all(e["ts"] >= exec_ts for e in task_events)
    written = write_timeline(
        spans, {tid: trace},
        chrome_path=tmp_path / "t.json", otel_path=tmp_path / "o.json",
    )
    assert set(written) == {"chrome", "otel"}
    chrome_doc = json.loads((tmp_path / "t.json").read_text())
    assert chrome_doc["traceEvents"]
    otel_doc = json.loads((tmp_path / "o.json").read_text())
    assert otel_doc["resourceSpans"]


def test_lifecycle_events_one_lane_per_trace():
    tracer = LifecycleTracer()
    for seq in (1, 2):
        tid = tracer.begin(SIG, seq, t_admit=0.0)
        tracer.span(tid, "admit", 0.0, 0.01)
        tracer.finish(tid, "ok", now=0.1)
    events = lifecycle_events(tracer.all_spans())
    lanes = {e["tid"] for e in events if e.get("ph") == "X"}
    assert len(lanes) == 2
    names = [e["args"]["name"] for e in events
             if e.get("ph") == "M" and e["name"] == "thread_name"]
    assert len(names) == 2
