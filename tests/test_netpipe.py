"""NetPIPE: modelled curves and the host loopback variant."""

import pytest

from repro.machine.machine import nacl, stampede2
from repro.machine.netpipe import message_sizes, model_curve, run_host_loopback


def test_message_sizes_geometric():
    sizes = message_sizes(64, 1024)
    assert sizes == [64, 128, 256, 512, 1024]
    with pytest.raises(ValueError):
        message_sizes(0, 10)
    with pytest.raises(ValueError):
        message_sizes(1024, 64)


def test_model_curve_shape():
    points = model_curve(nacl().network)
    fracs = [p.fraction_of_peak for p in points]
    assert all(f2 > f1 for f1, f2 in zip(fracs, fracs[1:]))
    # Saturates at effective/peak = 27/32.
    assert fracs[-1] == pytest.approx(27 / 32, rel=0.01)
    # Small messages are latency-bound.
    assert fracs[0] < 0.05


def test_model_curve_stampede2_saturates_higher_absolute():
    na = model_curve(nacl().network)[-1]
    s2 = model_curve(stampede2().network)[-1]
    assert s2.bandwidth > 2.5 * na.bandwidth  # 86 vs 27 Gb/s


def test_model_times_consistent_with_bandwidth():
    for p in model_curve(nacl().network, 1024, 65536):
        assert p.bandwidth == pytest.approx(p.nbytes / p.time)


def test_host_loopback_runs():
    points = run_host_loopback(min_bytes=256, max_bytes=64 * 1024, repeats=2)
    assert len(points) == 9
    assert all(p.bandwidth > 0 for p in points)
    assert max(p.fraction_of_peak for p in points) == pytest.approx(1.0)
