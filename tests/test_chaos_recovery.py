"""Property tests for chaos recovery (``repro.chaos``).

The resilience contract: under *any* seeded fault plan, a run driven
by :func:`run_with_recovery` finishes and its final grid is
bit-identical to the fault-free answer.  Jacobi is elementwise and
tile cores are exact at every sweep, so checkpoint restart -- even
onto fewer nodes with remapped ownership -- must not perturb a single
bit.  Hypothesis drives the plan seeds; every backend shares the same
interception points, so the property is asserted on the simulator and
both real executors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import (
    CheckpointStore,
    GridInit,
    parse_plan,
    random_plan,
    run_with_recovery,
)
from repro.core.runner import run
from repro.distgrid.partition import ProcessGrid, RemappedGrid
from repro.exec import fork_available
from repro.machine.machine import nacl

from .conftest import random_problem

pytestmark = pytest.mark.timeout(300)


def _baseline(problem, impl="ca-parsec", backend="sim", steps=3):
    kwargs = {} if impl == "petsc" else {"tile": 6, "steps": steps}
    return run(
        problem, impl=impl, machine=nacl(4), mode="execute",
        backend=backend, **kwargs,
    )


# -- the headline property --------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
@pytest.mark.parametrize("impl", ["ca-parsec", "base-parsec"])
def test_any_plan_recovers_bit_identical_sim(impl, seed):
    problem = random_problem(n=24, iterations=6)
    plan = random_plan(seed, nodes=4, iterations=6,
                       kinds=("kill", "delay", "slow", "drop"))
    baseline = _baseline(problem, impl=impl)
    chaos = run_with_recovery(
        problem, plan, impl=impl, machine=nacl(4), tile=6, steps=3,
        backend="sim",
    )
    assert np.array_equal(chaos.grid, baseline.grid)
    if any(r["kind"] == "kill" for r in chaos.faults):
        assert chaos.recovered
        assert chaos.attempts == len(chaos.restarts) + 1


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_any_plan_recovers_bit_identical_threads(seed):
    problem = random_problem(n=24, iterations=6)
    plan = random_plan(seed, nodes=4, iterations=6,
                       kinds=("kill", "delay", "slow"))
    baseline = _baseline(problem, backend="threads")
    chaos = run_with_recovery(
        problem, plan, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="threads", jobs=2,
    )
    assert np.array_equal(chaos.grid, baseline.grid)


# -- directed kills ---------------------------------------------------------


@pytest.mark.parametrize("backend", ["sim", "threads"])
def test_kill_at_superstep_boundary_restarts_from_checkpoint(backend, tmp_path):
    problem = random_problem(n=24, iterations=6)
    plan = parse_plan("kill:node=3,step=1s", seed=0)
    baseline = _baseline(problem, backend=backend)
    chaos = run_with_recovery(
        problem, plan, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend=backend, checkpoint_dir=tmp_path,
    )
    assert np.array_equal(chaos.grid, baseline.grid)
    assert chaos.recovered
    (restart,) = chaos.restarts
    assert restart["node"] == 3
    # the kill fires at sweep 3 (1s of s=3), right after the sweep-3
    # checkpoint completed -- recovery resumes there, not from scratch
    assert restart["checkpoint"] == 3
    assert restart["nodes_after"] == 3
    store = CheckpointStore(tmp_path / "ckpt")
    assert 3 in store.complete_steps()


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_kill_recovers_on_processes_backend():
    problem = random_problem(n=24, iterations=6)
    plan = parse_plan("kill:node=3,step=1s", seed=0)
    baseline = _baseline(problem, backend="threads")
    chaos = run_with_recovery(
        problem, plan, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="processes", jobs=1,
    )
    assert np.array_equal(chaos.grid, baseline.grid)
    assert chaos.recovered
    assert chaos.restarts[0]["nodes_after"] == 3


def test_petsc_kill_restarts_from_scratch():
    """petsc has no tile checkpoints; a lost node restarts the whole
    solve on the survivors.  Its row distribution (and hence the SpMV
    summation order) changes with the rank count, so the answer is
    numerically equal but not bit-identical -- unlike the stencil
    impls, whose tile kernels are partition-independent."""
    problem = random_problem(n=24, iterations=6)
    plan = parse_plan("kill:node=2,step=3", seed=0)
    baseline = _baseline(problem, impl="petsc", backend="threads")
    chaos = run_with_recovery(
        problem, plan, impl="petsc", machine=nacl(4), steps=1,
        backend="threads",
    )
    np.testing.assert_allclose(chaos.grid, baseline.grid, rtol=0, atol=1e-12)
    assert chaos.restarts[0]["checkpoint"] is None


def test_two_kills_two_restarts():
    problem = random_problem(n=24, iterations=6)
    plan = parse_plan("kill:node=1,step=2;kill:node=0,step=4", seed=0)
    baseline = _baseline(problem)
    chaos = run_with_recovery(
        problem, plan, impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="sim",
    )
    assert np.array_equal(chaos.grid, baseline.grid)
    assert len(chaos.restarts) == 2
    assert chaos.restarts[-1]["nodes_after"] == 2


def test_restart_budget_exhausted_raises():
    from repro.exec import NodeLostError

    problem = random_problem(n=24, iterations=6)
    plan = parse_plan("kill:node=1,step=2", seed=0)
    with pytest.raises(NodeLostError):
        run_with_recovery(
            problem, plan, impl="ca-parsec", machine=nacl(4), tile=6,
            steps=3, backend="sim", max_restarts=0,
        )


# -- the recovery building blocks ------------------------------------------


def test_remapped_grid_preserves_geometry_and_adopts_dead_blocks():
    base = ProcessGrid.square(4)
    shrunk = RemappedGrid.shrink(base, alive=[0, 1, 2])
    assert (shrunk.rows, shrunk.cols) == (base.rows, base.cols)
    assert shrunk.size == 3
    # rank 3's block is adopted by its column buddy, rank 1
    assert shrunk.mapping == (0, 1, 2, 1)
    assert shrunk.rank(1, 1) == 1
    # a whole dead column cannot be remapped safely
    assert RemappedGrid.shrink(base, alive=[1, 3]) is None
    # a whole dead *row* can: each block adopts within its column
    assert RemappedGrid.shrink(base, alive=[2, 3]).mapping == (0, 1, 0, 1)


def test_grid_init_replays_checkpoint_grid(tmp_path):
    store = CheckpointStore(tmp_path)
    store.ensure_meta(ntiles=4, shape=(8, 8), cadence=2)
    rng = np.random.default_rng(0)
    grid = rng.normal(size=(8, 8))
    for i in range(2):
        for j in range(2):
            store.save(2, i, j, grid[i * 4:(i + 1) * 4, j * 4:(j + 1) * 4],
                       r0=i * 4, c0=j * 4)
    assert store.latest_complete() == 2
    loaded = store.load_grid(2)
    assert np.array_equal(loaded, grid)
    init = GridInit(loaded)
    rows, cols = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
    assert np.array_equal(init(rows, cols), grid)


def test_incomplete_checkpoint_is_not_restartable(tmp_path):
    store = CheckpointStore(tmp_path)
    store.ensure_meta(ntiles=4, shape=(8, 8), cadence=2)
    store.save(2, 0, 0, np.zeros((4, 4)), r0=0, c0=0)
    assert store.latest_complete() is None
    assert store.complete_steps() == []
