"""Kernel cost model: roofline timing, ratio semantics, cache spill."""

import pytest

from repro.machine.machine import nacl, stampede2
from repro.stencil.cost import KernelCostModel


def test_point_time_uses_shared_bandwidth():
    m = nacl()
    cm = KernelCostModel(m)
    workers = m.node.compute_cores
    bw = m.node.worker_stream_bw(workers) * m.node.kernel_efficiency
    assert cm.point_time(100, workers) == pytest.approx(20.0 / bw)


def test_plateau_matches_paper():
    assert KernelCostModel(nacl()).node_gflops_bound(11) == pytest.approx(11.0, rel=0.05)
    assert KernelCostModel(stampede2()).node_gflops_bound(47) == pytest.approx(43.5, rel=0.05)


def test_ratio_scales_quadratically():
    m = nacl()
    full = KernelCostModel(m).update_cost(1000, 0, 1000, 11)
    tuned = KernelCostModel(m, ratio=0.5).update_cost(1000, 0, 1000, 11)
    assert tuned == pytest.approx(0.25 * full)


def test_redundant_work_charged_only_at_full_ratio():
    m = nacl()
    full = KernelCostModel(m)
    assert full.charges_redundant
    with_halo = full.update_cost(1000, 200, 1000, 11)
    without = full.update_cost(1000, 0, 1000, 11)
    assert with_halo == pytest.approx(without * 1.2)
    # Paper: the ratio simulation excludes the replicated computation.
    tuned = KernelCostModel(m, ratio=0.4)
    assert not tuned.charges_redundant
    assert tuned.update_cost(1000, 200, 1000, 11) == tuned.update_cost(1000, 0, 1000, 11)
    # Override restores it.
    forced = KernelCostModel(m, ratio=0.4, include_redundant=True)
    assert forced.charges_redundant


def test_copy_cost_not_scaled_by_ratio():
    m = nacl()
    assert KernelCostModel(m, ratio=0.2).copy_cost(1024) == pytest.approx(
        KernelCostModel(m).copy_cost(1024)
    )


def test_cache_spill_raises_bytes_per_point():
    m = nacl()  # 24 MB L3
    cm = KernelCostModel(m)
    small = cm.point_time(100 * 100, 11)
    # 1200^2 doubles: 2*8*1.44M = 23 MB working set >> 24MB/11.
    big = cm.point_time(1200 * 1200, 11)
    assert big == pytest.approx(small * 24.0 / 20.0)


def test_spill_disabled_on_stampede2():
    cm = KernelCostModel(stampede2())
    assert cm.point_time(100, 47) == cm.point_time(4000 * 4000, 47)


def test_task_cost_composes():
    m = nacl()
    cm = KernelCostModel(m)
    assert cm.task_cost(1000, 0, 4096, 1000, 11) == pytest.approx(
        cm.update_cost(1000, 0, 1000, 11) + cm.copy_cost(4096)
    )


def test_validation():
    with pytest.raises(ValueError):
        KernelCostModel(nacl(), ratio=0.0)
    with pytest.raises(ValueError):
        KernelCostModel(nacl(), ratio=1.5)
    with pytest.raises(ValueError):
        KernelCostModel(nacl(), bytes_per_point=30, bytes_per_point_spill=20)
