"""Analysis helpers: Gantt rendering, occupancy, tables."""

import pytest

from repro.analysis.gantt import legend, render_gantt
from repro.analysis.occupancy import (
    compare_occupancy,
    kind_summary,
    occupancy_report,
    utilisation_timeline,
)
from repro.analysis.tables import dicts_to_table, format_markdown, format_table
from repro.runtime.trace import Trace


def busy_trace():
    t = Trace()
    t.record(0, 0, "interior", 0.0, 4.0)
    t.record(0, 1, "boundary", 0.0, 2.0)
    t.record(0, 1, "boundary", 3.0, 4.0)
    t.record(0, -1, "send", 1.0, 1.5)
    return t


def idle_trace():
    t = Trace()
    t.record(0, 0, "interior", 0.0, 1.0)
    t.record(0, 1, "boundary", 3.0, 4.0)
    return t


def test_render_gantt_lanes_and_glyphs():
    out = render_gantt(busy_trace(), node=0, width=8)
    lines = out.splitlines()
    assert len(lines) == 4  # header + comm + 2 workers
    assert any(line.startswith(" comm") for line in lines)
    w0 = next(line for line in lines if line.startswith("  w00"))
    assert "#" in w0 and "." not in w0.split("|")[1]
    w1 = next(line for line in lines if line.startswith("  w01"))
    assert "B" in w1 and "." in w1  # idle gap visible


def test_render_gantt_empty_and_validation():
    assert render_gantt(Trace(), 0) == "(empty trace)"
    with pytest.raises(ValueError):
        render_gantt(busy_trace(), 0, width=0)
    assert "idle" in legend()


def test_occupancy_report():
    rep = occupancy_report(busy_trace(), node=0, workers=2)
    assert rep.occupancy == pytest.approx(7.0 / 8.0)
    assert rep.median_boundary_s == pytest.approx(1.5)
    assert rep.mean_task_s == pytest.approx(7.0 / 3.0)
    assert rep.makespan_s == 4.0
    assert len(rep.as_row()) == 5


def test_compare_occupancy():
    comp = compare_occupancy(idle_trace(), busy_trace(), node=0, workers=2)
    assert comp["ca_occupancy"] > comp["base_occupancy"]
    assert comp["ca_speedup"] == pytest.approx(1.0)  # same makespan
    assert comp["ca_kernel_slowdown"] == pytest.approx(1.5)


def test_kind_summary():
    rows = kind_summary(busy_trace())
    assert rows[0][0] == "interior"  # 4.0 total
    assert rows[1] == ("boundary", 2, 3.0, 1.5)


def test_utilisation_timeline():
    frac = utilisation_timeline(busy_trace(), 0, workers=2, buckets=4)
    assert frac[0] == pytest.approx(1.0)
    assert frac[2] == pytest.approx(0.5)


def test_format_table_alignment_and_rounding():
    out = format_table(("a", "bb"), [(1, 2.34567), (10, 0.5)], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "2.346" in out and "0.5" in out
    with pytest.raises(ValueError):
        format_table(("a",), [(1, 2)])


def test_format_markdown():
    out = format_markdown(("x", "y"), [(1, 2)])
    assert out.splitlines()[0] == "| x | y |"
    assert out.splitlines()[2] == "| 1 | 2 |"
    with pytest.raises(ValueError):
        format_markdown(("x",), [(1, 2)])


def test_dicts_to_table():
    out = dicts_to_table([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert "a" in out and "3" in out
    assert dicts_to_table([]) == "(no rows)"
