"""Metrics-registry semantics and cross-backend exactness.

The telemetry layer's core contract (ISSUE 4): counter / gauge /
histogram semantics, deterministic snapshots, and -- the part that
makes the numbers trustworthy -- *exact* agreement between the three
backends and the static graph census for one fixed problem:

* the sim engine's ``messages_total`` equals the census message count;
* the threads backend's ``tasks_executed_total`` equals the graph's
  task count (and the sim's);
* the procs backend's parent-side *merged* counters (one child
  registry per node process, shipped over the control pipe) equal the
  single-process totals exactly.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.base_parsec import build_base_graph
from repro.core.runner import run
from repro.distgrid.partition import ProcessGrid
from repro.exec import fork_available
from repro.machine.machine import nacl
from repro.obs import MetricRegistry, MetricsSnapshot
from repro.stencil.problem import JacobiProblem

N = 48
TILE = 24
ITERATIONS = 6
PGRID = ProcessGrid(2, 1)
MACHINE = nacl(2)
PROBLEM = JacobiProblem(n=N, iterations=ITERATIONS)


def _run(backend: str, **kwargs):
    registry = MetricRegistry()
    result = run(PROBLEM, impl="base-parsec", machine=MACHINE, tile=TILE,
                 backend=backend, pgrid=PGRID, metrics=registry, **kwargs)
    return result, result.metrics


def _census():
    built = build_base_graph(PROBLEM, MACHINE, tile=TILE, with_kernels=False,
                             pgrid=PGRID)
    built.graph.finalize()
    return built.graph


# ---------------------------------------------------------------------------
# primitive semantics
# ---------------------------------------------------------------------------


def test_counter_semantics():
    reg = MetricRegistry()
    c = reg.counter("events_total", help="h", unit="1")
    c.inc()
    c.inc(2, kind="a")
    c.inc(3, kind="b")
    c.labels(kind="a").add(4)
    assert c.value() == 1
    assert c.value(kind="a") == 6
    assert c.total() == 10
    with pytest.raises(ValueError):
        c.inc(-1)
    # get-or-make returns the same object; a kind clash is an error
    assert reg.counter("events_total") is c
    with pytest.raises(TypeError):
        reg.gauge("events_total")


def test_gauge_high_water():
    reg = MetricRegistry()
    g = reg.gauge("depth")
    g.set(3)
    g.set(7)
    g.set(2)
    assert g.value() == 2
    assert g.high_water() == 7


def test_histogram_semantics():
    reg = MetricRegistry()
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    cell = h.labels()
    assert cell.count == 5
    assert cell.sum == pytest.approx(56.05)
    assert cell.min == 0.05 and cell.max == 50.0
    # bucket layout: (-inf,0.1], (0.1,1], (1,10], (10,+inf)
    assert cell.buckets == [1, 2, 1, 1]


def test_snapshot_determinism_and_roundtrip():
    def build(order):
        reg = MetricRegistry()
        for kind, amount in order:
            reg.counter("tasks_total").inc(amount, kind=kind)
        reg.gauge("depth").set(4)
        reg.histogram("dur", buckets=(1.0,)).observe(0.5)
        return reg.snapshot()

    a = build([("x", 1), ("y", 2), ("z", 3)])
    b = build([("z", 3), ("x", 1), ("y", 2)])
    assert a.data == b.data  # recording order cannot leak into snapshots
    # JSON-safe round trip and pickling (the procs backend ships these)
    assert MetricsSnapshot.from_dict(a.as_dict()).data == a.data
    assert pickle.loads(pickle.dumps(a)).data == a.data


def test_snapshot_delta():
    reg = MetricRegistry()
    c = reg.counter("n_total")
    c.inc(5)
    before = reg.snapshot()
    c.inc(3)
    delta = reg.snapshot().delta(before)
    assert delta.counter("n_total") == 3


def test_merge_adds_counters_and_maxes_gauges():
    a, b = MetricRegistry(), MetricRegistry()
    a.counter("msgs_total").inc(4, dst="1")
    b.counter("msgs_total").inc(6, dst="1")
    b.counter("msgs_total").inc(1, dst="2")
    a.gauge("backlog").set(3)
    b.gauge("backlog").set(9)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap.counter("msgs_total") == 11
    assert snap.counter("msgs_total", dst="1") == 10
    assert snap.gauge("backlog") == 9


# ---------------------------------------------------------------------------
# cross-backend exactness
# ---------------------------------------------------------------------------


def test_sim_metrics_equal_static_census():
    graph = _census()
    census = graph.census()
    result, snap = _run("sim")
    assert snap.counter("messages_total") == census.remote_messages
    assert snap.counter("message_bytes_total") == census.remote_bytes
    assert snap.counter("messages_total") == result.messages
    assert snap.counter("tasks_executed_total") == len(graph.tasks)
    assert snap.gauge("census_messages") == census.remote_messages


def test_threads_task_counts_equal_sim():
    graph = _census()
    _, sim = _run("sim")
    _, threads = _run("threads", jobs=2)
    assert (threads.counter("tasks_executed_total")
            == sim.counter("tasks_executed_total")
            == len(graph.tasks))
    # per-kind splits agree too, not just the grand total
    assert (threads.labelled("tasks_executed_total")
            == sim.labelled("tasks_executed_total"))


@pytest.mark.skipif(not fork_available(), reason="needs POSIX fork")
@pytest.mark.timeout(600)
def test_procs_merged_counters_equal_single_process_totals():
    census = _census().census()
    _, sim = _run("sim")
    _, procs = _run("processes", procs=2, jobs=1)
    # merged child registries reproduce the single-process totals exactly
    assert (procs.counter("tasks_executed_total")
            == sim.counter("tasks_executed_total"))
    assert procs.counter("messages_total") == census.remote_messages
    assert procs.counter("messages_total") == sim.counter("messages_total")
    assert (procs.counter("message_bytes_total")
            == census.remote_bytes)
    # real pickled payloads are at least as big as the raw arrays
    assert procs.counter("wire_bytes_total") >= census.remote_bytes
    # per-pair message labels survive the merge
    by_pair = {
        (int(dict(ls)["src"]), int(dict(ls)["dst"])): int(v)
        for ls, v in procs.labelled("messages_total").items()
    }
    assert by_pair == {pair: m for pair, (m, _) in census.by_pair.items()}


def test_result_metrics_none_when_uninstrumented():
    result = run(PROBLEM, impl="base-parsec", machine=MACHINE, tile=TILE,
                 pgrid=PGRID)
    assert result.metrics is None


# -- quantiles (the SLO report's estimator) ------------------------------


def test_histogram_quantile_interpolation_and_clamping():
    from repro.obs.metrics import bucket_quantile

    reg = MetricRegistry()
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    cell = h.labels()
    # extremes clamp to the observed min/max, not the bucket bounds
    assert cell.quantile(0.0) == 0.05
    assert cell.quantile(1.0) == 50.0
    # the median lands in the (0.1, 1.0] bucket
    assert 0.1 < cell.quantile(0.5) <= 1.0
    # aggregate quantile across labelled cells matches the direct call
    assert h.quantile(0.5) == cell.quantile(0.5)
    with pytest.raises(ValueError):
        cell.quantile(1.5)
    # empty state has no quantiles
    assert bucket_quantile((1.0,), [0, 0], 0, None, None, 0.5) is None


def test_aggregate_quantile_merges_labelled_cells():
    from repro.obs.metrics import (
        merge_histogram_states,
        quantile_from_state,
    )

    reg = MetricRegistry()
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.2, 0.3):
        h.observe(v, tenant="a")
    for v in (2.0, 5.0, 8.0):
        h.observe(v, tenant="b")
    # the aggregate is the merged-state quantile, not either cell's
    snap = reg.snapshot()
    merged = merge_histogram_states(
        snap.data["latency_seconds"]["values"].values()
    )
    assert h.quantile(0.5) == quantile_from_state(merged, 0.5)
    assert h.quantile(0.5) != h.quantile(0.5, tenant="a")
    assert h.quantile(0.0) == 0.05 and h.quantile(1.0) == 8.0
    # empty histogram -> None, not an error
    assert reg.histogram("empty_seconds", buckets=(1.0,)).quantile(0.5) is None


def test_aggregate_quantile_rejects_mismatched_cell_bounds():
    reg = MetricRegistry()
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    h.observe(0.5, tenant="a")
    h.observe(0.7, tenant="b")
    # simulate a cell whose ladder disagrees (a foreign registry merged
    # the metric with another bucket layout): the aggregate must raise,
    # not silently sum positional buckets from different ladders
    cell = h.labels(tenant="b")
    cell.bounds = (9.9,)
    cell.buckets = [1, 0]
    with pytest.raises(ValueError):
        h.quantile(0.5)
    # the per-cell path is still fine
    assert h.quantile(0.5, tenant="a") == pytest.approx(0.5)


def test_merge_histogram_states_folds_and_rejects_mismatch():
    from repro.obs.metrics import (
        merge_histogram_states,
        quantile_from_state,
    )

    reg = MetricRegistry()
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    h.observe(0.05, tenant="a")
    h.observe(0.5, tenant="b")
    h.observe(0.7, tenant="b")
    snap = reg.snapshot()
    states = snap.data["latency_seconds"]["values"].values()
    merged = merge_histogram_states(states)
    assert merged["count"] == 3
    assert merged["min"] == 0.05 and merged["max"] == 0.7
    assert merged["sum"] == pytest.approx(1.25)
    assert 0.1 < quantile_from_state(merged, 0.5) <= 0.7
    assert merge_histogram_states([]) is None
    other = {"bounds": [9.9], "buckets": [0, 0], "count": 0,
             "sum": 0.0, "min": None, "max": None}
    with pytest.raises(ValueError):
        merge_histogram_states([merged, other])
