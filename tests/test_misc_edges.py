"""Edge cases across small API surfaces."""

import pytest

from repro.analysis.gantt import render_gantt
from repro.runtime.engine import EngineReport
from repro.runtime.trace import Trace

from .conftest import random_problem


def test_engine_report_empty_occupancy():
    rep = EngineReport(
        elapsed=0.0, tasks_run=0, messages=0, message_bytes=0,
        local_edges=0, local_bytes=0, useful_flops=0.0, redundant_flops=0.0,
    )
    assert rep.occupancy(4) == 0.0
    assert rep.gflops == 0.0


def test_gantt_excludes_comm_lane_on_request():
    t = Trace()
    t.record(0, 0, "interior", 0.0, 1.0)
    t.record(0, -1, "send", 0.0, 0.5)
    with_comm = render_gantt(t, 0, width=10)
    without = render_gantt(t, 0, width=10, include_comm=False)
    assert "comm" in with_comm and "comm" not in without


def test_gantt_custom_glyphs():
    t = Trace()
    t.record(0, 0, "interior", 0.0, 1.0)
    out = render_gantt(t, 0, width=4, glyphs={"interior": "@"})
    assert "@@@@" in out


def test_gantt_unknown_kind_falls_back_to_initial():
    t = Trace()
    t.record(0, 0, "mystery", 0.0, 1.0)
    out = render_gantt(t, 0, width=4)
    assert "MMMM" in out


def test_trace_median_empty():
    assert Trace().median_duration() == 0.0
    assert Trace().makespan() == 0.0


def test_runner_report_params_roundtrip(machine4):
    import repro

    prob = random_problem(n=16, iterations=3)
    res = repro.run(prob, impl="ca-parsec", machine=machine4, tile=4,
                    steps=2, mode="simulate", policy="lifo")
    d = res.to_dict()
    assert d["policy"] == "lifo" and d["steps"] == 2 and d["impl"] == "ca-parsec"
    assert d["message_mb"] == pytest.approx(res.message_bytes / 1e6)


def test_include_redundant_override_affects_time(machine16):
    import repro

    prob = repro.JacobiProblem(n=2880, iterations=4)
    excl = repro.run(prob, impl="ca-parsec", machine=machine16, tile=288,
                     steps=15, ratio=0.4, mode="simulate")
    incl = repro.run(prob, impl="ca-parsec", machine=machine16, tile=288,
                     steps=15, ratio=0.4, mode="simulate",
                     include_redundant=True)
    # Charging the replicated halo work cannot make the run faster.
    assert incl.elapsed >= excl.elapsed


def test_stream_model_row_getitem():
    from repro.machine.machine import nacl
    from repro.machine.stream import model

    row = model(nacl().node, "1-node")
    assert row["copy"] == row.copy
    with pytest.raises(KeyError):
        row["quadratic"]


def test_weak_scaling_rejects_non_square():
    from repro.experiments import weak_scaling

    with pytest.raises(ValueError, match="square"):
        weak_scaling.sweep(node_counts=(2,))


def test_projection_point_gain_zero_base():
    from repro.experiments.projection import ProjectionPoint

    assert ProjectionPoint(1.0, 0.0, 5.0).gain == 0.0
