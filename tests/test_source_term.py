"""The forcing/source term: real Poisson solves on the paper's
implementations."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runner import run
from repro.distgrid.boundary import DirichletBC
from repro.machine.machine import nacl
from repro.stencil.kernels import StencilWeights
from repro.stencil.problem import JacobiProblem
from repro.stencil.reference import jacobi_reference, residual_norm


def poisson_problem(n=31, iterations=8, omega=0.9):
    """Damped-Jacobi iteration for -Lap(u) = f with a manufactured f."""
    h = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * h
    X, Y = np.meshgrid(x, x, indexing="ij")
    u_exact = np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    f = 5.0 * np.pi**2 * u_exact

    def source(r, c):
        return omega * h * h / 4.0 * f[np.clip(r, 0, n - 1), np.clip(c, 0, n - 1)]

    prob = JacobiProblem(
        n=n, iterations=iterations,
        weights=StencilWeights.damped_jacobi(omega),
        init=0.0, bc=DirichletBC(0.0), source=source,
    )
    return prob, u_exact


def test_source_constant_and_callable():
    p = JacobiProblem(n=4, iterations=1, source=2.5)
    assert np.all(p.source_grid() == 2.5)
    q = JacobiProblem(n=4, iterations=1, source=lambda r, c: 1.0 * r)
    assert q.source_grid()[3, 0] == 3.0
    assert JacobiProblem(n=4, iterations=1).source_grid() is None


def test_source_shape_validated():
    p = JacobiProblem(n=4, iterations=1, source=lambda r, c: np.zeros(2))
    with pytest.raises(ValueError):
        p.source_grid()
    with pytest.raises(ValueError):
        jacobi_reference(np.zeros((4, 4)), StencilWeights(), 1,
                         source=np.zeros((3, 3)))


def test_reference_adds_source_each_sweep():
    grid = np.zeros((3, 3))
    src = np.full((3, 3), 1.0)
    out = jacobi_reference(grid, StencilWeights(center=1.0, north=0, south=0,
                                                west=0, east=0),
                           3, DirichletBC(0.0), source=src)
    assert np.allclose(out, 3.0)  # identity sweep + 1 per iteration


def test_all_implementations_match_with_source():
    prob, _ = poisson_problem()
    ref = prob.reference_solution()
    m = nacl(4)
    base = run(prob, impl="base-parsec", machine=m, tile=8, mode="execute")
    ca = run(prob, impl="ca-parsec", machine=m, tile=8, steps=3, mode="execute")
    petsc = run(prob, impl="petsc", machine=m, mode="execute")
    assert np.array_equal(base.grid, ref)
    assert np.array_equal(ca.grid, ref)
    assert np.allclose(petsc.grid, ref, rtol=1e-12)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 5), st.integers(1, 9))
def test_ca_with_source_property(steps, iterations):
    prob, _ = poisson_problem(n=20, iterations=iterations)
    ca = run(prob, impl="ca-parsec", machine=nacl(4), tile=5, steps=steps,
             mode="execute")
    assert np.array_equal(ca.grid, prob.reference_solution())


def test_poisson_iteration_converges_to_pde_solution():
    prob, u_exact = poisson_problem(n=31, iterations=4000)
    sol = prob.reference_solution()
    # O(h^2) discretisation accuracy once converged.
    assert np.max(np.abs(sol - u_exact)) < 5e-3
    # And the converged iterate is (near) a fixed point.
    assert residual_norm(sol, prob.weights, prob.bc, prob.source_grid()) < 1e-6


def test_fixed_point_agrees_with_multigrid():
    """Two independent solvers, one answer: the damped-Jacobi fixed
    point equals the multigrid solution of the same discrete system."""
    from repro.multigrid import solve

    n = 31
    prob, _ = poisson_problem(n=n, iterations=6000)
    jacobi = prob.reference_solution()
    h = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * h
    X, Y = np.meshgrid(x, x, indexing="ij")
    f = 5.0 * np.pi**2 * np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    mg = solve(f, rtol=1e-12)
    assert mg.converged
    assert np.max(np.abs(jacobi - mg.u)) < 1e-5
