"""Unit tests of the threaded executor: pool mechanics, futures,
cancellation, error propagation and policy plumbing."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.exec import (
    EXEC_POLICIES,
    ExecutionTimeout,
    RunCancelled,
    ThreadedExecutor,
    execute,
    make_work_queues,
)
from repro.runtime.engine import KernelError
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Flow, Task


def diamond_graph(results: list | None = None) -> TaskGraph:
    """a -> (b, c) -> d with real payloads flowing through."""

    def make(tag_out, delay=0.0):
        def kernel(inputs, task):
            if delay:
                time.sleep(delay)
            total = sum(v for v in inputs.values() if v is not None) or 1.0
            if results is not None:
                results.append(task.key)
            return {tag_out: total + 1.0}

        return kernel

    g = TaskGraph()
    g.add(Task("a", node=0, kernel=make("x"), out_nbytes={"x": 8}))
    g.add(Task("b", node=0, inputs=(Flow("a", "x", 8),), kernel=make("y"),
               out_nbytes={"y": 8}))
    g.add(Task("c", node=0, inputs=(Flow("a", "x", 8),), kernel=make("z"),
               out_nbytes={"z": 8}))
    g.add(Task("d", node=0,
               inputs=(Flow("b", "y", 8), Flow("c", "z", 8)),
               kernel=make("w"), out_nbytes={"w": 8}))
    return g


def chain_graph(n: int = 20) -> TaskGraph:
    def kernel(inputs, task):
        val = sum(v for v in inputs.values() if v is not None)
        return {"v": val + 1.0}

    g = TaskGraph()
    g.add(Task(0, node=0, kernel=kernel, out_nbytes={"v": 8}))
    for i in range(1, n):
        g.add(Task(i, node=0, inputs=(Flow(i - 1, "v", 8),), kernel=kernel,
                   out_nbytes={"v": 8}))
    return g


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("policy", sorted(EXEC_POLICIES))
def test_diamond_runs_and_routes_payloads(jobs, policy):
    report = execute(diamond_graph(), jobs=jobs, policy=policy)
    assert report.tasks_run == 4
    assert report.completed == {"a", "b", "c", "d"}
    # a=2, b=c=3, d=7: payloads really flowed producer -> consumer.
    assert report.results[("d", "w")] == 7.0
    assert report.jobs == jobs
    assert report.elapsed > 0


def test_dependency_order_respected():
    order: list = []
    execute(diamond_graph(order), jobs=4)
    assert order.index("a") == 0
    assert order.index("d") == 3


def test_chain_serialises_even_with_many_workers():
    report = execute(chain_graph(30), jobs=4)
    assert report.results[(29, "v")] == 30.0


def test_terminal_outputs_kept_intermediates_freed():
    g = diamond_graph()
    ex = ThreadedExecutor(g, jobs=2)
    report = ex.run()
    # Only d's output is terminal; the store drained completely.
    assert set(report.results) == {("d", "w")}
    assert ex._store == {}


def test_worker_busy_and_occupancy_accounting():
    report = execute(diamond_graph(), jobs=2)
    assert set(report.worker_busy) == {0, 1}
    assert 0 <= report.worker_occupancy <= 1
    assert report.node_busy[0] == pytest.approx(sum(report.worker_busy.values()))


def test_kernel_error_propagates_with_task_identity():
    def boom(inputs, task):
        raise RuntimeError("numerical disaster")

    g = TaskGraph()
    g.add(Task("ok", node=0, kernel=lambda i, t: {"x": 1.0}, out_nbytes={"x": 8}))
    g.add(Task("bad", node=0, inputs=(Flow("ok", "x", 8),), kernel=boom))
    with pytest.raises(KernelError, match="'bad'.*numerical disaster"):
        execute(g, jobs=2)


def test_timing_only_graph_rejected():
    g = TaskGraph()
    g.add(Task("p", node=0, out_nbytes={"x": 8}))
    g.add(Task("c", node=0, inputs=(Flow("p", "x", 8),)))
    with pytest.raises(ValueError, match="with_kernels=True"):
        ThreadedExecutor(g, jobs=1)


def test_invalid_jobs_and_policy_rejected():
    g = diamond_graph()
    with pytest.raises(ValueError, match="worker thread"):
        ThreadedExecutor(g, jobs=0)
    with pytest.raises(ValueError, match="unknown execution policy"):
        ThreadedExecutor(g, policy="round-robin")


def test_executor_is_single_shot():
    ex = ThreadedExecutor(diamond_graph(), jobs=1)
    ex.run()
    with pytest.raises(RuntimeError, match="exactly once"):
        ex.start()


def test_task_future_resolves_with_record():
    ex = ThreadedExecutor(diamond_graph(), jobs=2)
    handle = ex.start()
    record = handle.future("d").result(timeout=30)
    assert record.key == "d" and record.kind == "task"
    assert record.end >= record.start >= 0
    report = handle.result(timeout=30)
    assert handle.done() and not handle.running()
    assert handle.exception() is None
    assert report.tasks_run == 4


def test_result_timeout_without_cancel():
    gate = threading.Event()

    def slow(inputs, task):
        gate.wait(30)
        return {"x": 1.0}

    g = TaskGraph()
    g.add(Task("slow", node=0, kernel=slow, out_nbytes={}))
    handle = ThreadedExecutor(g, jobs=1).start()
    with pytest.raises(ExecutionTimeout):
        handle.result(timeout=0.05)
    assert handle.running()  # timeout does not cancel
    gate.set()
    report = handle.result(timeout=30)
    assert report.tasks_run == 1


def test_cancel_stops_remaining_work():
    started = threading.Event()
    release = threading.Event()

    def first(inputs, task):
        started.set()
        release.wait(30)
        return {"v": 1.0}

    def never(inputs, task):  # pragma: no cover - must not run
        return {"v": 2.0}

    g = TaskGraph()
    g.add(Task("first", node=0, kernel=first, out_nbytes={"v": 8}))
    g.add(Task("second", node=0, inputs=(Flow("first", "v", 8),), kernel=never,
               out_nbytes={}))
    handle = ThreadedExecutor(g, jobs=1).start()
    started.wait(30)
    assert handle.cancel()
    release.set()
    with pytest.raises(RunCancelled):
        handle.result(timeout=30)
    assert isinstance(handle.exception(), RunCancelled)
    # The pending task's future fails rather than hanging forever.
    with pytest.raises(RunCancelled):
        handle.future("second").result(timeout=30)
    assert handle.cancel() is False  # already finished


def test_outputs_published_read_only():
    seen = {}

    def producer(inputs, task):
        return {"x": np.ones(4)}

    def consumer(inputs, task):
        arr = inputs[("p", "x")]
        seen["writeable"] = arr.flags.writeable
        return {}

    g = TaskGraph()
    g.add(Task("p", node=0, kernel=producer, out_nbytes={"x": 32}))
    g.add(Task("c", node=0, inputs=(Flow("p", "x", 32),), kernel=consumer,
               out_nbytes={}))
    execute(g, jobs=2)
    assert seen["writeable"] is False


def test_work_stealing_actually_steals():
    # Many independent tasks seeded onto few queues: with 4 workers
    # some must steal to keep busy.
    def kernel(inputs, task):
        time.sleep(0.001)
        return {}

    g = TaskGraph()
    for i in range(40):
        g.add(Task(i, node=0, kernel=kernel, out_nbytes={}))
    report = execute(g, jobs=4, policy="lifo")
    assert report.tasks_run == 40
    assert report.steals >= 0  # single-core hosts may never need to


def test_workqueue_priority_steal_takes_best():
    qs = make_work_queues("priority", 2)
    lo = Task("lo", node=0, priority=1)
    hi = Task("hi", node=0, priority=9)
    qs.push(0, lo)
    qs.push(0, hi)
    assert qs.steal(1) is hi
    assert qs.pop_local(0) is lo
    assert qs.pop_local(0) is None and qs.steal(1) is None


def test_workqueue_fifo_lifo_ends():
    fifo = make_work_queues("fifo", 2)
    a, b = Task("a", node=0), Task("b", node=0)
    fifo.push(0, a)
    fifo.push(0, b)
    assert fifo.pop_local(0) is a       # oldest first
    lifo = make_work_queues("lifo", 2)
    lifo.push(0, a)
    lifo.push(0, b)
    assert lifo.pop_local(0) is b       # newest first
    lifo.push(0, b)
    assert lifo.steal(1) is a           # thief takes the oldest
