"""Reference solver: convergence and analytic checks."""

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.stencil.kernels import StencilWeights
from repro.stencil.reference import jacobi_reference, residual_norm


def test_zero_iterations_identity():
    grid = np.random.default_rng(0).normal(size=(5, 7))
    out = jacobi_reference(grid, StencilWeights(), 0)
    assert np.array_equal(out, grid)
    assert out is not grid  # input untouched


def test_one_iteration_by_hand():
    grid = np.zeros((3, 3))
    grid[1, 1] = 4.0
    out = jacobi_reference(grid, StencilWeights(), 1, DirichletBC(0.0))
    # Centre averages four zeros; neighbours each see the 4.0 once.
    assert out[1, 1] == 0.0
    assert out[0, 1] == pytest.approx(1.0)
    assert out[1, 0] == pytest.approx(1.0)
    assert out[0, 0] == 0.0  # diagonal unaffected by 5-point stencil


def test_converges_to_boundary_value():
    """Laplace with constant Dirichlet boundary converges to that
    constant everywhere."""
    grid = np.zeros((6, 6))
    out = jacobi_reference(grid, StencilWeights(), 2000, DirichletBC(3.0))
    assert np.allclose(out, 3.0, atol=1e-6)


def test_harmonic_fixed_point():
    """A discrete harmonic function (x = a*r + b*c + d) is a fixed
    point of the Laplace Jacobi sweep with matching boundary."""
    n = 8
    rr, cc = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    harmonic = 2.0 * rr - 3.0 * cc + 1.0
    bc = DirichletBC(lambda r, c: 2.0 * r - 3.0 * c + 1.0)
    out = jacobi_reference(harmonic, StencilWeights(), 50, bc)
    assert np.allclose(out, harmonic, atol=1e-10)
    assert residual_norm(harmonic, StencilWeights(), bc) == pytest.approx(0.0, abs=1e-12)


def test_heat_equation_decays():
    """Explicit heat steps with zero boundary shrink the max norm."""
    grid = np.random.default_rng(1).random((10, 10))
    w = StencilWeights.heat_explicit(0.2)
    out = jacobi_reference(grid, w, 200, DirichletBC(0.0))
    assert np.max(np.abs(out)) < 0.05 * np.max(np.abs(grid))


def test_validation():
    with pytest.raises(ValueError):
        jacobi_reference(np.zeros((3, 3)), StencilWeights(), -1)
    with pytest.raises(ValueError):
        jacobi_reference(np.zeros(9), StencilWeights(), 1)
