"""Causal critical-path analysis: exactness, slack, blame, outliers."""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.runner import run
from repro.machine.machine import nacl
from repro.obs import MetricRegistry
from repro.obs.critpath import (
    critical_path,
    find_stragglers,
    publish_critpath_metrics,
    worker_loads,
)
from repro.runtime.trace import Trace, median
from repro.stencil.problem import JacobiProblem

BLAMES = {"compute", "comm", "wire", "queue", "comm-queue", "startup"}


def assert_exact_tiling(report):
    """The tentpole invariant: segments tile [0, makespan] exactly."""
    assert report.segments, "a non-empty trace must yield segments"
    assert report.segments[0].start == 0.0
    assert report.segments[-1].end == report.makespan
    for a, b in zip(report.segments, report.segments[1:]):
        assert a.end == b.start, f"gap between segments: {a} -> {b}"
    assert math.isclose(
        report.critpath_time, report.makespan, rel_tol=1e-12, abs_tol=0.0
    )
    assert all(s.blame in BLAMES for s in report.segments)
    assert all(s.duration > 0 for s in report.segments)


def sim_result(impl="ca-parsec", n=480, iterations=5, tile=120, steps=3,
               ratio=1.0, nodes=4, **kw):
    return run(
        JacobiProblem(n=n, iterations=iterations), impl=impl,
        machine=nacl(nodes), tile=tile, steps=steps, ratio=ratio,
        trace=True, **kw,
    )


# -- simulator backend ----------------------------------------------------


@pytest.mark.parametrize("impl", ["base-parsec", "ca-parsec"])
def test_sim_segments_sum_exactly_to_makespan(impl):
    report = sim_result(impl=impl).critpath()
    assert_exact_tiling(report)


def test_sim_slack_nonnegative_and_some_chain_is_tight():
    result = sim_result()
    report = result.critpath()
    assert report.slack, "every compute span should get a slack entry"
    assert all(s >= 0.0 for s in report.slack.values())
    # The last span to finish defines the makespan: zero slack.
    assert min(report.slack.values()) == 0.0


def test_sim_dependency_bound_and_ratio():
    result = sim_result()
    report = result.critpath()
    assert report.dependency_bound_s > 0.0
    assert report.dependency_bound_s <= report.makespan * (1 + 1e-9)
    assert 0.0 < report.critpath_ratio <= 1.0 + 1e-9


def test_comm_share_between_zero_and_one():
    report = sim_result(ratio=0.2).critpath()
    assert 0.0 <= report.comm_share <= 1.0
    # ratio=0.2 makes the run comm-bound: communication must show up.
    assert report.comm_share > 0.0


def test_report_formatting_and_top_segments():
    report = sim_result().critpath()
    text = report.format()
    assert "critical path" in text
    assert "dependency bound" in text
    top = report.top_segments(3)
    assert len(top) == 3
    assert top[0].duration >= top[1].duration >= top[2].duration
    assert "critpath" in report.brief()


# -- real backends: same invariant on every trace schema ------------------


def test_threads_backend_critpath_exact():
    result = run(
        JacobiProblem(n=96, iterations=4), impl="ca-parsec",
        machine=nacl(4), tile=24, steps=2, backend="threads", jobs=2,
        trace=True,
    )
    report = result.critpath()
    assert_exact_tiling(report)
    assert all(s >= 0.0 for s in report.slack.values())
    assert all(s.task_id is not None for s in result.trace.compute_spans())


def test_procs_backend_critpath_exact():
    result = run(
        JacobiProblem(n=96, iterations=3), impl="base-parsec",
        machine=nacl(2), tile=24, backend="processes", procs=2, jobs=1,
        trace=True,
    )
    report = result.critpath()
    assert_exact_tiling(report)
    assert all(s >= 0.0 for s in report.slack.values())
    # Cross-process comm spans carry the producer key as task identity.
    comm = result.trace.comm_spans()
    assert comm, "a 2-node run exchanges halos"
    assert all(s.task_id is not None for s in comm)


# -- degraded inputs ------------------------------------------------------


def test_old_trace_without_task_ids_still_analyses():
    trace = Trace()
    # Pre-task_id schema: compute labels are the key, comm labels are
    # (producer, tag) pairs without a peer node.
    trace.record(0, 0, "k", 0.0, 1.0, ("t", 0))
    trace.record(0, -1, "send", 1.0, 1.2, (("t", 0), "o"))
    trace.record(1, -1, "recv", 1.3, 1.5, (("t", 0), "o"))
    report = critical_path(trace)
    assert_exact_tiling(report)
    assert report.makespan == 1.5
    # compute body, send/recv bodies, and the send->recv wire hop all
    # land on the path via the label-fallback matching.
    assert report.blame_seconds.get("wire", 0.0) == pytest.approx(0.1)
    assert report.blame_seconds.get("comm", 0.0) == pytest.approx(0.4)
    assert report.blame_seconds.get("compute", 0.0) == pytest.approx(1.0)


def test_empty_trace_yields_empty_report():
    report = critical_path(Trace())
    assert report.makespan == 0.0
    assert report.segments == []
    assert report.critpath_time == 0.0
    assert report.comm_share == 0.0


def test_critpath_requires_trace():
    result = run(
        JacobiProblem(n=480, iterations=2), impl="base-parsec",
        machine=nacl(4), tile=120,
    )
    with pytest.raises(ValueError, match="trace"):
        result.critpath()


# -- outlier detection ----------------------------------------------------


def test_straggler_detection_flags_the_outlier():
    trace = Trace()
    for i in range(20):
        trace.record(0, i % 4, "k", float(i), i + 1.0 + 0.01 * (i % 3),
                     task_id=("t", i))
    trace.record(0, 0, "k", 30.0, 42.0, task_id=("slow", 0))
    stragglers = find_stragglers(trace)
    assert [s.task_id for s in stragglers] == [("slow", 0)]
    assert stragglers[0].score > 3.5
    assert stragglers[0].duration == 12.0


def test_no_stragglers_in_uniform_trace():
    trace = Trace()
    for i in range(10):
        trace.record(0, 0, "k", float(i), i + 1.0, task_id=i)
    assert find_stragglers(trace) == []


def test_worker_loads_and_imbalance():
    trace = Trace()
    trace.record(0, 0, "k", 0.0, 3.0, task_id="a")
    trace.record(0, 1, "k", 0.0, 1.0, task_id="b")
    loads = worker_loads(trace)
    assert [(w.worker, w.busy) for w in loads] == [(0, 3.0), (1, 1.0)]
    assert loads[0].share == 1.0  # busy for the whole makespan
    report = critical_path(trace)
    assert report.imbalance == pytest.approx(3.0 / 2.0)


# -- metrics integration --------------------------------------------------


def test_publish_critpath_metrics_gauges():
    registry = MetricRegistry()
    report = sim_result(ratio=0.2).critpath()
    publish_critpath_metrics(registry, report)
    snap = registry.snapshot()
    assert snap.gauge("critpath_seconds") == pytest.approx(report.critpath_time)
    assert snap.gauge("critpath_ratio") == pytest.approx(report.critpath_ratio)
    assert snap.gauge("critpath_comm_share") == pytest.approx(report.comm_share)
    blames = snap.labelled("critpath_blame_seconds")
    assert blames, "per-blame gauge cells must exist"


def test_runner_publishes_critpath_when_traced_and_instrumented():
    registry = MetricRegistry()
    result = sim_result(metrics=registry)
    assert result.metrics.gauge("critpath_seconds") == pytest.approx(
        result.critpath().critpath_time
    )
    assert result.graph is not None


def test_median_helper():
    assert median([]) == 0.0
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert median(iter([5.0])) == 5.0


# -- property: invariants across random shapes and step sizes -------------


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.sampled_from([96, 144, 192]),
    tile=st.sampled_from([24, 48]),
    iterations=st.integers(3, 9),
    steps=st.sampled_from([2, 4, 5]),  # frequently does not divide T
)
def test_critpath_bounds_property(n, tile, iterations, steps):
    result = run(
        JacobiProblem(n=n, iterations=iterations), impl="ca-parsec",
        machine=nacl(4), tile=tile, steps=steps, trace=True,
    )
    report = result.critpath()
    assert_exact_tiling(report)
    assert all(s >= 0.0 for s in report.slack.values())
    # Work bound: total busy worker-seconds cannot exceed the lane
    # capacity, so makespan >= busy / (workers * nodes).
    workers = result.machine.node.compute_cores
    busy = result.trace.busy_time()
    assert busy / (workers * result.machine.nodes) <= report.makespan * (1 + 1e-9)
    # Dependency bound: no schedule beats the longest cost chain.
    assert report.dependency_bound_s <= report.makespan * (1 + 1e-9)
