"""The unified exporters and the debug-mode trace validator.

``obs/export.py`` is the single serializer behind the Chrome viewer,
JSON-lines logs, OTel-style span documents and Prometheus exposition;
``Trace.validate()`` is the debug gate (``REPRO_DEBUG_TRACE``) the
engine and both real backends run after a traced run.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import DEBUG_TRACE_ENV, MetricRegistry, trace_validation_enabled
from repro.obs.export import (
    build_trace,
    metrics_jsonl,
    prometheus_text,
    spans_jsonl,
    to_otel,
)
from repro.runtime import chrome_trace
from repro.runtime.trace import Trace


def _trace() -> Trace:
    return build_trace([
        (0, 1, "boundary", 0.5, 1.0, ("b", 0)),
        (0, 0, "interior", 0.0, 1.0, ("i", 0)),
        (0, -1, "send", 1.0, 1.25, ("msg", 1)),
        (1, -2, "recv", 1.1, 1.3, ("msg", 1)),
    ])


def test_build_trace_sorts_by_start():
    trace = _trace()
    assert [s.start for s in trace.spans] == [0.0, 0.5, 1.0, 1.1]
    assert trace.makespan() == pytest.approx(1.3)


def test_chrome_trace_module_is_an_alias():
    # the old import path keeps working and produces the same events
    assert chrome_trace.to_events is not None
    events = chrome_trace.to_events(_trace())
    assert any(e.get("ph") == "X" for e in events)
    doc = json.loads(chrome_trace.dumps(_trace()))
    assert doc["traceEvents"]


def test_otel_document_shape_and_determinism():
    doc = to_otel(_trace(), service_name="repro-test")
    scope_spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
    assert len(scope_spans) == 4
    for span in scope_spans:
        assert len(span["spanId"]) == 16
        assert len(span["traceId"]) == 32
        assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])
    attrs = doc["resourceSpans"][0]["resource"]["attributes"]
    assert {"key": "service.name",
            "value": {"stringValue": "repro-test"}} in attrs
    # same trace, same ids: the export is reproducible
    assert to_otel(_trace(), service_name="repro-test") == doc


def test_prometheus_exposition():
    reg = MetricRegistry()
    reg.counter("messages_total", help="msgs", unit="messages").inc(
        7, src=0, dst=1)
    reg.gauge("backlog").set(3)
    reg.histogram("dur_seconds", buckets=(0.1, 1.0)).observe(0.5)
    text = prometheus_text(reg.snapshot())
    assert "# TYPE messages_total counter" in text
    assert 'messages_total{dst="1",src="0"} 7' in text
    assert "backlog 3" in text
    assert 'dur_seconds_bucket{le="+Inf"} 1' in text
    assert "dur_seconds_count 1" in text


def test_jsonl_round_trip():
    lines = spans_jsonl(_trace()).splitlines()
    assert len(lines) == 4
    assert json.loads(lines[0])["kind"] == "interior"
    reg = MetricRegistry()
    reg.counter("n_total").inc(2)
    (line,) = metrics_jsonl(reg.snapshot()).splitlines()
    assert json.loads(line) == {"metric": "n_total", "kind": "counter",
                                "unit": "", "labels": {}, "value": 2}


# ---------------------------------------------------------------------------
# Trace.validate()
# ---------------------------------------------------------------------------


def test_validate_accepts_well_formed_trace():
    _trace().validate()


def test_validate_rejects_compute_kind_on_comm_lane():
    bad = Trace()
    bad.record(0, -1, "interior", 0.0, 1.0)
    with pytest.raises(ValueError, match="comm lane"):
        bad.validate()


def test_validate_rejects_overlapping_worker_spans():
    bad = Trace()
    bad.record(0, 0, "interior", 0.0, 1.0)
    bad.record(0, 0, "interior", 0.5, 1.5)
    with pytest.raises(ValueError):
        bad.validate()


def test_debug_flag_gating(monkeypatch):
    monkeypatch.delenv(DEBUG_TRACE_ENV, raising=False)
    assert not trace_validation_enabled()
    monkeypatch.setenv(DEBUG_TRACE_ENV, "0")
    assert not trace_validation_enabled()
    monkeypatch.setenv(DEBUG_TRACE_ENV, "1")
    assert trace_validation_enabled()


def test_otel_explicit_trace_id_and_parent_span_id():
    tid = "ab" * 16
    parent = "cd" * 8
    doc = to_otel(_trace(), service_name="repro-test",
                  trace_id=tid, parent_span_id=parent)
    spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
    assert {s["traceId"] for s in spans} == {tid}
    assert {s["parentSpanId"] for s in spans} == {parent}
    # span ids stay deterministic under the injected trace id
    again = to_otel(_trace(), service_name="repro-test",
                    trace_id=tid, parent_span_id=parent)
    assert again == doc
    # and differ from the derived-trace-id document's ids
    derived = to_otel(_trace(), service_name="repro-test")
    dspans = derived["resourceSpans"][0]["scopeSpans"][0]["spans"]
    assert {s["spanId"] for s in dspans} != {s["spanId"] for s in spans}
    assert all("parentSpanId" not in s for s in dspans)
