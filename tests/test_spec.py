"""StencilSpec: the PA1 halo/schedule algebra."""

import pytest

from repro.core.spec import StencilSpec
from repro.distgrid.halo import CORNERS, Corner, Side
from repro.stencil.problem import JacobiProblem


def make_spec(n=24, nodes=4, tile=4, steps=3, T=9):
    return StencilSpec.create(
        JacobiProblem(n=n, iterations=T), nodes=nodes, tile=tile, steps=steps
    )


def test_step_size_capped_by_tile():
    with pytest.raises(ValueError, match="smallest tile"):
        make_spec(tile=4, steps=5)
    with pytest.raises(ValueError):
        StencilSpec.create(JacobiProblem(n=8, iterations=1), 4, 2, steps=0)


def test_refresh_schedule():
    spec = make_spec(steps=3)
    assert [spec.is_refresh(t) for t in range(6)] == [True, False, False] * 2
    assert [spec.halo_extension(t) for t in range(6)] == [2, 1, 0, 2, 1, 0]


def test_base_spec_never_extends():
    spec = make_spec(steps=1)
    for t in range(4):
        assert spec.halo_extension(t) == 0
        assert spec.is_refresh(t)


def test_tile_pads_deep_only_on_remote_sides():
    spec = make_spec(steps=3)  # 2x2 nodes, 6x6 tiles
    corner = spec.tile(2, 2)  # node (0,0)'s SE tile: S and E remote
    assert corner.remote[Side.SOUTH] and corner.remote[Side.EAST]
    assert corner.pads == (1, 3, 1, 3)
    interior = spec.tile(1, 1)
    assert interior.pads == (1, 1, 1, 1)


def test_update_region_extends_into_remote_pads_only():
    spec = make_spec(steps=3)
    tile = spec.tile(2, 2)  # S and E remote
    (ra, rb), (ca, cb) = spec.update_region(tile, 0)  # u = 2
    assert (ra, rb) == (0, tile.h + 2)
    assert (ca, cb) == (0, tile.w + 2)
    # Phase 2: core only.
    assert spec.update_region(tile, 2) == ((0, tile.h), (0, tile.w))


def test_region_points_redundancy():
    spec = make_spec(steps=3)
    tile = spec.tile(2, 2)  # 4x4 core, S+E remote
    core, redundant = spec.region_points(tile, 0)
    assert core == 16
    assert redundant == 6 * 6 - 16  # extended to 6x6 at u=2
    core, redundant = spec.region_points(tile, 2)
    assert redundant == 0


def test_local_strip_extension_schedule():
    spec = make_spec(steps=3)
    tile = spec.tile(2, 2)  # S, E remote; N, W local
    # Refresh iteration: bare core span.
    s0 = spec.local_strip(tile, Side.NORTH, 0)
    assert (s0.ext_lo, s0.ext_hi) == (0, 0)
    # Phase 1: extends u(1)=1 into the *east* (remote) pad only.
    s1 = spec.local_strip(tile, Side.NORTH, 1)
    assert (s1.ext_lo, s1.ext_hi) == (0, 1)
    assert s1.depth == 1
    # Remote sides never get local strips.
    assert spec.local_strip(tile, Side.SOUTH, 1) is None


def test_local_strip_none_at_physical_boundary():
    spec = make_spec(steps=3)
    nw = spec.tile(0, 0)
    assert spec.local_strip(nw, Side.NORTH, 1) is None
    assert spec.local_strip(nw, Side.WEST, 1) is None


def test_deep_strip_only_remote():
    spec = make_spec(steps=3)
    tile = spec.tile(2, 2)
    deep = spec.deep_strip(tile, Side.SOUTH)
    assert deep.depth == 3 and (deep.ext_lo, deep.ext_hi) == (0, 0)
    assert spec.deep_strip(tile, Side.NORTH) is None


def test_corner_blocks():
    spec = make_spec(steps=3)
    node_corner = spec.tile(2, 2)  # S+E remote
    se = spec.corner_block(node_corner, Corner.SE)
    assert (se.depth_r, se.depth_c) == (3, 3)
    ne = spec.corner_block(node_corner, Corner.NE)  # N local pad 1, E remote
    assert (ne.depth_r, ne.depth_c) == (1, 3)
    sw = spec.corner_block(node_corner, Corner.SW)
    assert (sw.depth_r, sw.depth_c) == (3, 1)
    # NW corner: neither adjacent side remote.
    assert spec.corner_block(node_corner, Corner.NW) is None


def test_corner_blocks_absent_for_base():
    spec = make_spec(steps=1)
    for tile in spec.tiles():
        for corner in CORNERS:
            assert spec.corner_block(tile, corner) is None


def test_corner_block_absent_without_diagonal():
    spec = make_spec(steps=3)
    # Tile (2, 5): S remote, at the global east edge -> SE diagonal
    # does not exist.
    tile = spec.tile(2, 5)
    assert tile.remote[Side.SOUTH]
    assert spec.corner_block(tile, Corner.SE) is None
    assert spec.corner_block(tile, Corner.SW) is not None


def test_counts():
    spec = make_spec()
    stats = spec.counts()
    assert stats["steps"] == 3 and stats["iterations"] == 9
    assert stats["tiles"] == 36
