"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.machine.machine import nacl
from repro.stencil.kernels import StencilWeights
from repro.stencil.problem import JacobiProblem


def random_problem(
    n: int,
    iterations: int,
    seed: int = 0,
    ncols: int | None = None,
    omega: float = 0.9,
) -> JacobiProblem:
    """A Jacobi problem with reproducible random initial data and a
    non-trivial boundary, exercising every code path that constants
    would mask."""
    rng = np.random.default_rng(seed)
    nc = ncols or n
    values = rng.normal(size=(n, nc))

    def init(rows, cols):
        return values[np.clip(rows, 0, n - 1), np.clip(cols, 0, nc - 1)]

    def bc(rows, cols):
        return np.sin(0.1 * rows) + np.cos(0.2 * cols)

    return JacobiProblem(
        n=n,
        ncols=ncols,
        iterations=iterations,
        init=init,
        bc=DirichletBC(bc),
        weights=StencilWeights.damped_jacobi(omega),
    )


@pytest.fixture
def small_problem() -> JacobiProblem:
    return random_problem(n=24, iterations=6)


@pytest.fixture
def machine4():
    return nacl(4)


@pytest.fixture
def machine16():
    return nacl(16)
