"""End-to-end integration scenarios across package boundaries."""

import json

import numpy as np

import repro
from repro.analysis import csvio, format_table, render_gantt
from repro.core.verify import verify_schedule
from repro.experiments.sweeper import Sweep, best
from repro.runtime import chrome_trace
from repro.runtime.ca_transform import plan, transform_build

from .conftest import random_problem


def test_sweep_to_csv_to_table(tmp_path):
    """The analysis pipeline a user would run: sweep -> CSV -> table."""
    sweep = Sweep(problem=repro.JacobiProblem(n=576, iterations=4))
    records = sweep.run(impl=["base-parsec", "ca-parsec"], tile=[144],
                        steps=[4], ratio=[1.0, 0.25], nodes=(4,))
    path = tmp_path / "sweep.csv"
    csvio.write_csv(records, str(path))
    back = csvio.read_csv(str(path))
    assert len(back) == 4
    assert best(back)["ratio"] == 0.25
    table = format_table(
        ("impl", "ratio", "gflops"),
        [(r["impl"], r["ratio"], r["gflops"]) for r in back],
    )
    assert "ca-parsec" in table


def test_trace_pipeline_gantt_and_chrome(tmp_path, machine4):
    prob = random_problem(n=48, iterations=6)
    res = repro.run(prob, impl="ca-parsec", machine=machine4, tile=12,
                    steps=4, mode="simulate", trace=True)
    gantt = render_gantt(res.trace, node=0, width=60)
    assert " w" in gantt and "comm" in gantt
    path = tmp_path / "trace.json"
    chrome_trace.write(res.trace, str(path))
    doc = json.loads(path.read_text())
    span_count = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
    assert span_count == len(res.trace)


def test_transform_verify_run_roundtrip(machine4):
    """Future-work workflow: base build -> automatic CA transform ->
    static verification -> execution -> bit-exact result."""
    from repro.core.base_parsec import build_base_graph

    prob = random_problem(n=24, iterations=7, seed=21)
    base = build_base_graph(prob, machine4, tile=6, with_kernels=False)
    p = plan(base.spec, steps=3)
    assert p.messages_saved_fraction > 0
    ca = transform_build(base, machine4, steps=3)
    verify_schedule(ca.spec)
    rep = repro.Engine(ca.graph, machine4, execute=True).run()
    assert np.array_equal(ca.assemble_grid(rep.results), prob.reference_solution())


def test_public_api_surface():
    """Everything __all__ promises exists and is documented."""
    import repro.analysis
    import repro.distgrid
    import repro.experiments
    import repro.machine
    import repro.multigrid
    import repro.petsclite
    import repro.runtime
    import repro.stencil

    for module in (repro, repro.machine, repro.runtime, repro.distgrid,
                   repro.stencil, repro.petsclite, repro.analysis,
                   repro.multigrid):
        assert module.__doc__, f"{module.__name__} lacks a docstring"
        for name in getattr(module, "__all__", ()):
            obj = getattr(module, name)  # raises if the export is broken
            if callable(obj) and not isinstance(obj, type(repro)):
                assert getattr(obj, "__doc__", None) or name.isupper(), (
                    f"{module.__name__}.{name} lacks a docstring"
                )


def test_machine_model_consistency():
    """Cross-module sanity: the Fig. 6 plateau implied by the cost
    model matches the roofline bracket scaled by kernel efficiency."""
    from repro.machine.roofline import stencil_peak_range
    from repro.stencil.cost import KernelCostModel

    for machine in (repro.nacl(), repro.stampede2()):
        workers = machine.node.compute_cores
        plateau = KernelCostModel(machine).node_gflops_bound(workers) * 1e9
        lo, hi = stencil_peak_range(machine.node)
        # The unoptimised kernel sits below the roofline bracket...
        assert plateau < hi
        # ...by roughly the efficiency factor (bpp=20 vs AI window).
        assert plateau > 0.4 * lo


def test_simulate_scales_to_paper_sized_graphs():
    """A paper-sized spatial configuration (80x80 tiles over 16 nodes)
    runs through the whole stack in timing mode."""
    prob = repro.JacobiProblem(n=23040, iterations=2)
    res = repro.run(prob, impl="ca-parsec", machine=repro.nacl(16),
                    tile=288, steps=2, mode="simulate")
    assert res.engine.tasks_run == 80 * 80 * 3
    assert res.gflops > 0
