"""Property-based invariants of the domain decomposition."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distgrid.halo import SIDES
from repro.distgrid.partition import GridPartition, ProcessGrid, even_split


@st.composite
def partitions(draw):
    prows = draw(st.integers(1, 4))
    pcols = draw(st.integers(1, 4))
    tile = draw(st.integers(1, 7))
    nrows = draw(st.integers(prows, 40))
    ncols = draw(st.integers(pcols, 40))
    return GridPartition(nrows, ncols, ProcessGrid(prows, pcols), tile)


@settings(max_examples=60, deadline=None)
@given(partitions())
def test_tiles_tile_the_grid(p):
    total = 0
    for (i, j) in p.tiles():
        r0, r1 = p.tile_rows(i)
        c0, c1 = p.tile_cols(j)
        assert 0 <= r0 < r1 <= p.nrows
        assert 0 <= c0 < c1 <= p.ncols
        total += (r1 - r0) * (c1 - c0)
    assert total == p.nrows * p.ncols


@settings(max_examples=60, deadline=None)
@given(partitions())
def test_tile_extents_bounded_by_tile_size(p):
    tr, tc = p.tile_shape
    for i in range(tr):
        r0, r1 = p.tile_rows(i)
        assert 1 <= r1 - r0 <= p.tile
    for j in range(tc):
        c0, c1 = p.tile_cols(j)
        assert 1 <= c1 - c0 <= p.tile


@settings(max_examples=60, deadline=None)
@given(partitions())
def test_neighbor_relation_symmetric(p):
    for (i, j) in p.tiles():
        for side in SIDES:
            nb = p.neighbor(i, j, side)
            if nb is not None:
                assert p.neighbor(nb[0], nb[1], side.opposite) == (i, j)
                assert p.is_remote(i, j, side) == p.is_remote(
                    nb[0], nb[1], side.opposite
                )


@settings(max_examples=60, deadline=None)
@given(partitions())
def test_facing_tiles_share_perpendicular_extent(p):
    """The property the halo strips rely on: adjacent tiles have the
    same row range (E/W neighbours) or column range (N/S)."""
    from repro.distgrid.halo import Side

    for (i, j) in p.tiles():
        east = p.neighbor(i, j, Side.EAST)
        if east is not None:
            assert p.tile_rows(i) == p.tile_rows(east[0])
        south = p.neighbor(i, j, Side.SOUTH)
        if south is not None:
            assert p.tile_cols(j) == p.tile_cols(south[1])


@settings(max_examples=60, deadline=None)
@given(partitions())
def test_every_tile_owned_by_exactly_one_node(p):
    for rank in range(p.pgrid.size):
        for (i, j) in p.tiles_of_node(rank):
            assert p.owner(i, j) == rank
    counts = sum(len(p.tiles_of_node(r)) for r in range(p.pgrid.size))
    assert counts == len(list(p.tiles()))


@settings(max_examples=60, deadline=None)
@given(partitions())
def test_remoteness_constant_along_axes(p):
    """All tiles in one tile-column agree on east/west remoteness; all
    tiles in one tile-row agree on north/south remoteness (the
    property that keeps CA strip extensions consistent)."""
    from repro.distgrid.halo import Side

    tr, tc = p.tile_shape
    for j in range(tc):
        flags = {p.is_remote(i, j, Side.EAST) for i in range(tr)}
        assert len(flags) == 1
    for i in range(tr):
        flags = {p.is_remote(i, j, Side.SOUTH) for j in range(tc)}
        assert len(flags) == 1


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 10_000), st.integers(1, 64))
def test_even_split_properties(total, parts):
    if total < parts:
        return
    sizes = even_split(total, parts)
    assert sum(sizes) == total
    assert len(sizes) == parts
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)
