"""The simulated-vs-measured comparison layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.compare import (
    HEADERS,
    compare_backends,
    format_comparison,
    speedup_curve,
)
from repro.machine.machine import nacl
from tests.conftest import random_problem


@pytest.fixture(scope="module")
def comparison():
    problem = random_problem(n=24, iterations=6, seed=2)
    return compare_backends(problem, impl="ca-parsec", machine=nacl(1),
                            jobs=2, tile=6, steps=2)


def test_sides_share_numerics(comparison):
    """Both backends executed real kernels on the same graph shape --
    the grids must agree bit-for-bit."""
    assert comparison.sim.grid is not None
    assert comparison.real.grid is not None
    assert np.array_equal(comparison.sim.grid, comparison.real.grid)


def test_comparison_metrics_sane(comparison):
    assert comparison.predicted_elapsed > 0
    assert comparison.measured_elapsed > 0
    assert comparison.predicted_gflops > 0
    assert comparison.achieved_gflops > 0
    assert 0 <= comparison.predicted_occupancy <= 1
    assert 0 <= comparison.measured_occupancy <= 1
    assert np.isfinite(comparison.prediction_error)
    assert comparison.jobs == 2
    assert comparison.real.params["backend"] == "threads"
    assert "backend" not in comparison.sim.params  # sim rows stay unchanged


def test_comparison_row_matches_headers(comparison):
    row = comparison.as_row()
    assert len(row) == len(HEADERS)
    table = format_comparison([comparison], title="t")
    for head in HEADERS:
        assert head in table
    assert "ca-parsec" in table


def test_speedup_curve_shape():
    problem = random_problem(n=20, iterations=4, seed=4)
    points = speedup_curve(problem, impl="base-parsec", jobs_list=(1, 2),
                           machine=nacl(1), tile=5)
    assert [p.jobs for p in points] == [1, 2]
    assert points[0].speedup == pytest.approx(1.0)
    assert points[0].efficiency == pytest.approx(1.0)
    for p in points:
        assert p.elapsed > 0 and p.speedup > 0
