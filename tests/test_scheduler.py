"""Ready-queue policies."""

import pytest

from repro.runtime.scheduler import FifoQueue, LifoQueue, PriorityQueue, make_queue
from repro.runtime.task import Task


def tasks(*priorities):
    return [Task(f"t{i}", node=0, priority=p) for i, p in enumerate(priorities)]


def test_fifo_order():
    q = FifoQueue()
    ts = tasks(0, 0, 0)
    for t in ts:
        q.push(t)
    assert [q.pop() for _ in range(3)] == ts


def test_lifo_order():
    q = LifoQueue()
    ts = tasks(0, 0, 0)
    for t in ts:
        q.push(t)
    assert [q.pop() for _ in range(3)] == ts[::-1]


def test_priority_order_highest_first():
    q = PriorityQueue()
    ts = tasks(1, 5, 3)
    for t in ts:
        q.push(t)
    assert [q.pop().priority for _ in range(3)] == [5, 3, 1]


def test_priority_fifo_among_equals():
    q = PriorityQueue()
    ts = tasks(2, 2, 2)
    for t in ts:
        q.push(t)
    assert [q.pop() for _ in range(3)] == ts


def test_lengths():
    for q in (FifoQueue(), LifoQueue(), PriorityQueue()):
        assert len(q) == 0
        q.push(Task("a", node=0))
        assert len(q) == 1
        q.pop()
        assert len(q) == 0


def test_make_queue():
    assert isinstance(make_queue("fifo"), FifoQueue)
    assert isinstance(make_queue("PRIORITY"), PriorityQueue)
    with pytest.raises(KeyError):
        make_queue("random")
