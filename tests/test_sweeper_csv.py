"""Sweep harness and CSV round-tripping."""

import pytest

from repro.analysis import csvio
from repro.experiments.sweeper import Sweep, best, pivot, to_csv
from repro.machine.machine import nacl
from repro.stencil.problem import JacobiProblem


def small_sweep(**axes):
    sweep = Sweep(problem=JacobiProblem(n=576, iterations=4))
    return sweep.run(**axes)


def test_sweep_cartesian_product():
    records = small_sweep(
        machine=("nacl",), nodes=(4,),
        impl=["base-parsec", "ca-parsec"], ratio=[1.0, 0.5], tile=[144],
        steps=[4],
    )
    assert len(records) == 4
    impls = {r["impl"] for r in records}
    assert impls == {"base-parsec", "ca-parsec"}
    assert all(r["machine_preset"] == "nacl" and r["nodes"] == 4 for r in records)


def test_sweep_multiple_machines_and_nodes():
    records = small_sweep(
        machine=("nacl", "stampede2"), nodes=(1, 4),
        impl=["base-parsec"], tile=[144],
    )
    assert len(records) == 4
    assert {(r["machine_preset"], r["nodes"]) for r in records} == {
        ("nacl", 1), ("nacl", 4), ("stampede2", 1), ("stampede2", 4),
    }


def test_sweep_progress_callback():
    seen = []
    sweep = Sweep(problem=JacobiProblem(n=576, iterations=3),
                  on_result=seen.append)
    sweep.run(impl=["base-parsec"], tile=[144], nodes=(4,))
    assert len(seen) == 1 and seen[0]["impl"] == "base-parsec"


def test_sweep_validation():
    sweep = Sweep(problem=JacobiProblem(n=576, iterations=3))
    with pytest.raises(ValueError, match="unknown sweep axes"):
        sweep.run(flavour=["spicy"])
    with pytest.raises(TypeError):
        sweep.run(impl="base-parsec")  # scalar, not a sequence


def test_best_and_pivot():
    records = small_sweep(
        impl=["base-parsec"], ratio=[1.0, 0.5, 0.25], tile=[144], nodes=(4,),
    )
    top = best(records)
    assert top["ratio"] == 0.25  # smaller ratio -> higher nominal GFLOP/s
    rows, cols, matrix = pivot(records, "ratio", "impl")
    assert rows == [0.25, 0.5, 1.0] and cols == ["base-parsec"]
    assert all(m[0] is not None for m in matrix)
    with pytest.raises(ValueError):
        best([])


def test_sweep_seed_stable_ordering():
    axes = dict(impl=["base-parsec"], tile=[48, 96, 144], nodes=(4,))
    a = small_sweep(seed=11, **axes)
    b = small_sweep(seed=11, **axes)
    assert [r["tile"] for r in a] == [r["tile"] for r in b]
    unshuffled = small_sweep(**axes)
    assert [r["tile"] for r in unshuffled] == [48, 96, 144]  # product order


def test_run_configs_preserves_input_order():
    sweep = Sweep(problem=JacobiProblem(n=576, iterations=3))
    configs = [{"impl": "base-parsec", "tile": t} for t in (144, 96, 48)]
    records = sweep.run_configs(configs, machine=nacl(4))
    assert [r["tile"] for r in records] == [144, 96, 48]


def test_to_csv_shared_export(tmp_path):
    records = small_sweep(impl=["base-parsec"], tile=[144], nodes=(4,))
    path = tmp_path / "out.csv"
    text = to_csv(records, str(path))
    assert path.read_bytes().decode() == text
    back = csvio.loads(text)
    assert back[0]["impl"] == "base-parsec" and back[0]["tile"] == 144
    assert to_csv(records) == text  # path is optional


def test_csv_roundtrip(tmp_path):
    records = [
        {"impl": "ca-parsec", "nodes": 4, "gflops": 12.5, "overlap": True,
         "note": None},
        {"impl": "petsc", "nodes": 16, "gflops": 6.25, "overlap": False,
         "note": "x"},
    ]
    path = tmp_path / "sweep.csv"
    csvio.write_csv(records, str(path))
    back = csvio.read_csv(str(path))
    assert back == records


def test_csv_field_selection_and_empty():
    text = csvio.dumps([{"a": 1, "b": 2}], fields=["b"])
    assert text.splitlines()[0] == "b"
    assert csvio.dumps([]) == ""
    assert csvio.loads("") == []


def test_csv_union_of_keys():
    text = csvio.dumps([{"a": 1}, {"b": 2}])
    back = csvio.loads(text)
    assert back == [{"a": 1, "b": None}, {"a": None, "b": 2}]
