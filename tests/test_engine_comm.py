"""Engine communication machinery: blocking mode, NIC serialization,
census consistency."""

import pytest

from repro.runtime.engine import Engine
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Flow

from .test_engine import simple_machine


def fan_graph(nodes: int, producers_per_node: int, nbytes: int = 64) -> TaskGraph:
    """Each node's producers feed one consumer on the next node."""
    g = TaskGraph()
    for n in range(nodes):
        for p in range(producers_per_node):
            g.add_task(("p", n, p), node=n, cost=0.001, out_nbytes={"o": nbytes})
    for n in range(nodes):
        src = (n - 1) % nodes
        g.add_task(
            ("c", n),
            node=n,
            cost=0.001,
            inputs=tuple(
                Flow(("p", src, p), "o", nbytes) for p in range(producers_per_node)
            ),
        )
    return g


def test_dynamic_accounting_matches_static_census():
    g = fan_graph(nodes=3, producers_per_node=4, nbytes=128)
    census = g.finalize().census()
    rep = Engine(g, simple_machine(nodes=3)).run()
    assert rep.messages == census.remote_messages
    assert rep.message_bytes == census.remote_bytes
    assert rep.local_edges == census.local_edges
    assert rep.local_bytes == census.local_bytes


def test_blocking_mode_uses_all_cores():
    g = TaskGraph()
    for i in range(6):
        g.add_task(i, node=0, cost=1.0)
    m = simple_machine(nodes=1, cores=3)
    over = Engine(g, m, overlap=True, charge_task_overhead=False).run()
    g2 = TaskGraph()
    for i in range(6):
        g2.add_task(i, node=0, cost=1.0)
    block = Engine(g2, m, overlap=False, charge_task_overhead=False).run()
    assert over.elapsed == pytest.approx(3.0)  # 2 workers
    assert block.elapsed == pytest.approx(2.0)  # 3 workers


def test_blocking_mode_charges_sends_to_worker():
    so = 1e-3
    m = simple_machine(so=so, latency=0.0)
    g = TaskGraph()
    g.add_task("p", node=0, cost=1.0, out_nbytes={"o": 8})
    g.add_task("c", node=1, cost=1.0, inputs=(Flow("p", "o", 8),))
    rep = Engine(g, m, overlap=False, charge_task_overhead=False).run()
    wire = 8 / m.network.effective_bw
    # Producer computes, then its worker sends (so + wire-serialization),
    # then latency + receiver-side so charged to the consumer task.
    expected = 1.0 + (so + wire) + 0.0 + so + 1.0
    assert rep.elapsed == pytest.approx(expected, rel=1e-6)


def test_blocking_recv_charge_scales_with_messages():
    so = 1e-3
    m = simple_machine(so=so, latency=0.0)

    def consumer_elapsed(nproducers: int) -> float:
        g = TaskGraph()
        for p in range(nproducers):
            g.add_task(("p", p), node=0, cost=0.0, out_nbytes={"o": 8})
        g.add_task(
            "c", node=1, cost=0.0,
            inputs=tuple(Flow(("p", p), "o", 8) for p in range(nproducers)),
        )
        return Engine(g, m, overlap=False, charge_task_overhead=False).run().elapsed

    # Each extra producer adds one message: one more send on node 0's
    # workers (parallel) and one more recv charge on the consumer.
    assert consumer_elapsed(2) - consumer_elapsed(1) == pytest.approx(so, rel=1e-3)


def test_nic_serializes_large_messages():
    """Two big messages from one node share the NIC: the second
    arrives one full serialization later."""
    m = simple_machine(so=0.0, latency=0.0)
    nbytes = 10_000_000
    g = TaskGraph()
    g.add_task("p1", node=0, cost=0.0, out_nbytes={"o": nbytes})
    g.add_task("p2", node=0, cost=0.0, out_nbytes={"o": nbytes})
    g.add_task("c1", node=1, cost=0.0, inputs=(Flow("p1", "o", nbytes),))
    g.add_task("c2", node=1, cost=0.0, inputs=(Flow("p2", "o", nbytes),))
    rep = Engine(g, m, charge_task_overhead=False).run()
    assert rep.elapsed == pytest.approx(2 * nbytes / m.network.effective_bw, rel=1e-3)


def test_zero_byte_control_edge_crosses_nodes():
    """Control edges still synchronize across nodes (software overhead
    only, no payload)."""
    g = TaskGraph()
    g.add_task("p", node=0, cost=1.0, out_nbytes={"ctl": 0})
    g.add_task("c", node=1, cost=1.0, inputs=(Flow("p", "ctl", 0),))
    rep = Engine(g, simple_machine(so=5e-3, latency=0.0), charge_task_overhead=False).run()
    assert rep.elapsed == pytest.approx(1.0 + 2 * 5e-3 + 1.0, rel=1e-6)
    assert rep.messages == 1 and rep.message_bytes == 0


def test_deadlock_reported():
    """A graph whose producer never runs (cycle with validate=False)
    must be reported as a deadlock rather than hang."""
    g = TaskGraph()
    g.add_task("a", node=0, inputs=(Flow("b", "o", 8),), out_nbytes={"o": 8})
    g.add_task("b", node=0, inputs=(Flow("a", "o", 8),), out_nbytes={"o": 8})
    g.finalize(validate=False)
    with pytest.raises(RuntimeError, match="deadlock"):
        Engine(g, simple_machine()).run()


def test_comm_busy_accounted():
    g = fan_graph(nodes=2, producers_per_node=3)
    m = simple_machine(so=1e-4)
    rep = Engine(g, m).run()
    # 3 sends on each node + 3 recvs on each node.
    assert sum(rep.comm_busy.values()) == pytest.approx(12 * 1e-4)


def test_comm_backlog_tracked():
    so = 1e-3
    m = simple_machine(so=so, latency=0.0)
    g = TaskGraph()
    for p in range(6):
        g.add_task(("p", p), node=0, cost=0.0, out_nbytes={"o": 8})
        g.add_task(("c", p), node=1, cost=0.0,
                   inputs=(Flow(("p", p), "o", 8),))
    rep = Engine(g, m, charge_task_overhead=False).run()
    # Six sends land on the sender's comm thread almost at once.
    assert rep.max_comm_backlog >= 5
    # A purely local graph never queues communication.
    g2 = TaskGraph()
    g2.add_task("a", node=0, cost=1.0)
    assert Engine(g2, m).run().max_comm_backlog == 0
