"""VecScatter ghost gathers."""

import numpy as np
import pytest

from repro.petsclite.scatter import ScatterPlan
from repro.petsclite.vec import Vec, VecLayout


def make_plan():
    lay = VecLayout(n=12, nranks=3)  # ranges 0-4, 4-8, 8-12
    needed = [
        np.array([4, 5, 11]),  # rank 0 needs from ranks 1 and 2
        np.array([3, 8]),  # rank 1 needs from 0 and 2
        np.array([], dtype=np.int64),  # rank 2 self-sufficient
    ]
    return lay, ScatterPlan.build(lay, needed)


def test_messages_grouped_by_owner():
    _, plan = make_plan()
    assert set(plan.messages) == {(1, 0), (2, 0), (0, 1), (2, 1)}
    assert plan.messages[(1, 0)].tolist() == [4, 5]
    assert plan.messages[(2, 0)].tolist() == [11]


def test_gather_values():
    lay, plan = make_plan()
    vec = Vec.from_global(lay, 10.0 * np.arange(12.0))
    ghosts = plan.gather(vec, 0)
    assert ghosts.tolist() == [40.0, 50.0, 110.0]
    assert plan.gather(vec, 2).size == 0


def test_gather_layout_checked():
    _, plan = make_plan()
    wrong = Vec(VecLayout(n=12, nranks=4))
    with pytest.raises(ValueError):
        plan.gather(wrong, 0)


def test_ghost_position():
    _, plan = make_plan()
    pos = plan.ghost_position(0, np.array([5, 11]))
    assert pos.tolist() == [1, 2]
    with pytest.raises(KeyError):
        plan.ghost_position(0, np.array([7]))


def test_owned_indices_rejected():
    lay = VecLayout(n=12, nranks=3)
    with pytest.raises(ValueError):
        ScatterPlan.build(lay, [np.array([1]), np.array([]), np.array([])])


def test_census_intra_vs_inter_node():
    _, plan = make_plan()
    # 3 ranks on one node each.
    stats = plan.message_census(ranks_per_node=1)
    assert stats["messages"] == 4
    assert stats["remote_messages"] == 4
    assert stats["bytes"] == (2 + 1 + 1 + 1) * 8
    # All ranks packed on one node: nothing is remote.
    stats = plan.message_census(ranks_per_node=3)
    assert stats["remote_messages"] == 0 and stats["remote_bytes"] == 0


def test_duplicate_indices_deduplicated():
    lay = VecLayout(n=12, nranks=3)
    plan = ScatterPlan.build(lay, [np.array([4, 4, 5]), np.array([]), np.array([])])
    assert plan.needed[0].tolist() == [4, 5]
