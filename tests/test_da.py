"""DMDA-lite: 5-point operator assembly and ghost analysis."""

import numpy as np
import pytest

from repro.distgrid.boundary import DirichletBC
from repro.petsclite.da import (
    ghost_indices,
    ghost_window_groups,
    grid_to_vec,
    jacobi_operator,
    natural_layout,
    stencil_coo,
    vec_to_grid,
)
from repro.stencil.kernels import StencilWeights
from repro.stencil.reference import jacobi_reference

from .conftest import random_problem


def test_grid_vec_roundtrip():
    lay = natural_layout(4, 5, 3)
    grid = np.arange(20.0).reshape(4, 5)
    v = grid_to_vec(grid, lay)
    assert np.array_equal(vec_to_grid(v, 4, 5), grid)
    with pytest.raises(ValueError):
        grid_to_vec(np.zeros((2, 2)), lay)


def test_stencil_coo_row_structure():
    rows, cols, vals, b = stencil_coo(3, 3, StencilWeights(), DirichletBC(0.0))
    # Centre point (1,1) = index 4 has 5 entries (incl. explicit 0 diag).
    assert int((rows == 4).sum()) == 5
    # Corner point 0 has centre + 2 in-domain neighbours.
    assert int((rows == 0).sum()) == 3


def test_sweep_is_ax_plus_b():
    prob = random_problem(n=9, iterations=1, ncols=7)
    A, b = jacobi_operator(prob, nranks=4)
    x0 = prob.initial_grid()
    y = A.mult(grid_to_vec(x0, A.row_layout))
    y.axpy(1.0, b)
    ref = jacobi_reference(x0, prob.weights, 1, prob.bc)
    assert np.allclose(vec_to_grid(y, 9, 7), ref, rtol=1e-13)


def test_boundary_contributions_in_rhs():
    _, _, _, b = stencil_coo(2, 2, StencilWeights(), DirichletBC(4.0))
    # Every point of a 2x2 grid touches two boundary sides: 2*0.25*4.
    assert np.allclose(b, 2.0)


def test_ghost_indices_match_garray():
    prob = random_problem(n=8, iterations=1, ncols=11)
    A, _ = jacobi_operator(prob, nranks=5)
    for rank in range(5):
        assert np.array_equal(
            ghost_indices(A.row_layout, rank, 11), A.blocks[rank].garray
        )


def test_ghost_window_groups_match_exact_counts():
    """When every rank owns at least one full grid row, the analytic
    window census equals the exact ghost sets."""
    lay = natural_layout(12, 10, 4)  # 30 entries per rank = 3 rows
    for rank in range(4):
        exact = ghost_indices(lay, rank, 10)
        owners, counts = np.unique(lay.owners(exact), return_counts=True)
        want = dict(zip(owners.tolist(), counts.tolist()))
        assert ghost_window_groups(lay, rank, 10) == want


def test_ghost_window_groups_edge_ranks():
    lay = natural_layout(6, 6, 3)
    assert 0 not in ghost_window_groups(lay, 0, 6)  # no self edges
    groups_first = ghost_window_groups(lay, 0, 6)
    assert set(groups_first) == {1}  # only a south window
    groups_last = ghost_window_groups(lay, 2, 6)
    assert set(groups_last) == {1}
