"""Lifecycle tracing through a live :class:`SolverService`: spans and
SLO histograms for real traffic, the combined timeline export, the
flight-recorder dump on terminal failure (rendered by ``repro
postmortem``), and progress()/stats() under concurrent multi-tenant
submission.
"""

from __future__ import annotations

import threading

import pytest

from repro.machine.machine import nacl
from repro.obs.lifecycle import (
    load_postmortem,
    format_postmortem,
    request_trace_id,
)
from repro.obs.slo import format_slo_report, slo_gate_metrics, slo_report
from repro.serve import (
    ServiceConfig,
    SolveRequest,
    SolverService,
    WorkerDied,
)

from .test_serve_pool import random_problem
from .test_serve_service import _no_serve_leftovers

pytestmark = pytest.mark.timeout(300)


def _request(problem, **overrides) -> SolveRequest:
    knobs = dict(
        impl="ca-parsec", machine=nacl(4), tile=6, steps=3,
        backend="threads", jobs=2,
    )
    knobs.update(overrides)
    return SolveRequest(problem=problem, **knobs)


def test_lifecycle_spans_and_slo_for_real_traffic(tmp_path):
    # Four distinct problems: a repeated signature would ride its
    # batch leader (or the cache) and legitimately skip "execute".
    problems = [random_problem(24, 4, seed=s) for s in (11, 12, 13, 14)]
    config = ServiceConfig(workers=2, cache=tmp_path)
    with SolverService(config) as service:
        futures = [
            service.submit(_request(problems[k], tenant=tenant))
            for k, tenant in enumerate(("alice", "bob", "alice", "bob"))
        ]
        outcomes = [f.result(timeout=120) for f in futures]
        lifecycle = service.lifecycle
        assert lifecycle is not None
        for outcome in outcomes:
            assert outcome.trace_id is not None
            assert outcome.queue_wait_s >= 0.0
            names = {s.name for s in lifecycle.spans_of(outcome.trace_id)}
            assert {"admit", "cache_probe", "queued", "dispatch",
                    "execute", "respond", "request"} <= names
        # the trace id is the deterministic hash of (signature, seq)
        assert outcomes[0].trace_id == request_trace_id(
            outcomes[0].signature, 1
        )
        # a repeat is served from the cache under a fresh trace
        repeat = service.submit(
            _request(problems[0], tenant="alice")
        ).result(timeout=120)
        assert repeat.cached and repeat.trace_id not in {
            o.trace_id for o in outcomes
        }
        names = {s.name for s in lifecycle.spans_of(repeat.trace_id)}
        assert "cache_probe" in names and "execute" not in names
        snapshot = service.metrics.snapshot()
        stats = service.stats()
    assert not _no_serve_leftovers()
    assert stats["traces"] == 5
    assert stats["recorder_events"] > 0
    report = slo_report(snapshot)
    assert set(report["tenants"]) == {"alice", "bob"}
    for tenant in ("alice", "bob"):
        lat = report["tenants"][tenant]["latency"]
        for metric in ("queue_wait", "exec", "e2e"):
            assert lat[metric]["p50"] is not None
            assert lat[metric]["p50"] <= lat[metric]["p95"]
            assert lat[metric]["p95"] <= lat[metric]["p99"]
        assert report["tenants"][tenant]["burn"] == 0.0
    text = format_slo_report(report)
    assert "alice" in text and "p95" in text
    gate = slo_gate_metrics(snapshot)
    assert {"slo_queue_wait_p95_seconds", "slo_exec_p95_seconds",
            "slo_e2e_p95_seconds", "slo_error_burn"} <= set(gate)
    assert gate["slo_error_burn"] == 0.0


def test_combined_timeline_export_from_a_live_service(tmp_path):
    problem = random_problem(24, 3, seed=21)
    config = ServiceConfig(workers=1, cache=False, trace_requests=True)
    with SolverService(config) as service:
        outcome = service.submit(_request(problem)).result(timeout=120)
        assert outcome.trace is not None  # trace_requests captures it
        written = service.write_timeline(
            chrome=tmp_path / "timeline.json",
            otel=tmp_path / "otel.json",
        )
        import json

        chrome = json.loads((tmp_path / "timeline.json").read_text())
        otel = json.loads((tmp_path / "otel.json").read_text())
    assert set(written) == {"chrome", "otel"}
    tid = outcome.trace_id
    life = otel["resourceSpans"][0]["scopeSpans"][0]["spans"]
    execute = next(s for s in life if s["name"] == "execute")
    task_blocks = otel["resourceSpans"][1:]
    assert task_blocks, "execution trace missing from the OTel export"
    for block in task_blocks:
        tasks = block["scopeSpans"][0]["spans"]
        assert {s["traceId"] for s in tasks} == {tid}
        ids = {s["spanId"] for s in tasks}
        assert ({s["parentSpanId"] for s in tasks} - ids
                == {execute["spanId"]})
    chrome_tids = {
        e["args"]["trace_id"] for e in chrome["traceEvents"]
        if e.get("ph") == "X" and "trace_id" in e.get("args", {})
    }
    assert tid in chrome_tids  # stable id across both formats
    assert not _no_serve_leftovers()


def test_lifecycle_disabled_turns_everything_off(tmp_path):
    problem = random_problem(24, 3, seed=22)
    config = ServiceConfig(workers=1, cache=False, lifecycle=False)
    with SolverService(config) as service:
        outcome = service.submit(_request(problem)).result(timeout=120)
        assert outcome.trace_id is None
        assert service.lifecycle is None and service.recorder is None
        assert "traces" not in service.stats()
        with pytest.raises(Exception):
            service.write_timeline(chrome=tmp_path / "x.json")
        snapshot = service.metrics.snapshot()
    assert "slo_e2e_seconds" not in snapshot.data


def test_kill_fault_dumps_a_postmortem_the_cli_renders(tmp_path, capsys):
    problem = random_problem(24, 6, seed=23)
    config = ServiceConfig(
        workers=1, cache=False,
        checkpoint_dir=tmp_path / "ckpt", dump_dir=tmp_path / "dumps",
    )
    with SolverService(config) as service:
        request = SolveRequest(
            problem=problem, impl="base-parsec", machine=nacl(4), tile=6,
            backend="threads", jobs=2, tenant="chaos",
            chaos_plan="kill:node=1,step=1", retries=0,
        )
        future = service.submit(request)
        with pytest.raises(WorkerDied):
            future.result(timeout=120)
        stats = service.stats()
        snapshot = service.metrics.snapshot()
    assert not _no_serve_leftovers()
    assert len(stats["postmortems"]) == 1
    dump_path = stats["postmortems"][0]
    doc = load_postmortem(dump_path)
    assert doc["reason"] == "worker-died"
    assert doc["trace_ids"], "dump must name the failing trace"
    text = format_postmortem(doc)
    assert "blame: execute" in text and "NodeLostError" in text
    # the CLI face renders the same dump
    from repro.cli import main

    assert main(["postmortem", str(dump_path)]) == 0
    out = capsys.readouterr().out
    assert "failing span chain" in out and "blame: execute" in out
    # the error burned the chaos tenant's budget
    report = slo_report(snapshot)
    assert report["tenants"]["chaos"]["errors"] == 1
    assert report["tenants"]["chaos"]["burn"] > 1.0


def test_retry_records_retry_span_and_outcome_counts(tmp_path):
    problem = random_problem(24, 6, seed=24)
    config = ServiceConfig(
        workers=1, cache=False, retry_budget=2,
        checkpoint_dir=tmp_path / "ckpt",
    )
    with SolverService(config) as service:
        # jobs=1 keeps the priority order exact: every sweep-3 tile is
        # checkpointed before the first sweep-3 task can fire the kill,
        # so the retry deterministically *resumes* instead of restarting
        # (the recipe test_serve_service.py pins for the same reason).
        request = SolveRequest(
            problem=problem, impl="ca-parsec", machine=nacl(4), tile=6,
            steps=3, backend="threads", jobs=1, tenant="chaos",
            chaos_plan="kill:node=3,step=1s",
        )
        outcome = service.submit(request).result(timeout=120)
        lifecycle = service.lifecycle
        assert outcome.recovered and outcome.retries == 1
        assert outcome.trace_id is not None
        spans = lifecycle.spans_of(outcome.trace_id)
        names = [s.name for s in spans]
        assert "retry" in names
        assert names.count("queued") == 2  # original stay + re-queue
        assert names.count("execute") == 2  # failed + resumed attempt
        recover = [s for s in spans if s.name == "recover"]
        assert recover and recover[0].attrs["checkpoint_step"] > 0
        # queue_wait accumulates across both stays
        queued = [s for s in spans if s.name == "queued"]
        assert outcome.queue_wait_s == pytest.approx(
            sum(s.duration for s in queued), rel=0.2, abs=0.05
        )
        # a recovered request dumps nothing: the failure was not terminal
        assert service.stats()["postmortems"] == []
    assert not _no_serve_leftovers()


def test_progress_and_stats_under_concurrent_multitenant_submit(tmp_path):
    problems = [random_problem(24, 3, seed=s) for s in (31, 32, 33)]
    config = ServiceConfig(workers=2, cache=tmp_path, tenant_limit=None)
    stop = threading.Event()
    seen: list[dict] = []
    errors: list[BaseException] = []

    def hammer(service):
        while not stop.is_set():
            try:
                p = service.progress()
                s = service.stats()
            except BaseException as exc:  # noqa: BLE001 - the test's point
                errors.append(exc)
                return
            assert 0 <= p["done"] <= p["total"]
            assert s["finished"] <= s["submitted"]
            seen.append(p)

    with SolverService(config) as service:
        readers = [
            threading.Thread(target=hammer, args=(service,), daemon=True)
            for _ in range(3)
        ]
        for t in readers:
            t.start()
        futures = []
        for wave in range(2):
            for i, tenant in enumerate(("alice", "bob", "carol")):
                futures.append(service.submit(_request(
                    problems[(wave + i) % 3], tenant=tenant,
                )))
        outcomes = [f.result(timeout=120) for f in futures]
        stop.set()
        for t in readers:
            t.join(timeout=10)
        stats = service.stats()
    assert not errors
    assert len(outcomes) == 6
    assert stats["submitted"] == 6 and stats["finished"] == 6
    assert stats["traces"] == 6
    assert len(seen) > 0
    assert not _no_serve_leftovers()
