"""ASCII Gantt rendering of execution traces (Fig. 10 in text form).

PaRSEC's profiling system draws per-worker timelines; here each
(node, worker) lane becomes a row of characters, one per time bucket,
showing what the worker spent most of that bucket doing.  Boundary
tasks, interior tasks and communication get distinct glyphs so the
CA-vs-base occupancy difference is visible in a terminal.
"""

from __future__ import annotations

from ..runtime.trace import Trace

#: Glyph per span kind; '.' is idle.
DEFAULT_GLYPHS = {
    "interior": "#",
    "boundary": "B",
    "init": "i",
    "spmv": "#",
    "send": ">",
    "recv": "<",
}
IDLE = "."

#: Glyph per critical-path blame category (the ``crit`` overlay row).
CRIT_GLYPHS = {
    "compute": "#",
    "comm": "X",
    "wire": "~",
    "queue": "-",
    "comm-queue": "=",
    "startup": " ",
}


def render_gantt(
    trace: Trace,
    node: int,
    width: int = 100,
    glyphs: dict[str, str] | None = None,
    include_comm: bool = True,
    critpath=None,
) -> str:
    """Render one node's lanes over the trace's makespan.

    Each lane shows, per bucket, the kind that occupied the most time
    in that bucket (idle if nothing ran).  The communication thread is
    the lane labelled ``comm``.  Passing a
    :class:`repro.obs.critpath.CritPathReport` as ``critpath`` adds a
    ``crit`` overlay row on top, one blame glyph per bucket
    (:data:`CRIT_GLYPHS`), so the makespan-deciding chain lines up
    visually with the worker activity below it.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    horizon = trace.makespan()
    if horizon <= 0:
        return "(empty trace)"
    bucket = horizon / width
    lanes: dict[int, list[dict[str, float]]] = {}
    for span in trace.spans:
        if span.node != node:
            continue
        if span.worker < 0 and not include_comm:
            continue
        lane = lanes.setdefault(span.worker, [dict() for _ in range(width)])
        first = int(span.start / bucket)
        last = min(width - 1, int(span.end / bucket))
        for b in range(first, last + 1):
            lo = max(span.start, b * bucket)
            hi = min(span.end, (b + 1) * bucket)
            if hi > lo:
                lane[b][span.kind] = lane[b].get(span.kind, 0.0) + (hi - lo)
    lines = []
    if critpath is not None and critpath.segments:
        weights: list[dict[str, float]] = [dict() for _ in range(width)]
        for seg in critpath.segments:
            first = int(seg.start / bucket)
            last = min(width - 1, int(seg.end / bucket))
            for b in range(first, last + 1):
                lo = max(seg.start, b * bucket)
                hi = min(seg.end, (b + 1) * bucket)
                if hi > lo:
                    weights[b][seg.blame] = weights[b].get(seg.blame, 0.0) + (hi - lo)
        row = "".join(
            CRIT_GLYPHS.get(max(cell, key=cell.get), "?") if cell else IDLE
            for cell in weights
        )
        lines.append(f" crit |{row}|")
    for worker in sorted(lanes, reverse=False):
        row = []
        for cell in lanes[worker]:
            if not cell:
                row.append(IDLE)
            else:
                kind = max(cell, key=cell.get)
                row.append(glyphs.get(kind, kind[0].upper()))
        label = "comm" if worker < 0 else f"w{worker:02d}"
        lines.append(f"{label:>5} |{''.join(row)}|")
    header = (
        f"node {node}, {horizon * 1e3:.2f} ms "
        f"({bucket * 1e3:.3f} ms/char; "
        + ", ".join(f"{g}={k}" for k, g in glyphs.items() if any(s.kind == k for s in trace.spans))
        + f", {IDLE}=idle)"
    )
    return "\n".join([header, *lines])


def legend() -> str:
    """Human-readable glyph legend for rendered charts."""
    return ", ".join(f"{g} = {k}" for k, g in DEFAULT_GLYPHS.items()) + f", {IDLE} = idle"


def crit_legend() -> str:
    """Glyph legend for the critical-path overlay row."""
    return ", ".join(f"{g} = {k}" for k, g in CRIT_GLYPHS.items() if g.strip())
