"""Terminal line charts for sweep results.

The paper's figures are line/bar charts; without a plotting stack on
an offline machine, an ASCII approximation in the terminal is the next
best thing.  Used by the CLI (``python -m repro experiment fig5``
output pairs well with it) and handy for eyeballing sweep CSVs.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Glyphs assigned to series, in order.
MARKS = "*o+x#@%&"

#: Block glyphs for sparklines, shortest to tallest.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def spark(values: Sequence[float], width: int | None = None) -> str:
    """One-line sparkline of ``values`` (the ``repro top`` per-tenant
    latency trend).  Keeps the trailing ``width`` points; a constant
    series renders flat at mid-height; empty input is empty output."""
    vs = [float(v) for v in values]
    if width is not None:
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        vs = vs[-width:]
    if not vs:
        return ""
    lo, hi = min(vs), max(vs)
    if hi <= lo:
        return SPARK_BLOCKS[len(SPARK_BLOCKS) // 2] * len(vs)
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[round((v - lo) / (hi - lo) * top)] for v in vs
    )


def plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 68,
    height: int = 16,
    logx: bool = False,
    title: str | None = None,
) -> str:
    """Render one or more y-series over shared x values.

    Points are scattered onto a character grid (later series overwrite
    earlier ones on collisions) with min/max axis annotations and a
    legend.  ``logx`` spaces the x axis logarithmically, which is what
    message-size sweeps (Fig. 5) want.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    if not series:
        raise ValueError("need at least one series")
    xs = list(x)
    if len(xs) < 2:
        raise ValueError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(xs)} x values")
    if logx and min(xs) <= 0:
        raise ValueError("log x axis needs positive x values")

    def xt(value: float) -> float:
        return math.log10(value) if logx else value

    x0, x1 = xt(xs[0]), xt(xs[-1])
    ymin = min(min(ys) for ys in series.values())
    ymax = max(max(ys) for ys in series.values())
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for mark, (name, ys) in zip(MARKS, series.items()):
        for xv, yv in zip(xs, ys):
            col = round((xt(xv) - x0) / (x1 - x0) * (width - 1))
            row = round((yv - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    ytop = f"{ymax:.4g}"
    ybot = f"{ymin:.4g}"
    label_w = max(len(ytop), len(ybot))
    for i, row in enumerate(grid):
        label = ytop if i == 0 else (ybot if i == height - 1 else "")
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    left = f"{xs[0]:.4g}"
    right = f"{xs[-1]:.4g}" + (" (log x)" if logx else "")
    pad = width - len(left) - len(right)
    lines.append(" " * (label_w + 2) + left + " " * max(1, pad) + right)
    legend = "   ".join(f"{mark}={name}" for mark, name in zip(MARKS, series))
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
