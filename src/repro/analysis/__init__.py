"""Trace analysis (occupancy, Gantt), table rendering and CSV I/O."""

from . import asciiplot, csvio
from .gantt import legend, render_gantt
from .occupancy import (
    OccupancyReport,
    compare_occupancy,
    kind_summary,
    occupancy_report,
    occupancy_report_from_snapshot,
    utilisation_timeline,
)
from .tables import dicts_to_table, format_markdown, format_table

__all__ = [
    "OccupancyReport",
    "asciiplot",
    "csvio",
    "compare_occupancy",
    "dicts_to_table",
    "format_markdown",
    "format_table",
    "kind_summary",
    "legend",
    "occupancy_report",
    "occupancy_report_from_snapshot",
    "render_gantt",
    "utilisation_timeline",
]
