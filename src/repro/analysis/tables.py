"""Fixed-width table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; this module renders them readably in a terminal
and as GitHub-flavoured markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 10000 or magnitude < 0.001:
            return f"{value:.{precision}g}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render rows as an aligned text table."""
    cells = [[_format_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row of {len(row)} cells under {len(headers)} headers")
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 3,
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        cells = [_format_cell(v, precision) for v in row]
        if len(cells) != len(headers):
            raise ValueError(f"row of {len(cells)} cells under {len(headers)} headers")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def dicts_to_table(records: Sequence[dict], keys: Sequence[str] | None = None) -> str:
    """Tabulate a list of flat dicts (e.g. ``RunResult.to_dict()``)."""
    if not records:
        return "(no rows)"
    keys = list(keys or records[0].keys())
    rows = [[rec.get(k, "") for k in keys] for rec in records]
    return format_table(keys, rows)
