"""Flat-record CSV export/import for sweep results.

The benchmark harness prints tables; longer studies want files.  These
helpers move lists of flat dicts (e.g. ``RunResult.to_dict()``) in and
out of CSV with type round-tripping for the common scalar types.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Sequence


def _encode(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode(text: str) -> Any:
    if text == "":
        return None
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def dumps(records: Sequence[dict], fields: Sequence[str] | None = None) -> str:
    """Render records as CSV text; columns default to the union of keys
    in first-seen order."""
    if not records:
        return ""
    if fields is None:
        fields = []
        for rec in records:
            for key in rec:
                if key not in fields:
                    fields.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(fields), extrasaction="ignore")
    writer.writeheader()
    for rec in records:
        writer.writerow({k: _encode(rec.get(k)) for k in fields})
    return buf.getvalue()


def loads(text: str) -> list[dict]:
    """Parse CSV text back into typed records."""
    if not text.strip():
        return []
    reader = csv.DictReader(io.StringIO(text))
    return [{k: _decode(v) for k, v in row.items()} for row in reader]


def write_csv(records: Sequence[dict], path: str, fields: Sequence[str] | None = None) -> None:
    with open(path, "w", newline="") as fh:
        fh.write(dumps(records, fields))


def read_csv(path: str) -> list[dict]:
    with open(path) as fh:
        return loads(fh.read())
