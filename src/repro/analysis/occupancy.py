"""Occupancy analysis of traces (the quantitative side of Fig. 10).

The paper validates the CA scheme by showing its trace has "more tasks
... executed while network messages are exchanged and we generally
have higher CPU occupancy", plus median kernel times (base 136 ms vs
CA 153 ms on their profiled run -- CA kernels are slower due to the
extra ghost copies, yet the run is faster end to end).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.trace import Trace, idle_fraction_timeline, kind_statistics, median


@dataclass(frozen=True)
class OccupancyReport:
    """Per-node occupancy summary of one traced run."""

    node: int
    workers: int
    occupancy: float
    median_task_s: float
    median_boundary_s: float
    median_interior_s: float
    mean_task_s: float
    mean_boundary_s: float
    busy_s: float
    makespan_s: float

    def as_row(self) -> tuple:
        return (
            self.node,
            self.occupancy,
            self.median_task_s,
            self.median_boundary_s,
            self.median_interior_s,
        )


def occupancy_report(trace: Trace, node: int, workers: int) -> OccupancyReport:
    """Summarise one node's compute-worker activity."""
    spans = [s for s in trace.compute_spans() if s.node == node]
    durations = sorted(s.duration for s in spans)
    boundary = sorted(s.duration for s in spans if s.kind == "boundary")
    interior = sorted(s.duration for s in spans if s.kind == "interior")
    return OccupancyReport(
        node=node,
        workers=workers,
        occupancy=trace.occupancy(node, workers),
        median_task_s=median(durations),
        median_boundary_s=median(boundary),
        median_interior_s=median(interior),
        mean_task_s=sum(durations) / len(durations) if durations else 0.0,
        mean_boundary_s=sum(boundary) / len(boundary) if boundary else 0.0,
        busy_s=sum(durations),
        makespan_s=trace.makespan(),
    )


def occupancy_report_from_snapshot(
    snapshot, node: int, workers: int | None = None
) -> OccupancyReport:
    """An :class:`OccupancyReport` from a metrics snapshot instead of a
    span trace.

    Full traces cost memory proportional to the task count and are
    often disabled for overhead; the registry's
    ``worker_busy_seconds_total`` / ``run_elapsed_seconds`` counters
    are always exact, so occupancy (and the busy/makespan totals) stay
    reportable.  Per-kind medians need span durations and are reported
    as 0 -- a counter cannot recover a distribution.
    """
    cells = snapshot.labelled("worker_busy_seconds_total")
    per_worker = {
        dict(ls).get("worker"): value
        for ls, value in cells.items()
        if dict(ls).get("node") in (node, str(node))
    }
    if workers is None:
        workers = len(per_worker) or int(snapshot.gauge("workers_per_node")) or 1
    busy = float(sum(per_worker.values()))
    makespan = float(snapshot.gauge("run_elapsed_seconds"))
    denom = makespan * workers
    return OccupancyReport(
        node=node,
        workers=workers,
        occupancy=busy / denom if denom > 0 else 0.0,
        median_task_s=0.0,
        median_boundary_s=0.0,
        median_interior_s=0.0,
        mean_task_s=0.0,
        mean_boundary_s=0.0,
        busy_s=busy,
        makespan_s=makespan,
    )


def utilisation_timeline(trace: Trace, node: int, workers: int, buckets: int = 50) -> list[float]:
    """Busy-fraction per time bucket (Fig. 10's visual density)."""
    return idle_fraction_timeline(trace, node, workers, buckets)


def compare_occupancy(
    base_trace: Trace, ca_trace: Trace, node: int, workers: int
) -> dict[str, float]:
    """The Fig.-10 head-to-head: occupancy and median kernel time of
    base vs CA on the same node."""
    base = occupancy_report(base_trace, node, workers)
    ca = occupancy_report(ca_trace, node, workers)
    return {
        "base_occupancy": base.occupancy,
        "ca_occupancy": ca.occupancy,
        "occupancy_gain": ca.occupancy - base.occupancy,
        "base_median_task_s": base.median_task_s,
        "ca_median_task_s": ca.median_task_s,
        "base_mean_boundary_s": base.mean_boundary_s,
        "ca_mean_boundary_s": ca.mean_boundary_s,
        "ca_kernel_slowdown": (
            ca.mean_boundary_s / base.mean_boundary_s
            if base.mean_boundary_s > 0
            else 0.0
        ),
        "base_makespan_s": base.makespan_s,
        "ca_makespan_s": ca.makespan_s,
        "ca_speedup": (
            base.makespan_s / ca.makespan_s if ca.makespan_s > 0 else 0.0
        ),
    }


def kind_summary(trace: Trace) -> list[tuple[str, int, float, float]]:
    """(kind, count, total_s, median_s) rows, biggest first."""
    return [(k.kind, k.count, k.total, k.median) for k in kind_statistics(trace)]


def critpath_blame_shares(trace: Trace, graph=None) -> dict[str, float]:
    """Blame shares of the executed critical path -- the causal
    complement of occupancy: occupancy says how busy the workers were,
    this says what the *makespan-determining chain* was spent on.
    Returns ``{blame: fraction of makespan}``."""
    from ..obs.critpath import critical_path

    return critical_path(trace, graph).blame_shares()
