"""Command-line interface: ``python -m repro ...``.

Gives the library's main entry points a shell-friendly face:

* ``run`` -- run one implementation on one machine configuration and
  print the performance summary (optionally verify against the
  reference or export a Chrome trace); ``--backend threads --jobs N``
  executes the graph for real on this host's cores;
* ``compare`` -- simulated-vs-measured side-by-side plus a measured
  speedup curve over worker counts;
* ``tune`` -- model-guided autotuning of tile size, CA step size and
  scheduling policy (successive halving under a run budget, winners
  cached per machine fingerprint; see ``docs/tuning-guide.md``);
* ``sweep`` -- a general cartesian sweep over runner parameters with
  CSV/JSON export (the shell face of ``repro.experiments.sweeper``);
* ``experiment`` -- regenerate one of the paper's tables/figures by
  registry id (``table1``, ``fig5`` ... ``headlines``);
* ``monitor`` -- run one configuration with live progress lines
  (tasks done/total, occupancy, messages vs. the static census);
* ``stats`` -- an instrumented run with a post-run metric summary,
  Prometheus/JSONL/OTel exports, baseline recording
  (``--write-baseline``) and the perf-regression gate (``--check``,
  exit 1 on regression; see ``docs/observability.md``);
* ``critpath`` -- causal critical-path analysis of one traced run:
  per-segment blame (compute / comm / wire / queue), stragglers,
  worker imbalance, flamegraph and highlighted Chrome-trace exports;
* ``trace-diff`` -- run two implementations on the same problem and
  report where the time moved (defaults to the Fig.-10 base-vs-CA
  configuration; ``--assert-comm-drop`` exits 1 unless CA shows a
  strictly lower communication share of critical-path time);
* ``serve`` -- run the persistent solver service against synthetic
  multi-tenant traffic with live queue/progress lines and a serving
  summary (warm starts, cache hit-rate, batching, admission rejects;
  see ``docs/serving.md``);
* ``submit`` -- submit one solve through a transient service backed
  by the persistent on-disk result cache: a repeated identical
  invocation is served from the cache and executes zero tasks;
* ``chaos`` -- run one workload twice, fault-free and under a seeded
  fault plan (``--plan "kill:node=3,step=2s"``), recover via
  checkpoint restart and assert the final grids are bit-identical
  with bounded makespan inflation (see ``docs/chaos.md``);
* ``validate`` -- the cross-implementation equivalence check;
* ``machines`` -- list the machine presets with their parameters.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import format_table
from .core.runner import BACKENDS, IMPLEMENTATIONS, run
from .core.validate import validate_implementations
from .experiments.sweeper import RUN_AXES as SWEEP_AXES
from .machine.machine import PRESETS, preset
from .stencil.problem import JacobiProblem


def _add_run_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run one stencil implementation")
    p.add_argument("--impl", choices=IMPLEMENTATIONS, default="ca-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--n", type=int, default=1152, help="grid edge length")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--tile", type=int, default=None)
    p.add_argument("--steps", type=int, default=15, help="CA step size")
    p.add_argument("--ratio", type=float, default=1.0,
                   help="kernel adjustment ratio (section VI-D)")
    p.add_argument("--policy", default="priority",
                   choices=("priority", "fifo", "lifo"))
    p.add_argument("--execute", action="store_true",
                   help="run real kernels and check against the reference")
    p.add_argument("--backend", choices=BACKENDS, default="sim",
                   help="'sim' = discrete-event model (virtual clock), "
                        "'threads' = real parallel execution on this host, "
                        "'processes' = one OS process per node with real "
                        "IPC halo messages")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker threads for --backend threads/processes "
                        "(default: all cores, split over the processes)")
    p.add_argument("--procs", type=int, default=None,
                   help="node processes for --backend processes "
                        "(default: the machine's node count)")
    p.add_argument("--passes", default=None, metavar="SPEC",
                   help="IR rewrite pipeline applied to the built graph, "
                        "e.g. 'fuse,coarsen:factor=4' (see docs/ir.md)")
    p.add_argument("--trace-out", default=None, metavar="FILE.json",
                   help="write a Chrome trace-event file")


def _add_compare_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "compare",
        help="simulated-vs-measured report (model clock vs wall clock)",
    )
    p.add_argument("--impl", choices=IMPLEMENTATIONS + ("all",), default="all")
    p.add_argument("--n", type=int, default=192, help="grid edge length")
    p.add_argument("--iterations", type=int, default=24)
    p.add_argument("--tile", type=int, default=48)
    p.add_argument("--steps", type=int, default=4, help="CA step size")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker threads for the measured runs")
    p.add_argument("--backend", choices=("threads", "processes"),
                   default="threads",
                   help="which real backend supplies the measured side")
    p.add_argument("--procs", type=int, default=None,
                   help="node processes for --backend processes")
    p.add_argument("--curve", action="store_true",
                   help="also measure a speedup curve over 1/2/4 workers")


def _add_tune_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "tune",
        help="autotune tile/step/policy (model shortlist + successive halving)",
    )
    p.add_argument("--impl", choices=("base-parsec", "ca-parsec"),
                   default="ca-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--n", type=int, default=4608, help="grid edge length")
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--budget", type=int, default=24,
                   help="maximum number of tuning runs (model ranking is free)")
    p.add_argument("--backend", choices=BACKENDS, default="sim",
                   help="backend that refines the shortlist (sim = "
                        "discrete-event model; threads/processes measure "
                        "the finalists on this host)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker threads for measured refinement runs")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-candidate seconds for measured runs")
    p.add_argument("--seed", type=int, default=0,
                   help="exploration seed (same seed + budget => same winner)")
    p.add_argument("--cache-path", default=None, metavar="FILE.json",
                   help="tuning cache location (default "
                        "$REPRO_TUNING_CACHE or ~/.cache/repro/tuning.json)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither consult nor write the cache")
    p.add_argument("--force", action="store_true",
                   help="re-tune even when the cache already has a winner")
    p.add_argument("--wide", action="store_true",
                   help="also search policy/overlap/boundary-priority axes")
    p.add_argument("--csv-out", default=None, metavar="FILE.csv",
                   help="write the per-trial records as CSV")


def _add_sweep_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "sweep",
        help="cartesian sweep over runner parameters (CSV/JSON export)",
    )
    p.add_argument("--machine", action="append", default=None,
                   help="machine preset, repeatable (default: nacl)")
    p.add_argument("--nodes", action="append", type=int, default=None,
                   help="node count, repeatable (default: 4)")
    p.add_argument("--n", type=int, default=1152, help="grid edge length")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--axis", action="append", default=[],
                   metavar="KEY=V1,V2,...",
                   help="sweep axis, repeatable; keys: "
                        f"{', '.join(SWEEP_AXES)} "
                        "(the passes axis separates values with ';')")
    p.add_argument("--seed", type=int, default=None,
                   help="shuffle evaluation order reproducibly")
    p.add_argument("--csv-out", default=None, metavar="FILE.csv")
    p.add_argument("--json-out", default=None, metavar="FILE.json")


def _int_or_auto(value: str) -> int | str:
    """Knob values that are either an integer or the string 'auto'."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_obs_run_flags(p: argparse.ArgumentParser) -> None:
    """The run-configuration knobs shared by ``monitor`` and ``stats``."""
    p.add_argument("--impl", choices=IMPLEMENTATIONS, default="ca-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--n", type=int, default=256, help="grid edge length")
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--tile", type=_int_or_auto, default=None,
                   help="tile size, or 'auto' for the tuner")
    p.add_argument("--steps", type=_int_or_auto, default=4,
                   help="CA step size, or 'auto' for the tuner")
    p.add_argument("--ratio", type=float, default=1.0)
    p.add_argument("--policy", default="priority",
                   choices=("priority", "fifo", "lifo"))
    p.add_argument("--backend", choices=BACKENDS, default="sim")
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--procs", type=int, default=None)


def _add_monitor_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "monitor",
        help="run one configuration with live progress telemetry",
    )
    _add_obs_run_flags(p)
    p.add_argument("--interval", type=float, default=0.5,
                   help="seconds between progress samples")


def _add_stats_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "stats",
        help="instrumented run: metric summary, baselines and the "
             "perf-regression gate",
    )
    _add_obs_run_flags(p)
    p.add_argument("--check", default=None, metavar="FILE.json",
                   help="compare against a recorded baseline "
                        "(obs-baseline or BENCH_*.json); exit 1 on "
                        "regression")
    p.add_argument("--write-baseline", default=None, metavar="FILE.json",
                   help="record this run as an obs-baseline document")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="allowed relative drift per gated metric")
    p.add_argument("--section", action="append", default=None,
                   metavar="NAME",
                   help="restrict a BENCH_*.json check to one section "
                        "(repeatable); --section serve runs a canned "
                        "service workload and reports/gates its serving "
                        "metrics instead of a single run")
    p.add_argument("--prom-out", default=None, metavar="FILE.prom",
                   help="write Prometheus text exposition")
    p.add_argument("--jsonl-out", default=None, metavar="FILE.jsonl",
                   help="write metrics (and spans, if traced) as JSON lines")
    p.add_argument("--otel-out", default=None, metavar="FILE.json",
                   help="write OTel-style span export (implies tracing)")


def _add_critpath_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "critpath",
        help="causal critical-path analysis of one traced run "
             "(blame, slack, stragglers, flamegraph)",
    )
    _add_obs_run_flags(p)
    p.add_argument("--segments", type=int, default=5,
                   help="longest critical-path segments to list")
    p.add_argument("--gantt", action="store_true",
                   help="render the Gantt chart with the critical-path "
                        "overlay row")
    p.add_argument("--flame-out", default=None, metavar="FILE.folded",
                   help="write collapsed stacks (trace + critical path) "
                        "for flamegraph.pl / speedscope")
    p.add_argument("--trace-out", default=None, metavar="FILE.json",
                   help="write a Chrome trace with the critical-path "
                        "highlight lane")


def _add_trace_diff_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "trace-diff",
        help="run two implementations and report where the time moved "
             "(defaults to the Fig.-10 base-vs-CA configuration)",
    )
    p.add_argument("--impl-a", choices=IMPLEMENTATIONS, default="base-parsec")
    p.add_argument("--impl-b", choices=IMPLEMENTATIONS, default="ca-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--n", type=int, default=23040, help="grid edge length")
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--tile", type=int, default=288)
    p.add_argument("--steps", type=int, default=15, help="CA step size")
    p.add_argument("--ratio", type=float, default=0.2,
                   help="kernel adjustment ratio (the paper's profiled "
                        "run is comm-bound)")
    p.add_argument("--policy", default="priority",
                   choices=("priority", "fifo", "lifo"))
    p.add_argument("--backend", choices=BACKENDS, default="sim")
    p.add_argument("--jobs", type=int, default=None)
    p.add_argument("--procs", type=int, default=None)
    p.add_argument("--passes-a", default=None, metavar="SPEC",
                   help="IR rewrite pipeline for side A")
    p.add_argument("--passes-b", default=None, metavar="SPEC",
                   help="IR rewrite pipeline for side B")
    p.add_argument("--top", type=int, default=5,
                   help="task movers to list")
    p.add_argument("--assert-comm-drop", action="store_true",
                   help="exit 1 unless run B shows a strictly lower "
                        "communication share of critical-path time")
    p.add_argument("--flame-out-a", default=None, metavar="FILE.folded",
                   help="write run A's collapsed stacks")
    p.add_argument("--flame-out-b", default=None, metavar="FILE.folded",
                   help="write run B's collapsed stacks")


def _add_experiment_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help="experiment id (use 'list' to enumerate)")


def _add_validate_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("validate", help="cross-implementation equivalence check")
    p.add_argument("--n", type=int, default=48)
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--tile", type=int, default=8)
    p.add_argument("--steps", type=int, default=3)


def _add_serve_request_flags(p: argparse.ArgumentParser) -> None:
    """The solve-shape knobs shared by ``serve`` and ``submit``."""
    p.add_argument("--impl", choices=IMPLEMENTATIONS, default="base-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--n", type=int, default=96, help="grid edge length")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--tile", type=int, default=None)
    p.add_argument("--steps", type=int, default=15, help="CA step size")
    p.add_argument("--ratio", type=float, default=1.0)
    p.add_argument("--backend", choices=("threads", "processes"),
                   default="threads",
                   help="execution backend inside the service workers")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker threads per solve")
    p.add_argument("--passes", default=None, metavar="SPEC",
                   help="IR rewrite pipeline for every request, e.g. "
                        "'fuse,coarsen:factor=4'")


def _add_serve_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="run the solver service against synthetic multi-tenant "
             "traffic (live progress + serving summary)",
    )
    _add_serve_request_flags(p)
    p.add_argument("--pool", choices=("threads", "processes"),
                   default="threads",
                   help="warm-pool kind: reusable in-process executors "
                        "or persistent forked children")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent batches in flight (pool capacity)")
    p.add_argument("--tenants", type=int, default=2,
                   help="synthetic tenants submitting traffic")
    p.add_argument("--requests", type=int, default=6,
                   help="requests per tenant (second half repeats the "
                        "first, exercising the result cache)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission bound (submissions beyond it are "
                        "fast-rejected)")
    p.add_argument("--tenant-limit", type=int, default=2,
                   help="per-tenant in-flight cap")
    p.add_argument("--batch-window", type=float, default=0.005,
                   help="seconds the dispatcher waits to fuse "
                        "compatible jobs into one batch")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result-cache directory (default: a private "
                        "temporary directory for this invocation)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--interval", type=float, default=0.5,
                   help="seconds between live progress samples")
    p.add_argument("--trace-out", default=None, metavar="FILE.json",
                   help="write the combined lifecycle + execution "
                        "timeline as Chrome trace events (enables "
                        "per-request execution tracing)")
    p.add_argument("--otel-out", default=None, metavar="FILE.json",
                   help="write the combined timeline as an OTel OTLP "
                        "JSON document")


def _add_slo_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "slo",
        help="per-tenant SLO report (latency percentiles, error-budget "
             "burn) from canned multi-tenant traffic",
    )
    _add_serve_request_flags(p)
    p.add_argument("--tenants", type=int, default=2,
                   help="synthetic tenants submitting traffic")
    p.add_argument("--requests", type=int, default=4,
                   help="requests per tenant")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent batches in flight (pool capacity)")
    p.add_argument("--objective", type=float, default=0.99,
                   help="availability objective the error budget burns "
                        "against")
    p.add_argument("--fault", default=None, metavar="PLAN",
                   help="also submit one zero-retry request under this "
                        "chaos plan (e.g. 'kill:node=1,step=1s'): the "
                        "terminal failure exercises the flight recorder "
                        "and prints the postmortem dump path")
    p.add_argument("--dump-dir", default=None, metavar="DIR",
                   help="directory flight-recorder dumps land in "
                        "(default: <tempdir>/repro-postmortem)")


def _add_alerts_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "alerts",
        help="evaluate alert rules against a live canned-traffic "
             "service, or replay them over a recorded series file "
             "(deterministic: same file, byte-identical transitions)",
    )
    _add_serve_request_flags(p)
    p.add_argument("--rules", default=None, metavar="FILE.json",
                   help="alert rules file (default: the built-in "
                        "serving rules; see examples/alert_rules.json)")
    p.add_argument("--series", default=None, metavar="FILE.jsonl",
                   help="replay a recorded series export instead of "
                        "running live traffic")
    p.add_argument("--log-out", default=None, metavar="FILE.jsonl",
                   help="append alert transitions as JSONL (the sink "
                        "CI greps and byte-compares)")
    p.add_argument("--series-out", default=None, metavar="FILE.jsonl",
                   help="live mode: export the sampled series for "
                        "later replay")
    p.add_argument("--tenants", type=int, default=2,
                   help="synthetic tenants submitting traffic")
    p.add_argument("--requests", type=int, default=4,
                   help="requests per tenant")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent batches in flight (pool capacity)")
    p.add_argument("--sample-interval", type=float, default=0.2,
                   help="telemetry sampling interval in seconds")
    p.add_argument("--fault", default=None, metavar="PLAN",
                   help="also submit one zero-retry request under this "
                        "chaos plan (e.g. 'kill:node=1,step=1'): the "
                        "node-lost and burn-rate rules should fire, "
                        "then resolve once the windows slide past")
    p.add_argument("--settle", type=float, default=12.0,
                   help="seconds to keep sampling after traffic so "
                        "firing alerts can resolve")
    p.add_argument("--dump-dir", default=None, metavar="DIR",
                   help="directory alert-triggered flight-recorder "
                        "dumps land in (default: "
                        "<tempdir>/repro-postmortem)")


def _add_top_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a serving run: queue depth, "
             "busy share, rates, per-tenant p95 sparklines, active "
             "alerts (or one frame of a recorded series)",
    )
    _add_serve_request_flags(p)
    p.add_argument("--series", default=None, metavar="FILE.jsonl",
                   help="render a recorded series export instead of "
                        "driving live traffic")
    p.add_argument("--rules", default=None, metavar="FILE.json",
                   help="alert rules for the active-alert table "
                        "(default: the built-in serving rules)")
    p.add_argument("--no-alerts", action="store_true",
                   help="skip alert evaluation entirely")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit")
    p.add_argument("--window", type=float, default=10.0,
                   help="trailing window for rates and percentiles")
    p.add_argument("--refresh", type=float, default=0.5,
                   help="seconds between rendered frames")
    p.add_argument("--sample-interval", type=float, default=0.2,
                   help="telemetry sampling interval in seconds")
    p.add_argument("--tenants", type=int, default=2,
                   help="synthetic tenants submitting traffic")
    p.add_argument("--requests", type=int, default=4,
                   help="requests per tenant")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent batches in flight (pool capacity)")


def _add_postmortem_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "postmortem",
        help="render a flight-recorder dump as a terminal timeline "
             "with blame",
    )
    p.add_argument("dump", help="postmortem JSON the service dumped "
                                "(see `repro slo --fault` or "
                                "SolverService.stats()['postmortems'])")
    p.add_argument("--width", type=int, default=100,
                   help="maximum rendered line width")


def _add_submit_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "submit",
        help="submit one solve through a transient service (persistent "
             "disk cache: a repeat invocation executes zero tasks)",
    )
    _add_serve_request_flags(p)
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--deadline", type=float, default=None,
                   help="deadline in seconds for this request")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the outcome")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result-cache directory (default "
                        "$REPRO_SERVE_CACHE or ~/.cache/repro/serve)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither consult nor write the result cache")


def _add_chaos_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "chaos",
        help="fault-injection round trip: run under a fault plan, "
             "recover, assert bit-identical grids",
    )
    p.add_argument("--plan", required=True,
                   help="fault plan, e.g. 'kill:node=3,step=2s' or "
                        "'kill:node=3,step=2s;delay:node=1,step=3,secs=0.01' "
                        "(kinds: kill, delay, slow, drop)")
    p.add_argument("--seed", type=int, default=0,
                   help="plan seed recorded in the fingerprint")
    p.add_argument("--impl", choices=("base-parsec", "ca-parsec"),
                   default="ca-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--n", type=int, default=192, help="grid edge length")
    p.add_argument("--iterations", type=int, default=24)
    p.add_argument("--tile", type=int, default=48)
    p.add_argument("--steps", type=int, default=4, help="CA step size")
    p.add_argument("--backend", choices=BACKENDS, default="threads")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker threads for the real backends")
    p.add_argument("--policy", default="priority",
                   choices=("priority", "fifo", "lifo"))
    p.add_argument("--max-restarts", type=int, default=3,
                   help="recovery attempts before giving up")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="checkpoint cadence in sweeps (default: the CA "
                        "step size s -- the paper's exchange boundary)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="keep checkpoint/fault state here (default: a "
                        "temporary directory)")
    p.add_argument("--inflation-bound", type=float, default=2.0,
                   help="fail if chaos wall time exceeds this multiple "
                        "of the fault-free run")
    p.add_argument("--speculate", action="store_true",
                   help="speculatively re-execute the straggler tail "
                        "from the latest checkpoint and verify it")


def _add_ir_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "ir",
        help="rewrite a task graph through an IR pass pipeline and "
             "report the before/after evidence",
    )
    p.add_argument("--passes", required=True, metavar="SPEC",
                   help="pipeline spec, e.g. 'fuse,coarsen:factor=4' "
                        "(passes: %s)" % ", ".join(
                            ("fuse", "coarsen", "latency", "ca")))
    p.add_argument("--impl", choices=IMPLEMENTATIONS, default="ca-parsec")
    p.add_argument("--machine", default="nacl", help="machine preset name")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--n", type=int, default=192, help="grid edge length")
    p.add_argument("--iterations", type=int, default=8)
    p.add_argument("--tile", type=int, default=None)
    p.add_argument("--steps", type=int, default=4, help="CA step size")
    p.add_argument("--ratio", type=float, default=1.0)
    p.add_argument("--policy", default="priority",
                   choices=("priority", "fifo", "lifo"))
    p.add_argument("--dot-before", default=None, metavar="FILE.dot",
                   help="write the unrewritten graph as Graphviz dot")
    p.add_argument("--dot-after", default=None, metavar="FILE.dot",
                   help="write the rewritten graph as Graphviz dot")
    p.add_argument("--trace-before", default=None, metavar="FILE.json",
                   help="write the baseline's Chrome trace-event file")
    p.add_argument("--trace-after", default=None, metavar="FILE.json",
                   help="write the rewritten run's Chrome trace-event file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-avoiding 2D stencils over a task-based "
                    "runtime (IPDPSW 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_compare_parser(sub)
    _add_tune_parser(sub)
    _add_sweep_parser(sub)
    _add_monitor_parser(sub)
    _add_stats_parser(sub)
    _add_critpath_parser(sub)
    _add_trace_diff_parser(sub)
    _add_ir_parser(sub)
    _add_experiment_parser(sub)
    _add_serve_parser(sub)
    _add_submit_parser(sub)
    _add_slo_parser(sub)
    _add_alerts_parser(sub)
    _add_top_parser(sub)
    _add_postmortem_parser(sub)
    _add_chaos_parser(sub)
    _add_validate_parser(sub)
    sub.add_parser("machines", help="list machine presets")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    machine = preset(args.machine, nodes=args.nodes)
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    result = run(
        problem,
        impl=args.impl,
        machine=machine,
        tile=args.tile,
        steps=args.steps,
        ratio=args.ratio,
        policy=args.policy,
        mode="execute" if args.execute else "simulate",
        trace=args.trace_out is not None,
        backend=args.backend,
        jobs=args.jobs,
        procs=args.procs,
        passes=args.passes,
    )
    if result.pass_reports is not None:
        print(result.pass_reports.format())
    print(result.summary())
    if args.execute:
        import numpy as np

        err = float(np.max(np.abs(result.grid - problem.reference_solution())))
        print(f"max |error| vs reference: {err:.3e}")
        if err > 1e-9:
            print("VALIDATION FAILED", file=sys.stderr)
            return 1
    if args.trace_out:
        from .runtime import chrome_trace

        chrome_trace.write(result.trace, args.trace_out)
        print(f"trace written to {args.trace_out} (open in chrome://tracing)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .exec.compare import (
        compare_all,
        compare_backends,
        format_comparison,
        speedup_curve,
    )

    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    if args.impl == "all":
        comparisons = compare_all(
            problem, jobs=args.jobs, tile=args.tile, steps=args.steps,
            backend=args.backend, procs=args.procs,
        )
    else:
        kwargs = {}
        if args.impl != "petsc":
            kwargs["tile"] = args.tile
        if args.impl == "ca-parsec":
            kwargs["steps"] = args.steps
        comparisons = [
            compare_backends(problem, impl=args.impl, jobs=args.jobs,
                             backend=args.backend, procs=args.procs, **kwargs)
        ]
    title = (
        f"model (virtual clock) vs measured (wall clock, "
        f"{comparisons[0].backend} backend), "
        f"{problem.shape[0]}^2 x {problem.iterations} iterations, "
        f"{comparisons[0].jobs} worker threads"
    )
    print(format_comparison(comparisons, title=title))
    if args.curve:
        impl = comparisons[-1].impl
        kwargs = {} if impl == "petsc" else {"tile": args.tile}
        if impl == "ca-parsec":
            kwargs["steps"] = args.steps
        points = speedup_curve(problem, impl=impl, jobs_list=(1, 2, 4), **kwargs)
        print(format_table(
            ("jobs", "wall ms", "speedup", "efficiency"),
            [(p.jobs, f"{p.elapsed * 1e3:.2f}", f"{p.speedup:.2f}x",
              f"{100 * p.efficiency:.0f}%") for p in points],
            title=f"measured strong scaling ({impl})",
        ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .tuning import TuningCache, format_tuning_report, tune
    from .tuning.space import SearchSpace

    machine = preset(args.machine, nodes=args.nodes)
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    if args.no_cache:
        cache = False
    elif args.cache_path is not None:
        cache = TuningCache(args.cache_path)
    else:
        cache = None  # tune() resolves the default location
    space = None
    if args.wide:
        space = SearchSpace.for_problem(
            problem, machine, impl=args.impl, wide=True
        )
    result = tune(
        problem,
        impl=args.impl,
        machine=machine,
        backend=args.backend,
        budget=args.budget,
        space=space,
        cache=cache,
        seed=args.seed,
        timeout=args.timeout,
        jobs=args.jobs,
        force=args.force,
    )
    print(format_tuning_report(result))
    if args.csv_out:
        result.to_csv(args.csv_out)
        print(f"trial records written to {args.csv_out}")
    return 0


def _parse_sweep_axes(specs: list[str]) -> dict[str, list]:
    from .analysis.csvio import _decode

    axes: dict[str, list] = {}
    for spec in specs:
        key, sep, values = spec.partition("=")
        key = key.strip()
        if not sep or not values or key not in SWEEP_AXES:
            raise SystemExit(
                f"bad --axis {spec!r}: expected KEY=V1,V2,... with KEY in "
                f"{SWEEP_AXES}"
            )
        # Pipeline specs contain commas ("fuse,coarsen:factor=4"), so
        # the passes axis separates its values with ';' instead.
        sep_char = ";" if key == "passes" else ","
        axes[key] = [_decode(v.strip()) for v in values.split(sep_char)]
    return axes


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweeper import Sweep, to_csv

    axes = _parse_sweep_axes(args.axis)
    if "impl" not in axes:
        axes["impl"] = ["base-parsec"]
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    sweep = Sweep(problem=problem)
    records = sweep.run(
        machine=args.machine or ["nacl"],
        nodes=args.nodes or [4],
        seed=args.seed,
        **axes,
    )
    swept = [k for k in ("machine_preset", "nodes", *SWEEP_AXES)
             if any(k in r for r in records)]
    rows = [
        tuple(r.get(k, "") for k in swept) + (f"{r['gflops']:.2f}",)
        for r in records
    ]
    print(format_table(tuple(swept) + ("gflops",), rows,
                       title=f"{len(records)} configurations"))
    if args.csv_out:
        to_csv(records, args.csv_out)
        print(f"records written to {args.csv_out}")
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(records, fh, indent=2)
        print(f"records written to {args.json_out}")
    return 0


def _instrumented_run(args: argparse.Namespace, config: dict | None = None,
                      on_executor=None, want_trace: bool = False):
    """One run with a metrics registry attached; ``config`` (from an
    obs-baseline document) overrides the CLI flags so a check re-runs
    exactly the recorded configuration.  Returns the RunResult."""
    from .obs import MetricRegistry

    cfg = dict(config or {})
    machine = preset(cfg.get("machine", args.machine),
                     nodes=int(cfg.get("nodes", args.nodes)))
    problem = JacobiProblem(n=int(cfg.get("n", args.n)),
                            iterations=int(cfg.get("iterations",
                                                   args.iterations)))
    backend = cfg.get("backend", args.backend)
    kwargs = dict(
        impl=cfg.get("impl", args.impl),
        machine=machine,
        tile=cfg.get("tile", args.tile),
        steps=cfg.get("steps", args.steps),
        ratio=float(cfg.get("ratio", args.ratio)),
        policy=cfg.get("policy", args.policy),
        backend=backend,
        jobs=cfg.get("jobs", args.jobs),
        metrics=MetricRegistry(),
        on_executor=on_executor,
        trace=want_trace,
    )
    if kwargs["impl"] == "petsc":
        kwargs.pop("tile"), kwargs.pop("steps")
        kwargs["ratio"] = 1.0
    if backend == "processes":
        kwargs["procs"] = cfg.get("procs", args.procs)
    return run(problem, **kwargs)


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .obs import RunMonitor, format_summary

    monitor = RunMonitor(interval=args.interval, stream=sys.stdout)
    try:
        result = _instrumented_run(args, on_executor=monitor.attach)
    finally:
        monitor.stop()
    print(result.summary())
    print(format_summary(result.metrics))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import format_summary, regress

    if args.section and "serve" in args.section:
        return _cmd_stats_serve(args)
    if args.check:
        doc = json.loads(Path(args.check).read_text())
        if not isinstance(doc, dict):
            print(f"{args.check}: baseline must be a JSON object",
                  file=sys.stderr)
            return 2
        if doc.get("kind") == regress.BASELINE_KIND:
            baseline = regress.flatten(doc.get("metrics", {}))
            result = _instrumented_run(args, config=doc.get("config", {}))
            measured = regress.metrics_from_result(result)
            print(result.summary())
            print(format_summary(result.metrics))
        else:
            baseline = regress.flatten(doc)
            measured, skipped = regress.measure_bench_tuning(
                baseline, sections=args.section
            )
            for note in skipped:
                print(f"skipped: {note}")
        report = regress.compare(baseline, measured,
                                 tolerance=args.tolerance)
        print(report.format())
        return 0 if report.ok else 1

    # Always trace: the causal critical-path gauges (critpath ratio,
    # comm share, per-blame seconds) need spans, and the summary's
    # top-segment lines come straight from the analysis.
    result = _instrumented_run(args, want_trace=True)
    snapshot = result.metrics
    print(result.summary())
    print(format_summary(snapshot))
    crit = result.critpath()
    print("  top critical-path segments")
    for seg in crit.top_segments(3):
        what = seg.kind or seg.blame
        task = f"  task {seg.task_id!r}" if seg.task_id is not None else ""
        print(f"    {seg.duration:.6g} s  {seg.blame:<10} {what:<10} "
              f"node {seg.node} worker {seg.worker}{task}")
    if args.prom_out:
        from .obs.export import write_prometheus

        write_prometheus(snapshot, args.prom_out)
        print(f"Prometheus exposition written to {args.prom_out}")
    if args.jsonl_out:
        from .obs.export import write_jsonl

        write_jsonl(args.jsonl_out, trace=result.trace, snapshot=snapshot)
        print(f"JSON lines written to {args.jsonl_out}")
    if args.otel_out:
        from .obs.export import write_otel

        write_otel(result.trace, args.otel_out)
        print(f"OTel span export written to {args.otel_out}")
    if args.write_baseline:
        regress.write_baseline(args.write_baseline,
                               regress.baseline_doc(result))
        print(f"baseline written to {args.write_baseline}")
    return 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    result = _instrumented_run(args, want_trace=True)
    report = result.critpath()
    print(result.summary())
    print(report.format())
    if args.segments > 3:  # format() already shows the top 3
        extra = report.top_segments(args.segments)[3:]
        for seg in extra:
            what = seg.kind or seg.blame
            print(f"    {seg.duration:.6g} s  {seg.blame:<10} {what:<10} "
                  f"node {seg.node} worker {seg.worker}")
    if args.gantt:
        from .analysis.gantt import crit_legend, render_gantt

        print(render_gantt(result.trace, 0, critpath=report))
        print(f"crit row: {crit_legend()}")
    if args.flame_out:
        from .obs.export import write_flamegraph

        write_flamegraph(args.flame_out, trace=result.trace, critpath=report)
        print(f"collapsed stacks written to {args.flame_out}")
    if args.trace_out:
        from .obs import export

        export.write(result.trace, args.trace_out, critpath=report)
        print(f"trace with critical-path lane written to {args.trace_out}")
    return 0


def _run_diff_side(args: argparse.Namespace, impl: str,
                   passes: str | None = None):
    machine = preset(args.machine, nodes=args.nodes)
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    kwargs = dict(impl=impl, machine=machine, policy=args.policy,
                  backend=args.backend, jobs=args.jobs, trace=True,
                  passes=passes)
    if args.backend == "processes":
        kwargs["procs"] = args.procs
    if impl != "petsc":
        kwargs.update(tile=args.tile, steps=args.steps, ratio=args.ratio)
    return run(problem, **kwargs)


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .obs.diff import diff_results

    result_a = _run_diff_side(args, args.impl_a, getattr(args, "passes_a", None))
    result_b = _run_diff_side(args, args.impl_b, getattr(args, "passes_b", None))
    label_a, label_b = args.impl_a, args.impl_b
    if getattr(args, "passes_a", None):
        label_a += f"+{args.passes_a}"
    if getattr(args, "passes_b", None):
        label_b += f"+{args.passes_b}"
    diff = diff_results(result_a, result_b, label_a=label_a, label_b=label_b)
    print(result_a.summary())
    print(result_b.summary())
    print(diff.format(top=args.top))
    if args.flame_out_a or args.flame_out_b:
        from .obs.export import write_flamegraph

        if args.flame_out_a:
            write_flamegraph(args.flame_out_a, trace=result_a.trace,
                             critpath=diff.critpath_a)
            print(f"{args.impl_a} collapsed stacks written to "
                  f"{args.flame_out_a}")
        if args.flame_out_b:
            write_flamegraph(args.flame_out_b, trace=result_b.trace,
                             critpath=diff.critpath_b)
            print(f"{args.impl_b} collapsed stacks written to "
                  f"{args.flame_out_b}")
    if args.assert_comm_drop:
        drop = diff.comm_share_drop
        if drop > 0:
            print(f"OK: {args.impl_b} puts {drop:.1%} less communication "
                  f"on the critical path than {args.impl_a}")
        else:
            print(f"FAIL: {args.impl_b} does not lower the communication "
                  f"share of critical-path time ({-drop:+.1%} vs "
                  f"{args.impl_a})", file=sys.stderr)
            return 1
    return 0


def _cmd_ir(args: argparse.Namespace) -> int:
    machine = preset(args.machine, nodes=args.nodes)
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    want_trace = bool(args.trace_before or args.trace_after)
    kwargs = dict(machine=machine, policy=args.policy, trace=want_trace)
    if args.impl != "petsc":
        kwargs.update(tile=args.tile, steps=args.steps, ratio=args.ratio)
    baseline = run(problem, impl=args.impl, **kwargs)
    rewritten = run(problem, impl=args.impl, passes=args.passes, **kwargs)

    print(rewritten.pass_reports.format())
    delta = rewritten.elapsed - baseline.elapsed
    rel = delta / baseline.elapsed if baseline.elapsed > 0 else 0.0
    print(f"baseline : makespan {baseline.elapsed * 1e3:.3f} ms, "
          f"{baseline.messages} msgs")
    print(f"rewritten: makespan {rewritten.elapsed * 1e3:.3f} ms, "
          f"{rewritten.messages} msgs")
    print(f"makespan delta: {delta * 1e3:+.3f} ms ({rel:+.1%})")

    if args.dot_before or args.dot_after:
        from .runtime.dot import write_dot

        if args.dot_before:
            write_dot(baseline.graph, args.dot_before)
            print(f"baseline graph written to {args.dot_before}")
        if args.dot_after:
            write_dot(rewritten.graph, args.dot_after)
            print(f"rewritten graph written to {args.dot_after}")
    if want_trace:
        from .runtime import chrome_trace

        if args.trace_before:
            chrome_trace.write(baseline.trace, args.trace_before)
            print(f"baseline trace written to {args.trace_before}")
        if args.trace_after:
            chrome_trace.write(rewritten.trace, args.trace_after)
            print(f"rewritten trace written to {args.trace_after}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import registry
    from .experiments.common import NACL, STAMPEDE2

    if args.id == "list":
        rows = [(e.id, e.paper_artifact, e.description) for e in registry.REGISTRY.values()]
        print(format_table(("id", "artifact", "description"), rows))
        return 0
    entry = registry.get(args.id)
    module = entry.module
    print(f"{entry.paper_artifact}: {entry.description}")
    if args.id == "table1":
        print(format_table(module.HEADERS, module.rows(), title="modelled (MB/s)"))
        print(format_table(module.HEADERS, module.paper_rows(), title="paper (MB/s)"))
    elif args.id == "fig5":
        print(format_table(module.HEADERS, module.rows()))
        from .analysis.asciiplot import plot

        sizes, na, s2 = module.curves()
        print()
        print(plot(sizes, {"NaCL": [100 * v for v in na],
                           "Stampede2": [100 * v for v in s2]},
                   logx=True, title="% of theoretical peak vs message size"))
    elif args.id == "roofline":
        print(format_table(module.HEADERS, module.rows()))
        print(f"paper brackets: {module.PAPER}")
    elif args.id == "fig6":
        for setup in (NACL, STAMPEDE2):
            print(format_table(module.HEADERS, module.rows(setup),
                               title=f"{setup.name} (paper: "
                                     f"{module.PAPER_OPTIMUM[setup.name]} optimal)"))
    elif args.id == "fig7":
        for setup in (NACL, STAMPEDE2):
            print(format_table(module.HEADERS, module.rows(setup),
                               title=f"{setup.name} speedups"))
    elif args.id == "fig8":
        for setup in (NACL, STAMPEDE2):
            print(format_table(module.HEADERS, module.rows(setup),
                               title=f"{setup.name}"))
    elif args.id == "fig9":
        print(format_table(module.HEADERS, module.rows(NACL), title="NaCL"))
    elif args.id == "fig10":
        exp = module.capture()
        print(format_table(module.HEADERS, module.rows(exp)))
        print(exp.gantt("base", critpath=True))
        print(exp.gantt("ca", critpath=True))
        print(module.causal_summary(exp))
    elif args.id == "headlines":
        h = module.compute()
        print(format_table(module.HEADERS, module.rows(h)))
    return 0


def _serve_knobs(args: argparse.Namespace) -> dict:
    """Solve-shape kwargs for a :class:`SolveRequest` from CLI flags."""
    machine = preset(args.machine, nodes=args.nodes)
    knobs = dict(impl=args.impl, machine=machine,
                 backend=args.backend, jobs=args.jobs,
                 passes=getattr(args, "passes", None))
    if args.impl != "petsc":
        knobs.update(tile=args.tile, ratio=args.ratio)
        if args.impl == "ca-parsec":
            knobs["steps"] = args.steps
    return knobs


def _serve_traffic(
    service,
    tenants: int,
    per_tenant: int,
    problems: list,
    knobs: dict,
    deadline_s: float | None = None,
    timeout: float = 300.0,
) -> dict[str, int]:
    """Synthetic multi-tenant traffic: each tenant submits its share
    in two waves over the same problem variants, so the second wave
    is served from the result cache.  Returns outcome tallies."""
    from .serve import ServeError, SolverClient

    clients = [
        SolverClient(service, tenant=f"tenant-{chr(ord('a') + i)}",
                     deadline_s=deadline_s)
        for i in range(tenants)
    ]
    tally = {"ok": 0, "cached": 0, "rejected": 0, "failed": 0}
    first = (per_tenant + 1) // 2
    for count in (first, per_tenant - first):
        futures = []
        for client in clients:
            for k in range(count):
                try:
                    futures.append(
                        client.submit(problems[k % len(problems)], **knobs)
                    )
                except ServeError:
                    tally["rejected"] += 1
        for future in futures:
            try:
                outcome = future.result(timeout)
            except ServeError:
                tally["failed"] += 1
            else:
                tally["cached" if outcome.cached else "ok"] += 1
    return tally


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    from .obs import RunMonitor, format_serve_summary
    from .serve import ServiceConfig, SolverService

    problems = [
        JacobiProblem(n=args.n, iterations=args.iterations + k)
        for k in range(max(1, (args.requests + 1) // 2))
    ]
    knobs = _serve_knobs(args)
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        if args.no_cache:
            cache: object = False
        else:
            cache = args.cache_dir if args.cache_dir else tmp
        timeline_out = args.trace_out or args.otel_out
        config = ServiceConfig(
            pool=args.pool,
            workers=args.workers,
            jobs=args.jobs,
            queue_depth=args.queue_depth,
            tenant_limit=args.tenant_limit,
            batch_window_s=args.batch_window,
            max_batch=args.max_batch,
            cache=cache,
            trace_requests=bool(timeline_out),
        )
        monitor = RunMonitor(interval=args.interval, stream=sys.stdout)
        with SolverService(config) as service:
            monitor.attach(service)
            try:
                tally = _serve_traffic(
                    service, args.tenants, args.requests, problems, knobs,
                    deadline_s=args.deadline,
                )
            finally:
                monitor.stop()
            snapshot = service.metrics.snapshot()
            stats = service.stats()
            if timeline_out:
                written = service.write_timeline(
                    chrome=args.trace_out, otel=args.otel_out
                )
                for fmt, path in written.items():
                    print(f"{fmt} timeline written to {path}")
    print(f"traffic: {args.tenants} tenants x {args.requests} requests "
          f"({len(problems)} distinct problems, second wave repeats)")
    print(f"outcomes: {tally['ok']} solved, {tally['cached']} cached, "
          f"{tally['rejected']} rejected, {tally['failed']} failed")
    print(format_serve_summary(snapshot))
    pool = stats["pool"]
    print(f"pool at shutdown: kind={pool['kind']} spawned={pool['spawned']}")
    return 0 if tally["failed"] == 0 else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    """``repro slo``: canned multi-tenant traffic through a temporary
    service, reported as per-tenant latency percentiles and
    error-budget burn; ``--fault`` additionally forces one terminal
    failure so the flight recorder dumps a postmortem."""
    import tempfile

    from .obs.slo import format_slo_report, slo_report
    from .serve import (
        ServeError,
        ServiceConfig,
        SolveRequest,
        SolverService,
    )

    problems = [
        JacobiProblem(n=args.n, iterations=args.iterations + k)
        for k in range(2)
    ]
    knobs = _serve_knobs(args)
    dump = None
    with tempfile.TemporaryDirectory(prefix="repro-slo-") as tmp:
        # A private checkpoint dir per invocation: chaos fault state is
        # per-workdir, so a shared default would let a previous run's
        # already-fired fault turn --fault into a clean recovery.
        config = ServiceConfig(
            workers=args.workers, jobs=args.jobs, cache=tmp,
            dump_dir=args.dump_dir, checkpoint_dir=f"{tmp}/chaos",
        )
        with SolverService(config) as service:
            tally = _serve_traffic(
                service, args.tenants, args.requests, problems, knobs
            )
            if args.fault:
                # A fresh problem shape: the solve signature ignores
                # the chaos plan (faults cannot change the answer), so
                # reusing a traffic problem would hit the result cache
                # and never execute -- much less fail.
                request = SolveRequest(
                    problem=JacobiProblem(
                        n=args.n, iterations=args.iterations + 17,
                    ),
                    tenant="chaos", chaos_plan=args.fault, retries=0,
                    **{k: v for k, v in knobs.items() if k != "passes"},
                )
                try:
                    service.submit(request).result(timeout=300)
                except ServeError as exc:
                    # The whole point: the zero-retry chaos request
                    # fails terminally and trips the flight recorder.
                    print(f"forced fault failed the request as "
                          f"intended: {exc!r}")
                dumps = service.stats().get("postmortems", [])
                dump = dumps[-1] if dumps else None
            snapshot = service.metrics.snapshot()
    print(f"traffic: {args.tenants} tenants x {args.requests} requests")
    print(f"outcomes: {tally['ok']} solved, {tally['cached']} cached, "
          f"{tally['rejected']} rejected, {tally['failed']} failed")
    print(format_slo_report(slo_report(snapshot, objective=args.objective)))
    if args.fault:
        if dump is None:
            print("forced fault produced no postmortem dump")
            return 1
        print(f"postmortem dump: {dump}")
    return 0 if tally["failed"] == 0 else 1


def _alert_rules_from(args: argparse.Namespace) -> list:
    from .obs.alerts import default_rules, load_rules

    return load_rules(args.rules) if args.rules else default_rules()


def _cmd_alerts(args: argparse.Namespace) -> int:
    """``repro alerts``: replay a rules file over a recorded series
    (``--series``), or run canned traffic through a sampled service
    and report every alert transition; ``--fault`` injects a chaos
    kill so the node-lost and burn-rate rules fire and resolve."""
    from .obs.alerts import JsonlSink, format_transition, replay_rules

    rules = _alert_rules_from(args)
    if args.series:
        sinks = [JsonlSink(args.log_out)] if args.log_out else []
        transitions = replay_rules(rules, args.series, sinks=sinks)
        for event in transitions:
            print(format_transition(event))
        firing = sum(1 for e in transitions if e["to"] == "firing")
        resolved = sum(1 for e in transitions if e["to"] == "resolved")
        print(f"replayed {args.series}: {len(transitions)} transitions "
              f"({firing} firing, {resolved} resolved)")
        return 0

    import tempfile
    import time as _time

    from .serve import ServeError, ServiceConfig, SolveRequest, SolverService

    problems = [
        JacobiProblem(n=args.n, iterations=args.iterations + k)
        for k in range(2)
    ]
    knobs = _serve_knobs(args)
    with tempfile.TemporaryDirectory(prefix="repro-alerts-") as tmp:
        # Private checkpoint dir per invocation, same reason as `slo
        # --fault`: stale fault state would turn the kill into a no-op.
        config = ServiceConfig(
            workers=args.workers, jobs=args.jobs, cache=tmp,
            dump_dir=args.dump_dir, checkpoint_dir=f"{tmp}/chaos",
            sampling_interval_s=args.sample_interval,
            alert_rules=rules, alert_log=args.log_out,
        )
        with SolverService(config) as service:
            tally = _serve_traffic(
                service, args.tenants, args.requests, problems, knobs
            )
            if args.fault:
                request = SolveRequest(
                    problem=JacobiProblem(
                        n=args.n, iterations=args.iterations + 17,
                    ),
                    tenant="chaos", chaos_plan=args.fault, retries=0,
                    **{k: v for k, v in knobs.items() if k != "passes"},
                )
                try:
                    service.submit(request).result(timeout=300)
                except ServeError as exc:
                    print(f"forced fault failed the request as "
                          f"intended: {exc!r}")
            # Let firing alerts resolve: the sampler keeps evaluating
            # until every rule's window slides past the incident.
            deadline = _time.monotonic() + args.settle
            while _time.monotonic() < deadline:
                engine = service.alerts
                if engine is not None and engine.transitions and \
                        not engine.active():
                    break
                _time.sleep(args.sample_interval)
            engine = service.alerts
            series = service.series
    if args.series_out and series is not None:
        print(f"series written to {series.to_jsonl(args.series_out)}")
    for event in engine.transitions:
        print(format_transition(event))
    for dump in engine.dumps:
        print(f"alert postmortem: {dump}")
    firing = sum(1 for e in engine.transitions if e["to"] == "firing")
    resolved = sum(1 for e in engine.transitions if e["to"] == "resolved")
    print(f"outcomes: {tally['ok']} solved, {tally['cached']} cached, "
          f"{tally['rejected']} rejected, {tally['failed']} failed")
    print(f"alerts: {firing} fired, {resolved} resolved")
    if args.fault and firing == 0:
        print("forced fault fired no alert", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: the live dashboard.  With ``--series`` it
    renders one frame of a recorded export (alert table reflects the
    series' end state); live, it drives canned traffic in a background
    thread and refreshes until the traffic drains."""
    from .obs.monitor import format_top

    rules = None if args.no_alerts else _alert_rules_from(args)
    if args.series:
        from .obs.alerts import AlertEngine
        from .obs.timeseries import TimeSeriesStore, read_series_jsonl

        header, samples = read_series_jsonl(args.series)
        store = TimeSeriesStore(capacity=int(header.get("capacity", 512)))
        engine = AlertEngine(store, rules) if rules else None
        for t, wall, data in samples:
            store.ingest(data, t=t, wall=wall)
            if engine is not None:
                engine.evaluate(t)
        print(format_top(store, alerts=engine, window_s=args.window))
        return 0

    import tempfile
    import threading
    import time as _time

    from .serve import ServiceConfig, SolverService

    problems = [
        JacobiProblem(n=args.n, iterations=args.iterations + k)
        for k in range(2)
    ]
    knobs = _serve_knobs(args)
    with tempfile.TemporaryDirectory(prefix="repro-top-") as tmp:
        config = ServiceConfig(
            workers=args.workers, jobs=args.jobs, cache=tmp,
            sampling_interval_s=args.sample_interval, alert_rules=rules,
        )
        with SolverService(config) as service:
            done = threading.Event()

            def drive() -> None:
                try:
                    _serve_traffic(service, args.tenants, args.requests,
                                   problems, knobs)
                finally:
                    done.set()

            thread = threading.Thread(target=drive, daemon=True)
            thread.start()
            if not args.once:
                while not done.wait(args.refresh):
                    frame = format_top(service.series, alerts=service.alerts,
                                       window_s=args.window)
                    if sys.stdout.isatty():
                        print("\x1b[2J\x1b[H" + frame, flush=True)
                    else:
                        print(frame + "\n", flush=True)
            thread.join()
            service.sample_now()  # final frame sees the drained queue
            print(format_top(service.series, alerts=service.alerts,
                             window_s=args.window))
    return 0


def _cmd_postmortem(args: argparse.Namespace) -> int:
    from .obs.lifecycle import format_postmortem, load_postmortem

    doc = load_postmortem(args.dump)
    print(format_postmortem(doc, width=args.width))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .obs import format_serve_summary
    from .serve import ServiceConfig, SolveRequest, SolverService

    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    request = SolveRequest(
        problem=problem,
        tenant=args.tenant,
        priority=args.priority,
        deadline_s=args.deadline,
        **_serve_knobs(args),
    )
    if args.no_cache:
        cache: object = False
    else:
        cache = args.cache_dir  # None -> the persistent default dir
    config = ServiceConfig(pool="threads", workers=1, jobs=args.jobs,
                           cache=cache)
    with SolverService(config) as service:
        outcome = service.submit(request).result(args.timeout)
        snapshot = service.metrics.snapshot()
    served_by = ("result cache" if outcome.cached
                 else "warm executor" if outcome.warm
                 else "cold executor")
    print(f"signature      {outcome.signature}")
    params = " ".join(f"{k}={v}" for k, v in sorted(outcome.params.items()))
    print(f"impl           {outcome.impl}  {params}")
    print(f"elapsed        {outcome.elapsed:.6f} s  ({outcome.gflops:.2f} "
          f"model gflop/s)")
    print(f"messages       {outcome.messages} "
          f"({outcome.message_bytes} payload bytes)")
    print(f"served by      {served_by}")
    tasks = snapshot.counter("tasks_executed_total")
    print(f"tasks executed {tasks:.0f}")
    print(format_serve_summary(snapshot))
    return 0


def _cmd_stats_serve(args: argparse.Namespace) -> int:
    """``repro stats --section serve``: a canned two-tenant workload
    through a temporary service, reported (and optionally gated)
    through the serving metrics."""
    import json
    import tempfile
    from pathlib import Path

    from .obs import format_serve_summary, regress
    from .serve import ServiceConfig, SolverService

    tile = None if args.tile == "auto" else args.tile
    steps = 15 if args.steps == "auto" else args.steps
    machine = preset(args.machine, nodes=args.nodes)
    backend = args.backend if args.backend != "sim" else "threads"
    knobs = dict(impl=args.impl, machine=machine, backend=backend,
                 jobs=args.jobs)
    if args.impl != "petsc":
        knobs.update(tile=tile, ratio=args.ratio)
        if args.impl == "ca-parsec":
            knobs["steps"] = steps
    problems = [
        JacobiProblem(n=args.n, iterations=args.iterations + k)
        for k in range(3)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        with SolverService(ServiceConfig(workers=2, cache=tmp)) as service:
            tally = _serve_traffic(service, tenants=2, per_tenant=6,
                                   problems=problems, knobs=knobs)
            snapshot = service.metrics.snapshot()
    print(f"outcomes: {tally['ok']} solved, {tally['cached']} cached, "
          f"{tally['rejected']} rejected, {tally['failed']} failed")
    print(format_serve_summary(snapshot))
    measured = regress.metrics_from_serve(snapshot)
    if args.write_baseline:
        doc = {"schema": 1, "kind": "serve-baseline", "metrics": measured}
        regress.write_baseline(args.write_baseline, doc)
        print(f"serve baseline written to {args.write_baseline}")
    if args.check:
        doc = json.loads(Path(args.check).read_text())
        baseline = regress.flatten(
            doc.get("metrics", doc) if isinstance(doc, dict) else {}
        )
        report = regress.compare(baseline, measured,
                                 tolerance=args.tolerance)
        print(report.format())
        return 0 if report.ok else 1
    return 0 if tally["failed"] == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """The resilience round trip: a fault-free reference run, the same
    workload under the fault plan with checkpoint-restart recovery,
    then the two assertions the suite pins -- bit-identical grids and
    bounded makespan inflation."""
    import time as _time

    import numpy as np

    from .chaos import parse_plan, run_with_recovery
    from .obs.metrics import MetricRegistry

    plan = parse_plan(args.plan, seed=args.seed)
    machine = preset(args.machine, nodes=args.nodes)
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    metrics = MetricRegistry()

    print(f"plan {plan.spec()}  (seed {args.seed}, "
          f"fingerprint {plan.fingerprint()})")
    t0 = _time.perf_counter()
    baseline = run(
        problem, impl=args.impl, machine=machine, tile=args.tile,
        steps=args.steps, mode="execute", policy=args.policy,
        backend=args.backend, jobs=args.jobs,
    )
    baseline_wall = _time.perf_counter() - t0
    print(f"fault-free: {baseline.summary()}")

    chaos = run_with_recovery(
        problem, plan, impl=args.impl, machine=machine, tile=args.tile,
        steps=args.steps, policy=args.policy, backend=args.backend,
        jobs=args.jobs, checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        max_restarts=args.max_restarts, metrics=metrics,
        trace=args.speculate, speculate=args.speculate,
    )

    identical = bool(np.array_equal(chaos.grid, baseline.grid))
    inflation = (
        chaos.wall_elapsed / baseline_wall if baseline_wall > 0
        else float("inf")
    )
    metrics.gauge(
        "chaos_makespan_inflation",
        "chaos wall time over the fault-free run", "ratio",
    ).set(inflation)

    for rec in chaos.faults:
        print(f"fault fired: {rec['spec']}")
    for restart in chaos.restarts:
        ckpt = restart["checkpoint"]
        print(f"recovered: node {restart['node']} lost, restarted on "
              f"{restart['nodes_after']} nodes from "
              + (f"checkpoint sweep {ckpt}" if ckpt else "scratch"))
    if chaos.recovered:
        last = chaos.restarts[-1]["checkpoint"] or 0
        print(f"final attempt replayed sweeps {last}..{problem.iterations} "
              f"({chaos.tasks_final_attempt} tasks; the checkpoint "
              f"skipped the first {last} of {problem.iterations} sweeps)")
    if chaos.speculations:
        print(f"speculative re-execution verified "
              f"{chaos.speculations} straggler task(s)")
    print(f"attempts: {chaos.attempts}")
    print(f"grids bit-identical: {identical}")
    print(f"makespan inflation: {inflation:.2f}x "
          f"(bound {args.inflation_bound:.2f}x)")
    ok = identical and inflation <= args.inflation_bound
    print("OK" if ok else "CHAOS CHECK FAILED")
    return 0 if ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    problem = JacobiProblem(n=args.n, iterations=args.iterations)
    machine = preset("nacl", nodes=args.nodes)
    report = validate_implementations(problem, machine, tile=args.tile, steps=args.steps)
    print(format_table(
        ("implementation", "max |error| vs reference"),
        [("base-parsec", report.base_error),
         ("ca-parsec", report.ca_error),
         ("petsc", report.petsc_error)],
    ))
    print("OK" if report.ok else "VALIDATION FAILED")
    return 0 if report.ok else 1


def _cmd_machines(_args: argparse.Namespace) -> int:
    rows = []
    for name, factory in PRESETS.items():
        m = factory()
        rows.append((
            name, m.nodes, m.node.cores,
            m.node.node_stream_bw / 1e9,
            m.network.effective_bw * 8 / 1e9,
            m.network.software_overhead * 1e6,
        ))
    print(format_table(
        ("preset", "nodes", "cores", "node BW GB/s", "net eff Gb/s", "msg overhead us"),
        rows,
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "tune": _cmd_tune,
        "sweep": _cmd_sweep,
        "monitor": _cmd_monitor,
        "stats": _cmd_stats,
        "critpath": _cmd_critpath,
        "trace-diff": _cmd_trace_diff,
        "ir": _cmd_ir,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "slo": _cmd_slo,
        "alerts": _cmd_alerts,
        "top": _cmd_top,
        "postmortem": _cmd_postmortem,
        "chaos": _cmd_chaos,
        "validate": _cmd_validate,
        "machines": _cmd_machines,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
