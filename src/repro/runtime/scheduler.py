"""Per-node ready-queue scheduling policies.

PaRSEC lets the user pick among several schedulers; the ones that
matter for this study are FIFO (arrival order), LIFO (depth-first,
cache-friendly) and a priority scheduler.  The stencil builders assign
higher priority to node-boundary tiles so their ghost data enters the
network as early as possible -- the classic "communication tasks
first" heuristic that maximises overlap.  The ablation bench
``bench_ablation_scheduler`` compares the policies.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Protocol

from .task import Task


class ReadyQueue(Protocol):
    """Interface the engine drives: one instance per node."""

    def push(self, task: Task) -> None:  # pragma: no cover - protocol
        ...

    def pop(self) -> Task:  # pragma: no cover - protocol
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...


class FifoQueue:
    """Plain arrival-order queue."""

    def __init__(self) -> None:
        self._q: deque[Task] = deque()

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self) -> Task:
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)


class LifoQueue:
    """Depth-first queue: runs the most recently enabled task first,
    which tends to follow the data just produced (better cache reuse,
    the default flavour of many work-stealing runtimes)."""

    def __init__(self) -> None:
        self._q: list[Task] = []

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self) -> Task:
        return self._q.pop()

    def __len__(self) -> int:
        return len(self._q)


class PriorityQueue:
    """Highest :attr:`Task.priority` first; FIFO among equals.

    This is the policy the stencil runs use: boundary tiles carry
    higher priority, so every worker prefers tasks whose outputs feed
    the network.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []
        self._seq = 0

    def push(self, task: Task) -> None:
        # Negate priority: heapq is a min-heap, we want max-priority.
        heapq.heappush(self._heap, (-task.priority, self._seq, task))
        self._seq += 1

    def pop(self) -> Task:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


POLICIES = {
    "fifo": FifoQueue,
    "lifo": LifoQueue,
    "priority": PriorityQueue,
}


def make_queue(policy: str) -> ReadyQueue:
    """Instantiate a ready queue by policy name.

    The queues stay uninstrumented even under telemetry: the engine
    derives push counts from the graph after the run and tracks the
    depth high-water mark itself, so the scheduling hot path is
    identical with and without a metrics registry attached.
    """
    try:
        queue = POLICIES[policy.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler policy {policy!r}; choices: {sorted(POLICIES)}"
        ) from None
    return queue
