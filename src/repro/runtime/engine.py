"""Discrete-event dataflow engine -- the "PaRSEC" of this reproduction.

The engine plays both roles of a distributed task runtime:

* **Executor**: with ``execute=True`` every task's kernel actually runs
  (on real numpy payloads) in a dependency-respecting order, with
  payloads routed producer-to-consumer through a versioned mailbox, so
  numerical results are real and testable.
* **Performance simulator**: a virtual clock advances according to the
  machine model.  Each node has ``cores - 1`` compute workers plus one
  communication thread (the paper's PaRSEC configuration); remote
  flows become messages that occupy the sender's comm thread
  (software overhead), the sender's NIC (serialization at effective
  bandwidth), the wire (latency) and the receiver's comm thread, while
  compute workers keep executing independent tasks -- which is exactly
  the communication/computation overlap the paper leans on.

Setting ``overlap=False`` removes the communication thread and charges
message costs to the compute workers synchronously (blocking-MPI
style), isolating the benefit of overlap for the ablation study.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..machine.machine import MachineSpec
from ..obs import trace_validation_enabled
from ..obs.metrics import MetricRegistry, MetricsSnapshot
from .graph import GraphError, TaskGraph
from .scheduler import make_queue
from .task import Task, TaskKey
from .trace import Trace

class KernelError(RuntimeError):
    """A task kernel raised during execution; the message carries the
    task identity so distributed failures are debuggable."""


class NodeLostError(KernelError):
    """A node was lost mid-run -- its process died, or a fault plan
    killed it.  Carries the lost node id and the last *complete*
    checkpoint step (None when no checkpoint exists), so a recovery
    layer can restart the remaining iterations on the survivors
    instead of rerunning from scratch.

    Subclasses :class:`KernelError` so every backend's existing
    pass-through of kernel failures propagates it untouched, and it
    pickles across the procs backend's control pipes.
    """

    def __init__(
        self,
        message: str,
        node: int | None = None,
        checkpoint_step: int | None = None,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.checkpoint_step = checkpoint_step

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.node, self.checkpoint_step))


# Event kinds, processed in (time, seq) order.
_TASK_DONE = 0
_COMM_JOB_DONE = 1
_ARRIVE = 3
_WORKER_SEND_DONE = 4


@dataclass
class _Message:
    """One remote transfer of (producer, tag) to a destination node."""

    __slots__ = ("producer", "tag", "src", "dst", "nbytes")
    producer: TaskKey
    tag: str
    src: int
    dst: int
    nbytes: int


@dataclass
class EngineReport:
    """Everything a run produces besides the payloads themselves."""

    elapsed: float
    tasks_run: int
    messages: int
    message_bytes: int
    local_edges: int
    local_bytes: int
    useful_flops: float
    redundant_flops: float
    node_busy: dict[int, float] = field(default_factory=dict)
    comm_busy: dict[int, float] = field(default_factory=dict)
    #: deepest per-node communication-thread backlog observed; values
    #: much larger than 1 mean the comm thread was the bottleneck (the
    #: regime where communication avoiding pays).
    max_comm_backlog: int = 0
    trace: Trace | None = None
    results: dict[tuple[TaskKey, str], Any] = field(default_factory=dict)
    #: telemetry snapshot of the run, when a registry was attached
    metrics: MetricsSnapshot | None = None

    @property
    def gflops(self) -> float:
        """Useful GFLOP/s over the simulated elapsed time (redundant CA
        work is excluded, matching how the paper reports GFLOP/s for a
        fixed problem)."""
        if self.elapsed <= 0:
            return 0.0
        return self.useful_flops / self.elapsed / 1e9

    def occupancy(self, workers_per_node: int) -> float:
        """Mean compute-worker occupancy across nodes."""
        if not self.node_busy or self.elapsed <= 0:
            return 0.0
        total = sum(self.node_busy.values())
        return total / (len(self.node_busy) * workers_per_node * self.elapsed)


class Engine:
    """Run a finalized :class:`TaskGraph` on a :class:`MachineSpec`.

    Parameters
    ----------
    graph:
        The task graph; :meth:`TaskGraph.finalize` is called if needed.
    machine:
        Machine model; ``machine.nodes`` must cover every task's node.
    policy:
        Ready-queue policy name (``"priority"``, ``"fifo"``, ``"lifo"``).
    execute:
        Run real kernels and route real payloads.
    overlap:
        ``True``: dedicated comm thread per node (cores-1 compute
        workers).  ``False``: blocking communication on the compute
        workers (all cores compute) -- the ablation mode.
    trace:
        Record a :class:`Trace` of every span.
    charge_task_overhead:
        Charge the node's per-task software overhead in addition to the
        task's modelled cost (disable for pure-execution runs).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricRegistry` the run
        emits its counters into (tasks by kind, messages and bytes per
        lane, per-worker busy time, ready-queue pressure).  Hot-path
        recording stays in plain attributes; the registry is populated
        once at the end of the run, so overhead is negligible and the
        default (``None``) pays nothing at all.
    """

    def __init__(
        self,
        graph: TaskGraph,
        machine: MachineSpec,
        policy: str = "priority",
        execute: bool = False,
        overlap: bool = True,
        trace: bool = False,
        charge_task_overhead: bool = True,
        metrics: MetricRegistry | None = None,
        chaos=None,
    ) -> None:
        graph.finalize()
        nodes_used = graph.nodes_used()
        if nodes_used and max(nodes_used) >= machine.nodes:
            raise GraphError(
                f"graph uses node {max(nodes_used)} but machine has only "
                f"{machine.nodes} nodes"
            )
        self.graph = graph
        self.machine = machine
        self.execute = execute
        self.overlap = overlap
        self.charge_task_overhead = charge_task_overhead
        self.workers_per_node = (
            machine.node.compute_cores if overlap else machine.node.cores
        )
        self.trace = Trace() if trace else None
        self._policy_name = policy
        self.metrics = metrics
        #: optional fault-injection hook (repro.chaos): consulted on
        #: every message arrival; a returned delay models one dropped
        #: delivery plus its retransmit.  None pays nothing.
        self.chaos = chaos

        nnodes = machine.nodes
        instrument = metrics is not None
        self._ready = [make_queue(policy) for _ in range(nnodes)]
        # The only live tallies telemetry needs are the ones the graph
        # cannot reproduce afterwards: per-worker busy time and the
        # ready-queue high-water mark.  Everything schedule-independent
        # (task counts by kind, queue pushes) is derived from the graph
        # once, in :meth:`_publish_metrics`.
        self._ready_depth_max: list[int] | None = (
            [0] * nnodes if instrument else None
        )
        self._worker_busy: list[list[float]] | None = (
            [[0.0] * self.workers_per_node for _ in range(nnodes)]
            if instrument else None
        )
        self._pair_msgs: dict[tuple[int, int], list[int]] | None = (
            {} if instrument else None
        )
        self._idle = [list(range(self.workers_per_node)) for _ in range(nnodes)]
        # Comm thread & NIC: next free virtual time and FIFO backlog.
        self._comm_free = [0.0] * nnodes
        self._comm_queue: list[deque[tuple]] = [deque() for _ in range(nnodes)]
        self._comm_busy_flag = [False] * nnodes
        self._nic_free = [0.0] * nnodes

        # Dependency bookkeeping.
        self._pending: dict[TaskKey, int] = {}
        # (producer, tag, node) -> consumer keys, one entry per flow instance.
        self._waiters: dict[tuple[TaskKey, str, int], list[TaskKey]] = {}
        # producer -> same-node consumer keys (one entry per flow instance).
        self._local_waiters: dict[TaskKey, list[TaskKey]] = {}
        # producer -> messages its completion emits.
        self._remote_msgs: dict[TaskKey, list[_Message]] = {}
        # blocking mode: per-consumer receive-processing charge.
        self._recv_charge: dict[TaskKey, float] = {}
        # Payload mailbox (execute mode): (producer, tag) -> [payload, refcount]
        self._store: dict[tuple[TaskKey, str], list] = {}
        self._refcount: dict[tuple[TaskKey, str], int] = {}

        self._events: list[tuple] = []  # (time, seq, kind, payload)
        self._seq = 0
        self._now = 0.0

        # Accounting.
        self._messages = 0
        self._message_bytes = 0
        self._max_comm_backlog = 0
        self._node_busy = dict.fromkeys(range(nnodes), 0.0)
        self._comm_busy = dict.fromkeys(range(nnodes), 0.0)
        self._tasks_run = 0
        self.results: dict[tuple[TaskKey, str], Any] = {}

    # -- event helpers ----------------------------------------------------

    def _push_event(self, time: float, kind: int, payload: Any) -> None:
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    # -- setup -------------------------------------------------------------

    def _prepare(self) -> None:
        """One pass over the graph building the runtime tables:

        * ``_pending`` -- unmet input counts per task;
        * ``_local_waiters`` -- consumer lists woken directly when a
          same-node producer completes;
        * ``_waiters`` -- consumer lists keyed by (producer, tag, node),
          woken when a message is delivered to that node;
        * ``_remote_msgs`` -- per producer, the unique messages its
          completion emits: one per (tag, destination node), consumers
          on the same node sharing it (PaRSEC's message coalescing).
        """
        census_local = 0
        census_local_bytes = 0
        tasks = self.graph.tasks
        local_waiters = self._local_waiters
        waiters = self._waiters
        remote_msgs: dict[TaskKey, dict[tuple[str, int], int]] = {}
        for task in self.graph:
            self._pending[task.key] = len(task.inputs)
            node = task.node
            for flow in task.inputs:
                src_node = tasks[flow.producer].node
                if src_node == node:
                    local_waiters.setdefault(flow.producer, []).append(task.key)
                    census_local += 1
                    census_local_bytes += flow.nbytes
                else:
                    waiters.setdefault((flow.producer, flow.tag, node), []).append(
                        task.key
                    )
                    sizes = remote_msgs.setdefault(flow.producer, {})
                    mkey = (flow.tag, node)
                    declared = tasks[flow.producer].out_nbytes.get(flow.tag, 0)
                    sizes[mkey] = max(sizes.get(mkey, 0), flow.nbytes, declared)
                    if not self.overlap:
                        # Blocking MPI: the consumer's worker processes
                        # the matching receive itself.
                        self._recv_charge[task.key] = (
                            self._recv_charge.get(task.key, 0.0)
                            + self.machine.network.software_overhead
                        )
                if self.execute:
                    key = (flow.producer, flow.tag)
                    self._refcount[key] = self._refcount.get(key, 0) + 1
        self._remote_msgs = {
            key: [
                _Message(key, tag, tasks[key].node, dst, nbytes)
                for (tag, dst), nbytes in sizes.items()
            ]
            for key, sizes in remote_msgs.items()
        }
        self._local_edges = census_local
        self._local_bytes = census_local_bytes
        for task in self.graph:
            if self._pending[task.key] == 0:
                self._ready[task.node].push(task)
        if self._ready_depth_max is not None:
            # Seeding only grows the queues, so the post-seed length is
            # the high-water mark so far.
            self._ready_depth_max = [len(q) for q in self._ready]

    # -- main loop -----------------------------------------------------------

    def run(self) -> EngineReport:
        """Process the whole graph; returns the :class:`EngineReport`."""
        self._prepare()
        for node in range(self.machine.nodes):
            self._dispatch(node)
        while self._events:
            time, _seq, kind, payload = heapq.heappop(self._events)
            if time < self._now - 1e-18:
                raise RuntimeError("virtual clock moved backwards")
            self._now = max(self._now, time)
            if kind == _TASK_DONE:
                self._on_task_done(*payload)
            elif kind == _COMM_JOB_DONE:
                self._on_comm_job_done(payload)
            elif kind == _ARRIVE:
                self._on_arrival(payload)
            elif kind == _WORKER_SEND_DONE:
                self._on_worker_send_done(*payload)
        if any(self._pending.values()):
            stuck = [k for k, p in self._pending.items() if p > 0][:5]
            raise RuntimeError(
                f"deadlock: {sum(1 for p in self._pending.values() if p > 0)} "
                f"tasks never became ready, e.g. {stuck}"
            )
        if self.trace is not None and trace_validation_enabled():
            self.trace.validate()
        useful, redundant = self.graph.total_flops()
        return EngineReport(
            elapsed=self._now,
            tasks_run=self._tasks_run,
            messages=self._messages,
            message_bytes=self._message_bytes,
            local_edges=self._local_edges,
            local_bytes=self._local_bytes,
            useful_flops=useful,
            redundant_flops=redundant,
            node_busy=self._node_busy,
            comm_busy=self._comm_busy,
            max_comm_backlog=self._max_comm_backlog,
            trace=self.trace,
            results=self.results,
            metrics=self._publish_metrics(),
        )

    def _publish_metrics(self) -> MetricsSnapshot | None:
        """Fold the run's tallies into the attached registry (once, at
        the end -- the hot path never touches the registry) and return
        its snapshot."""
        reg = self.metrics
        if reg is None:
            return None
        tasks = reg.counter("tasks_executed_total",
                            "tasks executed, by kind", "tasks")
        # The event loop ran every graph task exactly once (a deadlock
        # raises before we get here), so kind counts and per-node push
        # counts are exact when read off the graph -- no hot-path cost.
        kind_counts: dict[str, int] = {}
        node_tasks = [0] * self.machine.nodes
        for t in self.graph.tasks.values():
            kind_counts[t.kind] = kind_counts.get(t.kind, 0) + 1
            node_tasks[t.node] += 1
        for kind, count in kind_counts.items():
            tasks.inc(count, kind=kind)
        msgs = reg.counter("messages_total",
                           "remote messages delivered, by lane", "messages")
        mbytes = reg.counter("message_bytes_total",
                             "declared ghost-copy payload bytes, by lane",
                             "bytes")
        assert self._pair_msgs is not None
        for (src, dst), (n, nbytes) in self._pair_msgs.items():
            msgs.inc(n, src=src, dst=dst)
            mbytes.inc(nbytes, src=src, dst=dst)
        reg.counter("local_edges_total",
                    "same-node producer-consumer flows", "edges").inc(
            self._local_edges)
        reg.counter("local_bytes_total",
                    "same-node flow payload bytes", "bytes").inc(
            self._local_bytes)
        busy = reg.counter("worker_busy_seconds_total",
                           "busy time per compute worker", "seconds")
        assert self._worker_busy is not None
        for node, lanes in enumerate(self._worker_busy):
            for worker, seconds in enumerate(lanes):
                if seconds:
                    busy.inc(seconds, node=node, worker=worker)
        comm = reg.counter("comm_busy_seconds_total",
                           "communication-thread busy time per node",
                           "seconds")
        for node, seconds in self._comm_busy.items():
            if seconds:
                comm.inc(seconds, node=node)
        reg.gauge("comm_backlog_max",
                  "deepest communication-thread backlog observed",
                  "messages").set(self._max_comm_backlog)
        depth = reg.gauge("ready_queue_max_depth",
                          "deepest per-node ready queue observed", "tasks")
        pushes = reg.counter("ready_queue_pushes_total",
                             "tasks enqueued per node ready queue", "tasks")
        assert self._ready_depth_max is not None
        for node, high_water in enumerate(self._ready_depth_max):
            depth.set(high_water, node=node)
            if node_tasks[node]:
                pushes.inc(node_tasks[node], node=node)
        reg.gauge("run_elapsed_seconds",
                  "makespan of the run (virtual seconds on the sim "
                  "backend)", "seconds").set(self._now)
        reg.gauge("tasks_total", "tasks in the executed graph",
                  "tasks").set(len(self.graph))
        reg.gauge("workers_per_node", "compute workers modelled per node",
                  "workers").set(self.workers_per_node)
        return reg.snapshot()

    def progress(self) -> dict:
        """Live view of the run for :mod:`repro.obs.monitor` (the
        event loop runs on one thread, so a sampler on another thread
        reads consistent-enough integers)."""
        return {
            "done": self._tasks_run,
            "total": len(self.graph),
            "elapsed_s": self._now,
            "messages": self._messages,
            "message_bytes": self._message_bytes,
        }

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, node: int) -> None:
        """Assign ready tasks to idle workers on ``node``."""
        ready = self._ready[node]
        idle = self._idle[node]
        while idle and len(ready):
            worker = idle.pop()
            task = ready.pop()
            duration = task.cost
            if self.charge_task_overhead:
                duration += self.machine.node.task_overhead
            if not self.overlap:
                duration += self._recv_charge.get(task.key, 0.0)
            start = self._now
            end = start + duration
            self._node_busy[node] += duration
            if self._worker_busy is not None:
                self._worker_busy[node][worker] += duration
            if self.trace is not None:
                self.trace.record(
                    node, worker, task.kind, start, end, task.key, task_id=task.key
                )
            if self.execute:
                self._run_kernel(task)
            self._push_event(end, _TASK_DONE, (task, worker))

    def _max_flow_bytes(self, producer: TaskKey, tag: str) -> int:
        """Largest declared flow size for (producer, tag) across
        consumers -- 0 means every consumer treats it as control."""
        biggest = 0
        for consumer_key in self.graph.consumers.get((producer, tag), ()):
            for flow in self.graph[consumer_key].inputs:
                if flow.producer == producer and flow.tag == tag:
                    biggest = max(biggest, flow.nbytes)
        return biggest

    def _run_kernel(self, task: Task) -> None:
        inputs: dict[tuple[TaskKey, str], Any] = {}
        for flow in task.inputs:
            key = (flow.producer, flow.tag)
            entry = self._store.get(key)
            if entry is None:
                raise RuntimeError(
                    f"payload {key!r} missing when task {task.key!r} started"
                )
            inputs[key] = entry[0]
        try:
            outputs = dict(task.kernel(inputs, task)) if task.kernel is not None else {}
        except Exception as exc:
            if isinstance(exc, KernelError):
                raise
            raise KernelError(
                f"kernel of task {task.key!r} (kind {task.kind!r}) failed: {exc}"
            ) from exc
        expected = set(self.graph.out_tags.get(task.key, ()))
        produced = set(outputs)
        missing = expected - produced
        for tag in missing:
            # Control edges (zero-byte flows nobody sized) carry no
            # payload; they exist purely for ordering (DTD WAR/WAW).
            if task.out_nbytes.get(tag, 0) == 0 and self._max_flow_bytes(task.key, tag) == 0:
                outputs[tag] = None
            else:
                raise RuntimeError(
                    f"task {task.key!r} produced tags {sorted(produced)} but "
                    f"consumers expect {sorted(expected)}"
                )
        for tag, payload in outputs.items():
            if isinstance(payload, np.ndarray):
                payload.setflags(write=False)  # catch consumer mutation bugs
            key = (task.key, tag)
            refs = self._refcount.get(key, 0)
            if refs == 0:
                self.results[key] = payload  # terminal output
            else:
                self._store[key] = [payload, refs]
        # Release inputs.
        for flow in task.inputs:
            key = (flow.producer, flow.tag)
            entry = self._store[key]
            entry[1] -= 1
            if entry[1] == 0:
                del self._store[key]

    # -- completion & message machinery --------------------------------------

    def _on_task_done(self, task: Task, worker: int) -> None:
        node = task.node
        self._tasks_run += 1
        msgs = self._remote_msgs.get(task.key, ())
        # Local consumers are satisfied immediately.
        local = self._local_waiters.get(task.key)
        if local:
            self._wake(local)
        if self.overlap:
            self._idle[node].append(worker)
            for msg in msgs:
                self._enqueue_comm_job(node, ("send", msg))
            self._dispatch(node)
        elif msgs:
            # Blocking mode: the worker itself performs the sends.
            send_time = 0.0
            for msg in msgs:
                send_time += (
                    self.machine.network.software_overhead
                    + msg.nbytes / self.machine.network.effective_bw
                )
            end = self._now + send_time
            self._node_busy[node] += send_time
            if self._worker_busy is not None:
                self._worker_busy[node][worker] += send_time
            if self.trace is not None:
                self.trace.record(
                    node, worker, "send", self._now, end, task.key, task_id=task.key
                )
            for msg in msgs:
                # Receive-side processing is charged to the consuming
                # task itself (_recv_charge), so arrival is wire-only.
                arrival = end + self.machine.network.latency
                self._push_event(arrival, _ARRIVE, msg)
            self._push_event(end, _WORKER_SEND_DONE, (node, worker))
        else:
            self._idle[node].append(worker)
            self._dispatch(node)

    def _on_worker_send_done(self, node: int, worker: int) -> None:
        self._idle[node].append(worker)
        self._dispatch(node)

    def _satisfy(self, gate_key: tuple) -> None:
        """Wake the consumers waiting on a delivered message."""
        waiters = self._waiters.get(gate_key)
        if waiters:
            self._wake(waiters)

    def _wake(self, waiters: list[TaskKey]) -> None:
        touched_nodes = set()
        depth_max = self._ready_depth_max
        for consumer_key in waiters:
            self._pending[consumer_key] -= 1
            if self._pending[consumer_key] == 0:
                consumer = self.graph[consumer_key]
                queue = self._ready[consumer.node]
                queue.push(consumer)
                if depth_max is not None:
                    depth = len(queue)
                    if depth > depth_max[consumer.node]:
                        depth_max[consumer.node] = depth
                touched_nodes.add(consumer.node)
        for node in touched_nodes:
            self._dispatch(node)

    # -- comm thread ------------------------------------------------------------

    def _enqueue_comm_job(self, node: int, job: tuple) -> None:
        queue = self._comm_queue[node]
        queue.append(job)
        if len(queue) > self._max_comm_backlog:
            self._max_comm_backlog = len(queue)
        if not self._comm_busy_flag[node]:
            self._start_next_comm_job(node)

    def _start_next_comm_job(self, node: int) -> None:
        if not self._comm_queue[node]:
            self._comm_busy_flag[node] = False
            return
        self._comm_busy_flag[node] = True
        kind, msg = self._comm_queue[node].popleft()
        start = max(self._now, self._comm_free[node])
        overhead = self.machine.network.software_overhead
        end = start + overhead
        self._comm_free[node] = end
        self._comm_busy[node] += overhead
        if self.trace is not None:
            # The label carries the full comm-edge endpoints -- for a
            # send the destination node, for a recv the source node --
            # so the causal critical-path join can pair the two spans.
            peer = msg.dst if kind == "send" else msg.src
            self.trace.record(
                node, -1, kind, start, end, (msg.producer, msg.tag, peer),
                task_id=msg.producer,
            )
        if kind == "send":
            # After CPU-side processing the NIC serializes onto the wire.
            nic_start = max(end, self._nic_free[node])
            nic_end = nic_start + msg.nbytes / self.machine.network.effective_bw
            self._nic_free[node] = nic_end
            arrival = nic_end + self.machine.network.latency
            self._push_event(arrival, _ARRIVE, msg)
        else:  # recv: deliver to waiting consumers on this node
            self._push_event(end, _COMM_JOB_DONE, (node, msg))
            return
        self._push_event(end, _COMM_JOB_DONE, (node, None))

    def _on_comm_job_done(self, payload: tuple) -> None:
        node, msg = payload
        if msg is not None:
            self._satisfy((msg.producer, msg.tag, msg.dst))
        self._start_next_comm_job(node)

    def _on_arrival(self, msg: _Message) -> None:
        if self.chaos is not None:
            # A dropped delivery: nothing is tallied for this attempt;
            # the retransmitted copy arrives after the virtual delay
            # and goes through the normal path (the hook fires each
            # fault exactly once, so redelivery cannot loop).
            delay = self.chaos.on_message(msg.producer, msg.tag, msg.src, msg.dst)
            if delay is not None:
                self._push_event(self._now + delay, _ARRIVE, msg)
                return
        self._messages += 1
        self._message_bytes += msg.nbytes
        if self._pair_msgs is not None:
            stats = self._pair_msgs.setdefault((msg.src, msg.dst), [0, 0])
            stats[0] += 1
            stats[1] += msg.nbytes
        if self.overlap:
            self._enqueue_comm_job(msg.dst, ("recv", msg))
        else:
            self._satisfy((msg.producer, msg.tag, msg.dst))
