"""Parameterized Task Graph (PTG) front-end.

PaRSEC's PTG/JDF DSL describes an algorithm as task *classes*
parameterized over an index space, with dataflow expressed as
functions of the parameters (e.g. task ``st(x, y, t)`` reads tag
``"north"`` of ``st(x, y-1, t-1)``).  The whole DAG never exists in
the programmer's code -- it is unrolled from the algebraic
description.  This module reproduces that model: declare task classes
with callables over parameters, then :meth:`PTG.build` unrolls them
into a concrete :class:`~repro.runtime.graph.TaskGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from .graph import TaskGraph
from .task import Flow, Kernel, Task, TaskKey


@dataclass(frozen=True)
class Dependency:
    """Symbolic input of a task class.

    ``producer`` maps this task's parameters to the producing task's
    key ``(class_name, *params)`` -- return ``None`` for "no
    dependency at these parameters" (e.g. the first iteration has no
    predecessor).  ``tag`` and ``nbytes`` may be constants or callables
    of the parameters.
    """

    producer: Callable[..., TaskKey | None]
    tag: str | Callable[..., str]
    nbytes: int | Callable[..., int] = 0

    def instantiate(self, *params) -> Flow | None:
        key = self.producer(*params)
        if key is None:
            return None
        tag = self.tag(*params) if callable(self.tag) else self.tag
        nbytes = self.nbytes(*params) if callable(self.nbytes) else self.nbytes
        return Flow(key, tag, nbytes)


@dataclass
class TaskClass:
    """One parameterized task class.

    Every per-task attribute is either a constant or a callable of the
    parameter tuple, mirroring JDF's expressions.
    """

    name: str
    parameter_space: Callable[[], Iterable[tuple]]
    node: int | Callable[..., int]
    dependencies: Sequence[Dependency] = ()
    outputs: Mapping[str, int] | Callable[..., Mapping[str, int]] | None = None
    cost: float | Callable[..., float] = 0.0
    flops: float | Callable[..., float] = 0.0
    redundant_flops: float | Callable[..., float] = 0.0
    priority: int | Callable[..., int] = 0
    kind: str | None = None
    kernel: Kernel | None = None

    def _eval(self, attr: Any, params: tuple) -> Any:
        return attr(*params) if callable(attr) else attr

    def instantiate(self, params: tuple) -> Task:
        flows = []
        for dep in self.dependencies:
            flow = dep.instantiate(*params)
            if flow is not None:
                flows.append(flow)
        outputs = self._eval(self.outputs, params) or {}
        return Task(
            key=(self.name, *params),
            node=self._eval(self.node, params),
            inputs=tuple(flows),
            cost=self._eval(self.cost, params),
            flops=self._eval(self.flops, params),
            redundant_flops=self._eval(self.redundant_flops, params),
            kernel=self.kernel,
            out_nbytes=dict(outputs),
            priority=self._eval(self.priority, params),
            kind=self.kind or self.name,
        )


class PTG:
    """A collection of task classes that unrolls into a TaskGraph.

    Example -- a 1D pipeline ``f(i)`` where each task reads its
    predecessor::

        ptg = PTG()
        ptg.add_class(TaskClass(
            name="f",
            parameter_space=lambda: ((i,) for i in range(10)),
            node=lambda i: i % 4,
            dependencies=[Dependency(
                producer=lambda i: ("f", i - 1) if i > 0 else None,
                tag="out", nbytes=8)],
            outputs={"out": 8},
            cost=1e-6,
        ))
        graph = ptg.build()
    """

    def __init__(self) -> None:
        self.classes: dict[str, TaskClass] = {}

    def add_class(self, cls: TaskClass) -> TaskClass:
        if cls.name in self.classes:
            raise ValueError(f"duplicate task class {cls.name!r}")
        self.classes[cls.name] = cls
        return cls

    def build(self) -> TaskGraph:
        """Unroll every class over its parameter space and finalize."""
        graph = TaskGraph()
        for cls in self.classes.values():
            for params in cls.parameter_space():
                graph.add(cls.instantiate(tuple(params)))
        return graph.finalize()
