"""Execution tracing, in the spirit of PaRSEC's profiling system.

The engine emits one :class:`Span` per task execution and per
communication-thread activity.  From the spans we derive the Fig.-10
style analyses: per-worker Gantt rows, worker occupancy, per-kind
duration statistics (the paper quotes median kernel times of 136 ms
for base vs 153 ms for CA on the profiled configuration).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Iterable


def median(values: Iterable[float]) -> float:
    """Median of ``values``; ``0.0`` for an empty sequence.

    The one median implementation trace statistics, occupancy reports
    and the causal critical-path analysis all share (the empty-input
    convention is theirs, :func:`statistics.median` raises instead).
    """
    data = values if isinstance(values, list) else list(values)
    if not data:
        return 0.0
    return float(statistics.median(data))


@dataclass(frozen=True)
class Span:
    """One traced interval.

    ``worker`` is the within-node worker index; the communication
    thread uses worker index ``-1``.  ``kind`` is the task's label
    ("interior", "boundary", ...) or one of the engine's communication
    labels ("send", "recv").  ``task_id`` is the first-class identity
    of the task the span belongs to -- for a compute span the task's
    graph key, for a send/recv span the *producer's* key -- which is
    what lets the causal critical-path analysis join a trace back onto
    its :class:`~repro.runtime.graph.TaskGraph` without guessing.
    ``label`` stays a free-form display field (old traces that only
    carried a label still load: ``task_id`` defaults to ``None`` and
    consumers fall back to the label).
    """

    node: int
    worker: int
    kind: str
    start: float
    end: float
    label: Any = None
    task_id: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")


class Trace:
    """Append-only container of spans with analysis helpers."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.enabled = True

    def record(
        self,
        node: int,
        worker: int,
        kind: str,
        start: float,
        end: float,
        label: Any = None,
        task_id: Any = None,
    ) -> None:
        if self.enabled:
            self.spans.append(Span(node, worker, kind, start, end, label, task_id))

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    # -- selection -------------------------------------------------------

    def for_node(self, node: int) -> list[Span]:
        return [s for s in self.spans if s.node == node]

    def compute_spans(self) -> list[Span]:
        """Spans of compute workers only (exclude the comm thread)."""
        return [s for s in self.spans if s.worker >= 0]

    def comm_spans(self) -> list[Span]:
        return [s for s in self.spans if s.worker < 0]

    def kinds(self) -> set[str]:
        return {s.kind for s in self.spans}

    def makespan(self) -> float:
        """End time of the last span (the virtual elapsed time of the
        traced activity)."""
        return max((s.end for s in self.spans), default=0.0)

    # -- statistics --------------------------------------------------------

    def durations(self, kind: str | None = None) -> list[float]:
        return [s.duration for s in self.spans if kind is None or s.kind == kind]

    def median_duration(self, kind: str | None = None) -> float:
        return median(self.durations(kind))

    def busy_time(self, node: int | None = None, compute_only: bool = True) -> float:
        return sum(
            s.duration
            for s in self.spans
            if (node is None or s.node == node) and (not compute_only or s.worker >= 0)
        )

    def occupancy(self, node: int, workers: int, horizon: float | None = None) -> float:
        """Fraction of worker-seconds spent computing on ``node`` over
        ``horizon`` (defaults to the trace makespan).  This is the
        "CPU occupancy" Fig. 10 compares between base and CA."""
        if workers < 1:
            raise ValueError("need at least one worker")
        horizon = self.makespan() if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = sum(s.duration for s in self.spans if s.node == node and s.worker >= 0)
        return busy / (workers * horizon)

    #: Span kinds that may legally occupy a comm lane (worker < 0).
    COMM_KINDS = frozenset({"send", "recv"})

    def validate(self) -> None:
        """Structural sanity of the whole trace; raises ``ValueError``
        on the first violation.  Checks:

        * no negative durations (defence in depth -- :class:`Span`
          rejects them at construction too);
        * spans on each (node, worker) lane are monotonic: a worker is
          a serial resource, so sorted-by-start spans must not overlap;
        * comm lanes (worker ``-1``, ``-2``, ...) carry communication
          kinds only (``send`` / ``recv``) -- a compute kind on a comm
          lane means a backend merged its spans into the wrong lane.

        The engine and both real backends call this after a traced run
        when the ``REPRO_DEBUG_TRACE`` debug flag is set.
        """
        for s in self.spans:
            if s.duration < 0:
                raise ValueError(f"negative-duration span: {s}")
            if s.worker < 0 and s.kind not in self.COMM_KINDS:
                raise ValueError(
                    f"compute kind {s.kind!r} recorded on comm lane "
                    f"{s.worker} of node {s.node}: {s}"
                )
        self.validate_no_overlap()

    def validate_no_overlap(self) -> None:
        """Assert that no two spans overlap on the same (node, worker)
        -- a worker is a serial resource.  Raises ``ValueError`` on
        violation; used by the engine's self-checks and the tests."""
        lanes: dict[tuple[int, int], list[Span]] = {}
        for s in self.spans:
            lanes.setdefault((s.node, s.worker), []).append(s)
        for lane, spans in lanes.items():
            spans.sort(key=lambda s: (s.start, s.end))
            for a, b in zip(spans, spans[1:]):
                # Allow zero-length touching; disallow true overlap.
                if b.start < a.end - 1e-15:
                    raise ValueError(
                        f"overlapping spans on node {lane[0]} worker {lane[1]}: "
                        f"{a} and {b}"
                    )


@dataclass
class KindStats:
    """Aggregate duration statistics for one span kind."""

    kind: str
    count: int
    total: float
    median: float
    mean: float
    p95: float


def kind_statistics(trace: Trace) -> list[KindStats]:
    """Per-kind duration statistics over compute spans, sorted by total
    time descending."""
    by_kind: dict[str, list[float]] = {}
    for s in trace.compute_spans():
        by_kind.setdefault(s.kind, []).append(s.duration)
    out = []
    for kind, ds in by_kind.items():
        ds.sort()
        n = len(ds)
        p95 = ds[min(n - 1, int(0.95 * n))]
        out.append(
            KindStats(
                kind=kind,
                count=n,
                total=sum(ds),
                median=median(ds),
                mean=sum(ds) / n,
                p95=p95,
            )
        )
    out.sort(key=lambda k: -k.total)
    return out


def idle_fraction_timeline(
    trace: Trace, node: int, workers: int, buckets: int = 50
) -> list[float]:
    """Busy-worker fraction per time bucket for one node -- the data
    behind a Fig.-10 utilisation strip.  Returns ``buckets`` values in
    [0, 1]."""
    if buckets < 1:
        raise ValueError("need at least one bucket")
    horizon = trace.makespan()
    if horizon <= 0:
        return [0.0] * buckets
    width = horizon / buckets
    busy = [0.0] * buckets
    for s in trace.spans:
        if s.node != node or s.worker < 0:
            continue
        first = int(s.start / width)
        last = min(buckets - 1, int(s.end / width))
        for b in range(first, last + 1):
            lo = max(s.start, b * width)
            hi = min(s.end, (b + 1) * width)
            if hi > lo:
                busy[b] += hi - lo
    return [min(1.0, b / (width * workers)) for b in busy]
