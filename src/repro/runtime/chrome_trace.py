"""Chrome trace-event export (compatibility alias).

The serializer moved to :mod:`repro.obs.export`, the unified telemetry
exporter, so the simulator, the threads backend and the procs backend
all serialize one way.  This module keeps the historical import path
(``repro.runtime.chrome_trace.to_events`` / ``dumps`` / ``write``)
alive for existing callers.
"""

from __future__ import annotations

from ..obs.export import dumps, to_events, write

__all__ = ["dumps", "to_events", "write"]
