"""Export traces to the Chrome trace-event format.

PaRSEC ships its profiling traces to visualisers; the nearest
ubiquitous equivalent is the Chrome/Perfetto trace-event JSON (open
``chrome://tracing`` or https://ui.perfetto.dev and load the file).
Each simulated node becomes a process, each worker a thread (the
communication thread is ``comm``), and every span a complete ('X')
event with its kind as the name, so the Fig.-10 comparison can be
explored interactively.
"""

from __future__ import annotations

import json
from typing import Any

from .trace import Trace

#: Microseconds per virtual second (trace events use microseconds).
_US = 1e6

#: Stable colour names from the trace-viewer palette per span kind.
_COLORS = {
    "interior": "thread_state_running",
    "boundary": "thread_state_iowait",
    "init": "startup",
    "spmv": "thread_state_running",
    "send": "rail_animation",
    "recv": "rail_load",
}


def to_events(trace: Trace, time_scale: float = 1.0) -> list[dict[str, Any]]:
    """Convert spans to trace-event dicts.

    ``time_scale`` stretches virtual time (useful when spans are
    nanoseconds-short and the viewer rounds them away).
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    events: list[dict[str, Any]] = []
    seen_threads: set[tuple[int, int]] = set()
    for span in trace.spans:
        tid = span.worker if span.worker >= 0 else 9999
        key = (span.node, tid)
        if key not in seen_threads:
            seen_threads.add(key)
            events.append({
                "ph": "M",
                "name": "thread_name",
                "pid": span.node,
                "tid": tid,
                "args": {"name": "comm" if span.worker < 0 else f"worker {span.worker}"},
            })
        event = {
            "ph": "X",
            "name": span.kind,
            "cat": "task" if span.worker >= 0 else "comm",
            "pid": span.node,
            "tid": tid,
            "ts": span.start * _US * time_scale,
            "dur": span.duration * _US * time_scale,
        }
        if span.label is not None:
            event["args"] = {"label": repr(span.label)}
        color = _COLORS.get(span.kind)
        if color:
            event["cname"] = color
        events.append(event)
    for node in sorted({s.node for s in trace.spans}):
        events.append({
            "ph": "M",
            "name": "process_name",
            "pid": node,
            "args": {"name": f"node {node}"},
        })
    return events


def dumps(trace: Trace, time_scale: float = 1.0) -> str:
    """The complete trace JSON document as a string."""
    return json.dumps(
        {"traceEvents": to_events(trace, time_scale), "displayTimeUnit": "ms"}
    )


def write(trace: Trace, path: str, time_scale: float = 1.0) -> None:
    """Write the trace to ``path`` (open it in chrome://tracing)."""
    with open(path, "w") as fh:
        fh.write(dumps(trace, time_scale))
