"""Task and dataflow-edge descriptions.

A :class:`Task` is the unit the engine schedules: it lives on one node,
consumes tagged outputs of other tasks (:class:`Flow` edges), optionally
runs a real kernel, and is charged a modelled duration on the virtual
clock.  Tags let one producer feed different data to different
consumers (e.g. its north ghost strip to the tile above, its south
strip to the tile below), exactly like PaRSEC's named flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

#: Task keys are arbitrary hashables; stencil builders use tuples like
#: ``("st", tx, ty, it)``.
TaskKey = Hashable

#: A kernel receives {(producer_key, tag): payload} for its inputs plus
#: the task itself, and returns {tag: payload} for its outputs.
Kernel = Callable[[Mapping[tuple[TaskKey, str], Any], "Task"], Mapping[str, Any]]


@dataclass(frozen=True)
class Flow:
    """One incoming dataflow edge: *this* task consumes output ``tag``
    of ``producer``.

    Parameters
    ----------
    producer:
        Key of the producing task.
    tag:
        Which named output of the producer to consume.
    nbytes:
        Payload size in bytes.  Drives message timing and the byte
        census; for zero-byte control edges (pure ordering, e.g. WAR
        dependencies inferred by the DTD front-end) only the
        per-message software overhead is charged when the edge crosses
        nodes.
    """

    producer: TaskKey
    tag: str
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("flow payload size cannot be negative")


class Task:
    """One schedulable task.

    Attributes
    ----------
    key:
        Unique hashable identity within the graph.
    node:
        Rank of the node the task executes on.
    inputs:
        Incoming :class:`Flow` edges.
    cost:
        Modelled kernel duration in seconds (excludes the per-task
        runtime overhead, which the engine charges from the node spec).
    flops:
        Useful floating-point work, for GFLOP/s accounting.  Redundant
        (communication-avoiding) flops are tracked separately so
        reports can distinguish useful from replicated work.
    redundant_flops:
        Replicated work performed to avoid communication (PA1 halo
        updates).  Counted in task cost but not in useful-GFLOP/s.
    kernel:
        Optional real computation.  When the engine runs with
        ``execute=True`` the kernel is invoked with the task's input
        payloads and must return its output payloads by tag.
    out_nbytes:
        Sizes of this task's outputs by tag, used when consumers
        declared a flow without a size and for message accounting.
    priority:
        Larger runs earlier under the priority scheduler.  The stencil
        builders give boundary tiles higher priority so their ghost
        messages enter the network as early as possible.
    kind:
        Free-form label used by traces and Fig.-10-style analysis
        ("interior", "boundary", "spmv", ...).
    """

    __slots__ = (
        "key",
        "node",
        "inputs",
        "cost",
        "flops",
        "redundant_flops",
        "kernel",
        "out_nbytes",
        "priority",
        "kind",
    )

    def __init__(
        self,
        key: TaskKey,
        node: int,
        inputs: tuple[Flow, ...] = (),
        cost: float = 0.0,
        flops: float = 0.0,
        redundant_flops: float = 0.0,
        kernel: Kernel | None = None,
        out_nbytes: Mapping[str, int] | None = None,
        priority: int = 0,
        kind: str = "task",
    ) -> None:
        if node < 0:
            raise ValueError("node rank cannot be negative")
        if cost < 0:
            raise ValueError("task cost cannot be negative")
        if flops < 0 or redundant_flops < 0:
            raise ValueError("flop counts cannot be negative")
        self.key = key
        self.node = node
        self.inputs = tuple(inputs)
        self.cost = float(cost)
        self.flops = float(flops)
        self.redundant_flops = float(redundant_flops)
        self.kernel = kernel
        self.out_nbytes = dict(out_nbytes or {})
        self.priority = priority
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task({self.key!r}, node={self.node}, kind={self.kind}, "
            f"cost={self.cost:.3g}, deps={len(self.inputs)})"
        )


@dataclass
class EdgeCensus:
    """Static communication census of a graph: what *must* move,
    independent of scheduling.  This is the ground truth the engine's
    dynamic accounting is tested against."""

    local_edges: int = 0
    local_bytes: int = 0
    remote_messages: int = 0
    remote_bytes: int = 0
    #: messages per (src_node, dst_node) pair
    by_pair: dict = field(default_factory=dict)

    def add_remote(self, src: int, dst: int, nbytes: int) -> None:
        self.remote_messages += 1
        self.remote_bytes += nbytes
        pair = (src, dst)
        msgs, byts = self.by_pair.get(pair, (0, 0))
        self.by_pair[pair] = (msgs + 1, byts + nbytes)

    def add_local(self, nbytes: int) -> None:
        self.local_edges += 1
        self.local_bytes += nbytes
