"""Graphviz DOT export of task graphs.

Small graphs (a few iterations of a few tiles) are easiest to debug
visually; this renders a finalized :class:`TaskGraph` with nodes
clustered by owning rank, dataflow edges labelled with their tag and
payload size, and remote edges highlighted -- paste into any graphviz
viewer.
"""

from __future__ import annotations

from .graph import TaskGraph

#: Fill colours by task kind (X11 scheme names).
KIND_COLORS = {
    "interior": "lightblue",
    "boundary": "salmon",
    "init": "lightgrey",
    "spmv": "lightgreen",
}


def _node_id(key) -> str:
    return '"' + str(key).replace('"', "'") + '"'


def to_dot(graph: TaskGraph, max_tasks: int = 2000) -> str:
    """Render the graph as DOT text.

    Refuses graphs above ``max_tasks`` -- DOT layouts beyond a couple
    thousand nodes are unreadable and graphviz chokes; slice the
    problem down instead.
    """
    if not graph.finalized:
        raise ValueError("finalize() the graph before exporting it")
    if len(graph) > max_tasks:
        raise ValueError(
            f"graph has {len(graph)} tasks; DOT export is capped at "
            f"{max_tasks} (use a smaller configuration)"
        )
    lines = [
        "digraph taskgraph {",
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontsize=10];',
    ]
    by_node: dict[int, list] = {}
    for task in graph:
        by_node.setdefault(task.node, []).append(task)
    for rank in sorted(by_node):
        lines.append(f"  subgraph cluster_node{rank} {{")
        lines.append(f'    label="node {rank}";')
        for task in by_node[rank]:
            color = KIND_COLORS.get(task.kind, "white")
            lines.append(
                f"    {_node_id(task.key)} [fillcolor={color}, "
                f'label="{task.key}\\n{task.kind}"];'
            )
        lines.append("  }")
    for task in graph:
        for flow in task.inputs:
            src = graph[flow.producer]
            remote = src.node != task.node
            attrs = [f'label="{flow.tag}:{flow.nbytes}B"', "fontsize=8"]
            if remote:
                attrs.append("color=red")
                attrs.append("penwidth=2")
            lines.append(
                f"  {_node_id(flow.producer)} -> {_node_id(task.key)} "
                f"[{', '.join(attrs)}];"
            )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: TaskGraph, path: str, max_tasks: int = 2000) -> None:
    """Write :func:`to_dot` output to a file."""
    with open(path, "w") as fh:
        fh.write(to_dot(graph, max_tasks))
