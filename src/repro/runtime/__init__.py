"""A PaRSEC-style distributed dataflow task runtime (simulated).

Layers:

* :mod:`~repro.runtime.task` / :mod:`~repro.runtime.graph` -- the task
  and DAG model (tagged flows, like PaRSEC's named dataflows).
* :mod:`~repro.runtime.engine` -- the discrete-event engine: per-node
  worker pools, a dedicated communication thread per node, a NIC/wire
  network model, and real kernel execution through a versioned mailbox.
* :mod:`~repro.runtime.scheduler` -- pluggable ready-queue policies.
* :mod:`~repro.runtime.ptg` / :mod:`~repro.runtime.dtd` -- the two
  PaRSEC programming front-ends (Parameterized Task Graph and Dynamic
  Task Discovery).
* :mod:`~repro.runtime.trace` -- PaRSEC-profiling-style trace capture.
"""

from . import chrome_trace, dot
from .ca_transform import CAPlan, apply_communication_avoidance, plan as ca_plan, transform_build
from .dtd import IN, INOUT, OUT, DataHandle, DTDRuntime
from .engine import Engine, EngineReport, KernelError
from .graph import GraphError, TaskGraph
from .ptg import PTG, Dependency, TaskClass
from .scheduler import FifoQueue, LifoQueue, PriorityQueue, make_queue
from .task import EdgeCensus, Flow, Task, TaskKey
from .trace import KindStats, Span, Trace, idle_fraction_timeline, kind_statistics

__all__ = [
    "CAPlan",
    "DTDRuntime",
    "apply_communication_avoidance",
    "ca_plan",
    "chrome_trace",
    "dot",
    "transform_build",
    "DataHandle",
    "Dependency",
    "EdgeCensus",
    "Engine",
    "EngineReport",
    "FifoQueue",
    "Flow",
    "GraphError",
    "KernelError",
    "IN",
    "INOUT",
    "KindStats",
    "LifoQueue",
    "OUT",
    "PTG",
    "PriorityQueue",
    "Span",
    "Task",
    "TaskClass",
    "TaskGraph",
    "TaskKey",
    "Trace",
    "idle_fraction_timeline",
    "kind_statistics",
    "make_queue",
]
