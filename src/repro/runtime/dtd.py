"""Dynamic Task Discovery (DTD) front-end.

PaRSEC's DTD interface lets the programmer insert tasks *sequentially*
with data handles annotated IN/OUT/INOUT; the runtime infers the
dependency graph from data-access order (read-after-write,
write-after-read, write-after-write), exactly like superscalar
task-based models (StarPU, OmpSs).  This module reproduces that
programming model on top of :class:`~repro.runtime.graph.TaskGraph`:

* RAW dependencies become real data flows (they carry the handle's
  payload bytes);
* WAR and WAW dependencies become zero-byte control flows (ordering
  only), matching how a version-based runtime reclaims buffers.

Each write creates a new *version* of the handle; versions map onto
the engine's tagged mailbox, so DTD programs can execute real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from .graph import TaskGraph
from .task import Flow, Task, TaskKey

#: Access modes, PaRSEC naming.
IN = "IN"
OUT = "OUT"
INOUT = "INOUT"


@dataclass
class DataHandle:
    """A runtime-managed datum.

    ``nbytes`` sizes the flows the handle generates; ``node`` is where
    the authoritative copy lives (tasks touching the handle from other
    nodes cause messages, as in PaRSEC's owner-computes default).
    ``initial`` optionally provides a real payload for executing runs.
    """

    name: str
    node: int
    nbytes: int
    initial: Any = None
    version: int = 0
    last_writer: TaskKey | None = None
    readers_since_write: list[TaskKey] = field(default_factory=list)

    def tag(self) -> str:
        """Mailbox tag of the current version."""
        return f"{self.name}#v{self.version}"


class DTDRuntime:
    """Sequential task-insertion front-end.

    Example
    -------
    >>> dtd = DTDRuntime()
    >>> x = dtd.data("x", node=0, nbytes=8, initial=1.0)
    >>> t = dtd.insert_task(lambda ins, task: {"out": 2.0}, node=0,
    ...                     accesses=[(x, INOUT)], cost=1e-6)
    >>> graph = dtd.graph()
    """

    def __init__(self) -> None:
        self._graph = TaskGraph()
        self._handles: dict[str, DataHandle] = {}
        self._counter = 0
        self._init_tasks: dict[str, TaskKey] = {}

    # -- data -----------------------------------------------------------

    def data(self, name: str, node: int, nbytes: int, initial: Any = None) -> DataHandle:
        """Register a data handle; names must be unique."""
        if name in self._handles:
            raise ValueError(f"duplicate data handle {name!r}")
        handle = DataHandle(name=name, node=node, nbytes=nbytes, initial=initial)
        self._handles[name] = handle
        # A synthetic zero-cost source task publishes version 0 so that
        # the first reader has a producer (PaRSEC's "data_of" lookup).
        key: TaskKey = ("dtd-init", name)
        payload = initial

        def _init_kernel(_ins: Mapping, _task: Task, _payload=payload) -> dict:
            return {f"{name}#v0": _payload}

        self._graph.add_task(
            key,
            node=node,
            cost=0.0,
            kernel=_init_kernel,
            out_nbytes={f"{name}#v0": nbytes},
            kind="dtd-init",
        )
        handle.last_writer = key
        self._init_tasks[name] = key
        return handle

    # -- tasks ------------------------------------------------------------

    def insert_task(
        self,
        kernel: Callable | None,
        node: int,
        accesses: Sequence[tuple[DataHandle, str]],
        cost: float = 0.0,
        flops: float = 0.0,
        key: TaskKey | None = None,
        kind: str = "dtd",
        priority: int = 0,
    ) -> Task:
        """Insert one task touching ``accesses`` = [(handle, mode), ...].

        The kernel (if any) receives ``{(producer_key, tag): payload}``
        for all read handles and must return one payload per written
        handle.  The tags it must use are exactly the keys of
        ``task.out_nbytes`` (they encode the new version, e.g.
        ``"x#v3"``); a kernel writing a single handle can simply do
        ``{next(iter(task.out_nbytes)): value}``.  WAR/WAW control
        edges need no payload -- the engine satisfies them implicitly.
        """
        if key is None:
            key = ("dtd", self._counter)
        self._counter += 1
        flows: list[Flow] = []
        out_nbytes: dict[str, int] = {}
        writes: list[DataHandle] = []
        seen_handles: set[str] = set()
        for handle, mode in accesses:
            if handle.name not in self._handles:
                raise ValueError(f"unknown handle {handle.name!r}")
            if handle.name in seen_handles:
                raise ValueError(f"handle {handle.name!r} listed twice")
            seen_handles.add(handle.name)
            if mode not in (IN, OUT, INOUT):
                raise ValueError(f"bad access mode {mode!r}")
            reads = mode in (IN, INOUT)
            if reads:
                # RAW: depend on the current version's producer.
                flows.append(Flow(handle.last_writer, handle.tag(), handle.nbytes))
            if mode in (OUT, INOUT):
                if not reads:
                    # A pure OUT still orders after the last version
                    # (WAW) -- control edge, no payload.
                    flows.append(Flow(handle.last_writer, handle.tag() + "!ctl", 0))
                # WAR: wait for every reader of the current version.
                for reader in handle.readers_since_write:
                    if reader != key:
                        flows.append(Flow(reader, f"{handle.name}#war{handle.version}", 0))
                writes.append(handle)
        task = Task(
            key,
            node=node,
            inputs=tuple(flows),
            cost=cost,
            flops=flops,
            kernel=kernel,
            priority=priority,
            kind=kind,
        )
        # Bump versions *after* computing input tags.
        for handle in writes:
            handle.version += 1
            handle.last_writer = key
            handle.readers_since_write = []
            out_nbytes[handle.tag()] = handle.nbytes
        for handle, mode in accesses:
            if mode == IN:
                handle.readers_since_write.append(key)
        task.out_nbytes.update(out_nbytes)
        self._graph.add(task)
        return task

    def output_tag(self, handle: DataHandle) -> str:
        """Tag a kernel must use for the version it writes (valid right
        after :meth:`insert_task` returned for that writer)."""
        return handle.tag()

    # -- finish --------------------------------------------------------------

    def graph(self) -> TaskGraph:
        """Finalize and return the discovered task graph."""
        return self._graph.finalize()
