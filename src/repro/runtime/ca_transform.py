"""Automatic communication avoidance -- the paper's future-work feature.

Section VII sketches "a more generic communication avoiding framework
... built directly into the runtime system.  This approach will
include automatic data replication across the stencil grid neighbors
... the generation and the scheduling of the redundant tasks become
transparent to the users."

This module realises that design on top of the reproduction's runtime:
the user supplies only the *base* description of a tiled stencil (a
:class:`~repro.core.spec.StencilSpec` with ``steps=1``, i.e. plain
per-iteration exchanges) and a target step size; the transform derives
everything CA needs automatically --

* ghost-region deepening on node-facing tile sides,
* the corner-neighbour replication flows,
* the redundant halo-update tasks and their shrinking regions,
* the superstep communication schedule --

and returns a ready-to-run build.  No stencil code changes: the same
kernels execute, because the CA geometry lives entirely in the
runtime-level spec (exactly the transparency argument of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..machine.machine import MachineSpec
from ..stencil.cost import KernelCostModel


class CATransformError(ValueError):
    """The CA transform cannot apply to this spec/steps combination
    (wrong spec type aside, which stays a :class:`TypeError`)."""


@dataclass(frozen=True)
class CAPlan:
    """What the transform decided, for inspection/reporting."""

    steps: int
    boundary_tiles: int
    interior_tiles: int
    extra_ghost_bytes: int
    messages_per_superstep: int
    messages_saved_fraction: float


def apply_communication_avoidance(spec, steps: int):
    """Deepen a base stencil spec into its CA equivalent.

    ``spec`` must be a base (``steps == 1``) stencil spec; returns the
    transformed spec with ``steps`` and the same problem/partition.
    Raises :class:`CATransformError` when the transform cannot apply
    (step size larger than the smallest tile dimension -- the s-deep
    replicated strips must come from one tile).
    """
    from ..core.spec import StencilSpec  # local import: runtime <-> core layering

    if not isinstance(spec, StencilSpec):
        raise TypeError("expected a StencilSpec")
    if spec.steps != 1:
        raise CATransformError("the transform applies to base (steps=1) specs")
    if steps < 1:
        raise CATransformError("step size must be >= 1")
    min_dim = spec.partition.min_tile_dim()
    if steps > min_dim:
        raise CATransformError(
            f"step size {steps} exceeds the smallest tile dimension "
            f"{min_dim}; the s-deep PA1 strips must come from a single "
            "tile"
        )
    return replace(spec, steps=steps)


def plan(spec, steps: int) -> CAPlan:
    """Describe the replication the transform would introduce, without
    building anything: extra ghost memory and the message reduction."""
    ca = apply_communication_avoidance(spec, steps)
    base = spec
    extra_bytes = 0
    boundary = 0
    interior = 0
    msgs_base = 0
    msgs_ca = 0
    from ..distgrid.halo import CORNERS, SIDES

    for (i, j) in ca.partition.tiles():
        tb = base.tile(i, j)
        tc = ca.tile(i, j)
        eb = tb.ext_shape()
        ec = tc.ext_shape()
        extra_bytes += (ec[0] * ec[1] - eb[0] * eb[1]) * 8
        if tc.is_boundary():
            boundary += 1
        else:
            interior += 1
        for side in SIDES:
            if tc.remote[side]:
                msgs_base += steps  # one per iteration over a superstep
                msgs_ca += 1
        for corner in CORNERS:
            if ca.corner_block(tc, corner) is not None:
                msgs_ca += 1
    saved = 0.0 if msgs_base == 0 else 1.0 - msgs_ca / msgs_base
    return CAPlan(
        steps=steps,
        boundary_tiles=boundary,
        interior_tiles=interior,
        extra_ghost_bytes=extra_bytes,
        messages_per_superstep=msgs_ca,
        messages_saved_fraction=saved,
    )


def transform_build(
    base_build,
    machine: MachineSpec,
    steps: int,
    cost: KernelCostModel | None = None,
    with_kernels: bool = True,
):
    """One-call convenience: take a base build (from
    :func:`repro.core.base_parsec.build_base_graph`) and produce the
    equivalent CA build, redundant tasks and all."""
    from ..core.dataflow import build_stencil_graph

    ca_spec = apply_communication_avoidance(base_build.spec, steps)
    return build_stencil_graph(
        ca_spec,
        machine,
        cost=cost,
        name="ca-auto",
        with_kernels=with_kernels,
    )
