"""Task-graph container: construction, validation and static analysis.

The graph is the hand-off point between the algorithm front-ends (the
stencil builders, the PTG and DTD DSLs) and the execution engine.  It
owns the reverse dependency maps the engine needs and can compute the
static communication census that the benchmarks and tests use as
ground truth.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from .task import EdgeCensus, Task, TaskKey


class GraphError(Exception):
    """Raised for malformed task graphs (duplicate keys, missing
    producers, cycles)."""


class TaskGraph:
    """A directed acyclic graph of :class:`Task` objects.

    Tasks are added with :meth:`add`; :meth:`finalize` validates the
    graph and builds the consumer maps.  The engine refuses to run a
    non-finalized graph.
    """

    def __init__(self) -> None:
        self.tasks: dict[TaskKey, Task] = {}
        #: (producer_key, tag) -> list of consumer keys
        self.consumers: dict[tuple[TaskKey, str], list[TaskKey]] = {}
        #: producer key -> tags it must produce (declared + consumed)
        self.out_tags: dict[TaskKey, tuple[str, ...]] = {}
        self._finalized = False
        self._census: EdgeCensus | None = None

    # -- construction --------------------------------------------------

    def add(self, task: Task) -> Task:
        """Add a task; its producers may be added later (PaRSEC unfolds
        graphs dynamically too)."""
        if self._finalized:
            raise GraphError("cannot add tasks to a finalized graph")
        if task.key in self.tasks:
            raise GraphError(f"duplicate task key: {task.key!r}")
        self.tasks[task.key] = task
        return task

    def add_task(self, key: TaskKey, node: int, **kwargs) -> Task:
        """Convenience wrapper building the :class:`Task` in place."""
        return self.add(Task(key, node, **kwargs))

    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, key: TaskKey) -> bool:
        return key in self.tasks

    def __getitem__(self, key: TaskKey) -> Task:
        return self.tasks[key]

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks.values())

    # -- validation -----------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    def finalize(self, validate: bool = True) -> "TaskGraph":
        """Validate producers exist, build consumer maps and (when
        ``validate``) check acyclicity.  Generated graphs whose task
        keys are ordered by iteration may skip the cycle check; hand
        built graphs should keep it.  Idempotent."""
        if self._finalized:
            return self
        consumers: dict[tuple[TaskKey, str], list[TaskKey]] = {}
        out_tags: dict[TaskKey, set[str]] = {key: set(t.out_nbytes) for key, t in self.tasks.items()}
        for task in self.tasks.values():
            for flow in task.inputs:
                if flow.producer not in self.tasks:
                    raise GraphError(
                        f"task {task.key!r} consumes {flow.tag!r} of missing "
                        f"producer {flow.producer!r}"
                    )
                consumers.setdefault((flow.producer, flow.tag), []).append(task.key)
                out_tags[flow.producer].add(flow.tag)
        self.consumers = consumers
        self.out_tags = {key: tuple(sorted(tags)) for key, tags in out_tags.items()}
        if validate:
            self._check_acyclic()
        self._finalized = True
        return self

    def _kahn(self) -> tuple[list[TaskKey], dict[TaskKey, int]]:
        """One Kahn sweep, shared by the cycle check and every
        topological consumer: the visit order plus the final in-degree
        map (entries left positive mark tasks stuck behind a cycle)."""
        indeg = {key: len(t.inputs) for key, t in self.tasks.items()}
        ready = deque(key for key, d in indeg.items() if d == 0)
        order: list[TaskKey] = []
        while ready:
            key = ready.popleft()
            order.append(key)
            task = self.tasks[key]
            for tag in self._out_tags(task):
                for consumer in self.consumers.get((key, tag), ()):
                    indeg[consumer] -= 1
                    if indeg[consumer] == 0:
                        ready.append(consumer)
        return order, indeg

    def _check_acyclic(self) -> None:
        """Raises :class:`GraphError` with a sample of the offending
        tasks if a cycle exists."""
        order, indeg = self._kahn()
        if len(order) != len(self.tasks):
            stuck = [k for k, d in indeg.items() if d > 0][:5]
            raise GraphError(f"task graph has a cycle; sample of blocked tasks: {stuck}")

    def _out_tags(self, task: Task) -> Iterable[str]:
        return self.out_tags.get(task.key, ())

    # -- static analysis -------------------------------------------------

    def census(self) -> EdgeCensus:
        """Count the communication the graph implies, independent of any
        schedule: a remote *message* is one (producer, tag, destination
        node) triple (consumers on the same node share a message, as in
        PaRSEC); a local edge is a same-node flow."""
        if not self._finalized:
            raise GraphError("finalize() the graph before analysing it")
        if self._census is not None:  # immutable once finalized
            return self._census
        census = EdgeCensus()
        # A message's payload is the largest size any party declared for
        # it: consumer flow sizes or the producer's out_nbytes (the
        # engine uses the same rule).  This runs once per run when
        # telemetry is on, so the loop stays allocation-light.
        msg_sizes: dict[tuple[TaskKey, str, int], int] = {}
        tasks = self.tasks
        local_edges = local_bytes = 0
        for task in tasks.values():
            node = task.node
            for flow in task.inputs:
                producer = tasks[flow.producer]
                nbytes = flow.nbytes
                if producer.node == node:
                    local_edges += 1
                    local_bytes += nbytes
                else:
                    key = (flow.producer, flow.tag, node)
                    declared = producer.out_nbytes.get(flow.tag, 0)
                    if declared > nbytes:
                        nbytes = declared
                    prev = msg_sizes.get(key)
                    if prev is None or nbytes > prev:
                        msg_sizes[key] = nbytes
        census.local_edges = local_edges
        census.local_bytes = local_bytes
        by_pair = census.by_pair
        remote_bytes = 0
        for (producer_key, _tag, dst), nbytes in msg_sizes.items():
            remote_bytes += nbytes
            pair = (tasks[producer_key].node, dst)
            msgs, byts = by_pair.get(pair, (0, 0))
            by_pair[pair] = (msgs + 1, byts + nbytes)
        census.remote_messages = len(msg_sizes)
        census.remote_bytes = remote_bytes
        self._census = census
        return census

    def total_flops(self) -> tuple[float, float]:
        """(useful, redundant) FLOP over the whole graph."""
        useful = sum(t.flops for t in self.tasks.values())
        redundant = sum(t.redundant_flops for t in self.tasks.values())
        return useful, redundant

    def critical_path(self) -> float:
        """Length (seconds of task cost) of the longest dependency chain
        -- a lower bound on any schedule with infinitely many workers
        and a zero-cost network."""
        if not self._finalized:
            raise GraphError("finalize() the graph before analysing it")
        dist: dict[TaskKey, float] = {}
        for key in self.topological_order():
            task = self.tasks[key]
            start = 0.0
            for flow in task.inputs:
                start = max(start, dist[flow.producer])
            dist[key] = start + task.cost
        return max(dist.values(), default=0.0)

    def topological_order(self) -> list[TaskKey]:
        """Every task key in dependency order (producers first).

        The IR rewrite passes walk this to compute topological levels;
        a cycle (possible when the graph was finalized with
        ``validate=False``) raises rather than returning a silently
        truncated order."""
        if not self._finalized:
            raise GraphError("finalize() the graph before analysing it")
        order, indeg = self._kahn()
        if len(order) != len(self.tasks):
            stuck = [k for k, d in indeg.items() if d > 0][:5]
            raise GraphError(f"task graph has a cycle; sample of blocked tasks: {stuck}")
        return order

    def nodes_used(self) -> set[int]:
        return {t.node for t in self.tasks.values()}
