"""Live run monitoring and post-run metric summaries.

A :class:`RunMonitor` samples a live backend's ``progress()`` dict on
a background thread and renders one status line per sample -- tasks
done/total, occupancy so far, and (when the static census is known)
measured messages against the graph's predicted message count.  All
three backends expose ``progress()``:

* :class:`repro.runtime.engine.Engine` -- virtual-clock done/total
  plus delivered messages;
* :class:`repro.exec.executor.ThreadedExecutor` -- wall-clock
  done/total, busy seconds and steal count;
* :class:`repro.exec.procs.ProcessExecutor` -- node processes alive
  (per-task progress lives inside the children).

The monitor attaches through :func:`repro.core.runner.run`'s
``on_executor`` hook, which fires just before the run starts::

    mon = RunMonitor(interval=0.5)
    result = run(problem, ..., on_executor=mon.attach)
    mon.stop()

or in one line via :func:`monitored_run`.  The CLI face is
``repro monitor`` / ``repro stats`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, TextIO

from .metrics import MetricsSnapshot

__all__ = [
    "RunMonitor",
    "monitored_run",
    "format_sample",
    "format_serve_summary",
    "format_summary",
    "format_top",
]


def format_sample(p: dict[str, Any], census_messages: int | None = None) -> str:
    """One status line from one ``progress()`` dict.

    Handles every backend's shape; unknown keys are ignored so the
    monitor keeps working as backends grow richer progress reports.
    """
    parts: list[str] = []
    elapsed = p.get("elapsed_s")
    if elapsed is not None:
        parts.append(f"t={elapsed:8.3f}s")
    done, total = p.get("done"), p.get("total")
    if done is not None and total:
        parts.append(f"tasks {done}/{total} ({100.0 * done / total:5.1f}%)")
    busy, workers = p.get("busy_s"), p.get("workers")
    if busy is not None and workers and elapsed:
        occ = busy / (elapsed * workers)
        parts.append(f"occupancy {occ:.2f}")
    if "steals" in p:
        parts.append(f"steals {p['steals']}")
    msgs = p.get("messages")
    if msgs is not None:
        if census_messages:
            parts.append(f"msgs {msgs}/{census_messages} (census)")
        else:
            parts.append(f"msgs {msgs}")
    if "procs_alive" in p:
        parts.append(f"procs {p['procs_alive']}/{p.get('procs', '?')} alive")
    if "queue_depth" in p:
        parts.append(f"queue {p['queue_depth']}")
    return "  ".join(parts) if parts else "(no progress data)"


class RunMonitor:
    """Poll a live backend's ``progress()`` periodically.

    ``attach(executor)`` is shaped to be passed directly as the
    runner's ``on_executor`` callback: it remembers the target and
    starts the sampling thread.  ``stop()`` halts sampling and takes
    one final sample so short runs still record something.  Samples
    accumulate in :attr:`samples`; when ``stream`` is given each is
    also rendered there as it is taken.
    """

    def __init__(
        self,
        interval: float = 0.5,
        stream: TextIO | None = None,
        census_messages: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.stream = stream
        self.census_messages = census_messages
        self.samples: list[dict[str, Any]] = []
        self._target: Any = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def attach(self, executor: Any) -> None:
        """Start monitoring ``executor`` (anything with ``progress()``)."""
        self._target = executor
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-monitor", daemon=True
        )
        self._thread.start()

    def sample(self) -> dict[str, Any] | None:
        """Take one sample now; returns it (or ``None`` if unavailable)."""
        target = self._target
        if target is None:
            return None
        try:
            p = target.progress()
        except Exception:
            return None  # the run may be tearing down under us
        self.samples.append(p)
        if self.stream is not None:
            print(format_sample(p, self.census_messages),
                  file=self.stream, flush=True)
        return p

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        """Stop the sampler thread and take a final sample."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()

    def __enter__(self) -> "RunMonitor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def monitored_run(
    run_fn: Callable[..., Any],
    *args: Any,
    interval: float = 0.5,
    stream: TextIO | None = None,
    **kwargs: Any,
):
    """Call ``run_fn(*args, on_executor=..., **kwargs)`` under a live
    monitor; returns ``(result, monitor)``.  ``stream`` defaults to
    stderr so status lines never pollute piped stdout."""
    monitor = RunMonitor(
        interval=interval, stream=sys.stderr if stream is None else stream
    )
    try:
        result = run_fn(*args, on_executor=monitor.attach, **kwargs)
    finally:
        monitor.stop()
    return result, monitor


def format_summary(
    snapshot: MetricsSnapshot,
    census_messages: int | None = None,
    census_bytes: int | None = None,
) -> str:
    """Human-readable post-run summary of a metrics snapshot.

    Shows the headline counters every backend publishes; the census
    comparison defaults to the ``census_*`` gauges the runner records
    in the same snapshot.
    """
    if census_messages is None:
        census_messages = int(snapshot.gauge("census_messages")) or None
    if census_bytes is None:
        census_bytes = int(snapshot.gauge("census_message_bytes")) or None
    lines: list[str] = []

    def row(label: str, value: str) -> None:
        lines.append(f"  {label:<28} {value}")

    elapsed = snapshot.gauge("run_elapsed_seconds")
    tasks = snapshot.counter("tasks_executed_total")
    total = snapshot.gauge("tasks_total")
    lines.append("run summary")
    row("elapsed", f"{elapsed:.6f} s")
    row("tasks executed", f"{tasks:.0f} of {total:.0f}")
    for ls, count in sorted(snapshot.labelled("tasks_executed_total").items()):
        label = dict(ls).get("kind", "?")
        row(f"  kind={label}", f"{count:.0f}")
    steals = snapshot.counter("tasks_stolen_total")
    if steals:
        row("tasks stolen", f"{steals:.0f}")
    busy = snapshot.counter("worker_busy_seconds_total")
    workers = snapshot.gauge("workers_per_node")
    nodes = max(
        1, len({dict(ls).get("node") for ls in
                snapshot.labelled("worker_busy_seconds_total")} - {None}),
    )
    if busy and elapsed and workers:
        row("worker busy", f"{busy:.6f} s")
        row("occupancy", f"{busy / (elapsed * workers * nodes):.3f}")
    msgs = snapshot.counter("messages_total")
    if msgs or census_messages:
        against = f" (census {census_messages})" if census_messages else ""
        row("remote messages", f"{msgs:.0f}{against}")
        mbytes = snapshot.counter("message_bytes_total")
        against = f" (census {census_bytes})" if census_bytes else ""
        row("remote payload bytes", f"{mbytes:.0f}{against}")
    wire = snapshot.counter("wire_bytes_total")
    if wire:
        row("wire bytes (pickled)", f"{wire:.0f}")
    hits = snapshot.counter("tuning_cache_hits_total")
    misses = snapshot.counter("tuning_cache_misses_total")
    if hits or misses:
        rate = hits / (hits + misses)
        row("tuning cache hit-rate", f"{rate:.2f} ({hits:.0f}/{hits + misses:.0f})")
    trials = snapshot.counter("tuning_trials_total")
    if trials:
        row("tuning trials", f"{trials:.0f}")
    serve = format_serve_summary(snapshot)
    if serve:
        lines.append(serve)
    crit = snapshot.gauge("critpath_seconds")
    if crit:
        row("critical path", f"{crit:.6f} s")
        row("critpath ratio", f"{snapshot.gauge('critpath_ratio'):.3f}"
            " (dependency bound / makespan)")
        row("critpath comm share",
            f"{snapshot.gauge('critpath_comm_share'):.1%}")
        blames = snapshot.labelled("critpath_blame_seconds")
        for ls, state in sorted(
            blames.items(), key=lambda kv: -kv[1]["value"]
        ):
            row(f"  blame={dict(ls).get('blame', '?')}",
                f"{state['value']:.6f} s")
    return "\n".join(lines)


def format_top(
    store,
    alerts=None,
    window_s: float = 10.0,
    spark_width: int = 24,
) -> str:
    """One ``repro top`` frame from a
    :class:`~repro.obs.timeseries.TimeSeriesStore` (live or replayed):
    queue depth, worker busy share, request/cache-hit rates over the
    trailing window, the active-alert table and per-tenant e2e p95
    sparklines.  Tolerant of missing metrics -- a store sampled from a
    plain solve renders whatever it has."""
    from ..analysis.asciiplot import spark
    from .metrics import quantile_from_state

    lines: list[str] = []
    t = store.latest_time()
    if t is None:
        return "repro top  (no samples yet)"
    elapsed = store.latest("live_elapsed_s")
    head = f"repro top  samples {store.samples}  window {window_s:g}s"
    if elapsed:
        head += f"  t={elapsed:.1f}s"
    lines.append(head)

    def row(label: str, value: str) -> None:
        lines.append(f"  {label:<22} {value}")

    depth = store.latest("serve_queue_depth")
    if depth is not None:
        peak = max(
            (float(v) for _, v in store.points("serve_queue_depth")),
            default=depth,
        )
        row("queue depth", f"{depth:.0f}  (peak {peak:.0f})")
    workers = store.latest("live_workers")
    busy_rate = store.rate("worker_busy_seconds_total", window_s)
    if busy_rate is not None:
        shown = f"{busy_rate:.2f} core-s/s"
        if workers:
            shown += f"  ({busy_rate / workers:.0%} of {workers:.0f} workers)"
        row("worker busy", shown)
    elif workers is not None:
        row("workers", f"{workers:.0f}")
    submitted = store.rate("serve_jobs_submitted_total", window_s)
    if submitted is not None:
        row("requests/s", f"{submitted:.2f}")
    completed = store.cell_increases("serve_jobs_completed_total", window_s)
    if completed:
        mix = "  ".join(
            f"{dict(ls).get('status', '?')} {inc / window_s:.2f}/s"
            for ls, inc in sorted(completed.items())
        )
        row("completed", mix)
    hits = store.increase("serve_cache_hits_total", window_s)
    misses = store.increase("serve_cache_misses_total", window_s)
    if hits is not None and misses is not None and (hits + misses) > 0:
        row("cache hit rate",
            f"{hits / (hits + misses):.0%}  ({hits:.0f}/{hits + misses:.0f})")

    if alerts is not None:
        active = alerts.active()
        firing = sum(1 for a in active if a["state"] == "firing")
        row("alerts", f"{firing} firing / {len(active) - firing} pending")
        for a in active:
            since = "" if a["since"] is None else f"  for {t - a['since']:.1f}s"
            value = "-" if a["value"] is None else f"{a['value']:.6g}"
            lines.append(
                f"    {a['state'].upper():<8} {a['rule']:<20} "
                f"[{a['severity']}]  value={value}{since}"
            )

    tenants = store.labelsets("slo_e2e_seconds")
    if tenants:
        lines.append("  e2e p95 by tenant")
        for ls in tenants:
            trend = [
                p95
                for _, state in store.points("slo_e2e_seconds", **dict(ls))
                if state["count"]
                for p95 in (quantile_from_state(state, 0.95),)
                if p95 is not None
            ]
            if not trend:
                continue
            tenant = dict(ls).get("tenant", "?")
            lines.append(
                f"    {tenant:<12} {trend[-1] * 1000:8.1f}ms  "
                f"{spark(trend, width=spark_width)}"
            )
    return "\n".join(lines)


def format_serve_summary(snapshot: MetricsSnapshot) -> str:
    """The serving section of a metrics summary (empty string when the
    snapshot carries no ``serve_*`` metrics -- i.e. the run was a
    plain solve, not a service)."""
    submitted = snapshot.counter("serve_jobs_submitted_total")
    hits = snapshot.counter("serve_cache_hits_total")
    misses = snapshot.counter("serve_cache_misses_total")
    if not (submitted or hits or misses):
        return ""
    lines: list[str] = ["serve summary"]

    def row(label: str, value: str) -> None:
        lines.append(f"  {label:<28} {value}")

    row("jobs submitted", f"{submitted:.0f}")
    for ls, count in sorted(
        snapshot.labelled("serve_jobs_completed_total").items()
    ):
        row(f"  status={dict(ls).get('status', '?')}", f"{count:.0f}")
    retried = snapshot.counter("serve_jobs_retried_total")
    if retried:
        row("jobs retried", f"{retried:.0f}")
    recoveries = snapshot.counter("chaos_recoveries_total")
    faults = sum(
        snapshot.labelled("chaos_faults_injected_total").values()
    )
    if faults or recoveries:
        row("chaos faults / recoveries", f"{faults:.0f} / {recoveries:.0f}")
    if hits or misses:
        rate = hits / (hits + misses)
        row("result cache hit-rate",
            f"{rate:.2f} ({hits:.0f}/{hits + misses:.0f})")
    warm = snapshot.counter("serve_pool_warm_starts_total")
    cold = snapshot.counter("serve_pool_cold_starts_total")
    if warm or cold:
        row("executor starts", f"{warm:.0f} warm / {cold:.0f} cold")
    replaced = snapshot.counter("serve_pool_replaced_total")
    retired = snapshot.counter("serve_pool_retired_total")
    if replaced or retired:
        row("pool churn",
            f"{replaced:.0f} replaced / {retired:.0f} retired")
    batches = snapshot.counter("serve_batches_total")
    if batches:
        batched = snapshot.counter("serve_batched_jobs_total")
        row("batches", f"{batches:.0f} ({batched / batches:.1f} jobs/batch)")
        dedup = snapshot.counter("serve_dedup_total")
        if dedup:
            row("deduplicated jobs", f"{dedup:.0f}")
    rejects = snapshot.counter("serve_admission_rejects_total")
    if rejects:
        row("admission rejects", f"{rejects:.0f}")
    expired = snapshot.counter("serve_deadline_expired_total")
    if expired:
        row("deadline expiries", f"{expired:.0f}")
    depth = snapshot.labelled("serve_queue_depth").get((), None)
    if depth is not None:
        row("queue depth (peak)", f"{depth['max']:.0f}")
    inflight = snapshot.labelled("serve_tenant_inflight")
    for ls, state in sorted(inflight.items()):
        row(f"  tenant={dict(ls).get('tenant', '?')} in-flight peak",
            f"{state['max']:.0f}")
    e2e = snapshot.labelled("slo_e2e_seconds")
    if e2e:
        from .metrics import quantile_from_state
        row("e2e latency p95 (by tenant)", "")
        for ls, state in sorted(e2e.items()):
            p95 = quantile_from_state(state, 0.95)
            row(f"  tenant={dict(ls).get('tenant', '?')}",
                "-" if p95 is None else f"{p95:.6f} s"
                f" ({state['count']} requests)")
    return "\n".join(lines)
