"""Live run monitoring and post-run metric summaries.

A :class:`RunMonitor` samples a live backend's ``progress()`` dict on
a background thread and renders one status line per sample -- tasks
done/total, occupancy so far, and (when the static census is known)
measured messages against the graph's predicted message count.  All
three backends expose ``progress()``:

* :class:`repro.runtime.engine.Engine` -- virtual-clock done/total
  plus delivered messages;
* :class:`repro.exec.executor.ThreadedExecutor` -- wall-clock
  done/total, busy seconds and steal count;
* :class:`repro.exec.procs.ProcessExecutor` -- node processes alive
  (per-task progress lives inside the children).

The monitor attaches through :func:`repro.core.runner.run`'s
``on_executor`` hook, which fires just before the run starts::

    mon = RunMonitor(interval=0.5)
    result = run(problem, ..., on_executor=mon.attach)
    mon.stop()

or in one line via :func:`monitored_run`.  The CLI face is
``repro monitor`` / ``repro stats`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, TextIO

from .metrics import MetricsSnapshot

__all__ = [
    "RunMonitor",
    "monitored_run",
    "format_sample",
    "format_serve_summary",
    "format_summary",
]


def format_sample(p: dict[str, Any], census_messages: int | None = None) -> str:
    """One status line from one ``progress()`` dict.

    Handles every backend's shape; unknown keys are ignored so the
    monitor keeps working as backends grow richer progress reports.
    """
    parts: list[str] = []
    elapsed = p.get("elapsed_s")
    if elapsed is not None:
        parts.append(f"t={elapsed:8.3f}s")
    done, total = p.get("done"), p.get("total")
    if done is not None and total:
        parts.append(f"tasks {done}/{total} ({100.0 * done / total:5.1f}%)")
    busy, workers = p.get("busy_s"), p.get("workers")
    if busy is not None and workers and elapsed:
        occ = busy / (elapsed * workers)
        parts.append(f"occupancy {occ:.2f}")
    if "steals" in p:
        parts.append(f"steals {p['steals']}")
    msgs = p.get("messages")
    if msgs is not None:
        if census_messages:
            parts.append(f"msgs {msgs}/{census_messages} (census)")
        else:
            parts.append(f"msgs {msgs}")
    if "procs_alive" in p:
        parts.append(f"procs {p['procs_alive']}/{p.get('procs', '?')} alive")
    if "queue_depth" in p:
        parts.append(f"queue {p['queue_depth']}")
    return "  ".join(parts) if parts else "(no progress data)"


class RunMonitor:
    """Poll a live backend's ``progress()`` periodically.

    ``attach(executor)`` is shaped to be passed directly as the
    runner's ``on_executor`` callback: it remembers the target and
    starts the sampling thread.  ``stop()`` halts sampling and takes
    one final sample so short runs still record something.  Samples
    accumulate in :attr:`samples`; when ``stream`` is given each is
    also rendered there as it is taken.
    """

    def __init__(
        self,
        interval: float = 0.5,
        stream: TextIO | None = None,
        census_messages: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.stream = stream
        self.census_messages = census_messages
        self.samples: list[dict[str, Any]] = []
        self._target: Any = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def attach(self, executor: Any) -> None:
        """Start monitoring ``executor`` (anything with ``progress()``)."""
        self._target = executor
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-monitor", daemon=True
        )
        self._thread.start()

    def sample(self) -> dict[str, Any] | None:
        """Take one sample now; returns it (or ``None`` if unavailable)."""
        target = self._target
        if target is None:
            return None
        try:
            p = target.progress()
        except Exception:
            return None  # the run may be tearing down under us
        self.samples.append(p)
        if self.stream is not None:
            print(format_sample(p, self.census_messages),
                  file=self.stream, flush=True)
        return p

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        """Stop the sampler thread and take a final sample."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()

    def __enter__(self) -> "RunMonitor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def monitored_run(
    run_fn: Callable[..., Any],
    *args: Any,
    interval: float = 0.5,
    stream: TextIO | None = None,
    **kwargs: Any,
):
    """Call ``run_fn(*args, on_executor=..., **kwargs)`` under a live
    monitor; returns ``(result, monitor)``.  ``stream`` defaults to
    stderr so status lines never pollute piped stdout."""
    monitor = RunMonitor(
        interval=interval, stream=sys.stderr if stream is None else stream
    )
    try:
        result = run_fn(*args, on_executor=monitor.attach, **kwargs)
    finally:
        monitor.stop()
    return result, monitor


def format_summary(
    snapshot: MetricsSnapshot,
    census_messages: int | None = None,
    census_bytes: int | None = None,
) -> str:
    """Human-readable post-run summary of a metrics snapshot.

    Shows the headline counters every backend publishes; the census
    comparison defaults to the ``census_*`` gauges the runner records
    in the same snapshot.
    """
    if census_messages is None:
        census_messages = int(snapshot.gauge("census_messages")) or None
    if census_bytes is None:
        census_bytes = int(snapshot.gauge("census_message_bytes")) or None
    lines: list[str] = []

    def row(label: str, value: str) -> None:
        lines.append(f"  {label:<28} {value}")

    elapsed = snapshot.gauge("run_elapsed_seconds")
    tasks = snapshot.counter("tasks_executed_total")
    total = snapshot.gauge("tasks_total")
    lines.append("run summary")
    row("elapsed", f"{elapsed:.6f} s")
    row("tasks executed", f"{tasks:.0f} of {total:.0f}")
    for ls, count in sorted(snapshot.labelled("tasks_executed_total").items()):
        label = dict(ls).get("kind", "?")
        row(f"  kind={label}", f"{count:.0f}")
    steals = snapshot.counter("tasks_stolen_total")
    if steals:
        row("tasks stolen", f"{steals:.0f}")
    busy = snapshot.counter("worker_busy_seconds_total")
    workers = snapshot.gauge("workers_per_node")
    nodes = max(
        1, len({dict(ls).get("node") for ls in
                snapshot.labelled("worker_busy_seconds_total")} - {None}),
    )
    if busy and elapsed and workers:
        row("worker busy", f"{busy:.6f} s")
        row("occupancy", f"{busy / (elapsed * workers * nodes):.3f}")
    msgs = snapshot.counter("messages_total")
    if msgs or census_messages:
        against = f" (census {census_messages})" if census_messages else ""
        row("remote messages", f"{msgs:.0f}{against}")
        mbytes = snapshot.counter("message_bytes_total")
        against = f" (census {census_bytes})" if census_bytes else ""
        row("remote payload bytes", f"{mbytes:.0f}{against}")
    wire = snapshot.counter("wire_bytes_total")
    if wire:
        row("wire bytes (pickled)", f"{wire:.0f}")
    hits = snapshot.counter("tuning_cache_hits_total")
    misses = snapshot.counter("tuning_cache_misses_total")
    if hits or misses:
        rate = hits / (hits + misses)
        row("tuning cache hit-rate", f"{rate:.2f} ({hits:.0f}/{hits + misses:.0f})")
    trials = snapshot.counter("tuning_trials_total")
    if trials:
        row("tuning trials", f"{trials:.0f}")
    serve = format_serve_summary(snapshot)
    if serve:
        lines.append(serve)
    crit = snapshot.gauge("critpath_seconds")
    if crit:
        row("critical path", f"{crit:.6f} s")
        row("critpath ratio", f"{snapshot.gauge('critpath_ratio'):.3f}"
            " (dependency bound / makespan)")
        row("critpath comm share",
            f"{snapshot.gauge('critpath_comm_share'):.1%}")
        blames = snapshot.labelled("critpath_blame_seconds")
        for ls, state in sorted(
            blames.items(), key=lambda kv: -kv[1]["value"]
        ):
            row(f"  blame={dict(ls).get('blame', '?')}",
                f"{state['value']:.6f} s")
    return "\n".join(lines)


def format_serve_summary(snapshot: MetricsSnapshot) -> str:
    """The serving section of a metrics summary (empty string when the
    snapshot carries no ``serve_*`` metrics -- i.e. the run was a
    plain solve, not a service)."""
    submitted = snapshot.counter("serve_jobs_submitted_total")
    hits = snapshot.counter("serve_cache_hits_total")
    misses = snapshot.counter("serve_cache_misses_total")
    if not (submitted or hits or misses):
        return ""
    lines: list[str] = ["serve summary"]

    def row(label: str, value: str) -> None:
        lines.append(f"  {label:<28} {value}")

    row("jobs submitted", f"{submitted:.0f}")
    for ls, count in sorted(
        snapshot.labelled("serve_jobs_completed_total").items()
    ):
        row(f"  status={dict(ls).get('status', '?')}", f"{count:.0f}")
    retried = snapshot.counter("serve_jobs_retried_total")
    if retried:
        row("jobs retried", f"{retried:.0f}")
    recoveries = snapshot.counter("chaos_recoveries_total")
    faults = sum(
        snapshot.labelled("chaos_faults_injected_total").values()
    )
    if faults or recoveries:
        row("chaos faults / recoveries", f"{faults:.0f} / {recoveries:.0f}")
    if hits or misses:
        rate = hits / (hits + misses)
        row("result cache hit-rate",
            f"{rate:.2f} ({hits:.0f}/{hits + misses:.0f})")
    warm = snapshot.counter("serve_pool_warm_starts_total")
    cold = snapshot.counter("serve_pool_cold_starts_total")
    if warm or cold:
        row("executor starts", f"{warm:.0f} warm / {cold:.0f} cold")
    replaced = snapshot.counter("serve_pool_replaced_total")
    retired = snapshot.counter("serve_pool_retired_total")
    if replaced or retired:
        row("pool churn",
            f"{replaced:.0f} replaced / {retired:.0f} retired")
    batches = snapshot.counter("serve_batches_total")
    if batches:
        batched = snapshot.counter("serve_batched_jobs_total")
        row("batches", f"{batches:.0f} ({batched / batches:.1f} jobs/batch)")
        dedup = snapshot.counter("serve_dedup_total")
        if dedup:
            row("deduplicated jobs", f"{dedup:.0f}")
    rejects = snapshot.counter("serve_admission_rejects_total")
    if rejects:
        row("admission rejects", f"{rejects:.0f}")
    expired = snapshot.counter("serve_deadline_expired_total")
    if expired:
        row("deadline expiries", f"{expired:.0f}")
    depth = snapshot.labelled("serve_queue_depth").get((), None)
    if depth is not None:
        row("queue depth (peak)", f"{depth['max']:.0f}")
    inflight = snapshot.labelled("serve_tenant_inflight")
    for ls, state in sorted(inflight.items()):
        row(f"  tenant={dict(ls).get('tenant', '?')} in-flight peak",
            f"{state['max']:.0f}")
    e2e = snapshot.labelled("slo_e2e_seconds")
    if e2e:
        from .metrics import quantile_from_state
        row("e2e latency p95 (by tenant)", "")
        for ls, state in sorted(e2e.items()):
            p95 = quantile_from_state(state, 0.95)
            row(f"  tenant={dict(ls).get('tenant', '?')}",
                "-" if p95 is None else f"{p95:.6f} s"
                f" ({state['count']} requests)")
    return "\n".join(lines)
