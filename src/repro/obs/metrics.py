"""Metrics registry: counters, gauges and histograms.

Design goals, in the order they mattered:

* **Cheap recording.**  A metric cell is a plain Python attribute that
  its (single) writer bumps without taking a lock -- the execution
  layers are already structured so that each hot counter has exactly
  one writer (a worker thread owns its lane, the courier owns the
  send tallies, the engine is single-threaded), or the increment
  happens inside a critical section the layer already holds.  Cell
  *creation* is the only locked path, and layers hoist it out of hot
  loops by keeping the cell handle.
* **Exactness.**  The acceptance tests assert the procs-merged
  counters equal the simulator's static census *exactly*; sums of
  integer cells merged once at shutdown make that trivial.
* **Process-safe merging.**  A registry snapshots to a plain-dict,
  pickle/JSON-friendly form; child processes ship snapshots over the
  existing control pipes and the parent folds them back in with
  :meth:`MetricRegistry.merge`.
* **Snapshot/delta semantics.**  Monitors poll with
  :meth:`MetricRegistry.snapshot` and diff consecutive snapshots with
  :meth:`MetricsSnapshot.delta` to get rates.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping

#: Label values are stored as a sorted tuple of ``(key, value)`` pairs
#: so every equal label set hashes identically.
LabelSet = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-ish scale; callers
#: with other units pass their own ladder).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


def _labelset(labels: Mapping[str, object] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_quantile(
    bounds,
    buckets,
    count: int,
    vmin: float | None,
    vmax: float | None,
    q: float,
) -> float | None:
    """Quantile estimate from fixed-bucket histogram state.

    Walks the cumulative bucket counts to the bucket containing rank
    ``q * count`` and interpolates linearly within it; the observed
    ``vmin`` / ``vmax`` tighten the open-ended first and overflow
    buckets and clamp the result, so ``q=0``/``q=1`` are exact and a
    single-bucket distribution cannot report a value outside what was
    actually observed.  Returns None for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not count or vmin is None or vmax is None:
        return None
    vmin, vmax = float(vmin), float(vmax)
    if q == 0.0:
        return vmin
    if q == 1.0:
        return vmax
    rank = q * count
    cumulative = 0
    for i, n in enumerate(buckets):
        if not n:
            continue
        previous = cumulative
        cumulative += n
        if cumulative >= rank:
            lo = bounds[i - 1] if i > 0 else vmin
            hi = bounds[i] if i < len(bounds) else vmax
            frac = (rank - previous) / n
            value = lo + (hi - lo) * frac
            return min(max(value, vmin), vmax)
    return vmax


def quantile_from_state(state: Mapping[str, object], q: float) -> float | None:
    """:func:`bucket_quantile` over one snapshot histogram state (the
    ``{"bounds", "buckets", "count", "sum", "min", "max"}`` dict that
    :meth:`MetricRegistry.snapshot` emits)."""
    return bucket_quantile(
        state["bounds"], state["buckets"], state["count"],
        state.get("min"), state.get("max"), q,
    )


def merge_histogram_states(states) -> dict | None:
    """Fold several same-bounds histogram states into one (buckets and
    counts add, min/max widen) -- the cross-tenant aggregate the SLO
    regression gate compares.  Returns None for an empty iterable."""
    out: dict | None = None
    for state in states:
        if out is None:
            out = {
                "bounds": list(state["bounds"]),
                "buckets": list(state["buckets"]),
                "count": state["count"],
                "sum": state["sum"],
                "min": state.get("min"),
                "max": state.get("max"),
            }
            continue
        if list(state["bounds"]) != out["bounds"]:
            raise ValueError("histogram bucket mismatch on merge")
        for i, n in enumerate(state["buckets"]):
            out["buckets"][i] += n
        out["count"] += state["count"]
        out["sum"] += state["sum"]
        if state["count"]:
            out["min"] = (
                state["min"] if out["min"] is None
                else min(out["min"], state["min"])
            )
            out["max"] = (
                state["max"] if out["max"] is None
                else max(out["max"], state["max"])
            )
    return out


class _Metric:
    """Common shape of the three metric families."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self._lock = threading.Lock()
        self._cells: dict[LabelSet, object] = {}

    def _cell(self, labels: Mapping[str, object] | None, factory):
        key = _labelset(labels)
        cell = self._cells.get(key)
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(key, factory())
        return cell

    def cells(self) -> dict[LabelSet, object]:
        with self._lock:
            return dict(self._cells)


class CounterCell:
    """One labelled counter value; ``add`` is unlocked by design (see
    the module docstring for the single-writer discipline)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int | float = 1) -> None:
        self.value += amount


class Counter(_Metric):
    """Monotonically increasing count (tasks run, messages, bytes)."""

    kind = "counter"

    def labels(self, **labels: object) -> CounterCell:
        """The cell for one label set; keep the handle in hot loops."""
        return self._cell(labels, CounterCell)

    def inc(self, amount: int | float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._cell(labels, CounterCell).add(amount)

    def value(self, **labels: object) -> int | float:
        cell = self._cells.get(_labelset(labels))
        return cell.value if cell is not None else 0

    def total(self) -> int | float:
        """Sum over every label set."""
        return sum(c.value for c in self.cells().values())


class GaugeCell:
    """Last-written value plus the high-water mark."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Gauge(_Metric):
    """Point-in-time level (queue depth, progress, elapsed seconds)."""

    kind = "gauge"

    def labels(self, **labels: object) -> GaugeCell:
        return self._cell(labels, GaugeCell)

    def set(self, value: float, **labels: object) -> None:
        self._cell(labels, GaugeCell).set(value)

    def value(self, **labels: object) -> float:
        cell = self._cells.get(_labelset(labels))
        return cell.value if cell is not None else 0.0

    def high_water(self, **labels: object) -> float:
        cell = self._cells.get(_labelset(labels))
        return cell.max if cell is not None else 0.0


class HistogramCell:
    """Fixed-bucket histogram state (counts per bucket + sum/count)."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # last bucket = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Interpolated quantile of this cell (None when empty)."""
        return bucket_quantile(
            self.bounds, self.buckets, self.count,
            self.min if self.count else None,
            self.max if self.count else None,
            q,
        )


class Histogram(_Metric):
    """Distribution of observations (task durations, queue depths)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, unit)
        self.buckets = tuple(sorted(set(float(b) for b in buckets)))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")

    def labels(self, **labels: object) -> HistogramCell:
        return self._cell(labels, lambda: HistogramCell(self.buckets))

    def observe(self, value: float, **labels: object) -> None:
        self.labels(**labels).observe(value)

    def quantile(self, q: float, **labels: object) -> float | None:
        """Interpolated quantile: with labels, that cell's; without,
        the aggregate across every label set.  None when empty.

        The aggregate goes through :func:`merge_histogram_states`, so
        cells whose bucket bounds disagree (possible after a merge
        from a registry that declared the metric with another ladder)
        raise instead of silently mis-summing positional buckets.
        """
        if labels:
            cell = self._cells.get(_labelset(labels))
            return cell.quantile(q) if cell is not None else None
        merged = merge_histogram_states(
            {
                "bounds": cell.bounds,
                "buckets": cell.buckets,
                "count": cell.count,
                "sum": cell.sum,
                "min": cell.min if cell.count else None,
                "max": cell.max if cell.count else None,
            }
            for cell in self.cells().values()
        )
        if merged is None or not merged["count"]:
            return None
        return quantile_from_state(merged, q)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, JSON/pickle-friendly view of one registry moment.

    ``data`` maps metric name to
    ``{"kind", "help", "unit", "values": {labelset: state}}`` where the
    state is a number (counter), ``{"value", "max"}`` (gauge), or the
    bucket dict (histogram).  Label sets are tuples, so the structure
    round-trips through pickle untouched; :meth:`as_dict` flattens
    them for JSON.
    """

    data: dict

    def metrics(self) -> dict:
        return self.data

    def counter(self, name: str, **labels: object) -> int | float:
        """Summed counter value; with labels, that one cell only."""
        entry = self.data.get(name)
        if entry is None or entry["kind"] != "counter":
            return 0
        if labels:
            return entry["values"].get(_labelset(labels), 0)
        return sum(entry["values"].values())

    def gauge(self, name: str, **labels: object) -> float:
        entry = self.data.get(name)
        if entry is None or entry["kind"] != "gauge":
            return 0.0
        state = entry["values"].get(_labelset(labels))
        return state["value"] if state else 0.0

    def labelled(self, name: str) -> dict[LabelSet, object]:
        entry = self.data.get(name)
        return dict(entry["values"]) if entry else {}

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter differences since ``earlier`` (gauges and histograms
        keep their current state -- levels have no meaningful delta)."""
        out: dict = {}
        for name, entry in self.data.items():
            if entry["kind"] != "counter":
                out[name] = entry
                continue
            before = earlier.data.get(name, {}).get("values", {})
            out[name] = {
                **entry,
                "values": {
                    ls: v - before.get(ls, 0)
                    for ls, v in entry["values"].items()
                },
            }
        return MetricsSnapshot(out)

    def as_dict(self) -> dict:
        """JSON-safe form: label sets become ``k=v,k=v`` strings."""
        out: dict = {}
        for name, entry in self.data.items():
            out[name] = {
                "kind": entry["kind"],
                "help": entry["help"],
                "unit": entry["unit"],
                "values": {
                    ",".join(f"{k}={v}" for k, v in ls): state
                    for ls, state in entry["values"].items()
                },
            }
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "MetricsSnapshot":
        """Inverse of :meth:`as_dict`."""
        data: dict = {}
        for name, entry in doc.items():
            values = {}
            for label_str, state in entry.get("values", {}).items():
                ls: LabelSet = ()
                if label_str:
                    ls = tuple(
                        tuple(part.split("=", 1))  # type: ignore[misc]
                        for part in label_str.split(",")
                    )
                values[ls] = state
            data[name] = {
                "kind": entry.get("kind", "untyped"),
                "help": entry.get("help", ""),
                "unit": entry.get("unit", ""),
                "values": values,
            }
        return cls(data)


class MetricRegistry:
    """Named collection of metrics with snapshot/merge semantics.

    One registry serves one run (or one node process of a run); the
    procs backend creates a child registry per node and merges every
    child's snapshot into the parent's registry at shutdown.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- creation --------------------------------------------------------

    def _get_or_make(self, cls, name: str, help: str, unit: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help=help, unit=unit, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_make(Counter, name, help, unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_make(Gauge, name, help, unit)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_make(Histogram, name, help, unit, buckets=buckets)

    # -- introspection ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Deterministic point-in-time copy (names and label sets are
        emitted sorted, so equal states produce equal snapshots)."""
        data: dict = {}
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            values: dict = {}
            for ls, cell in sorted(metric.cells().items()):
                if isinstance(cell, CounterCell):
                    values[ls] = cell.value
                elif isinstance(cell, GaugeCell):
                    values[ls] = {"value": cell.value, "max": cell.max}
                else:
                    assert isinstance(cell, HistogramCell)
                    values[ls] = {
                        "bounds": list(cell.bounds),
                        "buckets": list(cell.buckets),
                        "count": cell.count,
                        "sum": cell.sum,
                        "min": cell.min if cell.count else None,
                        "max": cell.max if cell.count else None,
                    }
            data[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "unit": metric.unit,
                "values": values,
            }
        return MetricsSnapshot(data)

    def merge(self, snapshot: MetricsSnapshot | dict) -> None:
        """Fold ``snapshot`` into this registry: counters and histogram
        buckets add, gauges keep the maximum of value and high-water
        mark (the only merge that is meaningful for a level)."""
        if isinstance(snapshot, dict):
            snapshot = MetricsSnapshot(snapshot)
        for name, entry in snapshot.data.items():
            kind = entry["kind"]
            help_, unit = entry.get("help", ""), entry.get("unit", "")
            for ls, state in entry["values"].items():
                labels = dict(ls)
                if kind == "counter":
                    self.counter(name, help_, unit).inc(state, **labels)
                elif kind == "gauge":
                    cell = self.gauge(name, help_, unit).labels(**labels)
                    cell.set(max(cell.value, state["value"]))
                    cell.max = max(cell.max, state["max"])
                elif kind == "histogram":
                    hist = self.histogram(
                        name, help_, unit, buckets=state["bounds"]
                    )
                    cell = hist.labels(**labels)
                    if list(cell.bounds) != list(state["bounds"]):
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch on merge"
                        )
                    for i, n in enumerate(state["buckets"]):
                        cell.buckets[i] += n
                    cell.count += state["count"]
                    cell.sum += state["sum"]
                    if state["count"]:
                        cell.min = min(cell.min, state["min"])
                        cell.max = max(cell.max, state["max"])

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


__all__ = [
    "Counter",
    "CounterCell",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeCell",
    "Histogram",
    "HistogramCell",
    "MetricRegistry",
    "MetricsSnapshot",
    "bucket_quantile",
    "merge_histogram_states",
    "quantile_from_state",
]
