"""Causal critical-path analysis of an executed trace.

PaRSEC's profiling answers *what ran when*; this module answers *why
the run took as long as it did*.  It joins a
:class:`~repro.runtime.trace.Trace` with the
:class:`~repro.runtime.graph.TaskGraph` it executed into a causal DAG
over spans:

* **dependency edges** -- producer span to consumer span, from the
  graph's flows;
* **comm edges** -- producer to its ``send`` span ("post"), ``send``
  to the matching ``recv`` ("wire"), ``recv`` to the consumer;
* **worker-adjacency edges** -- consecutive spans on one
  ``(node, worker)`` lane: a worker is a serial resource, so the span
  before me can delay me even without a dataflow edge.

Walking that DAG backwards from the last span to finish yields the
*executed* critical path: the chain of spans and waits that determined
the makespan.  Every second of ``[0, makespan]`` is blamed:

========== ==========================================================
blame      meaning
========== ==========================================================
compute    a kernel body on the path
comm       a ``send``/``recv`` span body on the path
wire       the gap between a send finishing and its recv starting
queue      a ready task waiting for a worker (scheduler/queue time)
comm-queue backlog before a comm span got the wire
startup    the lead-in before the path's first span
========== ==========================================================

The segment list tiles ``[0, makespan]`` *exactly* -- contiguous by
construction -- which is what lets the tests pin ``sum(segments) ==
makespan`` as an invariant on every backend's trace schema.

Beyond the path itself the report carries per-task slack (how long a
task could slip without moving the makespan), MAD-scored straggler
spans, and per-worker load imbalance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..runtime.trace import Span, Trace, median

#: Span kinds that represent communication activity.
COMM_KINDS = Trace.COMM_KINDS

#: Blame categories counted as communication by :attr:`comm_share`.
COMM_BLAMES = ("comm", "wire", "comm-queue")

#: Robust z-score above which a span is called a straggler
#: (the conventional modified-z cutoff).
STRAGGLER_THRESHOLD = 3.5

#: Consistency factor making the MAD estimate sigma for normal data.
_MAD_SCALE = 1.4826

#: Same, for the mean absolute deviation (fallback when MAD is zero).
_MEANAD_SCALE = 1.2533


# ---------------------------------------------------------------------------
# report dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathSegment:
    """One contiguous interval of the critical path.

    Body segments carry the span's ``kind``; gap segments have
    ``kind == ""`` and are anchored to the span that was *waiting*
    (the one the gap precedes).
    """

    start: float
    end: float
    blame: str
    kind: str = ""
    node: int = -1
    worker: int = -1
    task_id: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Straggler:
    """A span whose duration is a robust outlier within its kind."""

    task_id: Any
    kind: str
    node: int
    worker: int
    duration: float
    median: float
    score: float


@dataclass(frozen=True)
class WorkerLoad:
    """Busy time of one compute lane, with its robust deviation score
    (positive = overloaded relative to its peers)."""

    node: int
    worker: int
    busy: float
    share: float
    score: float


@dataclass
class CritPathReport:
    """Everything the causal analysis derives from one trace."""

    makespan: float
    #: Exactly contiguous tiling of ``[0, makespan]``.
    segments: list[PathSegment] = field(default_factory=list)
    #: Seconds of critical-path time per blame category.
    blame_seconds: dict[str, float] = field(default_factory=dict)
    #: Static :meth:`TaskGraph.critical_path` bound (0 without a graph).
    dependency_bound_s: float = 0.0
    #: Per-task slack seconds (0 = on a tight chain to the makespan).
    slack: dict[Any, float] = field(default_factory=dict)
    stragglers: list[Straggler] = field(default_factory=list)
    workers: list[WorkerLoad] = field(default_factory=list)

    @property
    def critpath_time(self) -> float:
        """Total blamed time; equals :attr:`makespan` by construction."""
        return math.fsum(seg.duration for seg in self.segments)

    @property
    def critpath_ratio(self) -> float:
        """Static dependency bound over makespan -- 1.0 means the run
        is dependency-limited, small values mean the schedule (workers,
        communication, queues) is what stretched the run."""
        return self.dependency_bound_s / self.makespan if self.makespan > 0 else 0.0

    @property
    def comm_share(self) -> float:
        """Fraction of critical-path time blamed on communication
        (span bodies, wire time and comm backlog)."""
        if self.makespan <= 0:
            return 0.0
        return sum(self.blame_seconds.get(b, 0.0) for b in COMM_BLAMES) / self.makespan

    def blame_shares(self) -> dict[str, float]:
        """Blame seconds as fractions of the makespan."""
        if self.makespan <= 0:
            return {}
        return {b: s / self.makespan for b, s in self.blame_seconds.items()}

    def top_segments(self, n: int = 3) -> list[PathSegment]:
        """The ``n`` longest critical-path segments."""
        return sorted(self.segments, key=lambda s: -s.duration)[:n]

    @property
    def imbalance(self) -> float:
        """Max over mean busy time across compute lanes (1.0 = even)."""
        if not self.workers:
            return 0.0
        busy = [w.busy for w in self.workers]
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 0.0

    def brief(self) -> str:
        """One line for progress output and CI logs."""
        shares = self.blame_shares()
        top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
        parts = "  ".join(f"{b} {s:.1%}" for b, s in top)
        return (
            f"critpath {self.critpath_time:.4g}s = makespan, "
            f"dependency bound {self.dependency_bound_s:.4g}s "
            f"(ratio {self.critpath_ratio:.2f}), comm share "
            f"{self.comm_share:.1%} [{parts}]"
        )

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"critical path: {self.critpath_time:.6g} s over "
            f"{len(self.segments)} segments (makespan {self.makespan:.6g} s)",
            f"  dependency bound: {self.dependency_bound_s:.6g} s "
            f"(critpath ratio {self.critpath_ratio:.3f})",
            f"  comm share of critical path: {self.comm_share:.1%}",
        ]
        shares = self.blame_shares()
        if shares:
            lines.append("  blame: " + "  ".join(
                f"{b} {shares[b]:.1%}"
                for b in sorted(shares, key=lambda b: -shares[b])
            ))
        top = self.top_segments(3)
        if top:
            lines.append("  top segments:")
            for seg in top:
                what = seg.kind or seg.blame
                lines.append(
                    f"    {seg.duration:.6g} s  {seg.blame:<10} {what:<10} "
                    f"node {seg.node} worker {seg.worker}"
                    + (f"  task {seg.task_id!r}" if seg.task_id is not None else "")
                )
        if self.stragglers:
            lines.append(f"  stragglers ({len(self.stragglers)}):")
            for s in self.stragglers[:5]:
                lines.append(
                    f"    {s.kind} task {s.task_id!r} on node {s.node} "
                    f"worker {s.worker}: {s.duration:.6g} s "
                    f"(median {s.median:.6g} s, score {s.score:.1f})"
                )
        if self.workers:
            lines.append(
                f"  worker imbalance: max/mean busy = {self.imbalance:.3f}"
            )
            flagged = [w for w in self.workers if abs(w.score) > STRAGGLER_THRESHOLD]
            for w in flagged[:5]:
                tag = "overloaded" if w.score > 0 else "underloaded"
                lines.append(
                    f"    node {w.node} worker {w.worker} {tag}: "
                    f"busy {w.busy:.6g} s ({w.share:.1%} of makespan, "
                    f"score {w.score:+.1f})"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# causal DAG construction
# ---------------------------------------------------------------------------


def _task_identity(span: Span) -> Any:
    """The task a span belongs to: its first-class ``task_id``, else the
    label (pre-``task_id`` traces used the task key as the label)."""
    if span.task_id is not None:
        return span.task_id
    label = span.label
    if isinstance(label, tuple) and len(label) in (2, 3) and span.kind in COMM_KINDS:
        return label[0]
    return label


def _comm_label(span: Span) -> tuple[Any, str | None]:
    """(producer, tag) of a comm span; tag ``None`` when unknown
    (blocking-mode sends only carry the producer key)."""
    label = span.label
    if isinstance(label, tuple) and len(label) in (2, 3):
        return label[0], label[1]
    return _task_identity(span), None


class _CausalDag:
    """Span-level causal DAG: indexes plus predecessor/successor lists.

    Edge types: ``dep`` (dataflow), ``post`` (producer to its send),
    ``wire`` (send to recv), ``adj`` (same-lane adjacency).
    """

    def __init__(self, trace: Trace, graph: Any = None) -> None:
        self.spans: list[Span] = list(trace.spans)
        self.preds: list[list[tuple[int, str]]] = [[] for _ in self.spans]
        self.succs: list[list[tuple[int, str]]] = [[] for _ in self.spans]
        self._index(graph)

    # -- indexing --------------------------------------------------------

    def _index(self, graph: Any) -> None:
        task_span: dict[Any, int] = {}
        send_exact: dict[tuple[Any, Any, int], int] = {}
        send_loose: dict[tuple[Any, Any], list[int]] = {}
        recv_spans: list[int] = []
        send_spans: list[int] = []
        lanes: dict[tuple[int, int], list[int]] = {}
        for i, span in enumerate(self.spans):
            lanes.setdefault((span.node, span.worker), []).append(i)
            if span.kind == "send":
                send_spans.append(i)
                producer, tag = _comm_label(span)
                label = span.label
                if isinstance(label, tuple) and len(label) == 3:
                    # (producer, tag, dst) -- keyed by destination so a
                    # recv can find *its* send even when one producer
                    # fans out to several peers.
                    send_exact[(producer, tag, label[2])] = i
                send_loose.setdefault((producer, tag), []).append(i)
            elif span.kind == "recv":
                recv_spans.append(i)
            elif span.worker >= 0:
                task_span[_task_identity(span)] = i

        def add_edge(u: int, v: int, etype: str) -> None:
            self.preds[v].append((u, etype))
            self.succs[u].append((v, etype))

        # Same-lane adjacency: a worker (or comm thread) is serial.
        for members in lanes.values():
            members.sort(key=lambda i: (self.spans[i].start, self.spans[i].end))
            for u, v in zip(members, members[1:]):
                add_edge(u, v, "adj")

        # send spans chain back to their producer's compute span.
        for i in send_spans:
            producer, _tag = _comm_label(self.spans[i])
            u = task_span.get(producer)
            if u is not None and u != i:
                add_edge(u, i, "post")

        # recv spans chain back to the matching send (or, failing
        # that, straight to the producer -- the threads backend has no
        # comm spans, old traces have no dst in the label).
        for i in recv_spans:
            span = self.spans[i]
            producer, tag = _comm_label(span)
            u = send_exact.get((producer, tag, span.node))
            if u is None:
                cands = send_loose.get((producer, tag)) or []
                cands = [c for c in cands if c != i]
                u = max(cands, key=lambda c: self.spans[c].end, default=None)
            if u is None:
                u = task_span.get(producer)
            if u is not None and u != i:
                add_edge(u, i, "wire")

        # Dataflow edges from the graph: producer (or its recv on the
        # consumer's node, when the flow crossed nodes) to consumer.
        if graph is not None:
            recv_exact: dict[tuple[Any, Any, int], int] = {}
            for i in recv_spans:
                span = self.spans[i]
                producer, tag = _comm_label(span)
                recv_exact[(producer, tag, span.node)] = i
            for task in graph:
                v = task_span.get(task.key)
                if v is None:
                    continue
                consumer_node = self.spans[v].node
                for flow in task.inputs:
                    u = recv_exact.get((flow.producer, flow.tag, consumer_node))
                    if u is None:
                        u = task_span.get(flow.producer)
                    if u is not None and u != v:
                        add_edge(u, v, "dep")

    # -- backward walk ---------------------------------------------------

    def walk_back(self) -> list[tuple[int, str]]:
        """The executed critical path as ``(span_index, gap_blame)``
        entries ordered latest-first; ``gap_blame`` classifies the wait
        between the entry's chosen predecessor and the entry itself
        (``startup`` for the path head)."""
        if not self.spans:
            return []
        v = max(range(len(self.spans)),
                key=lambda i: (self.spans[i].end, self.spans[i].start))
        entries: list[tuple[int, str]] = []
        visited = {v}
        while True:
            best = best_type = None
            for u, etype in self.preds[v]:
                if u in visited:
                    continue
                key = (self.spans[u].end, 0 if etype == "adj" else 1,
                       self.spans[u].start)
                if best is None or key > best_key:
                    best, best_type, best_key = u, etype, key
            if best is None:
                entries.append((v, "startup"))
                return entries
            entries.append((v, self._gap_blame(best_type, self.spans[v])))
            v = best
            visited.add(v)

    @staticmethod
    def _gap_blame(etype: str, waiting: Span) -> str:
        if etype == "wire":
            return "wire"
        if waiting.kind in COMM_KINDS:
            return "comm-queue"
        return "queue"

    # -- slack -----------------------------------------------------------

    def slacks(self, makespan: float) -> list[float]:
        """Per-span slack via a backward pass in topological order.
        Clamped at zero (wall-clock traces can carry small cross-process
        skew that would otherwise go negative)."""
        n = len(self.spans)
        indeg = [len(p) for p in self.preds]
        stack = [i for i in range(n) if indeg[i] == 0]
        topo: list[int] = []
        while stack:
            u = stack.pop()
            topo.append(u)
            for v, _etype in self.succs[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        slack = [0.0] * n
        done = [False] * n
        for v in reversed(topo):
            if self.succs[v]:
                slack[v] = max(0.0, min(
                    self.spans[s].start - self.spans[v].end + slack[s]
                    for s, _etype in self.succs[v]
                ))
            else:
                slack[v] = max(0.0, makespan - self.spans[v].end)
            done[v] = True
        for v in range(n):  # cycle fallback; unreachable on valid traces
            if not done[v]:
                slack[v] = max(0.0, makespan - self.spans[v].end)
        return slack


# ---------------------------------------------------------------------------
# outlier detection
# ---------------------------------------------------------------------------


def robust_scores(values: list[float]) -> tuple[list[float], float] | None:
    """Modified z-scores of ``values`` (MAD-scaled, mean-absolute-
    deviation fallback) and their median; ``None`` when the spread is
    exactly zero.  Shared by straggler detection here and the
    time-series anomaly signal (:meth:`TimeSeriesStore.mad_z`)."""
    med = median(values)
    abs_dev = [abs(v - med) for v in values]
    scale = _MAD_SCALE * median(abs_dev)
    if scale <= 0.0:
        scale = _MEANAD_SCALE * (sum(abs_dev) / len(abs_dev))
    if scale <= 0.0:
        return None
    return [(v - med) / scale for v in values], med


#: historical private alias (pre-dates the public export)
_robust_scores = robust_scores


def find_stragglers(
    trace: Trace, threshold: float = STRAGGLER_THRESHOLD
) -> list[Straggler]:
    """Compute spans whose duration is a robust outlier within their
    kind, sorted by score descending."""
    by_kind: dict[str, list[Span]] = {}
    for span in trace.compute_spans():
        if span.kind not in COMM_KINDS:
            by_kind.setdefault(span.kind, []).append(span)
    out: list[Straggler] = []
    for kind, spans in by_kind.items():
        scored = _robust_scores([s.duration for s in spans])
        if scored is None:
            continue
        scores, med = scored
        for span, score in zip(spans, scores):
            if score > threshold:
                out.append(Straggler(
                    task_id=_task_identity(span), kind=kind, node=span.node,
                    worker=span.worker, duration=span.duration, median=med,
                    score=score,
                ))
    out.sort(key=lambda s: -s.score)
    return out


def worker_loads(trace: Trace) -> list[WorkerLoad]:
    """Busy seconds per compute lane with robust deviation scores,
    sorted busiest-first."""
    busy: dict[tuple[int, int], float] = {}
    for span in trace.compute_spans():
        key = (span.node, span.worker)
        busy[key] = busy.get(key, 0.0) + span.duration
    if not busy:
        return []
    makespan = trace.makespan()
    keys = sorted(busy)
    values = [busy[k] for k in keys]
    scored = _robust_scores(values)
    scores = scored[0] if scored is not None else [0.0] * len(keys)
    loads = [
        WorkerLoad(node=node, worker=worker, busy=b,
                   share=b / makespan if makespan > 0 else 0.0, score=score)
        for (node, worker), b, score in zip(keys, values, scores)
    ]
    loads.sort(key=lambda w: -w.busy)
    return loads


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def critical_path(trace: Trace, graph: Any = None) -> CritPathReport:
    """Extract the executed critical path of ``trace``.

    ``graph`` (the :class:`~repro.runtime.graph.TaskGraph` the trace
    executed) adds dataflow edges and the static dependency bound; the
    analysis degrades gracefully without it (adjacency and comm edges
    only, bound 0).
    """
    makespan = trace.makespan()
    report = CritPathReport(makespan=makespan)
    if graph is not None and getattr(graph, "finalized", False):
        report.dependency_bound_s = graph.critical_path()
    if not trace.spans:
        return report

    dag = _CausalDag(trace, graph)
    entries = dag.walk_back()

    # Tile [0, makespan] exactly: one running boundary, clamped into
    # the horizon, so segments are contiguous *by construction* and
    # their durations telescope to the makespan.
    segments: list[PathSegment] = []
    boundary = 0.0
    for idx, gap_blame in reversed(entries):
        span = dag.spans[idx]
        task = _task_identity(span)
        gap_end = min(max(span.start, boundary), makespan)
        if gap_end > boundary:
            segments.append(PathSegment(
                start=boundary, end=gap_end, blame=gap_blame,
                node=span.node, worker=span.worker, task_id=task,
            ))
            boundary = gap_end
        body_end = min(max(span.end, boundary), makespan)
        if body_end > boundary:
            blame = "comm" if span.kind in COMM_KINDS else "compute"
            segments.append(PathSegment(
                start=boundary, end=body_end, blame=blame, kind=span.kind,
                node=span.node, worker=span.worker, task_id=task,
            ))
            boundary = body_end
    if boundary < makespan:  # defensive: the walk starts at the last span
        segments.append(PathSegment(start=boundary, end=makespan, blame="queue"))
    report.segments = segments

    blame_seconds: dict[str, float] = {}
    for seg in segments:
        blame_seconds[seg.blame] = blame_seconds.get(seg.blame, 0.0) + seg.duration
    report.blame_seconds = blame_seconds

    slacks = dag.slacks(makespan)
    report.slack = {
        _task_identity(span): slacks[i]
        for i, span in enumerate(dag.spans)
        if span.worker >= 0 and span.kind not in COMM_KINDS
    }
    report.stragglers = find_stragglers(trace)
    report.workers = worker_loads(trace)
    return report


def publish_critpath_metrics(registry: Any, report: CritPathReport) -> None:
    """Mirror a report into the metrics registry so the regression gate
    (:mod:`repro.obs.regress`) can track causal health across commits."""
    registry.gauge(
        "critpath_seconds", "executed critical-path time", "seconds"
    ).set(report.critpath_time)
    registry.gauge(
        "critpath_ratio", "static dependency bound over makespan", "ratio"
    ).set(report.critpath_ratio)
    registry.gauge(
        "critpath_comm_share",
        "communication share of critical-path time", "ratio",
    ).set(report.comm_share)
    blame = registry.gauge(
        "critpath_blame_seconds",
        "critical-path seconds per blame category", "seconds",
    )
    for category, seconds in report.blame_seconds.items():
        blame.set(seconds, blame=category)


__all__ = [
    "COMM_BLAMES",
    "CritPathReport",
    "PathSegment",
    "STRAGGLER_THRESHOLD",
    "Straggler",
    "WorkerLoad",
    "critical_path",
    "find_stragglers",
    "publish_critpath_metrics",
    "robust_scores",
    "worker_loads",
]
