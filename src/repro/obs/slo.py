"""Per-tenant SLO reporting over the lifecycle tracer's histograms.

The :class:`~repro.obs.lifecycle.LifecycleTracer` observes, for every
finished request, three per-tenant latency histograms
(``slo_queue_wait_seconds``, ``slo_exec_seconds``, ``slo_e2e_seconds``)
and a per-tenant/status counter (``slo_requests_total``).  This module
turns a :class:`~repro.obs.metrics.MetricsSnapshot` of those metrics
into

* :func:`slo_report` -- per-tenant p50/p95/p99 for queue wait,
  execution and end-to-end latency, plus the request mix and the
  **error-budget burn rate** against a target objective (burn 1.0 =
  consuming the budget exactly as fast as the objective allows;
  > 1.0 = on track to blow the SLO),
* :func:`format_slo_report` -- the terminal table behind
  ``repro slo``, and
* :func:`slo_gate_metrics` -- flat ``name -> value`` aggregates
  (tenant histograms merged) the regression gate folds into
  ``repro stats --check``.

Quantiles come from :func:`~repro.obs.metrics.bucket_quantile`
(linear interpolation inside fixed buckets, clamped to the observed
min/max), so the report needs only a snapshot -- no raw samples, no
live service.
"""

from __future__ import annotations

from typing import Mapping

from .lifecycle import ERROR_STATUSES
from .metrics import (
    MetricsSnapshot,
    merge_histogram_states,
    quantile_from_state,
)

#: histogram metric -> short column name used in reports
LATENCY_METRICS = (
    ("slo_queue_wait_seconds", "queue_wait"),
    ("slo_exec_seconds", "exec"),
    ("slo_e2e_seconds", "e2e"),
)

QUANTILES = (0.50, 0.95, 0.99)


def _values(snapshot, name: str) -> dict:
    data = snapshot.data if isinstance(snapshot, MetricsSnapshot) else snapshot
    entry = data.get(name)
    if not entry:
        return {}
    return entry.get("values", {})


def _label(labelset, key: str) -> str | None:
    for k, v in labelset:
        if k == key:
            return v
    return None


def slo_report(snapshot, objective: float = 0.99) -> dict:
    """Per-tenant SLO summary from a metrics snapshot.

    Returns ``{"objective", "tenants": {tenant: {...}}}`` where each
    tenant entry carries ``requests`` (total finished), ``statuses``
    (status -> count), ``errors``, ``error_rate``, ``burn`` (error
    rate over the objective's allowance) and, per latency metric,
    ``{metric: {"p50", "p95", "p99", "count", "mean"}}``.  Tenants
    appear sorted.  ``rejected`` requests count toward the mix but not
    toward the error budget: admission control refusing work is the
    service protecting itself, not failing the tenant.
    """
    if not 0.0 < objective < 1.0:
        raise ValueError(f"objective must be in (0, 1), got {objective}")
    tenants: dict[str, dict] = {}

    def entry(tenant: str) -> dict:
        return tenants.setdefault(tenant, {
            "requests": 0,
            "statuses": {},
            "errors": 0,
            "error_rate": 0.0,
            "burn": 0.0,
            "latency": {},
        })

    for ls, count in _values(snapshot, "slo_requests_total").items():
        tenant = _label(ls, "tenant") or "default"
        status = _label(ls, "status") or "ok"
        t = entry(tenant)
        t["requests"] += int(count)
        t["statuses"][status] = t["statuses"].get(status, 0) + int(count)
        if status in ERROR_STATUSES:
            t["errors"] += int(count)

    for metric, short in LATENCY_METRICS:
        for ls, state in _values(snapshot, metric).items():
            tenant = _label(ls, "tenant") or "default"
            lat = entry(tenant)["latency"]
            lat[short] = {
                f"p{int(q * 100)}": quantile_from_state(state, q)
                for q in QUANTILES
            }
            lat[short]["count"] = state["count"]
            lat[short]["mean"] = (
                state["sum"] / state["count"] if state["count"] else None
            )

    allowance = 1.0 - objective
    for t in tenants.values():
        if t["requests"]:
            t["error_rate"] = t["errors"] / t["requests"]
            t["burn"] = t["error_rate"] / allowance
    return {
        "objective": objective,
        "tenants": dict(sorted(tenants.items())),
    }


def _fmt_s(value) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def format_slo_report(report: Mapping, width: int = 100) -> str:
    """Terminal rendering of :func:`slo_report` (``repro slo``)."""
    objective = report["objective"]
    lines = [
        f"SLO report  (objective {objective:.2%}, "
        f"error budget {1 - objective:.2%})",
    ]
    tenants = report["tenants"]
    if not tenants:
        lines.append("  no finished requests recorded")
        return "\n".join(lines)
    header = (
        f"  {'tenant':<12} {'metric':<10} "
        + " ".join(f"{'p' + str(int(q * 100)):>9}" for q in QUANTILES)
        + f" {'count':>7}"
    )
    for tenant, t in tenants.items():
        lines.append("")
        mix = ", ".join(
            f"{status}={count}"
            for status, count in sorted(t["statuses"].items())
        )
        lines.append(
            f"  {tenant}: {t['requests']} requests ({mix})  "
            f"error rate {t['error_rate']:.2%}  "
            f"burn {t['burn']:.2f}x"
        )
        lines.append(header[:width])
        for _, short in LATENCY_METRICS:
            lat = t["latency"].get(short)
            if lat is None:
                continue
            row = (
                f"  {tenant:<12} {short:<10} "
                + " ".join(
                    f"{_fmt_s(lat['p' + str(int(q * 100))]):>9}"
                    for q in QUANTILES
                )
                + f" {lat['count']:>7}"
            )
            lines.append(row[:width])
    return "\n".join(lines)


def slo_gate_metrics(snapshot) -> dict[str, float]:
    """Flat aggregate SLO gauges for the regression gate: tenant
    histograms merged, p95 taken over the merged state, plus the
    service-wide error-budget burn at a 99% objective.  Absent
    metrics produce no keys (the gate treats them as missing, not
    zero)."""
    out: dict[str, float] = {}
    for metric, short in LATENCY_METRICS:
        merged = merge_histogram_states(
            _values(snapshot, metric).values()
        )
        if merged is None or not merged["count"]:
            continue
        p95 = quantile_from_state(merged, 0.95)
        if p95 is not None:
            out[f"slo_{short}_p95_seconds"] = p95
    requests = errors = 0
    for ls, count in _values(snapshot, "slo_requests_total").items():
        requests += int(count)
        if (_label(ls, "status") or "ok") in ERROR_STATUSES:
            errors += int(count)
    if requests:
        # "budget" is a skip-hint in the gate, so the key says "burn".
        out["slo_error_burn"] = (errors / requests) / 0.01
    return out


__all__ = [
    "LATENCY_METRICS",
    "QUANTILES",
    "format_slo_report",
    "slo_gate_metrics",
    "slo_report",
]
