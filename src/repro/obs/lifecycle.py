"""Request-scoped lifecycle tracing, SLO accounting and the flight
recorder of the solver service.

Execution-level tracing (:mod:`repro.runtime.trace`) stops at task
kernels; a request's life through the serve layer -- admission, queue
wait, batch fusion, dispatch, rewrite passes, execution, retries,
checkpoint recovery, response -- was invisible except as aggregate
counters.  This module closes that gap with three cooperating pieces:

* **Lifecycle spans.**  Every admitted :class:`SolveRequest` gets a
  deterministic ``trace_id`` (:func:`request_trace_id`); the service
  layers emit typed :class:`LifeSpan` records (``admit``,
  ``cache_probe``, ``queued``, ``batch_fuse``, ``dispatch``,
  ``ir_passes``, ``execute``, ``retry``, ``recover``, ``respond``)
  into a :class:`LifecycleTracer`.  Workers -- including forked
  ``ProcessWorker`` children -- collect spans into a plain
  :class:`SpanLog` that ships back over the existing result pipes and
  is folded in with :meth:`LifecycleTracer.adopt` (``time.monotonic``
  is ``CLOCK_MONOTONIC`` on Linux, shared across fork, so child
  timestamps land on the parent's timeline unadjusted).

* **SLO accounting.**  :meth:`LifecycleTracer.finish` folds each
  completed request into per-tenant latency histograms
  (``slo_queue_wait_seconds`` / ``slo_exec_seconds`` /
  ``slo_e2e_seconds``) and a per-tenant/status request counter, the
  raw material of :mod:`repro.obs.slo` and the ``repro slo`` report.

* **Flight recorder.**  A bounded ring of lifecycle events, always
  on; :meth:`FlightRecorder.dump` writes it atomically to disk when
  the service hits ``WorkerDied`` / ``NodeLostError`` / ``PassError``
  or exhausts a retry budget, and ``repro postmortem`` renders the
  dump (:func:`format_postmortem`) as a terminal timeline with blame.

The export helpers place lifecycle spans and execution-level task
spans on one timeline: :func:`combined_otel` threads the request's
``trace_id`` through :func:`repro.obs.export.to_otel` and parents the
task spans under the request's ``execute`` span;
:func:`combined_events` does the same for the Chrome viewer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from .metrics import MetricRegistry

#: The span taxonomy, in the order a request normally traverses it.
LIFECYCLE_KINDS = (
    "admit", "cache_probe", "queued", "batch_fuse", "dispatch",
    "ir_passes", "execute", "retry", "recover", "respond",
)

#: Statuses that consume SLO error budget (``rejected`` does not:
#: admission control refusing overload is the service working).
ERROR_STATUSES = ("error", "expired", "skipped")

#: Synthetic Chrome-trace process id of the service-lifecycle lanes
#: (node pids are small integers; critpath uses tid 9998).
SERVICE_PID = 9990

#: Document kind of a flight-recorder dump.
POSTMORTEM_KIND = "repro-postmortem"


def _hash(payload: str, nbytes: int) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[: 2 * nbytes]


def request_trace_id(signature: str, seq: int) -> str:
    """Deterministic 16-byte trace id of one admitted request: the
    solve signature plus the service-local admission ordinal, so a
    replayed workload reproduces its trace ids exactly."""
    return _hash(f"{signature}:{seq}", 16)


def root_span_id(trace_id: str) -> str:
    """Span id of the implicit ``request`` root span of a trace."""
    return _hash(f"{trace_id}:request", 8)


def span_id_for(trace_id: str, origin: str, name: str, index: int) -> str:
    """Deterministic 8-byte span id: the trace, the recording
    component (service loop vs a named worker -- disjoint counters
    cannot collide), the span kind, and that component's per-trace
    ordinal."""
    return _hash(f"{trace_id}:{origin}:{name}:{index}", 8)


@dataclass
class LifeSpan:
    """One lifecycle span.  Plain data -- pickles across the pool's
    pipes and serialises into flight-recorder dumps unchanged."""

    trace_id: str
    span_id: str
    parent_span_id: str | None
    name: str
    start: float
    end: float
    status: str = "ok"
    tenant: str = "default"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_doc(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "tenant": self.tenant,
            "attrs": {
                k: v for k, v in self.attrs.items()
                if isinstance(v, (bool, int, float, str)) or v is None
            },
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "LifeSpan":
        return cls(
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_span_id=doc.get("parent_span_id"),
            name=str(doc["name"]),
            start=float(doc["start"]),
            end=float(doc["end"]),
            status=str(doc.get("status", "ok")),
            tenant=str(doc.get("tenant", "default")),
            attrs=dict(doc.get("attrs", {})),
        )


class SpanLog:
    """Lock-free span collector for one pool worker.

    Workers (the forked ones especially) cannot share the service's
    tracer; they record into a log whose spans ride the existing
    result pipes home, where :meth:`LifecycleTracer.adopt` files them
    under their traces.  ``origin`` namespaces the span ids so a
    worker's counters never collide with the service loop's."""

    def __init__(self, origin: str = "worker") -> None:
        self.origin = origin
        self.spans: list[LifeSpan] = []
        self._n: dict[str, int] = {}

    def allocate(self, trace_id: str, name: str) -> str:
        """Reserve the next span id of ``trace_id`` without recording
        yet -- lets a parent hand its id to children it is about to
        run (``execute`` parents ``ir_passes`` / ``recover``)."""
        index = self._n.get(trace_id, 0)
        self._n[trace_id] = index + 1
        return span_id_for(trace_id, self.origin, name, index)

    def span(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        status: str = "ok",
        tenant: str = "default",
        parent_span_id: str | None = None,
        span_id: str | None = None,
        **attrs: Any,
    ) -> LifeSpan:
        if span_id is None:
            span_id = self.allocate(trace_id, name)
        sp = LifeSpan(
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=(
                parent_span_id if parent_span_id is not None
                else root_span_id(trace_id)
            ),
            name=name,
            start=float(start),
            end=float(end),
            status=status,
            tenant=tenant,
            attrs=dict(attrs),
        )
        self.spans.append(sp)
        return sp


class FlightRecorder:
    """Bounded in-memory ring of lifecycle events, dumped on demand.

    Always on: recording is one deque append under a lock (well under
    the <3% overhead budget the metrics registry set).  On a fatal
    serving error the service calls :meth:`dump`, which snapshots the
    ring and writes it atomically (temp file + ``os.replace``, the
    result cache's idiom) so a post-mortem never reads a torn file.
    """

    SCHEMA = 1

    def __init__(
        self, capacity: int = 4096, max_dumps: int | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_dumps is not None and max_dumps < 1:
            raise ValueError(f"max_dumps must be positive, got {max_dumps}")
        self.capacity = capacity
        #: retention cap: after each dump, only the newest
        #: ``max_dumps`` ``postmortem-*.json`` files survive in the
        #: dump directory (None = keep everything, the historical
        #: behaviour).  Alert-triggered dumps during long chaos runs
        #: would otherwise grow the directory without bound.
        self.max_dumps = max_dumps
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._dumped = 0

    def record_span(self, span: LifeSpan) -> None:
        with self._lock:
            self._ring.append({"event": "span", **span.to_doc()})

    def note(self, kind: str, **fields: Any) -> None:
        """A point event (retry decisions, dump triggers, ...)."""
        with self._lock:
            self._ring.append({
                "event": kind, "t": time.monotonic(), **fields,
            })

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(
        self,
        directory: str | Path,
        reason: str,
        error: str | None = None,
        trace_ids: Iterable[str] = (),
        extra: Mapping[str, Any] | None = None,
    ) -> Path:
        """Write the ring to ``directory`` atomically; returns the
        dump path (``postmortem-<reason>-<n>.json``)."""
        with self._lock:
            events = list(self._ring)
            self._dumped += 1
            ordinal = self._dumped
        doc = {
            "kind": POSTMORTEM_KIND,
            "schema": self.SCHEMA,
            "reason": reason,
            "error": error,
            "trace_ids": list(trace_ids),
            "monotonic": time.monotonic(),
            "events": events,
        }
        if extra:
            doc.update(extra)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"postmortem-{reason}-{ordinal:03d}.json"
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".pm-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._prune_dumps(directory)
        return path

    def _prune_dumps(self, directory: Path) -> None:
        """Drop the oldest ``postmortem-*.json`` beyond the retention
        cap (oldest by mtime, name as the same-second tiebreak)."""
        if self.max_dumps is None:
            return

        def age(p: Path) -> tuple[float, str]:
            try:
                return (p.stat().st_mtime, p.name)
            except OSError:  # raced with another pruner
                return (0.0, p.name)

        dumps = sorted(directory.glob("postmortem-*.json"), key=age)
        for victim in dumps[:-self.max_dumps]:
            try:
                victim.unlink()
            except OSError:  # already gone, or unwritable: not fatal
                pass


def load_postmortem(path: str | Path) -> dict:
    """Load and validate one flight-recorder dump."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("kind") != POSTMORTEM_KIND:
        raise ValueError(
            f"{path}: not a flight-recorder dump (expected kind="
            f"{POSTMORTEM_KIND!r})"
        )
    return doc


class LifecycleTracer:
    """Per-request span store plus the SLO fold-in.

    ``begin`` opens a trace at admission; the serve layers record
    spans against it (and workers' :class:`SpanLog` batches are
    ``adopt``-ed); ``finish`` closes it -- emitting the ``respond``
    marker and the root ``request`` span, then observing queue-wait /
    execution / end-to-end latency into per-tenant histograms and the
    per-status request counter.  Completed traces are retained up to
    ``max_traces`` (oldest evicted) for the timeline exports.
    """

    def __init__(
        self,
        metrics: MetricRegistry | None = None,
        recorder: FlightRecorder | None = None,
        max_traces: int = 512,
    ) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be positive, got {max_traces}")
        self.recorder = recorder
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._metrics = metrics
        if metrics is not None:
            self._h_queue = metrics.histogram(
                "slo_queue_wait_seconds",
                "per-tenant queue wait before dispatch", "seconds",
            )
            self._h_exec = metrics.histogram(
                "slo_exec_seconds",
                "per-tenant wall time executing the solve", "seconds",
            )
            self._h_e2e = metrics.histogram(
                "slo_e2e_seconds",
                "per-tenant end-to-end latency, admit to respond", "seconds",
            )
            self._c_requests = metrics.counter(
                "slo_requests_total",
                "finished requests, by tenant and terminal status",
            )

    # -- trace lifecycle -------------------------------------------------

    def begin(
        self,
        signature: str,
        seq: int,
        tenant: str = "default",
        t_admit: float | None = None,
    ) -> str:
        trace_id = request_trace_id(signature, seq)
        with self._lock:
            self._traces[trace_id] = {
                "tenant": tenant,
                "signature": signature,
                "t_admit": time.monotonic() if t_admit is None else t_admit,
                "spans": [],
                "n": 0,
                "done": False,
                "status": None,
            }
            self._evict_locked()
        return trace_id

    def _entry_locked(self, trace_id: str, tenant: str = "default") -> dict:
        entry = self._traces.get(trace_id)
        if entry is None:
            entry = {
                "tenant": tenant, "signature": "", "t_admit": None,
                "spans": [], "n": 0, "done": False, "status": None,
            }
            self._traces[trace_id] = entry
        return entry

    def _evict_locked(self) -> None:
        while len(self._traces) > self.max_traces:
            for tid, entry in self._traces.items():
                if entry["done"]:
                    del self._traces[tid]
                    break
            else:
                # Everything in flight: evict the oldest regardless,
                # the bound is the contract.
                self._traces.popitem(last=False)

    def span(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        status: str = "ok",
        parent_span_id: str | None = None,
        **attrs: Any,
    ) -> LifeSpan:
        with self._lock:
            entry = self._entry_locked(trace_id)
            index = entry["n"]
            entry["n"] += 1
            sp = LifeSpan(
                trace_id=trace_id,
                span_id=span_id_for(trace_id, "svc", name, index),
                parent_span_id=(
                    parent_span_id if parent_span_id is not None
                    else root_span_id(trace_id)
                ),
                name=name,
                start=float(start),
                end=float(end),
                status=status,
                tenant=entry["tenant"],
                attrs=dict(attrs),
            )
            entry["spans"].append(sp)
        if self.recorder is not None:
            self.recorder.record_span(sp)
        return sp

    def adopt(self, spans: Iterable[LifeSpan]) -> None:
        """File worker-recorded spans under their traces."""
        for sp in spans:
            with self._lock:
                entry = self._entry_locked(sp.trace_id, tenant=sp.tenant)
                entry["spans"].append(sp)
            if self.recorder is not None:
                self.recorder.record_span(sp)

    def finish(
        self,
        trace_id: str | None,
        status: str,
        now: float | None = None,
    ) -> dict | None:
        """Close a trace: emit ``respond`` plus the root ``request``
        span and fold the request into the SLO metrics.  Idempotent;
        returns the latency summary (or None for unknown/finished
        traces)."""
        if trace_id is None:
            return None
        now = time.monotonic() if now is None else now
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None or entry["done"]:
                return None
            entry["done"] = True
            entry["status"] = status
            tenant = entry["tenant"]
            t_admit = entry["t_admit"]
            if t_admit is None:
                t_admit = min(
                    (s.start for s in entry["spans"]), default=now
                )
            span_status = "error" if status in ERROR_STATUSES else "ok"
            respond = LifeSpan(
                trace_id=trace_id,
                span_id=span_id_for(trace_id, "svc", "respond", entry["n"]),
                parent_span_id=root_span_id(trace_id),
                name="respond",
                start=now,
                end=now,
                status=span_status,
                tenant=tenant,
                attrs={"outcome": status},
            )
            entry["n"] += 1
            root = LifeSpan(
                trace_id=trace_id,
                span_id=root_span_id(trace_id),
                parent_span_id=None,
                name="request",
                start=t_admit,
                end=now,
                status=span_status,
                tenant=tenant,
                attrs={"outcome": status,
                       "signature": entry["signature"][:16]},
            )
            entry["spans"].extend((respond, root))
            queue_wait = sum(
                s.duration for s in entry["spans"] if s.name == "queued"
            )
            exec_s = sum(
                s.duration for s in entry["spans"] if s.name == "execute"
            )
            e2e = max(0.0, now - t_admit)
            if self._metrics is not None:
                self._h_queue.observe(queue_wait, tenant=tenant)
                self._h_exec.observe(exec_s, tenant=tenant)
                self._h_e2e.observe(e2e, tenant=tenant)
                self._c_requests.inc(tenant=tenant, status=status)
        if self.recorder is not None:
            self.recorder.record_span(respond)
            self.recorder.record_span(root)
        return {
            "tenant": tenant, "status": status,
            "queue_wait_s": queue_wait, "exec_s": exec_s, "e2e_s": e2e,
        }

    # -- introspection ---------------------------------------------------

    def tenant_of(self, trace_id: str) -> str:
        with self._lock:
            entry = self._traces.get(trace_id)
            return entry["tenant"] if entry else "default"

    def spans_of(self, trace_id: str) -> list[LifeSpan]:
        with self._lock:
            entry = self._traces.get(trace_id)
            return list(entry["spans"]) if entry else []

    def all_spans(self) -> list[LifeSpan]:
        with self._lock:
            return [
                sp for entry in self._traces.values()
                for sp in entry["spans"]
            ]

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ---------------------------------------------------------------------------
# combined timeline exports (lifecycle + execution-level Trace)
# ---------------------------------------------------------------------------


def _execute_span(spans: Iterable[LifeSpan], trace_id: str) -> LifeSpan | None:
    """The (latest) ``execute`` span of one trace -- the parent the
    execution-level task spans hang under."""
    found = None
    for sp in spans:
        if sp.trace_id == trace_id and sp.name == "execute":
            if found is None or sp.start >= found.start:
                found = sp
    return found


def _time_origin(spans: list[LifeSpan], time_origin: float | None) -> float:
    if time_origin is not None:
        return time_origin
    return min((s.start for s in spans), default=0.0)


def lifecycle_events(
    spans: Iterable[LifeSpan],
    time_origin: float | None = None,
) -> list[dict[str, Any]]:
    """Chrome trace events of the lifecycle spans: one synthetic
    process (:data:`SERVICE_PID`), one lane per trace, timestamps
    relative to the earliest span (or ``time_origin``)."""
    spans = sorted(spans, key=lambda s: (s.start, s.end))
    if not spans:
        return []
    origin = _time_origin(spans, time_origin)
    events: list[dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": SERVICE_PID,
        "args": {"name": "serve lifecycle"},
    }]
    lanes: dict[str, int] = {}
    for sp in spans:
        lane = lanes.get(sp.trace_id)
        if lane is None:
            lane = len(lanes) + 1
            lanes[sp.trace_id] = lane
            events.append({
                "ph": "M", "name": "thread_name", "pid": SERVICE_PID,
                "tid": lane,
                "args": {"name": f"{sp.tenant} {sp.trace_id[:8]}"},
            })
        args: dict[str, Any] = {
            "trace_id": sp.trace_id,
            "span_id": sp.span_id,
            "status": sp.status,
        }
        if sp.parent_span_id:
            args["parent_span_id"] = sp.parent_span_id
        for key, value in sp.attrs.items():
            if isinstance(value, (bool, int, float, str)) or value is None:
                args[key] = value
        events.append({
            "ph": "X",
            "name": sp.name,
            "cat": "lifecycle",
            "pid": SERVICE_PID,
            "tid": lane,
            "ts": (sp.start - origin) * 1e6,
            "dur": sp.duration * 1e6,
            "args": args,
        })
    return events


def combined_events(
    spans: Iterable[LifeSpan],
    exec_traces: Mapping[str, Any] | None = None,
    time_origin: float | None = None,
) -> list[dict[str, Any]]:
    """One Chrome timeline: lifecycle lanes plus each request's
    execution-level task spans (``exec_traces`` maps trace_id ->
    :class:`~repro.runtime.trace.Trace`), the latter shifted to start
    at the request's ``execute`` span so queue wait and task kernels
    share one clock."""
    from .export import to_events

    spans = sorted(spans, key=lambda s: (s.start, s.end))
    events = lifecycle_events(spans, time_origin=time_origin)
    if not spans or not exec_traces:
        return events
    origin = _time_origin(spans, time_origin)
    for trace_id, trace in exec_traces.items():
        anchor = _execute_span(spans, trace_id)
        if anchor is None or trace is None:
            continue
        shift = (anchor.start - origin) * 1e6
        for ev in to_events(trace):
            ev = dict(ev)
            if "ts" in ev:
                ev["ts"] = ev["ts"] + shift
            args = dict(ev.get("args") or {})
            args["trace_id"] = trace_id
            ev["args"] = args
            events.append(ev)
    return events


def lifecycle_otel(
    spans: Iterable[LifeSpan],
    service_name: str = "repro-serve",
    epoch_unix_nanos: int = 0,
    time_origin: float | None = None,
) -> dict[str, Any]:
    """The lifecycle spans as an OTLP/JSON trace document.  Span and
    trace ids are the deterministic ids recorded on the spans, so
    re-exports (and the Chrome export's ``args``) correlate exactly."""
    spans = sorted(spans, key=lambda s: (s.trace_id, s.start, s.end))
    origin = _time_origin(spans, time_origin)
    out = []
    for sp in spans:
        attributes = [
            {"key": "tenant", "value": {"stringValue": sp.tenant}},
            {"key": "status", "value": {"stringValue": sp.status}},
        ]
        for key, value in sorted(sp.attrs.items()):
            if isinstance(value, bool):
                attributes.append(
                    {"key": key, "value": {"boolValue": value}}
                )
            elif isinstance(value, int):
                attributes.append(
                    {"key": key, "value": {"intValue": str(value)}}
                )
            elif isinstance(value, float):
                attributes.append(
                    {"key": key, "value": {"doubleValue": value}}
                )
            elif isinstance(value, str):
                attributes.append(
                    {"key": key, "value": {"stringValue": value}}
                )
        status: dict[str, Any] = {}
        if sp.status != "ok":
            status = {"code": 2, "message": str(sp.attrs.get("error", sp.status))}
        span_doc = {
            "traceId": sp.trace_id,
            "spanId": sp.span_id,
            "name": sp.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(
                epoch_unix_nanos + int((sp.start - origin) * 1e9)
            ),
            "endTimeUnixNano": str(
                epoch_unix_nanos + int((sp.end - origin) * 1e9)
            ),
            "attributes": attributes,
            "status": status,
        }
        if sp.parent_span_id:
            span_doc["parentSpanId"] = sp.parent_span_id
        out.append(span_doc)
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": service_name},
                }],
            },
            "scopeSpans": [{
                "scope": {"name": "repro.obs.lifecycle", "version": "1"},
                "spans": out,
            }],
        }],
    }


def combined_otel(
    spans: Iterable[LifeSpan],
    exec_traces: Mapping[str, Any] | None = None,
    service_name: str = "repro-serve",
    epoch_unix_nanos: int = 0,
    time_origin: float | None = None,
) -> dict[str, Any]:
    """One OTel document: the lifecycle spans plus, per request with a
    captured execution :class:`Trace`, the task-level spans exported
    under the *same* ``trace_id`` with their ``parentSpanId`` set to
    the request's ``execute`` span -- the acceptance shape: queue wait
    and task kernels in one trace tree."""
    from .export import to_otel

    spans = sorted(spans, key=lambda s: (s.trace_id, s.start, s.end))
    origin = _time_origin(spans, time_origin)
    doc = lifecycle_otel(
        spans, service_name=service_name,
        epoch_unix_nanos=epoch_unix_nanos, time_origin=origin,
    )
    for trace_id, trace in (exec_traces or {}).items():
        anchor = _execute_span(spans, trace_id)
        if anchor is None or trace is None:
            continue
        child = to_otel(
            trace,
            service_name=service_name,
            epoch_unix_nanos=(
                epoch_unix_nanos + int((anchor.start - origin) * 1e9)
            ),
            trace_id=trace_id,
            parent_span_id=anchor.span_id,
        )
        doc["resourceSpans"].extend(child["resourceSpans"])
    return doc


def write_timeline(
    spans: Iterable[LifeSpan],
    exec_traces: Mapping[str, Any] | None = None,
    chrome_path: str | Path | None = None,
    otel_path: str | Path | None = None,
    service_name: str = "repro-serve",
) -> dict[str, str]:
    """Write the combined timeline in the requested formats; returns
    ``{format: path}`` for what was written."""
    spans = list(spans)
    written: dict[str, str] = {}
    if chrome_path is not None:
        with open(chrome_path, "w") as fh:
            json.dump({
                "traceEvents": combined_events(spans, exec_traces),
                "displayTimeUnit": "ms",
            }, fh)
        written["chrome"] = str(chrome_path)
    if otel_path is not None:
        with open(otel_path, "w") as fh:
            json.dump(combined_otel(
                spans, exec_traces, service_name=service_name,
            ), fh)
        written["otel"] = str(otel_path)
    return written


# ---------------------------------------------------------------------------
# post-mortem rendering
# ---------------------------------------------------------------------------


def _span_events(doc: Mapping[str, Any]) -> list[dict]:
    return [e for e in doc.get("events", []) if e.get("event") == "span"]


def format_postmortem(doc: Mapping[str, Any], width: int = 100) -> str:
    """Render one flight-recorder dump as a terminal timeline.

    Shows the dump header, then -- for each trace the failure
    implicated -- the request's span chain in chronological order
    with relative timestamps, and a blame line naming the span where
    the request died (the error span, or the longest span when the
    failure carried no span-level error)."""
    lines = [f"postmortem: reason={doc.get('reason', '?')}"]
    if doc.get("error"):
        lines.append(f"  error: {doc['error']}")
    spans = _span_events(doc)
    by_trace: dict[str, list[dict]] = {}
    for ev in spans:
        by_trace.setdefault(ev["trace_id"], []).append(ev)
    lines.append(
        f"  captured {len(doc.get('events', []))} events across "
        f"{len(by_trace)} trace(s)"
    )
    failing = [t for t in doc.get("trace_ids", []) if t in by_trace]
    if not failing:
        # No explicit culprits: every trace carrying an error span.
        failing = [
            tid for tid, evs in by_trace.items()
            if any(e.get("status") == "error" for e in evs)
        ]
    for tid in failing:
        evs = sorted(by_trace[tid], key=lambda e: (e["start"], e["end"]))
        tenant = evs[0].get("tenant", "default")
        t0 = min(e["start"] for e in evs)
        lines.append("")
        lines.append(f"trace {tid[:16]} (tenant={tenant}) -- failing span chain:")
        for ev in evs:
            dur = max(0.0, ev["end"] - ev["start"])
            attrs = ev.get("attrs") or {}
            detail = "  ".join(
                f"{k}={v}" for k, v in sorted(attrs.items())
                if k not in ("signature",)
            )
            row = (
                f"  +{ev['start'] - t0:9.3f}s  {dur:9.3f}s  "
                f"{ev['name']:<11} {ev.get('status', 'ok'):<7} {detail}"
            )
            lines.append(row.rstrip()[:width])
        blamed = None
        for ev in evs:
            # request/respond are envelope spans that merely echo the
            # terminal status; blame the span where the work died.
            if ev.get("status") == "error" and (
                ev["name"] not in ("request", "respond")
            ):
                blamed = ev  # keep the last error span
        if blamed is None:
            blamed = max(evs, key=lambda e: e["end"] - e["start"])
        reason = (blamed.get("attrs") or {}).get("error")
        tail = f" -- {reason}" if reason else ""
        lines.append(
            f"  blame: {blamed['name']} "
            f"({max(0.0, blamed['end'] - blamed['start']):.3f} s, "
            f"status={blamed.get('status', 'ok')}){tail}"
        )
    if not failing:
        lines.append("  (no failing trace captured in the ring)")
    return "\n".join(lines)


__all__ = [
    "ERROR_STATUSES",
    "FlightRecorder",
    "LIFECYCLE_KINDS",
    "LifeSpan",
    "LifecycleTracer",
    "POSTMORTEM_KIND",
    "SERVICE_PID",
    "SpanLog",
    "combined_events",
    "combined_otel",
    "format_postmortem",
    "lifecycle_events",
    "lifecycle_otel",
    "load_postmortem",
    "request_trace_id",
    "root_span_id",
    "span_id_for",
    "write_timeline",
]
