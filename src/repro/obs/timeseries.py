"""Bounded metric time-series: retained history + derived signals.

Every observability surface before this module was a point-in-time
snapshot (``RunMonitor.sample()``, ``repro stats``) or a post-hoc
report (``repro slo``).  :class:`TimeSeriesStore` keeps the missing
operational half: a bounded ring of samples **per series** (one series
= one metric name + one label set), fed by a
:class:`TelemetrySampler` thread that snapshots the live
:class:`~repro.obs.metrics.MetricRegistry` at a configurable interval.

Derived-signal queries turn the retained cumulative states into the
operational quantities alerting needs:

* :meth:`TimeSeriesStore.rate` / :meth:`TimeSeriesStore.increase` --
  counter deltas over a trailing window (a counter born inside the
  window counts from zero, matching its cumulative semantics);
* :meth:`TimeSeriesStore.ewma` -- irregular-interval exponential
  moving average of a gauge;
* :meth:`TimeSeriesStore.window_quantile` -- quantiles of *only the
  observations that landed in the window*, computed by subtracting
  cumulative histogram states and merging the per-cell deltas through
  :func:`~repro.obs.metrics.merge_histogram_states`;
* :meth:`TimeSeriesStore.mad_z` -- the modified z-score of the latest
  point against the series' history, reusing the MAD machinery
  straggler detection already trusts
  (:func:`repro.obs.critpath.robust_scores`).

Clock discipline: every internal timestamp is ``time.monotonic()``
(wall-clock deltas break under clock adjustment); wall timestamps are
carried *only* as annotations on exported points.  The JSONL
export/import (:meth:`TimeSeriesStore.to_jsonl` /
:meth:`TimeSeriesStore.from_jsonl` / :func:`read_series_jsonl`) makes
a recorded run replayable: the alert engine evaluated against the
same file produces byte-identical transition logs.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Mapping

from .critpath import robust_scores
from .metrics import (
    LabelSet,
    MetricRegistry,
    MetricsSnapshot,
    _labelset,
    merge_histogram_states,
    quantile_from_state,
)

__all__ = [
    "SERIES_KIND",
    "TelemetrySampler",
    "TimeSeriesStore",
    "read_series_jsonl",
]

#: discriminator in the JSONL header line, so ``repro alerts --series``
#: can reject files that are not series exports
SERIES_KIND = "repro-timeseries"


def _label_str(ls: LabelSet) -> str:
    return ",".join(f"{k}={v}" for k, v in ls)


def _parse_label_str(label_str: str) -> LabelSet:
    if not label_str:
        return ()
    return tuple(
        tuple(part.split("=", 1))  # type: ignore[return-value]
        for part in label_str.split(",")
    )


def _subtract_hist(last: Mapping, base: Mapping) -> dict:
    """In-window histogram state: cumulative ``last`` minus cumulative
    ``base``.  The observed min/max stay ``last``'s -- a conservative
    clamp (the window's true extrema lie within the lifetime's)."""
    if list(last["bounds"]) != list(base["bounds"]):
        raise ValueError("histogram bucket mismatch across samples")
    return {
        "bounds": list(last["bounds"]),
        "buckets": [a - b for a, b in zip(last["buckets"], base["buckets"])],
        "count": last["count"] - base["count"],
        "sum": last["sum"] - base["sum"],
        "min": last.get("min"),
        "max": last.get("max"),
    }


class TimeSeriesStore:
    """Bounded in-memory metric history with derived-signal queries.

    One ring (``deque(maxlen=capacity)``) per series keyed by
    ``(metric name, label set)``; a parallel ring of sample times.
    Ingest is one lock acquisition per sample -- the sampler thread is
    the only steady-state writer, readers (``repro top``, the alert
    engine) take the same lock briefly.  Values stored per point:

    * counter -- the cumulative number,
    * gauge -- the current level (the high-water mark is derivable
      as ``max`` over retained points),
    * histogram -- the cumulative state dict the snapshot emitted.
    """

    SCHEMA = 1

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError(
                f"capacity must be at least 2 (deltas need two points), "
                f"got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.RLock()
        #: (monotonic, wall) per retained sample
        self._times: deque[tuple[float, float]] = deque(maxlen=capacity)
        self._series: dict[str, dict[LabelSet, deque]] = {}
        self._meta: dict[str, dict] = {}
        #: first-ever sample time per series (cumulative metrics born
        #: inside a query window count from zero)
        self._born: dict[tuple[str, LabelSet], float] = {}
        self._ingested = 0

    # -- ingest ------------------------------------------------------

    def observe(
        self,
        snapshot: MetricsSnapshot,
        live: Mapping[str, float] | None = None,
        t: float | None = None,
        wall: float | None = None,
    ) -> float:
        """Record one registry snapshot (plus, optionally, a backend
        ``progress()`` dict recorded as ``live_<key>`` gauges); returns
        the sample's monotonic time."""
        data = dict(snapshot.data)
        if live:
            for key, value in live.items():
                if not isinstance(value, (int, float)):
                    continue
                data[f"live_{key}"] = {
                    "kind": "gauge",
                    "help": "sampled progress()",
                    "unit": "",
                    "values": {(): {"value": float(value),
                                    "max": float(value)}},
                }
        return self.ingest(data, t=t, wall=wall)

    def ingest(
        self,
        data: Mapping[str, Mapping],
        t: float | None = None,
        wall: float | None = None,
    ) -> float:
        """Record one sample from raw snapshot ``data`` (the
        :attr:`MetricsSnapshot.data` shape).  Sample times must
        strictly increase -- the store's clock is the ground truth the
        alert engine evaluates against."""
        with self._lock:
            if t is None:
                t = time.monotonic()
            if wall is None:
                wall = time.time()
            if self._times and t <= self._times[-1][0]:
                raise ValueError(
                    f"sample time must increase (got {t}, last "
                    f"{self._times[-1][0]})"
                )
            self._times.append((float(t), float(wall)))
            self._ingested += 1
            for name, entry in data.items():
                kind = entry.get("kind", "untyped")
                if name not in self._meta:
                    self._meta[name] = {
                        "kind": kind,
                        "help": entry.get("help", ""),
                        "unit": entry.get("unit", ""),
                    }
                cells = self._series.setdefault(name, {})
                for ls, state in entry.get("values", {}).items():
                    if kind == "gauge" and isinstance(state, Mapping):
                        value: Any = float(state["value"])
                    elif kind == "histogram":
                        value = dict(state)
                    else:
                        value = state
                    ring = cells.get(ls)
                    if ring is None:
                        ring = cells[ls] = deque(maxlen=self.capacity)
                        self._born[(name, ls)] = float(t)
                    ring.append((float(t), value))
            return float(t)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        """Samples currently retained (<= capacity)."""
        with self._lock:
            return len(self._times)

    @property
    def samples(self) -> int:
        """Samples ever ingested (monotone; survives ring eviction)."""
        with self._lock:
            return self._ingested

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def meta(self, name: str) -> dict | None:
        with self._lock:
            entry = self._meta.get(name)
            return dict(entry) if entry else None

    def kind(self, name: str) -> str | None:
        with self._lock:
            entry = self._meta.get(name)
            return entry["kind"] if entry else None

    def labelsets(self, name: str) -> list[LabelSet]:
        with self._lock:
            return sorted(self._series.get(name, {}))

    def latest_time(self) -> float | None:
        with self._lock:
            return self._times[-1][0] if self._times else None

    def points(self, name: str, **labels: object) -> list[tuple[float, Any]]:
        """Copy of one series' retained ``(t, value)`` points."""
        with self._lock:
            ring = self._series.get(name, {}).get(_labelset(labels))
            return list(ring) if ring else []

    def latest(self, name: str, **labels: object) -> float | None:
        """Latest value of one series.  Without labels: counters sum
        across cells, a gauge falls back to its single cell (ambiguous
        multi-cell gauges return None), histograms return their count."""
        with self._lock:
            cells = self._select(name, labels)
            if not cells:
                return None
            kind = self._meta[name]["kind"]
            if kind == "counter":
                return float(sum(ring[-1][1] for _, ring in cells))
            if len(cells) > 1:
                return None
            value = cells[0][1][-1][1]
            if kind == "histogram":
                return float(value["count"])
            return float(value)

    def _select(
        self, name: str, labels: Mapping[str, object]
    ) -> list[tuple[LabelSet, deque]]:
        cells = self._series.get(name)
        if not cells:
            return []
        if labels:
            key = _labelset(labels)
            ring = cells.get(key)
            return [(key, ring)] if ring else []
        return sorted(cells.items())

    # -- derived signals ---------------------------------------------

    def _require(self, name: str, kind: str) -> bool:
        meta = self._meta.get(name)
        if meta is None:
            return False
        if meta["kind"] != kind:
            raise ValueError(
                f"{name!r} is a {meta['kind']}, not a {kind}"
            )
        return True

    def increase(
        self,
        name: str,
        window_s: float,
        now: float | None = None,
        **labels: object,
    ) -> float | None:
        """Counter growth over the trailing window (summed across
        cells without labels).  None when the metric has no samples in
        the window."""
        with self._lock:
            per_cell = self.cell_increases(name, window_s, now=now)
            if labels:
                return per_cell.get(_labelset(labels))
            return sum(per_cell.values()) if per_cell else None

    def cell_increases(
        self, name: str, window_s: float, now: float | None = None
    ) -> dict[LabelSet, float]:
        """Per-label-set counter growth over the trailing window --
        the burn-rate rule's raw material (it needs the status label
        of every cell, not the aggregate)."""
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        with self._lock:
            if not self._require(name, "counter"):
                return {}
            if now is None:
                now = self._times[-1][0] if self._times else None
            if now is None:
                return {}
            start = now - window_s
            out: dict[LabelSet, float] = {}
            for ls, ring in self._series[name].items():
                pts = [(t, v) for t, v in ring if start <= t <= now]
                if not pts:
                    continue
                if self._born[(name, ls)] >= start:
                    out[ls] = float(pts[-1][1])  # born in-window: from 0
                else:
                    out[ls] = float(pts[-1][1] - pts[0][1])
            return out

    def rate(
        self,
        name: str,
        window_s: float,
        now: float | None = None,
        **labels: object,
    ) -> float | None:
        """Per-second counter rate over the trailing window."""
        with self._lock:
            if not self._require(name, "counter") or not self._times:
                return None
            if now is None:
                now = self._times[-1][0]
            start = now - window_s
            total, t0 = 0.0, None
            for ls, ring in self._select(name, labels):
                pts = [(t, v) for t, v in ring if start <= t <= now]
                if not pts:
                    continue
                first_t, first_v = pts[0]
                t0 = first_t if t0 is None else min(t0, first_t)
                if self._born[(name, ls)] >= start:
                    total += float(pts[-1][1])
                else:
                    total += float(pts[-1][1] - first_v)
            if t0 is None or now - t0 <= 0:
                return None
            return total / (now - t0)

    def ewma(
        self,
        name: str,
        tau_s: float = 30.0,
        **labels: object,
    ) -> float | None:
        """Exponential moving average of a gauge over its retained
        points, weighted for irregular sampling intervals."""
        if tau_s <= 0:
            raise ValueError(f"tau must be positive, got {tau_s}")
        with self._lock:
            if not self._require(name, "gauge"):
                return None
            cells = self._select(name, labels)
            if not labels and len(cells) > 1:
                raise ValueError(
                    f"ewma({name!r}) is ambiguous across "
                    f"{len(cells)} label sets; pass labels"
                )
            if not cells:
                return None
            pts = list(cells[0][1])
            value = float(pts[0][1])
            for (t0, _), (t1, v1) in zip(pts, pts[1:]):
                w = math.exp(-(t1 - t0) / tau_s)
                value = w * value + (1.0 - w) * float(v1)
            return value

    def window_quantile(
        self,
        name: str,
        q: float,
        window_s: float,
        now: float | None = None,
        **labels: object,
    ) -> float | None:
        """Quantile of the observations that landed in the trailing
        window: per-cell cumulative-state deltas, merged across cells
        (without labels) via :func:`merge_histogram_states`.  None
        when nothing was observed in the window."""
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        with self._lock:
            if not self._require(name, "histogram") or not self._times:
                return None
            if now is None:
                now = self._times[-1][0]
            start = now - window_s
            states = []
            for ls, ring in self._select(name, labels):
                last = None
                base = None
                for t, state in ring:
                    if t > now:
                        break
                    if t < start:
                        base = state
                    last = state
                if last is None or not last["count"]:
                    continue
                delta = last if base is None else _subtract_hist(last, base)
                if delta["count"] > 0:
                    states.append(delta)
            if not states:
                return None
            merged = merge_histogram_states(states)
            if merged is None or not merged["count"]:
                return None
            return quantile_from_state(merged, q)

    def mad_z(
        self,
        name: str,
        window_s: float | None = None,
        **labels: object,
    ) -> float | None:
        """Modified z-score (MAD-scaled) of the latest point against
        the series' retained history -- the anomaly signal.  Counters
        are scored on their per-interval increments.  Returns 0.0 when
        the history has exactly zero spread (nothing is anomalous
        against a flat line) and None below 4 points."""
        with self._lock:
            meta = self._meta.get(name)
            if meta is None:
                return None
            cells = self._select(name, labels)
            if not labels and len(cells) > 1:
                raise ValueError(
                    f"mad_z({name!r}) is ambiguous across "
                    f"{len(cells)} label sets; pass labels"
                )
            if not cells:
                return None
            pts = list(cells[0][1])
            if window_s is not None and self._times:
                start = self._times[-1][0] - window_s
                pts = [p for p in pts if p[0] >= start]
            if meta["kind"] == "histogram":
                values = [float(v["count"]) for _, v in pts]
            else:
                values = [float(v) for _, v in pts]
            if meta["kind"] == "counter":
                values = [b - a for a, b in zip(values, values[1:])]
            if len(values) < 4:
                return None
            scored = robust_scores(values)
            if scored is None:
                return 0.0
            return scored[0][-1]

    # -- export / import ------------------------------------------------

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the retained history as one JSONL document: a header
        line (kind/schema/capacity/metric metadata), then one line per
        sample.  Deterministic: names and label strings are sorted and
        every object is dumped with ``sort_keys``."""
        with self._lock:
            times = list(self._times)
            meta = {name: dict(m) for name, m in sorted(self._meta.items())}
            rows: dict[float, dict] = {t: {} for t, _ in times}
            for name, cells in self._series.items():
                for ls, ring in cells.items():
                    key = _label_str(ls)
                    for t, value in ring:
                        row = rows.get(t)
                        if row is not None:
                            row.setdefault(name, {})[key] = value
        lines = [json.dumps({
            "kind": SERIES_KIND,
            "schema": self.SCHEMA,
            "capacity": self.capacity,
            "meta": meta,
        }, sort_keys=True)]
        for t, wall in times:
            lines.append(json.dumps(
                {"t": t, "wall": wall, "values": rows[t]}, sort_keys=True
            ))
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`to_jsonl` output."""
        header, samples = read_series_jsonl(path)
        store = cls(capacity=int(header.get("capacity", 512)))
        for t, wall, data in samples:
            store.ingest(data, t=t, wall=wall)
        return store


def read_series_jsonl(
    path: str | Path,
) -> tuple[dict, list[tuple[float, float, dict]]]:
    """Parse a series JSONL export into ``(header, samples)`` where
    each sample is ``(t, wall, data)`` in the snapshot ``data`` shape
    (label strings decoded back to label-set tuples) -- ready to feed
    :meth:`TimeSeriesStore.ingest` one sample at a time, which is
    exactly how the alert engine replays a recorded run."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty series file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("kind") != SERIES_KIND:
        raise ValueError(
            f"{path}: not a series export (expected kind={SERIES_KIND!r})"
        )
    meta = header.get("meta", {})
    samples: list[tuple[float, float, dict]] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        row = json.loads(line)
        data: dict = {}
        for name, values in row.get("values", {}).items():
            m = meta.get(name, {})
            data[name] = {
                "kind": m.get("kind", "untyped"),
                "help": m.get("help", ""),
                "unit": m.get("unit", ""),
                "values": {
                    _parse_label_str(key): value
                    for key, value in values.items()
                },
            }
        samples.append((float(row["t"]), float(row.get("wall", 0.0)), data))
    return header, samples


class TelemetrySampler:
    """Background thread snapshotting a registry into a store.

    All scheduling is monotonic (``threading.Event.wait`` on a fixed
    interval); the optional ``progress`` callable's numeric fields are
    recorded as ``live_<key>`` gauge series; ``on_sample(t)`` fires
    after each sample lands -- the service hangs alert evaluation off
    it so alerting shares the store's clock.  ``stop()`` joins the
    thread and takes one final sample so short runs still record their
    terminal state.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        store: TimeSeriesStore,
        interval_s: float = 1.0,
        progress: Callable[[], Mapping[str, Any]] | None = None,
        on_sample: Callable[[float], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval must be positive, got {interval_s}"
            )
        self.registry = registry
        self.store = store
        self.interval_s = interval_s
        self.progress = progress
        self.on_sample = on_sample
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def sample(self) -> float | None:
        """Take one sample now; returns its time (None if the store
        refused it -- e.g. a same-instant duplicate at shutdown)."""
        snapshot = self.registry.snapshot()
        live = None
        if self.progress is not None:
            try:
                live = self.progress()
            except Exception:
                live = None  # the service may be tearing down under us
        try:
            t = self.store.observe(snapshot, live=live)
        except ValueError:
            return None
        if self.on_sample is not None:
            self.on_sample(t)
        return t

    def start(self) -> "TelemetrySampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread and take a final sample."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.sample()

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
