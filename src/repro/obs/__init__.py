"""Unified telemetry: metrics registry, exporters, monitor, gate.

PaRSEC's profiling system is the instrument the paper's validation
rests on (Fig. 10's traces, worker occupancy, median kernel times).
This package is our software-counter equivalent, shared by every
execution layer:

* :mod:`repro.obs.metrics` -- counters / gauges / histograms in one
  process-mergeable registry; the sim engine, the threads pool, the
  procs IPC mesh and the autotuner all emit into it;
* :mod:`repro.obs.export` -- one serializer for every trace and
  metric sink: Chrome/Perfetto events, JSON lines, OTel-style spans,
  Prometheus text exposition;
* :mod:`repro.obs.monitor` -- live progress of a running backend and
  post-run summaries (the ``repro monitor`` / ``repro stats`` CLI);
* :mod:`repro.obs.regress` -- the perf-regression gate comparing a
  fresh run against recorded BENCH baselines with tolerances;
* :mod:`repro.obs.lifecycle` -- request-scoped lifecycle spans, the
  flight recorder and the combined service/execution timeline export;
* :mod:`repro.obs.slo` -- per-tenant latency percentiles and
  error-budget burn (the ``repro slo`` report);
* :mod:`repro.obs.timeseries` -- bounded metric history sampled from
  a live registry, with derived signals (rates, windowed quantiles,
  EWMA, MAD z-scores) and a replayable JSONL export;
* :mod:`repro.obs.alerts` -- declarative threshold / multi-window
  burn-rate / anomaly rules over the time-series store, with a
  pending -> firing -> resolved lifecycle and flight-recorder dumps
  on firing (the ``repro alerts`` / ``repro top`` CLI).
"""

from __future__ import annotations

import os

from .alerts import (
    AlertEngine,
    AlertRule,
    JsonlSink,
    default_rules,
    load_rules,
    parse_rules,
    replay_rules,
)
from .critpath import (
    CritPathReport,
    critical_path,
    find_stragglers,
    publish_critpath_metrics,
    robust_scores,
)
from .diff import TraceDiff, diff_results, diff_traces
from .lifecycle import (
    FlightRecorder,
    LifecycleTracer,
    LifeSpan,
    format_postmortem,
    load_postmortem,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricsSnapshot,
)
from .monitor import (
    RunMonitor,
    format_serve_summary,
    format_summary,
    format_top,
    monitored_run,
)
from .regress import (
    RegressReport,
    compare,
    load_baseline,
    metrics_from_serve,
)
from .slo import format_slo_report, slo_gate_metrics, slo_report
from .timeseries import TelemetrySampler, TimeSeriesStore, read_series_jsonl

#: Environment variable enabling the debug-mode trace validation the
#: engine and both real backends run after a traced run.
DEBUG_TRACE_ENV = "REPRO_DEBUG_TRACE"


def trace_validation_enabled() -> bool:
    """Whether the debug flag asking for post-run ``Trace.validate()``
    is set (any non-empty value that is not ``"0"``)."""
    value = os.environ.get(DEBUG_TRACE_ENV, "")
    return bool(value) and value != "0"


__all__ = [
    "AlertEngine",
    "AlertRule",
    "Counter",
    "CritPathReport",
    "DEBUG_TRACE_ENV",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LifeSpan",
    "LifecycleTracer",
    "MetricRegistry",
    "MetricsSnapshot",
    "RegressReport",
    "RunMonitor",
    "TelemetrySampler",
    "TimeSeriesStore",
    "TraceDiff",
    "compare",
    "critical_path",
    "default_rules",
    "diff_results",
    "diff_traces",
    "find_stragglers",
    "format_postmortem",
    "format_serve_summary",
    "format_slo_report",
    "format_summary",
    "format_top",
    "load_baseline",
    "load_postmortem",
    "load_rules",
    "metrics_from_serve",
    "monitored_run",
    "parse_rules",
    "publish_critpath_metrics",
    "read_series_jsonl",
    "replay_rules",
    "robust_scores",
    "slo_gate_metrics",
    "slo_report",
    "trace_validation_enabled",
]
