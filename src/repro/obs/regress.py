"""Perf-regression gate: compare a fresh run against a recorded baseline.

The repo accumulates ``BENCH_*.json`` trajectory files, but until now
they were write-only.  This module closes the loop:

* :func:`compare` checks flat ``{metric: value}`` dicts against a
  baseline with per-direction tolerances -- *lower-better* metrics
  (makespan, messages, bytes, runs used) may not grow by more than the
  tolerance, *higher-better* metrics (GFLOP/s, occupancy, cache
  hit-rate) may not shrink.  Improvements never fail.  Keys with no
  recognisable direction (tile sizes, budgets, timestamps) are
  informational and skipped.
* :func:`load_baseline` reads either an ``obs-baseline`` document
  written by ``repro stats --write-baseline`` or any ``BENCH_*.json``
  trajectory file (nested sections are flattened to dotted keys).
* :func:`measure_bench_tuning` re-runs the deterministic tuning
  benches behind ``BENCH_tuning.json`` so the gate can re-measure the
  recorded sections; a section whose recorded problem size does not
  match the current scaling mode is skipped, not failed.
* :func:`measure_ir_passes` re-runs the simulated before/after
  comparison behind ``BENCH_ir.json`` (rewrite-pass pipelines from
  ``repro.ir``); the same runner dispatch re-measures its sections.

The CLI face is ``repro stats --check FILE`` (exit 1 on regression),
wired as the opt-in ``regression-gate`` CI job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "BASELINE_KIND",
    "Check",
    "RegressReport",
    "baseline_doc",
    "compare",
    "direction",
    "flatten",
    "load_baseline",
    "measure_bench_tuning",
    "measure_ir_passes",
    "metrics_from_result",
    "metrics_from_serve",
    "write_baseline",
]

BASELINE_KIND = "obs-baseline"

#: Substring hints, checked in order; first match wins.  ``None``
#: means "informational, never gated" (config knobs, timestamps).
_SKIP_HINTS = ("unix_time", "timestamp", "paper_range", "budget",
               "tile", "steps", "problem_n", "seed", "nodes", "jobs",
               "procs", "workers",
               # Admission rejects are the service *doing its job*
               # under overload, not a regression either way.
               "reject", "batch_size")
_LOWER_HINTS = ("elapsed", "makespan", "seconds", "latency", "messages",
                "bytes", "runs_used", "misses", "redundant", "comm_share",
                "cold_start", "expired", "burn")
_HIGHER_HINTS = ("gflops", "occupancy", "hit_rate", "hits", "speedup",
                 "efficiency", "bandwidth", "critpath_ratio",
                 "warm_start", "throughput")


def direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` = which way is better; ``None`` =
    informational (not gated)."""
    low = name.lower()
    for hint in _SKIP_HINTS:
        if hint in low:
            return None
    for hint in _LOWER_HINTS:
        if hint in low:
            return "lower"
    for hint in _HIGHER_HINTS:
        if hint in low:
            return "higher"
    return None


def flatten(doc: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested mapping as ``a.b.c`` dotted keys."""
    out: dict[str, float] = {}
    for key, value in doc.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten(value, prefix=f"{name}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out


@dataclass(frozen=True)
class Check:
    """One gated metric comparison."""

    name: str
    baseline: float
    measured: float
    direction: str  # "lower" | "higher"
    tolerance: float
    ok: bool

    @property
    def change(self) -> float:
        """Signed relative change vs the baseline (0.1 = +10%)."""
        if self.baseline == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return self.measured / self.baseline - 1.0


@dataclass
class RegressReport:
    """Outcome of one :func:`compare` call."""

    checks: list[Check] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # no direction hint
    missing: list[str] = field(default_factory=list)  # gated but unmeasured

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [c for c in self.checks if not c.ok]

    def format(self) -> str:
        lines = []
        for c in sorted(self.checks, key=lambda c: (c.ok, c.name)):
            mark = "ok  " if c.ok else "FAIL"
            change = ("+inf" if c.change == float("inf")
                      else f"{100 * c.change:+.1f}%")
            lines.append(
                f"{mark} {c.name}: {c.measured:.6g} vs baseline "
                f"{c.baseline:.6g} ({change}, {c.direction}-is-better, "
                f"tol {100 * c.tolerance:.0f}%)"
            )
        for name in self.missing:
            lines.append(f"warn {name}: in baseline but not measured")
        verdict = ("PASS" if self.ok else
                   f"REGRESSION in {len(self.failures)} metric(s)")
        lines.append(f"{verdict}: {sum(c.ok for c in self.checks)}"
                     f"/{len(self.checks)} gated metrics within tolerance")
        return "\n".join(lines)


def compare(
    baseline: Mapping[str, float],
    measured: Mapping[str, float],
    tolerance: float = 0.10,
    tolerances: Mapping[str, float] | None = None,
) -> RegressReport:
    """Gate ``measured`` against ``baseline``.

    Only keys present in *both* dicts and carrying a direction hint
    are gated; ``tolerances`` overrides the default ``tolerance`` per
    key (exact name match).  Baseline keys that are gated but absent
    from ``measured`` are reported as ``missing`` warnings -- absence
    is not a regression, it usually means the fresh run measured a
    narrower configuration.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance cannot be negative, got {tolerance}")
    report = RegressReport()
    for name in sorted(baseline):
        base = baseline[name]
        sense = direction(name)
        if sense is None:
            report.skipped.append(name)
            continue
        if name not in measured:
            report.missing.append(name)
            continue
        value = measured[name]
        tol = (tolerances or {}).get(name, tolerance)
        if sense == "lower":
            ok = value <= base * (1.0 + tol)
        else:
            ok = value >= base * (1.0 - tol)
        report.checks.append(Check(
            name=name, baseline=base, measured=value,
            direction=sense, tolerance=tol, ok=ok,
        ))
    return report


def load_baseline(path: str | Path) -> dict[str, float]:
    """Flat gated-metrics dict from a baseline file.

    Accepts the ``obs-baseline`` documents written by
    :func:`write_baseline` (metrics live under ``"metrics"``) and raw
    ``BENCH_*.json`` trajectory files (the whole document flattens).
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: baseline must be a JSON object")
    if doc.get("kind") == BASELINE_KIND:
        return flatten(doc.get("metrics", {}))
    return flatten(doc)


def metrics_from_result(result: Any) -> dict[str, float]:
    """The gated metrics of one :class:`~repro.core.report.RunResult`
    (plus tuner counters when its metrics snapshot carries them)."""
    out = {
        "makespan_s": float(result.elapsed),
        "gflops": float(result.gflops),
        "messages": float(result.messages),
        "message_bytes": float(result.message_bytes),
        "occupancy": float(result.occupancy()),
    }
    snapshot = getattr(result, "metrics", None)
    if snapshot is not None:
        hits = snapshot.counter("tuning_cache_hits_total")
        misses = snapshot.counter("tuning_cache_misses_total")
        if hits or misses:
            out["tuning_cache_hit_rate"] = hits / (hits + misses)
        wire = snapshot.counter("wire_bytes_total")
        if wire:
            out["wire_bytes"] = float(wire)
        # Causal gauges exist when the run was traced as well as
        # instrumented (see runner._publish_critpath); gate them so a
        # commit cannot silently push communication back onto the
        # critical path.
        if snapshot.gauge("critpath_seconds"):
            out["critpath_seconds"] = float(snapshot.gauge("critpath_seconds"))
            out["critpath_ratio"] = float(snapshot.gauge("critpath_ratio"))
            out["critpath_comm_share"] = float(
                snapshot.gauge("critpath_comm_share")
            )
    return out


def metrics_from_serve(snapshot: Any) -> dict[str, float]:
    """The gated serving metrics of a service's snapshot.

    Rates rather than raw counts, so baselines survive workload-size
    changes: cache hit-rate and warm-start rate gate *higher*-better,
    deadline expiries *lower*-better, admission rejects are recorded
    but neutral (a loaded service rejecting is correct behaviour).
    """
    out: dict[str, float] = {}
    hits = snapshot.counter("serve_cache_hits_total")
    misses = snapshot.counter("serve_cache_misses_total")
    if hits or misses:
        out["serve_cache_hit_rate"] = hits / (hits + misses)
    warm = snapshot.counter("serve_pool_warm_starts_total")
    cold = snapshot.counter("serve_pool_cold_starts_total")
    if warm or cold:
        out["serve_warm_start_rate"] = warm / (warm + cold)
    rejects = snapshot.counter("serve_admission_rejects_total")
    if rejects:
        out["serve_admission_rejects"] = float(rejects)
    expired = snapshot.counter("serve_deadline_expired_total")
    if expired:
        out["serve_deadline_expired"] = float(expired)
    # SLO aggregates (p95 latencies, error-budget burn) gate alongside
    # the serving rates whenever the snapshot carries lifecycle data.
    from .slo import slo_gate_metrics
    out.update(slo_gate_metrics(snapshot))
    return out


def baseline_doc(result: Any, note: str = "") -> dict:
    """A writable ``obs-baseline`` document for ``result``."""
    doc = {
        "schema": 1,
        "kind": BASELINE_KIND,
        "config": {
            "impl": result.impl,
            "machine": result.machine.name,
            "nodes": result.machine.nodes,
            "n": result.problem.shape[0],
            "iterations": result.problem.iterations,
            **{k: v for k, v in result.params.items()
               if isinstance(v, (int, float, str, bool))},
        },
        "metrics": metrics_from_result(result),
    }
    if note:
        doc["note"] = note
    return doc


def write_baseline(path: str | Path, doc: Mapping[str, Any]) -> None:
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def measure_ir_passes(
    n: int = 192,
    tile: int = 12,
    nodes: int = 4,
    steps: int = 4,
    iterations: int = 8,
    impl: str = "ca-parsec",
    passes: str = "fuse,coarsen:factor=4",
) -> dict[str, float]:
    """Deterministic simulated before/after comparison for a rewrite
    pipeline: the measurement behind ``BENCH_ir.json``.

    Runs the same problem twice on the simulated backend -- once as
    built, once through ``passes`` -- and returns flat metrics whose
    names carry :func:`direction` hints, so the gate catches a pass
    that stops saving messages, critical-path comm/queue blame, or
    makespan.
    """
    from ..core.runner import run
    from ..machine.machine import nacl
    from ..stencil.problem import JacobiProblem
    from .critpath import COMM_BLAMES, critical_path

    machine = nacl(nodes)
    problem = JacobiProblem(n=n, iterations=iterations)
    kwargs = {"steps": steps} if impl == "ca-parsec" else {}
    base = run(problem, impl=impl, machine=machine, tile=tile,
               trace=True, **kwargs)
    opt = run(problem, impl=impl, machine=machine, tile=tile,
              trace=True, passes=passes, **kwargs)

    def comm_queue_blame(result: Any) -> float:
        blames = critical_path(result.trace, result.graph).blame_seconds
        return (sum(blames.get(b, 0.0) for b in COMM_BLAMES)
                + blames.get("queue", 0.0))

    return {
        "makespan_base_seconds": base.elapsed,
        "makespan_ir_seconds": opt.elapsed,
        "pipeline_speedup": base.elapsed / opt.elapsed,
        "remote_messages_base": float(base.messages),
        "remote_messages_ir": float(opt.messages),
        "comm_blame_base_seconds": comm_queue_blame(base),
        "comm_blame_ir_seconds": comm_queue_blame(opt),
        "tasks_base": float(len(base.graph)),
        "tasks_ir": float(len(opt.graph)),
        "saved_msg_count": float(opt.pass_reports.messages_saved),
    }


def measure_bench_tuning(
    baseline: Mapping[str, float],
    sections: list[str] | None = None,
) -> tuple[dict[str, float], list[str]]:
    """Re-measure the ``BENCH_tuning.json`` sections deterministically.

    Returns ``(measured, skipped)``: dotted-key metrics matching the
    baseline's layout, plus the sections that could not be compared
    (unknown name, or recorded at a different problem scale than the
    current ``REPRO_FULL`` mode produces).  Only sections present in
    ``baseline`` (and in ``sections`` when given) are re-run.
    """
    from ..experiments import NACL, STAMPEDE2, fig6_tilesize
    from ..experiments.common import STEP_SIZES, full_mode
    from ..tuning import SearchSpace, tune

    wanted = {name.split(".", 1)[0] for name in baseline}
    if sections is not None:
        wanted &= set(sections)
    measured: dict[str, float] = {}
    skipped: list[str] = []

    def fig6(section: str, setup: Any) -> None:
        problem = setup.tuning_problem()
        recorded_n = baseline.get(f"{section}.problem_n")
        if recorded_n is not None and recorded_n != problem.shape[0]:
            skipped.append(
                f"{section} (recorded at n={recorded_n:.0f}, current "
                f"mode produces n={problem.shape[0]})"
            )
            return
        budget = int(baseline.get(f"{section}.budget", 24))
        tiles = (fig6_tilesize.FULL_TILES if full_mode()
                 else fig6_tilesize.SCALED_TILES)[setup.name]
        result = tune(
            problem, impl="base-parsec", machine=setup.machine(1),
            budget=budget, cache=False,
            space=SearchSpace(tiles=tiles, require_divisible=False),
        )
        measured[f"{section}.winner_gflops"] = result.winner_gflops
        measured[f"{section}.runs_used"] = float(result.runs_used)
        measured[f"{section}.winner_tile"] = float(result.winner.tile)

    def fig9(section: str) -> None:
        setup, ratio = NACL, 0.2
        budget = int(baseline.get(f"{section}.budget", 12))
        result = tune(
            setup.problem(), impl="ca-parsec", machine=setup.machine(16),
            budget=budget, cache=False, run_kwargs={"ratio": ratio},
            space=SearchSpace(tiles=(setup.tile,), steps=STEP_SIZES),
        )
        measured[f"{section}.winner_gflops"] = result.winner_gflops
        measured[f"{section}.runs_used"] = float(result.runs_used)
        measured[f"{section}.winner_steps"] = float(result.winner.steps)

    def ir(section: str, impl: str) -> None:
        metrics = measure_ir_passes(
            n=int(baseline.get(f"{section}.problem_n", 192)),
            tile=int(baseline.get(f"{section}.tile", 12)),
            nodes=int(baseline.get(f"{section}.nodes", 4)),
            steps=int(baseline.get(f"{section}.steps", 4)),
            iterations=int(baseline.get(f"{section}.iterations", 8)),
            impl=impl,
        )
        for key, value in metrics.items():
            measured[f"{section}.{key}"] = value

    runners = {
        "fig6_nacl": lambda s: fig6(s, NACL),
        "fig6_stampede2": lambda s: fig6(s, STAMPEDE2),
        "fig9_nacl_16n_r02": fig9,
        "ir_fuse_coarsen": lambda s: ir(s, "ca-parsec"),
        "ir_fuse_coarsen_base": lambda s: ir(s, "base-parsec"),
    }
    for section in sorted(wanted):
        runner = runners.get(section)
        if runner is None:
            skipped.append(f"{section} (no re-measurement recipe)")
            continue
        runner(section)
    return measured, skipped
