"""One serializer for every telemetry sink.

Every backend records activity in the same
:class:`~repro.runtime.trace.Trace` schema (the simulator's virtual
clock, the threads pool's wall clock, the procs mesh's merged lanes),
so every export lives here, once:

* **Chrome/Perfetto trace events** -- the interactive Fig.-10 viewer
  (formerly duplicated in ``runtime/chrome_trace.py``, which is now a
  thin alias of this module);
* **JSON lines** -- one span or one metric sample per line, the
  append-friendly form log pipelines want;
* **OTel-style spans** -- an OpenTelemetry-compatible JSON document
  (``resourceSpans`` / ``scopeSpans`` with span ids and unix-nano
  timestamps) built from the same :class:`Span` schema;
* **Prometheus text exposition** -- a :class:`MetricsSnapshot`
  rendered in the ``# HELP`` / ``# TYPE`` format scrapers parse;
* **collapsed-stack flamegraphs** -- the ``stack;frames count`` lines
  ``flamegraph.pl`` and speedscope consume, for whole traces
  (:func:`flamegraph_folded`) and for the blamed critical path
  (:func:`critpath_folded`).

The Chrome export can additionally paint a *critical-path highlight
lane* (one ``critpath`` thread per node, tid 9998) from a
:class:`~repro.obs.critpath.CritPathReport`, so the makespan-deciding
chain is visible on top of the regular worker lanes.

It also owns :func:`build_trace`, the span-list-to-``Trace``
normalisation both wall-clock recorders previously reimplemented.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from ..runtime.trace import Span, Trace
from .critpath import CritPathReport
from .metrics import MetricsSnapshot

#: Microseconds per virtual second (trace events use microseconds).
_US = 1e6

#: Stable colour names from the trace-viewer palette per span kind.
_COLORS = {
    "interior": "thread_state_running",
    "boundary": "thread_state_iowait",
    "init": "startup",
    "spmv": "thread_state_running",
    "send": "rail_animation",
    "recv": "rail_load",
}

#: Colour per critical-path blame category (highlight lane).
_BLAME_COLORS = {
    "compute": "thread_state_running",
    "comm": "rail_animation",
    "wire": "rail_load",
    "queue": "thread_state_runnable",
    "comm-queue": "rail_response",
    "startup": "startup",
}

#: Synthetic thread id of the per-node critical-path highlight lane.
CRITPATH_TID = 9998


# ---------------------------------------------------------------------------
# shared trace normalisation
# ---------------------------------------------------------------------------


def build_trace(
    spans: Iterable[tuple],
) -> Trace:
    """Materialise a :class:`Trace` from ``(node, worker, kind, start,
    end, label[, task_id])`` tuples, emitted sorted by start time
    across all lanes -- the order the simulator's trace naturally has.
    Shared by the threads backend's wall-clock recorder and the procs
    backend's cross-process merge.  The seventh element is optional so
    span streams recorded before ``Span.task_id`` existed still load.
    """
    ordered = sorted(spans, key=lambda s: (s[3], s[4]))
    trace = Trace()
    for item in ordered:
        node, worker, kind, start, end, label = item[:6]
        task_id = item[6] if len(item) > 6 else None
        trace.record(node, worker, kind, start, end, label, task_id=task_id)
    return trace


# ---------------------------------------------------------------------------
# Chrome / Perfetto trace events
# ---------------------------------------------------------------------------


def to_events(
    trace: Trace,
    time_scale: float = 1.0,
    critpath: CritPathReport | None = None,
) -> list[dict[str, Any]]:
    """Convert spans to Chrome trace-event dicts.

    Each node becomes a process, each worker a thread (comm lanes are
    ``comm``), every span a complete ('X') event.  ``time_scale``
    stretches virtual time (useful when spans are nanoseconds-short
    and the viewer rounds them away).  ``critpath`` adds a highlight
    lane (tid :data:`CRITPATH_TID`) per node painting each
    critical-path segment with its blame category, so the
    makespan-deciding chain reads directly off the timeline.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    events: list[dict[str, Any]] = []
    seen_threads: set[tuple[int, int]] = set()
    for span in trace.spans:
        tid = span.worker if span.worker >= 0 else 9999
        key = (span.node, tid)
        if key not in seen_threads:
            seen_threads.add(key)
            events.append({
                "ph": "M",
                "name": "thread_name",
                "pid": span.node,
                "tid": tid,
                "args": {"name": "comm" if span.worker < 0 else f"worker {span.worker}"},
            })
        event = {
            "ph": "X",
            "name": span.kind,
            "cat": "task" if span.worker >= 0 else "comm",
            "pid": span.node,
            "tid": tid,
            "ts": span.start * _US * time_scale,
            "dur": span.duration * _US * time_scale,
        }
        if span.label is not None:
            event["args"] = {"label": repr(span.label)}
        color = _COLORS.get(span.kind)
        if color:
            event["cname"] = color
        events.append(event)
    if critpath is not None:
        lane_nodes: set[int] = set()
        for seg in critpath.segments:
            if seg.duration <= 0:
                continue
            node = max(seg.node, 0)
            if node not in lane_nodes:
                lane_nodes.add(node)
                events.append({
                    "ph": "M",
                    "name": "thread_name",
                    "pid": node,
                    "tid": CRITPATH_TID,
                    "args": {"name": "critical path"},
                })
            event = {
                "ph": "X",
                "name": seg.blame,
                "cat": "critpath",
                "pid": node,
                "tid": CRITPATH_TID,
                "ts": seg.start * _US * time_scale,
                "dur": seg.duration * _US * time_scale,
                "args": {"blame": seg.blame, "kind": seg.kind,
                         "worker": seg.worker},
            }
            if seg.task_id is not None:
                event["args"]["task"] = repr(seg.task_id)
            color = _BLAME_COLORS.get(seg.blame)
            if color:
                event["cname"] = color
            events.append(event)
    for node in sorted({s.node for s in trace.spans}):
        events.append({
            "ph": "M",
            "name": "process_name",
            "pid": node,
            "args": {"name": f"node {node}"},
        })
    return events


def dumps(
    trace: Trace,
    time_scale: float = 1.0,
    critpath: CritPathReport | None = None,
) -> str:
    """The complete Chrome trace JSON document as a string."""
    return json.dumps({
        "traceEvents": to_events(trace, time_scale, critpath=critpath),
        "displayTimeUnit": "ms",
    })


def write(
    trace: Trace,
    path: str,
    time_scale: float = 1.0,
    critpath: CritPathReport | None = None,
) -> None:
    """Write the Chrome trace to ``path`` (open in chrome://tracing)."""
    with open(path, "w") as fh:
        fh.write(dumps(trace, time_scale, critpath=critpath))


# ---------------------------------------------------------------------------
# collapsed-stack flamegraphs
# ---------------------------------------------------------------------------


def flamegraph_folded(trace: Trace) -> str:
    """The whole trace in collapsed-stack form, one
    ``node;lane;kind count`` line per distinct stack, weighted by
    microseconds.  Pipe through ``flamegraph.pl`` (or drop into
    speedscope) to see where the worker-seconds went."""
    counts: dict[str, int] = {}
    for span in trace.spans:
        lane = "comm" if span.worker < 0 else f"worker {span.worker}"
        stack = f"node {span.node};{lane};{span.kind}"
        counts[stack] = counts.get(stack, 0) + int(round(span.duration * _US))
    return "\n".join(f"{stack} {n}" for stack, n in sorted(counts.items()))


def critpath_folded(report: CritPathReport) -> str:
    """The blamed critical path in collapsed-stack form:
    ``critical path;blame;kind count`` lines weighted by microseconds.
    The resulting flame shows at a glance how much of the makespan was
    compute vs communication vs waiting."""
    counts: dict[str, int] = {}
    for seg in report.segments:
        frames = ["critical path", seg.blame]
        if seg.kind:
            frames.append(seg.kind)
        stack = ";".join(frames)
        counts[stack] = counts.get(stack, 0) + int(round(seg.duration * _US))
    return "\n".join(f"{stack} {n}" for stack, n in sorted(counts.items()))


def write_flamegraph(
    path: str,
    trace: Trace | None = None,
    critpath: CritPathReport | None = None,
) -> None:
    """Write collapsed stacks to ``path``: the trace's, the critical
    path's, or both (they merge cleanly -- distinct root frames)."""
    chunks = []
    if trace is not None and len(trace):
        chunks.append(flamegraph_folded(trace))
    if critpath is not None and critpath.segments:
        chunks.append(critpath_folded(critpath))
    with open(path, "w") as fh:
        fh.write("\n".join(c for c in chunks if c) + "\n")


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def span_record(span: Span) -> dict[str, Any]:
    """One span as a flat JSON-safe record."""
    return {
        "node": span.node,
        "worker": span.worker,
        "kind": span.kind,
        "start_s": span.start,
        "end_s": span.end,
        "duration_s": span.duration,
        "label": repr(span.label) if span.label is not None else None,
        "task_id": repr(span.task_id) if span.task_id is not None else None,
    }


def spans_jsonl(trace: Trace) -> str:
    """One span per line, in trace order."""
    return "\n".join(json.dumps(span_record(s)) for s in trace.spans)


def metrics_jsonl(snapshot: MetricsSnapshot) -> str:
    """One metric cell per line: name, kind, labels, state."""
    lines = []
    for name, entry in sorted(snapshot.data.items()):
        for ls, state in sorted(entry["values"].items()):
            lines.append(json.dumps({
                "metric": name,
                "kind": entry["kind"],
                "unit": entry["unit"],
                "labels": dict(ls),
                "value": state,
            }))
    return "\n".join(lines)


def write_jsonl(
    path: str,
    trace: Trace | None = None,
    snapshot: MetricsSnapshot | None = None,
) -> None:
    """Append-friendly export: spans then metrics, one record per line."""
    chunks = []
    if trace is not None and len(trace):
        chunks.append(spans_jsonl(trace))
    if snapshot is not None and snapshot.data:
        chunks.append(metrics_jsonl(snapshot))
    with open(path, "w") as fh:
        fh.write("\n".join(chunks) + "\n")


# ---------------------------------------------------------------------------
# OTel-style spans
# ---------------------------------------------------------------------------


def _span_id(payload: str, nbytes: int) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[: 2 * nbytes]


def to_otel(
    trace: Trace,
    service_name: str = "repro",
    epoch_unix_nanos: int = 0,
    trace_id: str | None = None,
    parent_span_id: str | None = None,
) -> dict[str, Any]:
    """An OpenTelemetry-compatible JSON document (the OTLP/JSON trace
    shape: ``resourceSpans`` -> ``scopeSpans`` -> ``spans``).

    Trace seconds are mapped onto unix nanoseconds starting at
    ``epoch_unix_nanos``; span ids are deterministic hashes of the
    span *identity* -- node, lane, kind, timing, label plus an
    occurrence counter for exact duplicates -- rather than of the
    enumeration order, so re-exports of the same trace (and exports
    of a re-recorded identical trace) correlate span for span.

    ``trace_id`` overrides the derived document trace id (the serve
    layer passes the request's lifecycle trace id so queue wait and
    task kernels share one trace); ``parent_span_id`` parents every
    exported span under an external span (the request's ``execute``
    lifecycle span).
    """
    if trace_id is None:
        trace_id = _span_id(
            f"{service_name}:{len(trace)}:{trace.makespan()}", 16
        )
    spans = []
    occurrences: dict[str, int] = {}
    for span in trace.spans:
        worker_name = "comm" if span.worker < 0 else f"worker-{span.worker}"
        attributes = [
            {"key": "node", "value": {"intValue": str(span.node)}},
            {"key": "worker", "value": {"intValue": str(span.worker)}},
            {"key": "kind", "value": {"stringValue": span.kind}},
            {"key": "lane", "value": {"stringValue": worker_name}},
        ]
        if span.label is not None:
            attributes.append(
                {"key": "label", "value": {"stringValue": repr(span.label)}}
            )
        if span.task_id is not None:
            attributes.append(
                {"key": "task_id", "value": {"stringValue": repr(span.task_id)}}
            )
        identity = (
            f"{span.node}:{span.worker}:{span.kind}:{span.start}:"
            f"{span.end}:{span.label!r}"
        )
        n = occurrences.get(identity, 0)
        occurrences[identity] = n + 1
        span_doc = {
            "traceId": trace_id,
            "spanId": _span_id(f"{trace_id}:{identity}:{n}", 8),
            "name": span.kind,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(epoch_unix_nanos + int(span.start * 1e9)),
            "endTimeUnixNano": str(epoch_unix_nanos + int(span.end * 1e9)),
            "attributes": attributes,
            "status": {},
        }
        if parent_span_id is not None:
            span_doc["parentSpanId"] = parent_span_id
        spans.append(span_doc)
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": service_name},
                }],
            },
            "scopeSpans": [{
                "scope": {"name": "repro.obs", "version": "1"},
                "spans": spans,
            }],
        }],
    }


def write_otel(trace: Trace, path: str, service_name: str = "repro") -> None:
    with open(path, "w") as fh:
        json.dump(to_otel(trace, service_name), fh)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(ls: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in ls]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, entry in sorted(snapshot.data.items()):
        pname = _prom_name(name)
        kind = entry["kind"]
        if entry.get("help"):
            lines.append(f"# HELP {pname} {entry['help']}")
        lines.append(f"# TYPE {pname} {kind if kind != 'untyped' else 'gauge'}")
        for ls, state in sorted(entry["values"].items()):
            if kind == "counter":
                lines.append(f"{pname}{_prom_labels(ls)} {state}")
            elif kind == "gauge":
                lines.append(f"{pname}{_prom_labels(ls)} {state['value']}")
            elif kind == "histogram":
                cumulative = 0
                for bound, n in zip(state["bounds"], state["buckets"]):
                    cumulative += n
                    le = 'le="%s"' % bound
                    lines.append(f"{pname}_bucket{_prom_labels(ls, le)} {cumulative}")
                inf = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{_prom_labels(ls, inf)} {state['count']}"
                )
                lines.append(f"{pname}_sum{_prom_labels(ls)} {state['sum']}")
                lines.append(f"{pname}_count{_prom_labels(ls)} {state['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(snapshot: MetricsSnapshot, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(prometheus_text(snapshot))


__all__ = [
    "CRITPATH_TID",
    "build_trace",
    "critpath_folded",
    "dumps",
    "flamegraph_folded",
    "metrics_jsonl",
    "prometheus_text",
    "span_record",
    "spans_jsonl",
    "to_events",
    "to_otel",
    "write",
    "write_flamegraph",
    "write_jsonl",
    "write_otel",
    "write_prometheus",
]
