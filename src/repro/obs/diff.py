"""Trace differ: where did the time move between two runs?

Aligns two traces task-by-task (base vs CA, sim vs threads vs procs,
yesterday vs today) on the first-class span ``task_id`` and reports

* the makespan delta,
* per-kind totals/medians side by side,
* the largest per-task movers,
* and -- through :mod:`repro.obs.critpath` -- how the *blame* of the
  critical path shifted: the headline number for the paper's story is
  :attr:`TraceDiff.comm_share_drop`, the communication share of
  critical-path time that a communication-avoiding schedule removes.

Diffing a trace against itself yields an :meth:`TraceDiff.empty` diff;
the tests pin that as an invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..runtime.trace import Trace, median
from .critpath import COMM_KINDS, CritPathReport, critical_path, _task_identity


@dataclass(frozen=True)
class KindDelta:
    """Aggregate duration movement for one span kind."""

    kind: str
    count_a: int
    count_b: int
    total_a: float
    total_b: float
    median_a: float
    median_b: float

    @property
    def delta_total(self) -> float:
        return self.total_b - self.total_a


@dataclass(frozen=True)
class TaskDelta:
    """Duration movement of one task matched across both traces."""

    task_id: Any
    kind: str
    duration_a: float
    duration_b: float

    @property
    def delta(self) -> float:
        return self.duration_b - self.duration_a


@dataclass
class TraceDiff:
    """The full alignment of two traces."""

    label_a: str
    label_b: str
    makespan_a: float
    makespan_b: float
    critpath_a: CritPathReport
    critpath_b: CritPathReport
    kinds: list[KindDelta] = field(default_factory=list)
    #: Largest per-task movers (by absolute delta), matched tasks only.
    movers: list[TaskDelta] = field(default_factory=list)
    matched: int = 0
    only_a: int = 0
    only_b: int = 0

    @property
    def makespan_delta(self) -> float:
        return self.makespan_b - self.makespan_a

    @property
    def comm_share_drop(self) -> float:
        """How much communication share of critical-path time run B
        removed relative to run A (positive = B is less comm-bound)."""
        return self.critpath_a.comm_share - self.critpath_b.comm_share

    def empty(self) -> bool:
        """True when nothing moved: every task matched with identical
        durations and the makespans agree (a trace diffed against
        itself)."""
        return (
            self.only_a == 0
            and self.only_b == 0
            and self.makespan_delta == 0.0
            and all(d.delta == 0.0 for d in self.movers)
            and all(k.delta_total == 0.0 for k in self.kinds)
        )

    def format(self, top: int = 5) -> str:
        a, b = self.label_a, self.label_b
        if self.empty():
            return f"no differences between {a} and {b}"
        lines = [
            f"trace diff: {a} -> {b}",
            f"  makespan: {self.makespan_a:.6g} s -> {self.makespan_b:.6g} s "
            f"({self.makespan_delta:+.6g} s)",
            f"  comm share of critical path: "
            f"{self.critpath_a.comm_share:.1%} -> "
            f"{self.critpath_b.comm_share:.1%} "
            f"(drop {self.comm_share_drop:+.1%})",
            f"  tasks: {self.matched} matched, "
            f"{self.only_a} only in {a}, {self.only_b} only in {b}",
        ]
        if self.kinds:
            lines.append("  per kind (total seconds):")
            for k in self.kinds:
                lines.append(
                    f"    {k.kind:<10} {k.total_a:>10.6g} -> {k.total_b:>10.6g} "
                    f"({k.delta_total:+.6g}; median "
                    f"{k.median_a:.6g} -> {k.median_b:.6g}; "
                    f"n {k.count_a} -> {k.count_b})"
                )
        shares_a = self.critpath_a.blame_shares()
        shares_b = self.critpath_b.blame_shares()
        blames = sorted(set(shares_a) | set(shares_b))
        if blames:
            lines.append("  critical-path blame shares:")
            for blame in blames:
                sa, sb = shares_a.get(blame, 0.0), shares_b.get(blame, 0.0)
                lines.append(f"    {blame:<10} {sa:>6.1%} -> {sb:>6.1%}")
        if self.movers:
            lines.append("  top task movers:")
            for m in self.movers[:top]:
                lines.append(
                    f"    {m.kind} task {m.task_id!r}: "
                    f"{m.duration_a:.6g} s -> {m.duration_b:.6g} s "
                    f"({m.delta:+.6g} s)"
                )
        return "\n".join(lines)


def _task_durations(trace: Trace) -> dict[Any, tuple[str, float]]:
    """Total compute duration per task identity (a task may appear as
    several spans only in pathological traces; durations sum)."""
    out: dict[Any, tuple[str, float]] = {}
    for span in trace.compute_spans():
        if span.kind in COMM_KINDS:
            continue
        key = _task_identity(span)
        prev = out.get(key)
        out[key] = (span.kind, (prev[1] if prev else 0.0) + span.duration)
    return out


def diff_traces(
    trace_a: Trace,
    trace_b: Trace,
    graph_a: Any = None,
    graph_b: Any = None,
    label_a: str = "a",
    label_b: str = "b",
    top: int = 10,
) -> TraceDiff:
    """Align ``trace_a`` and ``trace_b`` task-by-task and report where
    the time moved."""
    crit_a = critical_path(trace_a, graph_a)
    crit_b = critical_path(trace_b, graph_b)

    tasks_a = _task_durations(trace_a)
    tasks_b = _task_durations(trace_b)
    shared = tasks_a.keys() & tasks_b.keys()
    movers = [
        TaskDelta(task_id=key, kind=tasks_b[key][0],
                  duration_a=tasks_a[key][1], duration_b=tasks_b[key][1])
        for key in shared
    ]
    movers.sort(key=lambda d: (-abs(d.delta), repr(d.task_id)))

    by_kind: dict[str, list[list[float]]] = {}
    for trace, side in ((trace_a, 0), (trace_b, 1)):
        for span in trace.spans:
            by_kind.setdefault(span.kind, [[], []])[side].append(span.duration)
    kinds = [
        KindDelta(
            kind=kind,
            count_a=len(ds[0]), count_b=len(ds[1]),
            total_a=sum(ds[0]), total_b=sum(ds[1]),
            median_a=median(ds[0]), median_b=median(ds[1]),
        )
        for kind, ds in sorted(by_kind.items())
    ]
    kinds.sort(key=lambda k: -abs(k.delta_total))

    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        makespan_a=trace_a.makespan(),
        makespan_b=trace_b.makespan(),
        critpath_a=crit_a,
        critpath_b=crit_b,
        kinds=kinds,
        movers=movers[:top],
        matched=len(shared),
        only_a=len(tasks_a.keys() - tasks_b.keys()),
        only_b=len(tasks_b.keys() - tasks_a.keys()),
    )


def diff_results(
    result_a: Any,
    result_b: Any,
    label_a: str = "a",
    label_b: str = "b",
    top: int = 10,
) -> TraceDiff:
    """Diff two run results (anything carrying ``.trace`` and,
    optionally, ``.graph`` -- :class:`repro.core.report.RunResult`
    does).  Raises ``ValueError`` when either run was not traced."""
    trace_a, trace_b = result_a.trace, result_b.trace
    if trace_a is None or trace_b is None:
        raise ValueError("both runs must carry a trace (run with trace=True)")
    return diff_traces(
        trace_a, trace_b,
        graph_a=getattr(result_a, "graph", None),
        graph_b=getattr(result_b, "graph", None),
        label_a=label_a, label_b=label_b, top=top,
    )


__all__ = [
    "KindDelta",
    "TaskDelta",
    "TraceDiff",
    "diff_results",
    "diff_traces",
]
