"""Declarative alert rules evaluated over a :class:`TimeSeriesStore`.

Three rule kinds cover the operational questions a serving stack asks:

* ``threshold`` -- compare one derived signal (``latest`` / ``rate`` /
  ``increase`` / ``ewma`` / ``quantile``) of one metric against a
  constant;
* ``burn_rate`` -- the SRE multi-window error-budget burn over the
  per-tenant ``slo_requests_total`` counter PR 9's lifecycle tracer
  maintains: the alert fires only when **every** configured window's
  burn exceeds its factor (the long window proves the budget is really
  being consumed, the short window proves it still is);
* ``anomaly`` -- MAD z-score of the latest point against the series'
  history (:meth:`TimeSeriesStore.mad_z`), the same robust statistic
  straggler detection uses.

Lifecycle per rule: ``inactive -> pending -> firing -> resolved``
(resolved is a transition, not a resting state -- the rule returns to
inactive and may fire again).  ``for_s`` is the holdoff: the condition
must hold that long, measured on the **store's clock** (the sampler's
monotonic timestamps), before pending escalates to firing.  Evaluation
is therefore deterministic: replaying a recorded series JSONL through
:func:`replay_rules` produces byte-identical transition logs.

Entering ``firing`` triggers ``FlightRecorder.dump()`` when the engine
holds a recorder -- the alert that paged you links straight into the
``repro postmortem`` pipeline with the flight-recorder ring as it was
the moment the alert fired.

Sinks are plain callables taking one transition dict; ship a line to
stderr (:func:`stderr_sink`), append JSONL (:class:`JsonlSink`), or
anything else.
"""

from __future__ import annotations

import json
import re
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from .lifecycle import ERROR_STATUSES, FlightRecorder
from .timeseries import TimeSeriesStore, read_series_jsonl

__all__ = [
    "AlertEngine",
    "AlertRule",
    "JsonlSink",
    "default_rules",
    "format_transition",
    "load_rules",
    "parse_rules",
    "replay_rules",
    "stderr_sink",
]

RULE_KINDS = ("threshold", "burn_rate", "anomaly")
SIGNALS = ("latest", "rate", "increase", "ewma", "quantile")
OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule (see the module docstring for kinds)."""

    name: str
    kind: str = "threshold"
    #: metric the rule watches; burn_rate defaults to
    #: ``slo_requests_total`` when left empty
    metric: str = ""
    #: label filter as a sorted tuple of (key, value) pairs
    labels: tuple = ()
    #: derived signal a threshold rule compares (ignored by the others)
    signal: str = "latest"
    op: str = ">"
    threshold: float = 0.0
    #: quantile for ``signal="quantile"``
    q: float = 0.95
    #: trailing window for rate/increase/quantile (ewma's tau)
    window_s: float = 30.0
    #: holdoff: the condition must hold this long before firing
    for_s: float = 0.0
    #: SLO objective a burn_rate rule measures against
    objective: float = 0.99
    #: ((window_s, burn_factor), ...) -- ALL must breach to fire
    windows: tuple = ((60.0, 14.4), (5.0, 14.4))
    #: burn_rate only: restrict to one tenant (None = every tenant)
    tenant: str | None = None
    severity: str = "page"


def _rule_error(name: str, message: str) -> ValueError:
    return ValueError(f"alert rule {name!r}: {message}")


def parse_rule(doc: Mapping[str, Any]) -> AlertRule:
    """Validate one rule document (a JSON object) into an
    :class:`AlertRule`."""
    name = str(doc.get("name", "")).strip()
    if not name:
        raise ValueError(f"alert rule needs a name: {dict(doc)!r}")
    kind = doc.get("kind", "threshold")
    if kind not in RULE_KINDS:
        raise _rule_error(name, f"unknown kind {kind!r} (one of {RULE_KINDS})")
    signal = doc.get("signal", "latest")
    if signal not in SIGNALS:
        raise _rule_error(
            name, f"unknown signal {signal!r} (one of {SIGNALS})"
        )
    op = doc.get("op", ">")
    if op not in OPS:
        raise _rule_error(name, f"unknown op {op!r} (one of {sorted(OPS)})")
    metric = str(doc.get("metric", ""))
    if kind != "burn_rate" and not metric:
        raise _rule_error(name, f"a {kind} rule needs a metric")
    objective = float(doc.get("objective", 0.99))
    if not 0.0 < objective < 1.0:
        raise _rule_error(name, f"objective must be in (0, 1), got {objective}")
    windows = doc.get("windows")
    if windows is None:
        windows = AlertRule.windows
    else:
        windows = tuple(
            (float(w), float(factor)) for w, factor in windows
        )
        if not windows or any(w <= 0 for w, _ in windows):
            raise _rule_error(name, f"bad burn windows {windows!r}")
    for_s = float(doc.get("for_s", 0.0))
    if for_s < 0:
        raise _rule_error(name, f"for_s must be >= 0, got {for_s}")
    window_s = float(doc.get("window_s", AlertRule.window_s))
    if window_s <= 0:
        raise _rule_error(name, f"window_s must be positive, got {window_s}")
    threshold = float(doc.get(
        "threshold", 3.5 if kind == "anomaly" else 0.0
    ))
    labels = tuple(sorted(
        (str(k), str(v)) for k, v in dict(doc.get("labels", {})).items()
    ))
    tenant = doc.get("tenant")
    return AlertRule(
        name=name,
        kind=kind,
        metric=metric,
        labels=labels,
        signal=signal,
        op=op,
        threshold=threshold,
        q=float(doc.get("q", 0.95)),
        window_s=window_s,
        for_s=for_s,
        objective=objective,
        windows=windows,
        tenant=None if tenant is None else str(tenant),
        severity=str(doc.get("severity", "page")),
    )


def parse_rules(doc: Any) -> list[AlertRule]:
    """Rules from a parsed JSON document: a list of rule objects or
    ``{"rules": [...]}``.  Pre-built :class:`AlertRule` instances pass
    through, so ``ServiceConfig.alert_rules`` takes either form."""
    if isinstance(doc, Mapping):
        doc = doc.get("rules", [])
    rules: list[AlertRule] = []
    names: set[str] = set()
    for item in doc:
        rule = item if isinstance(item, AlertRule) else parse_rule(item)
        if rule.name in names:
            raise ValueError(f"duplicate alert rule name {rule.name!r}")
        names.add(rule.name)
        rules.append(rule)
    return rules


def load_rules(path: str | Path) -> list[AlertRule]:
    """Rules from a JSON file (``examples/alert_rules.json`` shape)."""
    return parse_rules(json.loads(Path(path).read_text()))


def default_rules() -> list[AlertRule]:
    """The built-in serving rules ``repro alerts`` / ``repro top``
    fall back to: multi-window SLO burn, node-lost, queue-pressure
    anomaly.  Windows are seconds-scale to match canned CLI traffic;
    production deployments load their own file."""
    return [
        AlertRule(
            name="slo-burn", kind="burn_rate", objective=0.99,
            windows=((10.0, 2.0), (2.0, 2.0)), severity="page",
        ),
        AlertRule(
            name="node-lost", kind="threshold",
            metric="serve_node_lost_total", signal="increase",
            window_s=5.0, op=">", threshold=0.0, severity="page",
        ),
        AlertRule(
            name="queue-pressure", kind="anomaly",
            metric="serve_queue_depth", threshold=3.5, for_s=1.0,
            severity="ticket",
        ),
    ]


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


def format_transition(event: Mapping[str, Any]) -> str:
    """One human line per transition (the stderr sink's shape)."""
    value = event.get("value")
    shown = "-" if value is None else f"{value:.6g}"
    return (
        f"ALERT {event['rule']} [{event.get('severity', '?')}] "
        f"{event['from']} -> {event['to']}  t={event['t']:.3f}  "
        f"value={shown}"
    )


def stderr_sink(event: Mapping[str, Any]) -> None:
    print(format_transition(event), file=sys.stderr, flush=True)


class JsonlSink:
    """Append one sorted-keys JSON line per transition -- the sink CI
    greps and the deterministic-replay gate byte-compares."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None

    def __call__(self, event: Mapping[str, Any]) -> None:
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            self._fh.write(json.dumps(dict(event), sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "rule"


@dataclass
class _RuleState:
    state: str = "inactive"
    since: float | None = None  # pending start (holdoff anchor)
    value: float | None = None


class AlertEngine:
    """Evaluate rules against a store; emit transitions to sinks.

    ``evaluate(now)`` is idempotent per sample time and safe from any
    thread (one lock).  ``now`` defaults to the store's latest sample
    time -- never the wall clock -- so a replayed series produces the
    same transitions at the same times, byte for byte.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: Iterable[AlertRule],
        sinks: Iterable[Callable[[dict], None]] = (),
        recorder: FlightRecorder | None = None,
        dump_dir: str | Path | None = None,
        on_dump: Callable[[Path], None] | None = None,
    ) -> None:
        self.store = store
        self.rules = tuple(
            r if isinstance(r, AlertRule) else parse_rule(r) for r in rules
        )
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate alert rule names")
        self.sinks = list(sinks)
        self.recorder = recorder
        self.dump_dir = None if dump_dir is None else Path(dump_dir)
        self.on_dump = on_dump
        #: every transition emitted, in order
        self.transitions: list[dict] = []
        #: flight-recorder dumps triggered by firing alerts
        self.dumps: list[Path] = []
        self._states: dict[str, _RuleState] = {
            r.name: _RuleState() for r in self.rules
        }
        self._lock = threading.RLock()

    # -- signal probing ------------------------------------------------

    def _signal(self, rule: AlertRule, now: float) -> float | None:
        labels = dict(rule.labels)
        store = self.store
        if rule.signal == "latest":
            return store.latest(rule.metric, **labels)
        if rule.signal == "rate":
            return store.rate(rule.metric, rule.window_s, now=now, **labels)
        if rule.signal == "increase":
            return store.increase(
                rule.metric, rule.window_s, now=now, **labels
            )
        if rule.signal == "ewma":
            return store.ewma(rule.metric, tau_s=rule.window_s, **labels)
        return store.window_quantile(
            rule.metric, rule.q, rule.window_s, now=now, **labels
        )

    def _burn(self, rule: AlertRule, window_s: float,
              now: float) -> float | None:
        metric = rule.metric or "slo_requests_total"
        increases = self.store.cell_increases(metric, window_s, now=now)
        if not increases:
            return None
        errors = total = 0.0
        for ls, inc in increases.items():
            cell = dict(ls)
            if rule.tenant is not None and cell.get("tenant") != rule.tenant:
                continue
            total += inc
            if cell.get("status", "ok") in ERROR_STATUSES:
                errors += inc
        if total <= 0:
            return 0.0
        return (errors / total) / (1.0 - rule.objective)

    def _probe(self, rule: AlertRule,
               now: float) -> tuple[float | None, bool]:
        """-> (display value, condition breached)."""
        if rule.kind == "burn_rate":
            burns = [self._burn(rule, w, now) for w, _ in rule.windows]
            if any(b is None for b in burns):
                return (None, False)
            breached = all(
                b >= factor
                for b, (_, factor) in zip(burns, rule.windows)
            )
            return (min(burns), breached)
        if rule.kind == "anomaly":
            value = self.store.mad_z(
                rule.metric, window_s=None, **dict(rule.labels)
            )
        else:
            value = self._signal(rule, now)
        if value is None:
            return (None, False)
        return (value, OPS[rule.op](value, rule.threshold))

    # -- lifecycle -------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[dict]:
        """One evaluation pass; returns the transitions it emitted."""
        with self._lock:
            if now is None:
                now = self.store.latest_time()
            if now is None:
                return []
            emitted: list[dict] = []
            for rule in self.rules:
                st = self._states[rule.name]
                try:
                    value, breached = self._probe(rule, now)
                except ValueError:
                    value, breached = None, False  # bad rule, never a crash
                st.value = value
                if st.state == "inactive" and breached:
                    if rule.for_s > 0:
                        st.state, st.since = "pending", now
                        emitted.append(self._transition(
                            rule, "inactive", "pending", now, value
                        ))
                    else:
                        self._fire(rule, st, "inactive", now, value, emitted)
                elif st.state == "pending":
                    if not breached:
                        st.state, st.since = "inactive", None
                        emitted.append(self._transition(
                            rule, "pending", "inactive", now, value
                        ))
                    elif now - st.since >= rule.for_s:
                        self._fire(rule, st, "pending", now, value, emitted)
                elif st.state == "firing" and not breached:
                    st.state, st.since = "inactive", None
                    emitted.append(self._transition(
                        rule, "firing", "resolved", now, value
                    ))
            self.transitions.extend(emitted)
        for event in emitted:
            for sink in self.sinks:
                sink(event)
        return emitted

    def _fire(self, rule: AlertRule, st: _RuleState, origin: str,
              now: float, value: float | None, emitted: list[dict]) -> None:
        st.state, st.since = "firing", now
        emitted.append(self._transition(rule, origin, "firing", now, value))
        if self.recorder is not None and self.dump_dir is not None:
            try:
                path = self.recorder.dump(
                    self.dump_dir,
                    reason=f"alert-{_slug(rule.name)}",
                    error=None,
                    extra={"alert": {
                        "rule": rule.name, "severity": rule.severity,
                        "value": value, "t": now,
                    }},
                )
            except OSError:  # pragma: no cover - dump dir unwritable
                return
            self.dumps.append(path)
            if self.on_dump is not None:
                self.on_dump(path)

    @staticmethod
    def _transition(rule: AlertRule, origin: str, to: str, now: float,
                    value: float | None) -> dict:
        return {
            "rule": rule.name,
            "severity": rule.severity,
            "from": origin,
            "to": to,
            "t": now,
            "value": value,
        }

    def active(self) -> list[dict]:
        """Non-inactive rules, for dashboards and ``stats()``."""
        with self._lock:
            return [
                {
                    "rule": rule.name,
                    "severity": rule.severity,
                    "state": st.state,
                    "since": st.since,
                    "value": st.value,
                }
                for rule in self.rules
                for st in (self._states[rule.name],)
                if st.state != "inactive"
            ]

    def state(self, name: str) -> str:
        with self._lock:
            return self._states[name].state

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()


def replay_rules(
    rules: Iterable[AlertRule],
    series_path: str | Path,
    sinks: Iterable[Callable[[dict], None]] = (),
) -> list[dict]:
    """Evaluate ``rules`` over a recorded series exactly as the live
    sampler would have: ingest one sample, evaluate at its recorded
    time, repeat.  Deterministic -- two replays of the same file emit
    byte-identical transition logs."""
    header, samples = read_series_jsonl(series_path)
    store = TimeSeriesStore(capacity=int(header.get("capacity", 512)))
    engine = AlertEngine(store, rules, sinks=sinks)
    for t, wall, data in samples:
        store.ingest(data, t=t, wall=wall)
        engine.evaluate(t)
    engine.close()
    return engine.transitions
