"""repro -- Communication-Avoiding 2D stencils over a task-based runtime.

A full-system reproduction of *Communication Avoiding 2D Stencil
Implementations over PaRSEC Task-Based Runtime* (Pei et al., IPDPSW
2020): a PaRSEC-style dataflow runtime with a discrete-event machine
model, three Jacobi-stencil implementations (PETSc-style SpMV, base
task-based, communication-avoiding PA1), and the paper's full
benchmark harness.

Quickstart
----------
>>> import repro
>>> prob = repro.JacobiProblem(n=64, iterations=10)
>>> res = repro.run(prob, impl="ca-parsec", machine=repro.nacl(4),
...                 tile=16, steps=5, mode="execute")
>>> res.grid.shape
(64, 64)
"""

from .machine import (
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    nacl,
    preset,
    stampede2,
    summit_like,
)
from .core import (
    BACKENDS,
    DirichletBC,
    IMPLEMENTATIONS,
    JacobiProblem,
    RunResult,
    StencilSpec,
    StencilWeights,
    run,
    validate_implementations,
)
from .exec import ThreadedExecutor
from .runtime import Engine, TaskGraph, Trace
from .tuning import Candidate, SearchSpace, TuningCache, TuningResult, tune

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "Candidate",
    "DirichletBC",
    "Engine",
    "ThreadedExecutor",
    "IMPLEMENTATIONS",
    "JacobiProblem",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "RunResult",
    "SearchSpace",
    "StencilSpec",
    "StencilWeights",
    "TaskGraph",
    "Trace",
    "TuningCache",
    "TuningResult",
    "nacl",
    "preset",
    "run",
    "stampede2",
    "summit_like",
    "tune",
    "validate_implementations",
    "__version__",
]
