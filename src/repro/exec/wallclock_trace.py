"""Wall-clock trace capture for the threaded backend.

The recorder collects per-worker span tuples with
``time.perf_counter`` timestamps (each worker appends to its own list,
so recording is contention-free) and converts them into the existing
:class:`repro.runtime.trace.Trace` schema.  Downstream consumers --
:mod:`repro.analysis.occupancy`, :mod:`repro.analysis.gantt`,
:mod:`repro.runtime.chrome_trace` -- therefore work unchanged on real
runs: a measured trace is just a trace whose seconds happen to be
wall-clock seconds.

Convention: the shared-memory host is trace node ``0`` and every
worker thread is a worker lane on it; the task's *simulated* node
placement stays visible through the span label (the task key).
"""

from __future__ import annotations

import time

from ..obs.export import build_trace
from ..runtime.trace import Trace

#: Trace node id under which all worker threads of one host appear.
HOST_NODE = 0


class WallClockRecorder:
    """Contention-free per-worker span collection.

    One instance per run; :meth:`start` pins the time origin so spans
    are reported relative to the run start (Perfetto and the Gantt
    renderer both prefer small positive timestamps).
    """

    def __init__(self, jobs: int, enabled: bool = True) -> None:
        self.jobs = jobs
        self.enabled = enabled
        self._t0 = 0.0
        #: per-worker lists of (kind, start, end, label, task_id); no
        #: locking needed because worker ``w`` is the only writer of
        #: lane ``w``.
        self._lanes: list[list[tuple[str, float, float, object, object]]] = [
            [] for _ in range(jobs)
        ]

    def start(self) -> float:
        """Mark the run start; returns the raw origin timestamp."""
        self._t0 = time.perf_counter()
        return self._t0

    def now(self) -> float:
        """Raw ``perf_counter`` timestamp (not yet origin-relative)."""
        return time.perf_counter()

    def record(
        self,
        wid: int,
        kind: str,
        start: float,
        end: float,
        label: object = None,
        task_id: object = None,
    ) -> None:
        """Record one span with *raw* timestamps from :meth:`now`."""
        if self.enabled:
            self._lanes[wid].append((kind, start, end, label, task_id))

    def span_count(self) -> int:
        return sum(len(lane) for lane in self._lanes)

    def to_trace(self, node: int = HOST_NODE) -> Trace:
        """Materialise a :class:`Trace` with origin-relative seconds
        via the shared :func:`repro.obs.export.build_trace` normaliser
        (spans sorted by start time across all workers, the order the
        simulator's trace naturally has)."""
        return build_trace(
            (node, wid, kind, start - self._t0, end - self._t0, label, task_id)
            for wid, lane in enumerate(self._lanes)
            for kind, start, end, label, task_id in lane
        )

    def busy_per_worker(self) -> dict[int, float]:
        """Total busy seconds per worker lane."""
        return {
            wid: sum(end - start for _kind, start, end, _label, _tid in lane)
            for wid, lane in enumerate(self._lanes)
        }


__all__ = ["HOST_NODE", "WallClockRecorder"]
