"""Multiprocess execution backend: real IPC halo exchange.

Where :class:`~repro.exec.executor.ThreadedExecutor` runs a whole task
graph inside one address space (so "communication" is a pointer hand
over), this backend makes the paper's cost observable: every simulated
cluster *node* becomes a real OS process that owns exactly the tasks
placed on that node, and every node-boundary ghost flow becomes a real
pickled message travelling through a ``multiprocessing`` pipe.  The
base-vs-CA message-count gap -- the whole point of communication
avoidance -- is therefore measured, not modelled: CA sends ~``s``x
fewer inter-process messages for the same problem.

Topology and roles
------------------

* the parent builds a full mesh of duplex pipes between the ``procs``
  node processes plus one control pipe per child, forks the children
  (the graph is inherited copy-on-write; only *messages* are pickled),
  then watches the control pipes from a ``ProcsRunHandle``;
* inside each child a :class:`_NodeExecutor` -- a
  :class:`ThreadedExecutor` restricted to the node's own tasks -- runs
  interior tiles on a work-stealing thread pool exactly as the threads
  backend does;
* a dedicated *courier* thread is the single writer of the peer pipes
  (the paper's per-node communication thread): completed boundary
  tasks enqueue their remote strips and the courier pickles and ships
  one message per (producer, tag, destination node), the same unit the
  static census counts;
* a *receiver* thread drains incoming pipes, injecting remote payloads
  into the executor's payload store and releasing consumer dependency
  counts, and listens on the control pipe for cancel/exit requests.

Failure containment: a kernel error in one process is broadcast as an
abort message to every peer and reported to the parent, so
:class:`~repro.runtime.engine.KernelError` propagates across the
process boundary without deadlocking anyone; cancellation and
parent-death likewise unwind every pool, and the parent terminates
stragglers after a grace period so no orphan workers survive.

Accounting: per-edge message counts and *declared* payload bytes match
:meth:`TaskGraph.census` exactly (one message per producer/tag/
destination, sized by the same max-over-flows rule); actual pickled
wire bytes are tallied separately.  Send/recv spans land in the
standard :class:`~repro.runtime.trace.Trace` schema on comm lanes, so
occupancy analyses and the Perfetto exporter work unchanged.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as conn_wait

import numpy as np

from ..obs import trace_validation_enabled
from ..obs.export import build_trace
from ..obs.metrics import MetricRegistry, MetricsSnapshot
from ..runtime.engine import KernelError, NodeLostError
from ..runtime.graph import TaskGraph
from ..runtime.task import Task, TaskKey
from ..runtime.trace import Trace
from .executor import ExecReport, ThreadedExecutor, ensure_executable
from .futures import RunCancelled, RunHandle

#: Trace worker lanes of the communication threads (compute workers are
#: ``0..jobs-1``; anything negative is a comm lane, as in the engine).
SEND_LANE = -1
RECV_LANE = -2

#: Seconds a process gets to exit voluntarily before it is terminated.
JOIN_GRACE = 5.0

#: Poll interval of the receiver / watcher loops (they mostly sleep in
#: ``connection.wait``; this only bounds reaction time to local flags).
_POLL = 0.1


def default_procs(graph: TaskGraph) -> int:
    """Process count when the caller does not choose one: one per node
    the graph places tasks on."""
    nodes = graph.nodes_used()
    return (max(nodes) + 1) if nodes else 1


def fork_available() -> bool:
    """The backend needs POSIX ``fork`` (the graph, with its closures
    and kernels, is inherited rather than pickled)."""
    return "fork" in mp.get_all_start_methods()


@dataclass
class ProcsReport(ExecReport):
    """An :class:`ExecReport` measured across real processes.

    ``messages`` / ``message_bytes`` count real pipe messages with
    their census-declared payload sizes (so they are directly
    comparable to the simulator's numbers); ``wire_bytes`` is what
    actually crossed the pipes including pickle framing.  ``node_busy``
    has one entry per process, so the inherited ``occupancy(jobs)``
    averages worker busyness over every pool.
    """

    #: number of node processes that executed the graph
    procs: int = 0
    #: bytes that actually crossed the pipes (pickled frames)
    wire_bytes: int = 0
    #: (src, dst) -> (messages, declared payload bytes)
    by_pair: dict = field(default_factory=dict)

    @property
    def worker_occupancy(self) -> float:
        if self.elapsed <= 0 or self.jobs <= 0 or self.procs <= 0:
            return 0.0
        return sum(self.worker_busy.values()) / (
            self.procs * self.jobs * self.elapsed
        )


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------


def _send_plan(
    graph: TaskGraph, node: int
) -> dict[TaskKey, list[tuple[str, int, int]]]:
    """(producer key) -> [(tag, dst node, declared nbytes)] for every
    output of a local task that some other node consumes.  One entry is
    one wire message; sizes follow the census rule (max over the
    destination's flow declarations and the producer's out_nbytes)."""
    plan: dict[TaskKey, list[tuple[str, int, int]]] = {}
    for task in graph:
        if task.node != node:
            continue
        for tag in graph.out_tags.get(task.key, ()):
            per_dst: dict[int, int] = {}
            for ckey in graph.consumers.get((task.key, tag), ()):
                consumer = graph[ckey]
                if consumer.node == node:
                    continue
                size = per_dst.get(consumer.node, task.out_nbytes.get(tag, 0))
                for flow in consumer.inputs:
                    if flow.producer == task.key and flow.tag == tag:
                        size = max(size, flow.nbytes)
                per_dst[consumer.node] = size
            for dst in sorted(per_dst):
                plan.setdefault(task.key, []).append((tag, dst, per_dst[dst]))
    return plan


class _Courier(threading.Thread):
    """Single writer of every outbound peer pipe (one comm thread per
    node, like the engine's overlap mode).  Serialises with pickle,
    tallies the message census, and records send spans."""

    def __init__(
        self,
        peers: dict[int, Connection],
        node: int = -1,
        chaos=None,
    ) -> None:
        super().__init__(name="repro-procs-courier", daemon=True)
        self.peers = peers
        self.node = node
        #: optional fault-injection hook (repro.chaos): a matched
        #: message sleeps its retransmit delay before shipping,
        #: modelling one dropped frame.  None pays nothing.
        self.chaos = chaos
        self._cv = threading.Condition()
        self._queue: deque = deque()
        self._closing = False
        self.messages = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.by_dst: dict[int, list[int]] = {}
        #: (start, end, label) with raw perf_counter stamps
        self.spans: list[tuple[float, float, object]] = []

    def send_data(
        self, dst: int, producer: TaskKey, tag: str, payload, nbytes: int
    ) -> None:
        with self._cv:
            if self._closing:
                return
            self._queue.append(("data", dst, producer, tag, payload, nbytes))
            self._cv.notify()

    def abort_and_stop(self, message: str) -> None:
        """Drop queued data, tell every peer to abort, then drain."""
        with self._cv:
            self._queue.clear()
            for dst in self.peers:
                self._queue.append(("abort", dst, message))
            self._closing = True
            self._cv.notify()

    def stop(self, flush: bool = True) -> None:
        with self._cv:
            if not flush:
                self._queue.clear()
            self._closing = True
            self._cv.notify()

    def run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closing:
                    self._cv.wait()
                if not self._queue:
                    return
                item = self._queue.popleft()
            if item[0] == "data":
                _kind, dst, producer, tag, payload, nbytes = item
                if self.chaos is not None:
                    delay = self.chaos.on_message(producer, tag, self.node, dst)
                    if delay:
                        time.sleep(delay)  # the dropped frame's retransmit wait
                frame = pickle.dumps(
                    ("data", producer, tag, payload), protocol=pickle.HIGHEST_PROTOCOL
                )
                start = time.perf_counter()
                if not self._ship(dst, frame):
                    continue
                end = time.perf_counter()
                self.messages += 1
                self.payload_bytes += nbytes
                self.wire_bytes += len(frame)
                stats = self.by_dst.setdefault(dst, [0, 0, 0])
                stats[0] += 1
                stats[1] += nbytes
                stats[2] += len(frame)
                self.spans.append((start, end, (producer, tag, dst)))
            else:  # abort
                _kind, dst, message = item
                self._ship(
                    dst,
                    pickle.dumps(("abort", message), protocol=pickle.HIGHEST_PROTOCOL),
                )

    def _ship(self, dst: int, frame: bytes) -> bool:
        try:
            self.peers[dst].send_bytes(frame)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False  # peer already gone; its fate is reported elsewhere


class _Receiver(threading.Thread):
    """Single reader of the inbound peer pipes and the control pipe.

    Runs for the whole life of the child -- even after the local pool
    finished -- so a slower peer's courier never blocks on a full pipe.
    """

    def __init__(
        self,
        executor: "_NodeExecutor",
        peers: dict[int, Connection],
        ctrl: Connection,
    ) -> None:
        super().__init__(name="repro-procs-receiver", daemon=True)
        self.executor = executor
        self.peers = peers
        self.ctrl = ctrl
        self.exit_seen = threading.Event()
        # NB: not named _stop -- threading.Thread owns that attribute.
        self._stopped = threading.Event()
        self.recv_messages = 0
        self.recv_bytes = 0
        self.spans: list[tuple[float, float, object]] = []

    def stop(self) -> None:
        self._stopped.set()

    def run(self) -> None:
        sources = {conn: src for src, conn in self.peers.items()}
        live: list[Connection] = [*sources, self.ctrl]
        while live and not self._stopped.is_set():
            for conn in conn_wait(live, timeout=_POLL):
                if conn is self.ctrl:
                    if not self._handle_ctrl():
                        live.remove(conn)
                    continue
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    live.remove(conn)
                    continue
                start = time.perf_counter()
                msg = pickle.loads(frame)
                end = time.perf_counter()
                if msg[0] == "data":
                    _kind, producer, tag, payload = msg
                    self.executor._inject(producer, tag, payload)
                    self.recv_messages += 1
                    self.recv_bytes += len(frame)
                    self.spans.append((start, end, (producer, tag, sources[conn])))
                elif msg[0] == "abort":
                    self.executor._fail_remote(KernelError(msg[1]))

    def _handle_ctrl(self) -> bool:
        """React to a parent request; False when the pipe is dead."""
        try:
            msg = self.ctrl.recv()
        except (EOFError, OSError):
            # The parent vanished: unwind rather than run headless.
            self.executor._fail_remote(
                KernelError("parent process disappeared during the run")
            )
            self.exit_seen.set()
            return False
        if msg[0] == "cancel":
            self.executor._request_cancel()
        elif msg[0] == "exit":
            self.exit_seen.set()
            self._stopped.set()
        return True


class _NodeExecutor(ThreadedExecutor):
    """A :class:`ThreadedExecutor` that owns one node's tasks of a
    larger graph.  Remote inputs arrive via :meth:`_inject`; remote
    outputs leave through the attached courier."""

    def __init__(
        self, graph: TaskGraph, node: int, jobs: int, policy: str, trace: bool,
        metrics: MetricRegistry | None = None,
    ) -> None:
        self.node = node
        self.metrics_node = node  # label this node's metrics correctly
        self._local: list[Task] = [t for t in graph if t.node == node]
        #: (producer, tag) -> local consumer keys (one entry per flow)
        self._remote_consumers: dict[tuple[TaskKey, str], list[TaskKey]] = {}
        self._inject_rr = 0
        self._courier: _Courier | None = None
        super().__init__(graph, jobs=jobs, policy=policy, trace=trace,
                         metrics=metrics)
        self._unfinished = len(self._local)
        self._plan = _send_plan(graph, node)

    def _check_executable(self) -> None:
        pass  # the parent ran ensure_executable() once, before forking

    def _prepare(self) -> list[Task]:
        seeds: list[Task] = []
        for task in self._local:
            self._pending[task.key] = len(task.inputs)
            for flow in task.inputs:
                key = (flow.producer, flow.tag)
                self._refcount[key] = self._refcount.get(key, 0) + 1
                if self.graph[flow.producer].node == self.node:
                    self._release.setdefault(flow.producer, []).append(task.key)
                else:
                    self._remote_consumers.setdefault(key, []).append(task.key)
            if not task.inputs:
                seeds.append(task)
        return seeds

    def _inject(self, producer: TaskKey, tag: str, payload) -> None:
        """A remote payload arrived: store it and release the local
        consumers waiting on it (the receiver thread's entry point)."""
        key = (producer, tag)
        with self._work_ready:
            consumers = self._remote_consumers.pop(key, None)
            if consumers is None or self._failure is not None or self._cancelled:
                return
            refs = self._refcount.get(key, 0)
            if refs:
                self._store[key] = [payload, refs]
            woke = False
            for consumer_key in consumers:
                self._pending[consumer_key] -= 1
                if self._pending[consumer_key] == 0:
                    self._queues.push(self._inject_rr % self.jobs,
                                      self.graph[consumer_key])
                    self._inject_rr += 1
                    woke = True
            if woke:
                self._work_ready.notify_all()

    def _fail_remote(self, exc: BaseException) -> None:
        """A peer (or the parent) asked us to stop with an error."""
        with self._work_ready:
            if self._failure is None:
                self._failure = exc
            self._work_ready.notify_all()

    def _publish(self, task: Task, outputs: dict, wid: int) -> None:
        outputs = self._expected_outputs(task, outputs)
        for payload in outputs.values():
            if isinstance(payload, np.ndarray):
                payload.setflags(write=False)
        # Ship remote copies before taking the lock: pickling is heavy.
        for tag, dst, nbytes in self._plan.get(task.key, ()):
            assert self._courier is not None
            self._courier.send_data(dst, task.key, tag, outputs[tag], nbytes)
        woke = False
        with self._work_ready:
            for tag, payload in outputs.items():
                key = (task.key, tag)
                refs = self._refcount.get(key, 0)
                if refs > 0:
                    self._store[key] = [payload, refs]
                elif key not in self.graph.consumers:
                    self._results[key] = payload  # terminal output
            for flow in task.inputs:
                key = (flow.producer, flow.tag)
                entry = self._store[key]
                entry[1] -= 1
                if entry[1] == 0:
                    del self._store[key]
            self._completed.add(task.key)
            self._unfinished -= 1
            for consumer_key in self._release.get(task.key, ()):
                self._pending[consumer_key] -= 1
                if self._pending[consumer_key] == 0:
                    self._queues.push(wid, self.graph[consumer_key])
                    woke = True
            if woke or self._unfinished == 0:
                self._work_ready.notify_all()


def _relative_spans(spans, epoch):
    return [(start - epoch, end - epoch, label) for start, end, label in spans]


def _node_main(
    node: int,
    graph: TaskGraph,
    jobs: int,
    policy: str,
    want_trace: bool,
    want_metrics: bool,
    epoch: float,
    peers: dict[int, Connection],
    ctrl: Connection,
    unused: list[Connection],
    chaos=None,
) -> None:
    """Entry point of one node process (runs under fork)."""
    for conn in unused:  # inherited fds of other nodes' pipes
        conn.close()
    courier = _Courier(peers, node=node, chaos=chaos)
    receiver: _Receiver | None = None
    registry = MetricRegistry() if want_metrics else None
    try:
        executor = _NodeExecutor(graph, node, jobs=jobs, policy=policy,
                                 trace=want_trace, metrics=registry)
        executor._courier = courier
        receiver = _Receiver(executor, peers, ctrl)
        courier.start()
        handle = executor.start()
        receiver.start()
        try:
            handle.result()
            courier.stop(flush=True)
            outcome = ("done", None)
        except RunCancelled:
            courier.stop(flush=False)
            outcome = ("cancelled", None)
        except BaseException as exc:  # KernelError and anything unexpected
            if not isinstance(exc, KernelError):
                exc = KernelError(f"node {node} failed: {exc!r}")
            courier.abort_and_stop(str(exc))
            outcome = ("error", exc)
        courier.join(timeout=JOIN_GRACE)
        if outcome[0] == "done":
            busy = executor._recorder.busy_per_worker()
            stats = {
                "node": node,
                "completed": list(executor._completed),
                "results": executor._results,
                "worker_busy": busy,
                "steals": executor._steals,
                "messages": courier.messages,
                "payload_bytes": courier.payload_bytes,
                "wire_bytes": courier.wire_bytes,
                "by_dst": {dst: tuple(v) for dst, v in courier.by_dst.items()},
                "send_busy": sum(e - s for s, e, _ in courier.spans),
                "recv_busy": sum(e - s for s, e, _ in receiver.spans),
            }
            if want_trace:
                stats["task_spans"] = [
                    (wid, kind, start - epoch, end - epoch, label, task_id)
                    for wid, lane in enumerate(executor._recorder._lanes)
                    for kind, start, end, label, task_id in lane
                ]
                stats["send_spans"] = _relative_spans(courier.spans, epoch)
                stats["recv_spans"] = _relative_spans(receiver.spans, epoch)
            if registry is not None:
                # Child-registry merge: fold this node's comm tallies in
                # and ship the snapshot home over the control pipe.
                msgs = registry.counter(
                    "messages_total",
                    "remote messages delivered, by lane", "messages")
                mbytes = registry.counter(
                    "message_bytes_total",
                    "declared ghost-copy payload bytes, by lane", "bytes")
                wire = registry.counter(
                    "wire_bytes_total",
                    "pickled frame bytes that crossed the pipes, by lane",
                    "bytes")
                for dst, (n, nbytes, wbytes) in courier.by_dst.items():
                    msgs.inc(n, src=node, dst=dst)
                    mbytes.inc(nbytes, src=node, dst=dst)
                    wire.inc(wbytes, src=node, dst=dst)
                comm = registry.counter(
                    "comm_busy_seconds_total",
                    "communication-thread busy time per node", "seconds")
                if courier.spans:
                    comm.inc(stats["send_busy"], node=node, lane="send")
                if receiver.spans:
                    comm.inc(stats["recv_busy"], node=node, lane="recv")
                # The worker-side counters were already folded in by the
                # executor's own report; snapshot and ship everything.
                stats["metrics"] = registry.snapshot()
            ctrl.send(("done", stats))
        else:
            ctrl.send(outcome)
    except BaseException as exc:  # pragma: no cover - defensive
        try:
            ctrl.send(("error", KernelError(f"node {node} crashed: {exc!r}")))
        except Exception:
            pass
        return
    finally:
        # Keep draining peers until the parent confirms everyone is
        # done, so no peer courier blocks on a full pipe at shutdown.
        if receiver is not None and receiver.is_alive():
            receiver.exit_seen.wait(timeout=JOIN_GRACE)
            receiver.stop()
            receiver.join(timeout=JOIN_GRACE)


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ProcsRunHandle(RunHandle):
    """Handle on an in-flight multiprocess run.  Per-task futures do
    not cross address spaces; everything else (wait / cancel / timeout)
    behaves exactly like the threads backend's handle."""

    def future(self, key):  # noqa: D102 - narrowing the contract
        raise NotImplementedError(
            "per-task futures are not available across process boundaries; "
            "use result()/cancel() on the run handle"
        )


class ProcessExecutor:
    """Execute a finalized multi-node task graph on real OS processes.

    Parameters
    ----------
    graph:
        Kernel-carrying task graph whose tasks are placed on nodes
        ``0..procs-1``.
    procs:
        Node processes; defaults to the number of nodes the graph uses.
    jobs:
        Worker *threads per process*; defaults to spreading the host's
        cores over the processes (at least 1 each).
    policy:
        Per-process pool policy (``"fifo"`` / ``"lifo"`` / ``"priority"``).
    trace:
        Capture a merged wall-clock :class:`Trace` across processes
        (compute lanes per worker, ``-1``/``-2`` comm lanes for
        send/recv).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricRegistry`.  Each node
        process records into its own child registry; the children ship
        their snapshots home over the existing control pipes at
        shutdown and the parent merges them into this registry, so
        merged counters equal single-process totals exactly.
    """

    def __init__(
        self,
        graph: TaskGraph,
        procs: int | None = None,
        jobs: int | None = None,
        policy: str = "lifo",
        trace: bool = False,
        metrics: MetricRegistry | None = None,
    ) -> None:
        if not fork_available():
            raise RuntimeError(
                "the processes backend requires the POSIX 'fork' start "
                "method, which this platform does not provide"
            )
        graph.finalize()
        self.graph = graph
        self.procs = procs if procs is not None else default_procs(graph)
        if self.procs < 1:
            raise ValueError(f"need at least one process, got {self.procs}")
        top = max(graph.nodes_used(), default=0)
        if top >= self.procs:
            raise ValueError(
                f"graph places tasks on node {top} but only {self.procs} "
                "processes were requested"
            )
        if jobs is None:
            jobs = max(1, (os.cpu_count() or 1) // self.procs)
        if jobs < 1:
            raise ValueError(f"need at least one worker thread per process, got {jobs}")
        self.jobs = jobs
        self.policy = policy.lower()
        self.want_trace = trace
        self.metrics = metrics
        ensure_executable(graph, backend="processes")

        #: optional fault-injection hook (repro.chaos), forked into the
        #: node processes' couriers; set by the runner before start().
        self.chaos = None
        #: optional :class:`repro.chaos.checkpoint.CheckpointStore`;
        #: when set, a lost node's :class:`NodeLostError` carries the
        #: latest complete checkpoint step for restart.
        self.checkpoint_store = None

        self._started = False
        self._processes: list[mp.Process] = []
        self._ctrl: dict[int, Connection] = {}
        self._handle: ProcsRunHandle | None = None
        self._epoch = 0.0
        self._cancel_at: float | None = None
        self._lock = threading.Lock()

    @property
    def processes(self) -> list[mp.Process]:
        """The node processes (for liveness checks in tests/tools)."""
        return list(self._processes)

    def progress(self) -> dict:
        """Live view for :mod:`repro.obs.monitor`.  Children report
        their task tallies only at shutdown, so mid-run the parent can
        observe process liveness and elapsed time, not task counts."""
        alive = sum(1 for p in self._processes if p.is_alive())
        return {
            "total": len(self.graph),
            "elapsed_s": (time.perf_counter() - self._epoch)
            if self._started else 0.0,
            "procs_alive": alive,
            "procs": self.procs,
        }

    # -- reuse contract (warm pools) -------------------------------------

    def _run_in_flight(self) -> bool:
        return self._started and not (
            self._handle is not None and self._handle.done()
        )

    def reset(self) -> "ProcessExecutor":
        """Re-arm this executor for another run of the same graph.
        The node processes themselves are per-run (they inherit the
        graph via fork at :meth:`start`); what reset restores is the
        parent-side lifecycle so a pool can hold one executor object
        per slot.  Raises while a run is still in flight."""
        if self._run_in_flight():
            raise RuntimeError(
                "cannot reset an executor while its run is in flight"
            )
        self._started = False
        self._processes = []
        self._ctrl = {}
        self._handle = None
        self._epoch = 0.0
        self._cancel_at = None
        return self

    def is_healthy(self) -> bool:
        """Whether this executor is usable or running cleanly: every
        forked node process alive mid-run, every one reaped with a
        clean outcome after; a failed/cancelled run leaves it
        unhealthy until :meth:`reset`."""
        if not self._started:
            return True
        handle = self._handle
        if handle is None or not handle.done():
            return all(p.is_alive() for p in self._processes)
        try:
            return handle.exception(timeout=0) is None
        except Exception:  # pragma: no cover - defensive
            return False

    # -- public API -----------------------------------------------------

    def start(self) -> ProcsRunHandle:
        """Fork the node processes; returns immediately with the handle."""
        if self._started:
            raise RuntimeError(
                "a ProcessExecutor instance runs exactly once per "
                "reset(); call reset() to re-arm it for another run"
            )
        self._started = True
        ctx = mp.get_context("fork")

        # Full mesh of duplex pipes (data + aborts can always flow).
        ends: dict[int, dict[int, Connection]] = {n: {} for n in range(self.procs)}
        for a, b in itertools.combinations(range(self.procs), 2):
            conn_a, conn_b = ctx.Pipe(duplex=True)
            ends[a][b] = conn_a
            ends[b][a] = conn_b
        ctrl_pairs = [ctx.Pipe(duplex=True) for _ in range(self.procs)]
        self._ctrl = {n: pair[0] for n, pair in enumerate(ctrl_pairs)}

        everything: list[Connection] = [
            *(c for per in ends.values() for c in per.values()),
            *(c for pair in ctrl_pairs for c in pair),
        ]
        self._epoch = time.perf_counter()
        for node in range(self.procs):
            mine = {*ends[node].values(), ctrl_pairs[node][1]}
            unused = [c for c in everything if c not in mine]
            proc = ctx.Process(
                target=_node_main,
                args=(node, self.graph, self.jobs, self.policy, self.want_trace,
                      self.metrics is not None, self._epoch, ends[node],
                      ctrl_pairs[node][1], unused, self.chaos),
                name=f"repro-procs-{node}",
                daemon=True,
            )
            proc.start()
            self._processes.append(proc)
        # The children own these now; drop the parent's copies so EOFs
        # propagate.
        for per in ends.values():
            for conn in per.values():
                conn.close()
        for _parent_end, child_end in ctrl_pairs:
            child_end.close()

        self._handle = ProcsRunHandle(self._request_cancel)
        threading.Thread(
            target=self._watch, name="repro-procs-watch", daemon=True
        ).start()
        return self._handle

    def run(self, timeout: float | None = None) -> ProcsReport:
        """Start, wait, and return the report (the blocking front door)."""
        return self.start().result(timeout)

    # -- lifecycle -------------------------------------------------------

    def _request_cancel(self) -> None:
        with self._lock:
            if self._cancel_at is None:
                self._cancel_at = time.monotonic()
            conns = list(self._ctrl.values())
        for conn in conns:
            try:
                conn.send(("cancel",))
            except (BrokenPipeError, OSError):
                pass

    def _watch(self) -> None:
        """Collect every child's outcome, reap the processes, finish
        the handle.  Runs on a daemon thread in the parent."""
        waiting = dict(self._ctrl)  # node -> conn, removed once reported
        sentinels = {p.sentinel: node for node, p in enumerate(self._processes)}
        outcomes: dict[int, tuple] = {}
        first_error: BaseException | None = None
        forced = False

        def fail(node: int, exc: BaseException) -> None:
            nonlocal first_error
            outcomes.setdefault(node, ("error", exc))
            if first_error is None:
                first_error = exc
                # Peers may now be waiting on inputs that will never
                # come; tell everyone to stop.
                self._request_cancel()

        def lost(node: int, why: str) -> NodeLostError:
            """The typed loss report: which node, and the last complete
            checkpoint a recovery layer may restart from."""
            step = None
            if self.checkpoint_store is not None:
                try:
                    step = self.checkpoint_store.latest_complete()
                except Exception:  # pragma: no cover - a torn store
                    step = None
            return NodeLostError(why, node=node, checkpoint_step=step)

        while waiting:
            with self._lock:
                cancel_at = self._cancel_at
            if cancel_at is not None and time.monotonic() - cancel_at > JOIN_GRACE:
                # A pool ignored cancellation (e.g. a kernel stuck in C
                # code): forcibly terminate whoever has not reported.
                for node in list(waiting):
                    del waiting[node]
                    outcomes.setdefault(node, ("cancelled", None))
                forced = True
                break
            ready = conn_wait(
                [*waiting.values(), *sentinels], timeout=_POLL
            )
            for item in ready:
                if item in sentinels:
                    node = sentinels.pop(item)
                    if node in waiting:
                        del waiting[node]
                        code = self._processes[node].exitcode
                        fail(node, lost(node, (
                            f"node {node} process died without reporting "
                            f"(exit code {code})"
                        )))
                    continue
                node = next(n for n, c in waiting.items() if c is item)
                try:
                    outcome = item.recv()
                except (EOFError, OSError):
                    del waiting[node]
                    fail(node, lost(
                        node, f"node {node} closed its control pipe mid-run"
                    ))
                    continue
                del waiting[node]
                outcomes[node] = outcome
                if outcome[0] == "error":
                    fail(node, outcome[1])
        t_end = time.perf_counter()

        for conn in self._ctrl.values():  # release the children
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        self._reap(force=forced)
        for conn in self._ctrl.values():
            try:
                conn.close()
            except OSError:
                pass

        handle = self._handle
        assert handle is not None
        cancelled = [n for n, o in outcomes.items() if o[0] == "cancelled"]
        if first_error is not None:
            handle._finish(None, first_error)
        elif cancelled:
            handle._finish(None, RunCancelled(
                f"run cancelled with {len(cancelled)} of {self.procs} "
                "node processes unfinished"
            ))
        else:
            handle._finish(self._build_report(outcomes, t_end), None)

    def _reap(self, force: bool = False) -> None:
        if not force:  # give everyone a chance to exit voluntarily
            deadline = time.monotonic() + JOIN_GRACE
            for proc in self._processes:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._processes:
            if proc.is_alive():
                proc.terminate()
        for proc in self._processes:
            proc.join(timeout=JOIN_GRACE)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=JOIN_GRACE)

    # -- report ----------------------------------------------------------

    def _build_report(self, outcomes: dict[int, tuple], t_end: float) -> ProcsReport:
        elapsed = t_end - self._epoch
        useful, redundant = self.graph.total_flops()
        local_edges = local_bytes = 0
        for task in self.graph:
            for flow in task.inputs:
                if self.graph[flow.producer].node == task.node:
                    local_edges += 1
                    local_bytes += flow.nbytes
        results: dict = {}
        completed: set = set()
        worker_busy: dict[int, float] = {}
        node_busy: dict[int, float] = {}
        comm_busy: dict[int, float] = {}
        by_pair: dict[tuple[int, int], tuple[int, int]] = {}
        messages = payload_bytes = wire_bytes = steals = 0
        trace: Trace | None = None
        spans: list[tuple] = []
        for node, outcome in sorted(outcomes.items()):
            stats = outcome[1]
            results.update(stats["results"])
            completed.update(stats["completed"])
            for wid, busy in stats["worker_busy"].items():
                worker_busy[node * self.jobs + wid] = busy
            node_busy[node] = sum(stats["worker_busy"].values())
            comm_busy[node] = stats["send_busy"] + stats["recv_busy"]
            steals += stats["steals"]
            messages += stats["messages"]
            payload_bytes += stats["payload_bytes"]
            wire_bytes += stats["wire_bytes"]
            for dst, (msgs, nbytes, _wire) in stats["by_dst"].items():
                by_pair[(node, dst)] = (msgs, nbytes)
            if self.want_trace:
                for wid, kind, start, end, label, task_id in stats["task_spans"]:
                    spans.append((node, wid, kind, start, end, label, task_id))
                # Comm labels are (producer, tag, peer) tuples; the
                # producer key is the span's task identity.
                for start, end, label in stats["send_spans"]:
                    spans.append((node, SEND_LANE, "send", start, end, label, label[0]))
                for start, end, label in stats["recv_spans"]:
                    spans.append((node, RECV_LANE, "recv", start, end, label, label[0]))
            if self.metrics is not None and "metrics" in stats:
                self.metrics.merge(stats["metrics"])
        if self.want_trace:
            trace = build_trace(spans)
            if trace_validation_enabled():
                trace.validate()
        snapshot: MetricsSnapshot | None = None
        if self.metrics is not None:
            self.metrics.gauge(
                "run_elapsed_seconds", "wall-clock makespan of the run",
                "seconds").set(elapsed)
            snapshot = self.metrics.snapshot()
        return ProcsReport(
            elapsed=elapsed,
            tasks_run=len(completed),
            messages=messages,
            message_bytes=payload_bytes,
            local_edges=local_edges,
            local_bytes=local_bytes,
            useful_flops=useful,
            redundant_flops=redundant,
            node_busy=node_busy,
            comm_busy=comm_busy,
            max_comm_backlog=0,
            trace=trace,
            results=results,
            metrics=snapshot,
            jobs=self.jobs,
            policy=self.policy,
            steals=steals,
            worker_busy=worker_busy,
            completed=frozenset(completed),
            procs=self.procs,
            wire_bytes=wire_bytes,
            by_pair=by_pair,
        )


def execute_procs(
    graph: TaskGraph,
    procs: int | None = None,
    jobs: int | None = None,
    policy: str = "lifo",
    trace: bool = False,
    timeout: float | None = None,
    metrics: MetricRegistry | None = None,
) -> ProcsReport:
    """One-shot convenience: run ``graph`` on a fresh process pool."""
    return ProcessExecutor(
        graph, procs=procs, jobs=jobs, policy=policy, trace=trace,
        metrics=metrics,
    ).run(timeout)


__all__ = [
    "JOIN_GRACE",
    "ProcessExecutor",
    "ProcsReport",
    "ProcsRunHandle",
    "RECV_LANE",
    "SEND_LANE",
    "default_procs",
    "execute_procs",
    "fork_available",
]
