"""repro.exec -- real shared-memory parallel execution of task graphs.

Where :mod:`repro.runtime.engine` *simulates* a distributed machine on
a virtual clock, this package *executes* the same task graphs on the
actual host: a pool of worker threads with per-worker queues and work
stealing runs the numpy kernels (which release the GIL) concurrently,
records wall-clock traces in the existing trace schema, and reports
measured performance side by side with the simulator's predictions.

Entry points
------------
* :func:`repro.core.runner.run` with ``backend="threads", jobs=N`` --
  the front door almost everyone wants;
* :class:`ThreadedExecutor` / :func:`execute` -- run an arbitrary
  finalized graph directly;
* :mod:`repro.exec.compare` -- simulated-vs-measured reports.
"""

from .compare import (
    BackendComparison,
    SpeedupPoint,
    compare_all,
    compare_backends,
    format_comparison,
    speedup_curve,
)
from .executor import ExecReport, ThreadedExecutor, default_jobs, execute
from .futures import ExecutionTimeout, RunCancelled, RunHandle, TaskFuture, TaskRecord
from .policies import EXEC_POLICIES, make_work_queues
from .wallclock_trace import HOST_NODE, WallClockRecorder

#: Backend names :func:`repro.core.runner.run` accepts.
BACKENDS = ("sim", "threads")

__all__ = [
    "BACKENDS",
    "BackendComparison",
    "EXEC_POLICIES",
    "ExecReport",
    "ExecutionTimeout",
    "HOST_NODE",
    "RunCancelled",
    "RunHandle",
    "SpeedupPoint",
    "TaskFuture",
    "TaskRecord",
    "ThreadedExecutor",
    "WallClockRecorder",
    "compare_all",
    "compare_backends",
    "default_jobs",
    "execute",
    "format_comparison",
    "make_work_queues",
    "speedup_curve",
]
