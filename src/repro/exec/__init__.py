"""repro.exec -- real parallel execution of task graphs.

Where :mod:`repro.runtime.engine` *simulates* a distributed machine on
a virtual clock, this package *executes* the same task graphs on the
actual host, at two levels of realism:

* ``backend="threads"`` -- one shared-memory work-stealing thread pool
  runs the numpy kernels (which release the GIL) concurrently;
  communication is free, as within one cluster node;
* ``backend="processes"`` -- one OS process per simulated node, each
  running its own thread pool; node-boundary ghost exchanges are real
  pickled messages over ``multiprocessing`` pipes, so the base-vs-CA
  message-count gap is *measured*, not modelled.

Both record wall-clock traces in the existing trace schema and report
measured performance side by side with the simulator's predictions.

Entry points
------------
* :func:`repro.core.runner.run` with ``backend="threads", jobs=N`` or
  ``backend="processes", procs=N`` -- the front door almost everyone
  wants;
* :class:`ThreadedExecutor` / :func:`execute` and
  :class:`ProcessExecutor` / :func:`execute_procs` -- run an arbitrary
  finalized graph directly;
* :mod:`repro.exec.compare` -- simulated-vs-measured reports.
"""

from .backends import BACKEND_DESCRIPTIONS, BACKENDS, MEASURED_BACKENDS
from .compare import (
    BackendComparison,
    SpeedupPoint,
    compare_all,
    compare_backends,
    format_comparison,
    speedup_curve,
)
from .executor import (
    ExecReport,
    ThreadedExecutor,
    default_jobs,
    ensure_executable,
    execute,
    max_flow_bytes,
)
from ..runtime.engine import KernelError, NodeLostError
from .futures import ExecutionTimeout, RunCancelled, RunHandle, TaskFuture, TaskRecord
from .policies import EXEC_POLICIES, make_work_queues
from .procs import (
    ProcessExecutor,
    ProcsReport,
    ProcsRunHandle,
    default_procs,
    execute_procs,
    fork_available,
)
from .wallclock_trace import HOST_NODE, WallClockRecorder

__all__ = [
    "BACKENDS",
    "BACKEND_DESCRIPTIONS",
    "MEASURED_BACKENDS",
    "BackendComparison",
    "EXEC_POLICIES",
    "ExecReport",
    "ExecutionTimeout",
    "HOST_NODE",
    "KernelError",
    "NodeLostError",
    "ProcessExecutor",
    "ProcsReport",
    "ProcsRunHandle",
    "RunCancelled",
    "RunHandle",
    "SpeedupPoint",
    "TaskFuture",
    "TaskRecord",
    "ThreadedExecutor",
    "WallClockRecorder",
    "compare_all",
    "compare_backends",
    "default_jobs",
    "default_procs",
    "ensure_executable",
    "execute",
    "execute_procs",
    "fork_available",
    "format_comparison",
    "make_work_queues",
    "max_flow_bytes",
    "speedup_curve",
]
