"""Shared-memory parallel executor for finalized task graphs.

This is the "real hardware" counterpart of the discrete-event
simulator in :mod:`repro.runtime.engine`: it runs the *same*
:class:`~repro.runtime.graph.TaskGraph` objects (base-PaRSEC,
CA-PaRSEC, PETSc-lite -- any graph whose tasks carry kernels) on a
pool of worker threads.  The numpy kernels release the GIL, so tiles
genuinely execute concurrently on multiple cores.

Structure, in the style of high-throughput executors (Parsl's HTEX,
PaRSEC's per-core queues):

* the ready set is seeded from the in-degree-0 tasks, distributed
  round-robin over per-worker queues;
* each worker drains its own queue and *steals* from its neighbours
  when empty (:mod:`repro.exec.policies` selects the discipline);
* completing a task publishes its outputs into a refcounted payload
  store and releases its consumers' dependency counts; tasks reaching
  zero become ready on the completing worker's queue (data-locality:
  the consumer's inputs are cache-hot there);
* one mutex guards the bookkeeping only -- kernels run outside it.

The report mirrors :class:`~repro.runtime.engine.EngineReport` (it
*is* one, extended), so :class:`~repro.core.report.RunResult`, the
occupancy/Gantt analyses and the Chrome-trace exporter all work
unchanged on measured runs.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from ..obs import trace_validation_enabled
from ..obs.metrics import MetricRegistry, MetricsSnapshot
from ..runtime.engine import EngineReport, KernelError
from ..runtime.graph import TaskGraph
from ..runtime.task import Task, TaskKey
from .futures import RunCancelled, RunHandle, TaskRecord
from .policies import make_work_queues
from .wallclock_trace import HOST_NODE, WallClockRecorder


def default_jobs() -> int:
    """Worker count when the caller does not choose one: every core."""
    return os.cpu_count() or 1


def max_flow_bytes(graph: TaskGraph, producer: TaskKey, tag: str) -> int:
    """Largest payload size any consumer declared for (producer, tag)."""
    biggest = 0
    for consumer_key in graph.consumers.get((producer, tag), ()):
        for flow in graph[consumer_key].inputs:
            if flow.producer == producer and flow.tag == tag:
                biggest = max(biggest, flow.nbytes)
    return biggest


def ensure_executable(graph: TaskGraph, backend: str = "threads") -> None:
    """Refuse timing-only graphs up front: a task without a kernel can
    satisfy control edges only (zero-byte flows).  Shared by every
    real-execution backend (threads and processes)."""
    for task in graph:
        if task.kernel is not None:
            continue
        for tag in graph.out_tags.get(task.key, ()):
            if task.out_nbytes.get(tag, 0) or max_flow_bytes(graph, task.key, tag):
                raise ValueError(
                    f"task {task.key!r} has no kernel but consumers expect "
                    f"payload {tag!r}; the {backend} backend needs a graph "
                    "built with with_kernels=True (runner mode 'execute')"
                )


@dataclass
class ExecReport(EngineReport):
    """An :class:`EngineReport` whose times are wall-clock seconds.

    ``elapsed`` is measured, ``node_busy`` holds the single host node's
    total worker-busy seconds, and the extra fields describe the
    thread pool itself.  ``messages`` is always 0: shared memory moves
    no network messages (the whole point of comparing against the
    simulator's modelled cluster).
    """

    #: number of worker threads that executed the graph
    jobs: int = 0
    #: scheduling policy the pool ran under
    policy: str = "lifo"
    #: tasks acquired by stealing from another worker's queue
    steals: int = 0
    #: busy wall-clock seconds per worker thread
    worker_busy: dict[int, float] = field(default_factory=dict)
    #: keys of every task that completed (the determinism tests compare
    #: these sets across runs -- schedules may differ, sets may not)
    completed: frozenset = frozenset()

    @property
    def worker_occupancy(self) -> float:
        """Mean busy fraction of the worker threads over the run."""
        if self.elapsed <= 0 or self.jobs <= 0:
            return 0.0
        return sum(self.worker_busy.values()) / (self.jobs * self.elapsed)


class ThreadedExecutor:
    """Execute a finalized, kernel-carrying task graph on real threads.

    Parameters
    ----------
    graph:
        The task graph; every task that owns consumed data flows must
        carry a kernel (build with ``with_kernels=True``).
    jobs:
        Worker threads; defaults to the host's core count.
    policy:
        ``"fifo"`` / ``"lifo"`` / ``"priority"`` -- same names as the
        simulator's scheduler (see :mod:`repro.exec.policies`).
    trace:
        Capture a wall-clock :class:`~repro.runtime.trace.Trace`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricRegistry` the run
        emits into.  Hot-path tallies are per-worker (contention-free);
        the registry is populated once at report time.
    """

    #: Node label the executor's metrics are emitted under (the procs
    #: backend's per-node subclass overrides this with its node id).
    metrics_node = HOST_NODE

    def __init__(
        self,
        graph: TaskGraph,
        jobs: int | None = None,
        policy: str = "lifo",
        trace: bool = False,
        metrics: MetricRegistry | None = None,
    ) -> None:
        graph.finalize()
        self.graph = graph
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"need at least one worker thread, got {self.jobs}")
        self.policy = policy.lower()
        self.want_trace = trace
        self.metrics = metrics
        # The lock/condition outlive resets (a warm pool may hold
        # references); everything per-run lives in _reset_state().
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._reset_state()
        self._check_executable()

    def _reset_state(self) -> None:
        """(Re)initialise every piece of per-run state, so one
        executor instance can run graph after graph on a warm pool."""
        #: per-worker kind tallies; worker ``w`` is the only writer of
        #: slot ``w``, so recording is lock-free like the recorder lanes
        self._kind_counts: list[dict[str, int]] | None = (
            [{} for _ in range(self.jobs)] if self.metrics is not None else None
        )
        self._queues = make_work_queues(self.policy, self.jobs)

        # Bookkeeping shared by all workers, guarded by _lock.
        self._pending: dict[TaskKey, int] = {}
        self._release: dict[TaskKey, list[TaskKey]] = {}
        self._store: dict[tuple[TaskKey, str], list] = {}
        self._refcount: dict[tuple[TaskKey, str], int] = {}
        self._results: dict[tuple[TaskKey, str], object] = {}
        self._completed: set[TaskKey] = set()
        self._unfinished = len(self.graph)
        self._steals = 0
        self._failure: BaseException | None = None
        self._cancelled = False
        self._started = False

        self._recorder = WallClockRecorder(self.jobs)
        self._handle: RunHandle | None = None
        self._threads: list[threading.Thread] = []
        self._t_begin = 0.0
        self._t_end = 0.0

    # -- reuse contract (warm pools) -------------------------------------

    def _run_in_flight(self) -> bool:
        return self._started and not (
            self._handle is not None and self._handle.done()
        )

    def reset(self, graph: TaskGraph | None = None) -> "ThreadedExecutor":
        """Re-arm this executor for another run, optionally binding a
        new ``graph``.  The warm-pool reuse contract: after a run
        completes (cleanly or not), ``reset()`` restores the instance
        to its freshly-constructed state -- same jobs/policy/metrics,
        empty bookkeeping -- without reallocating the executor itself.
        Raises while a run is still in flight."""
        if self._run_in_flight():
            raise RuntimeError(
                "cannot reset an executor while its run is in flight"
            )
        if graph is not None:
            graph.finalize()
            self.graph = graph
        self._reset_state()
        self._check_executable()
        return self

    def is_healthy(self) -> bool:
        """Whether this executor is usable (or currently running
        cleanly): a failed or cancelled run leaves it unhealthy until
        :meth:`reset`."""
        if not self._started:
            return True
        return self._failure is None and not self._cancelled

    # -- validation -----------------------------------------------------

    def _check_executable(self) -> None:
        ensure_executable(self.graph, backend="threads")

    def _max_flow_bytes(self, producer: TaskKey, tag: str) -> int:
        return max_flow_bytes(self.graph, producer, tag)

    # -- setup -----------------------------------------------------------

    def _prepare(self) -> list[Task]:
        """Build pending counts, release lists and payload refcounts;
        returns the in-degree-0 seed tasks in graph order."""
        seeds: list[Task] = []
        for task in self.graph:
            self._pending[task.key] = len(task.inputs)
            for flow in task.inputs:
                self._release.setdefault(flow.producer, []).append(task.key)
                key = (flow.producer, flow.tag)
                self._refcount[key] = self._refcount.get(key, 0) + 1
            if not task.inputs:
                seeds.append(task)
        return seeds

    def _seed(self, seeds: list[Task]) -> None:
        for idx, task in enumerate(self._queues.seed_order(seeds)):
            self._queues.push(idx % self.jobs, task)

    # -- public API --------------------------------------------------------

    def start(self) -> RunHandle:
        """Launch the worker pool; returns immediately with the handle."""
        if self._started:
            raise RuntimeError(
                "a ThreadedExecutor instance runs exactly once per "
                "reset(); call reset() to re-arm it for another graph"
            )
        self._started = True
        self._handle = RunHandle(self._request_cancel)
        self._seed(self._prepare())
        self._t_begin = self._recorder.start()
        self._threads = [
            threading.Thread(
                target=self._worker, args=(wid,), name=f"repro-exec-{wid}", daemon=True
            )
            for wid in range(self.jobs)
        ]
        watcher = threading.Thread(
            target=self._finalise, name="repro-exec-join", daemon=True
        )
        for t in self._threads:
            t.start()
        watcher.start()
        return self._handle

    def run(self, timeout: float | None = None) -> ExecReport:
        """Start, wait, and return the report (the blocking front door)."""
        return self.start().result(timeout)

    # -- lifecycle ----------------------------------------------------------

    def _request_cancel(self) -> None:
        with self._work_ready:
            self._cancelled = True
            self._work_ready.notify_all()

    def _finalise(self) -> None:
        for t in self._threads:
            t.join()
        self._t_end = self._recorder.now()
        handle = self._handle
        assert handle is not None
        if self._failure is not None:
            handle._finish(None, self._failure)
        elif self._unfinished > 0:  # cancelled mid-flight
            handle._finish(
                None,
                RunCancelled(
                    f"run cancelled with {self._unfinished} of "
                    f"{len(self.graph)} tasks unfinished"
                ),
            )
        else:
            handle._finish(self._build_report(), None)

    def _publish_metrics(self, elapsed: float) -> MetricsSnapshot | None:
        """Fold the per-worker tallies into the attached registry and
        return its snapshot (called once, at report time)."""
        reg = self.metrics
        if reg is None:
            return None
        node = self.metrics_node
        tasks = reg.counter("tasks_executed_total",
                            "tasks executed, by kind", "tasks")
        assert self._kind_counts is not None
        for kinds in self._kind_counts:
            for kind, count in kinds.items():
                tasks.inc(count, kind=kind)
        if self._steals:
            reg.counter("tasks_stolen_total",
                        "tasks acquired by work stealing", "tasks").inc(
                self._steals, node=node)
        busy = reg.counter("worker_busy_seconds_total",
                           "busy time per compute worker", "seconds")
        for wid, seconds in self._recorder.busy_per_worker().items():
            busy.inc(seconds, node=node, worker=wid)
        reg.gauge("run_elapsed_seconds",
                  "wall-clock makespan of the run", "seconds").set(elapsed)
        reg.gauge("tasks_total", "tasks in the executed graph",
                  "tasks").set(len(self.graph))
        reg.gauge("workers_per_node", "worker threads per node/process",
                  "workers").set(self.jobs)
        return reg.snapshot()

    def progress(self) -> dict:
        """Live view of the run for :mod:`repro.obs.monitor`.  Reads
        shared integers without the lock -- a sample may be one task
        stale, which is fine for a progress display."""
        total = len(self.graph)
        done = total - self._unfinished
        now = self._recorder.now()
        return {
            "done": done,
            "total": total,
            "elapsed_s": (now - self._t_begin) if self._started else 0.0,
            "busy_s": sum(self._recorder.busy_per_worker().values()),
            "workers": self.jobs,
            "steals": self._steals,
        }

    def _build_report(self) -> ExecReport:
        elapsed = self._t_end - self._t_begin
        useful, redundant = self.graph.total_flops()
        worker_busy = self._recorder.busy_per_worker()
        local_edges = sum(len(t.inputs) for t in self.graph)
        local_bytes = sum(f.nbytes for t in self.graph for f in t.inputs)
        trace = self._recorder.to_trace() if self.want_trace else None
        if trace is not None and trace_validation_enabled():
            trace.validate()
        return ExecReport(
            elapsed=elapsed,
            tasks_run=len(self._completed),
            messages=0,
            message_bytes=0,
            local_edges=local_edges,
            local_bytes=local_bytes,
            useful_flops=useful,
            redundant_flops=redundant,
            node_busy={HOST_NODE: sum(worker_busy.values())},
            comm_busy={},
            max_comm_backlog=0,
            trace=trace,
            results=self._results,
            metrics=self._publish_metrics(elapsed),
            jobs=self.jobs,
            policy=self.policy,
            steals=self._steals,
            worker_busy=worker_busy,
            completed=frozenset(self._completed),
        )

    # -- worker loop ----------------------------------------------------------

    def _next_task(self, wid: int) -> Task | None:
        """Pop local work, steal, or sleep; ``None`` means shut down."""
        with self._work_ready:
            while True:
                if self._failure is not None or self._cancelled:
                    return None
                task = self._queues.pop_local(wid)
                if task is None:
                    task = self._queues.steal(wid)
                    if task is not None:
                        self._steals += 1
                if task is not None:
                    return task
                if self._unfinished == 0:
                    return None
                self._work_ready.wait()

    def _worker(self, wid: int) -> None:
        recorder = self._recorder
        while True:
            task = self._next_task(wid)
            if task is None:
                return
            try:
                with self._lock:
                    inputs = self._gather_inputs(task)
                start = recorder.now()
                outputs = (
                    dict(task.kernel(inputs, task)) if task.kernel is not None else {}
                )
                end = recorder.now()
                self._publish(task, outputs, wid)
            except Exception as exc:  # noqa: BLE001 - forwarded to the handle
                if not isinstance(exc, KernelError):
                    exc = KernelError(
                        f"kernel of task {task.key!r} (kind {task.kind!r}) "
                        f"failed: {exc}"
                    )
                with self._work_ready:
                    if self._failure is None:
                        self._failure = exc
                    self._work_ready.notify_all()
                return
            recorder.record(wid, task.kind, start, end, task.key, task_id=task.key)
            if self._kind_counts is not None:
                kinds = self._kind_counts[wid]
                kinds[task.kind] = kinds.get(task.kind, 0) + 1
            handle = self._handle
            if handle is not None:
                handle._record_done(
                    task.key,
                    TaskRecord(
                        key=task.key,
                        worker=wid,
                        start=start - self._t_begin,
                        end=end - self._t_begin,
                        kind=task.kind,
                    ),
                )

    # -- dataflow bookkeeping ---------------------------------------------------

    def _gather_inputs(self, task: Task) -> dict[tuple[TaskKey, str], object]:
        inputs: dict[tuple[TaskKey, str], object] = {}
        for flow in task.inputs:
            key = (flow.producer, flow.tag)
            entry = self._store.get(key)
            if entry is None:
                raise RuntimeError(
                    f"payload {key!r} missing when task {task.key!r} started"
                )
            inputs[key] = entry[0]
        return inputs

    def _expected_outputs(self, task: Task, outputs: dict) -> dict:
        """Same contract as the simulator: every consumed tag must be
        produced; zero-byte control edges are auto-filled with None."""
        expected = set(self.graph.out_tags.get(task.key, ()))
        missing = expected - set(outputs)
        for tag in missing:
            if task.out_nbytes.get(tag, 0) == 0 and self._max_flow_bytes(task.key, tag) == 0:
                outputs[tag] = None
            else:
                raise RuntimeError(
                    f"task {task.key!r} produced tags {sorted(set(outputs))} "
                    f"but consumers expect {sorted(expected)}"
                )
        return outputs

    def _publish(self, task: Task, outputs: dict, wid: int) -> None:
        """Store outputs, free inputs, release consumers -- one
        critical section; newly-ready tasks land on worker ``wid``."""
        outputs = self._expected_outputs(task, outputs)
        for payload in outputs.values():
            if isinstance(payload, np.ndarray):
                payload.setflags(write=False)  # catch cross-thread mutation
        woke = False
        with self._work_ready:
            for tag, payload in outputs.items():
                key = (task.key, tag)
                refs = self._refcount.get(key, 0)
                if refs == 0:
                    self._results[key] = payload  # terminal output
                else:
                    self._store[key] = [payload, refs]
            for flow in task.inputs:
                key = (flow.producer, flow.tag)
                entry = self._store[key]
                entry[1] -= 1
                if entry[1] == 0:
                    del self._store[key]
            self._completed.add(task.key)
            self._unfinished -= 1
            for consumer_key in self._release.get(task.key, ()):
                self._pending[consumer_key] -= 1
                if self._pending[consumer_key] == 0:
                    self._queues.push(wid, self.graph[consumer_key])
                    woke = True
            if woke or self._unfinished == 0:
                self._work_ready.notify_all()


def execute(
    graph: TaskGraph,
    jobs: int | None = None,
    policy: str = "lifo",
    trace: bool = False,
    timeout: float | None = None,
    metrics: MetricRegistry | None = None,
) -> ExecReport:
    """One-shot convenience: run ``graph`` on a fresh pool."""
    return ThreadedExecutor(
        graph, jobs=jobs, policy=policy, trace=trace, metrics=metrics
    ).run(timeout)


__all__ = [
    "ExecReport",
    "ThreadedExecutor",
    "default_jobs",
    "ensure_executable",
    "execute",
    "max_flow_bytes",
]
