"""Work-distribution policies for the threaded backend.

These mirror :mod:`repro.runtime.scheduler` -- the same three names
(``"fifo"``, ``"lifo"``, ``"priority"``) select the same ordering
semantics -- but the shape is different: instead of one ready queue
per simulated node, the executor keeps one local queue *per worker
thread* plus work stealing, the structure of Cilk-style runtimes and
of PaRSEC's own per-core mempools.

All queue operations are called under the executor's lock, so the
structures themselves need no internal synchronisation.

* ``lifo`` -- owner pops its newest task (depth-first, cache-hot),
  thieves steal the oldest (breadth-first), the classic Chase-Lev
  discipline and the backend default.
* ``fifo`` -- owner pops its oldest task; thieves steal the newest.
* ``priority`` -- per-worker max-heaps on :attr:`Task.priority`
  (boundary-first for the stencil graphs); thieves take the victim's
  best task, preserving the "communication tasks first" heuristic
  across the whole pool.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..runtime.scheduler import POLICIES
from ..runtime.task import Task

#: Policy names accepted by the threaded backend -- deliberately the
#: same set the simulator's scheduler exposes, so ablations sweep one
#: name across both backends.
EXEC_POLICIES = tuple(sorted(POLICIES))


class WorkQueues:
    """Per-worker task queues with stealing; base for the two shapes."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("need at least one worker")
        self.jobs = jobs

    def push(self, wid: int, task: Task) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def pop_local(self, wid: int) -> Task | None:  # pragma: no cover - abstract
        raise NotImplementedError

    def steal(self, wid: int) -> Task | None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def seed_order(self, tasks: list[Task]) -> list[Task]:
        """Order the in-degree-0 tasks before round-robin seeding."""
        return tasks


class DequeQueues(WorkQueues):
    """Deque-backed queues covering both FIFO and LIFO disciplines."""

    def __init__(self, jobs: int, lifo: bool) -> None:
        super().__init__(jobs)
        self._qs: list[deque[Task]] = [deque() for _ in range(jobs)]
        self._lifo = lifo

    def push(self, wid: int, task: Task) -> None:
        self._qs[wid].append(task)

    def pop_local(self, wid: int) -> Task | None:
        q = self._qs[wid]
        if not q:
            return None
        return q.pop() if self._lifo else q.popleft()

    def steal(self, wid: int) -> Task | None:
        # Scan victims round-robin from the thief's right neighbour and
        # take from the end opposite the owner's, minimising contention
        # on the tasks the owner is about to run.
        for off in range(1, self.jobs):
            q = self._qs[(wid + off) % self.jobs]
            if q:
                return q.popleft() if self._lifo else q.pop()
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._qs)


class PriorityQueues(WorkQueues):
    """Per-worker max-heaps on task priority (FIFO among equals)."""

    def __init__(self, jobs: int) -> None:
        super().__init__(jobs)
        self._heaps: list[list[tuple[int, int, Task]]] = [[] for _ in range(jobs)]
        self._seq = 0

    def push(self, wid: int, task: Task) -> None:
        heapq.heappush(self._heaps[wid], (-task.priority, self._seq, task))
        self._seq += 1

    def pop_local(self, wid: int) -> Task | None:
        heap = self._heaps[wid]
        if not heap:
            return None
        return heapq.heappop(heap)[2]

    def steal(self, wid: int) -> Task | None:
        for off in range(1, self.jobs):
            heap = self._heaps[(wid + off) % self.jobs]
            if heap:
                return heapq.heappop(heap)[2]
        return None

    def __len__(self) -> int:
        return sum(len(h) for h in self._heaps)

    def seed_order(self, tasks: list[Task]) -> list[Task]:
        return sorted(
            tasks, key=lambda t: -t.priority
        )  # stable: graph order among equals


def make_work_queues(policy: str, jobs: int) -> WorkQueues:
    """Instantiate the per-worker queues for ``policy``."""
    name = policy.lower()
    if name == "fifo":
        return DequeQueues(jobs, lifo=False)
    if name == "lifo":
        return DequeQueues(jobs, lifo=True)
    if name == "priority":
        return PriorityQueues(jobs)
    raise ValueError(
        f"unknown execution policy {policy!r}; choices: {list(EXEC_POLICIES)}"
    )


__all__ = [
    "DequeQueues",
    "EXEC_POLICIES",
    "PriorityQueues",
    "WorkQueues",
    "make_work_queues",
]
