"""The single registry of execution backends.

Both the runner (argument validation) and the CLI (choices listing)
used to carry their own copy of the backend tuple; they now share this
one, so adding a backend is a single edit here plus its executor.

Keep this module dependency-free (no numpy, no sibling imports): the
runner imports it during :mod:`repro.core` start-up and the CLI needs
it before any heavy machinery loads.
"""

from __future__ import annotations

#: Backend names :func:`repro.core.runner.run` accepts, with the
#: one-line story the CLI help repeats.
BACKEND_DESCRIPTIONS: dict[str, str] = {
    "sim": "discrete-event model of a cluster (virtual clock), the default",
    "threads": "real shared-memory execution on a work-stealing thread pool",
    "processes": "one OS process per simulated node; node-boundary halos "
                 "travel as real pickled messages over pipes",
}

BACKENDS: tuple[str, ...] = tuple(BACKEND_DESCRIPTIONS)

#: Backends that measure wall-clock time on this host (everything but
#: the simulator).
MEASURED_BACKENDS: tuple[str, ...] = tuple(b for b in BACKENDS if b != "sim")


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually execute on this host.

    The simulator and the thread pool always can; the multiprocess
    backend needs a fork-capable ``multiprocessing`` (absent on some
    restricted platforms).  The autotuner consults this before
    spending measured-refinement budget, falling back to a model-only
    pick instead of crashing mid-session.
    """
    if name not in BACKENDS:
        return False
    if name == "processes":
        try:
            import multiprocessing

            multiprocessing.get_context("fork")
        except (ImportError, ValueError):
            return False
    return True


__all__ = ["BACKENDS", "BACKEND_DESCRIPTIONS", "MEASURED_BACKENDS",
           "backend_available"]
