"""Side-by-side simulated-vs-measured execution reports.

The simulator predicts how a task graph behaves on a *modelled*
cluster; the threaded backend measures how the same graph behaves on
the actual host.  This module runs both and lines the numbers up --
predicted vs achieved GFLOP/s, modelled vs measured worker occupancy,
and base-vs-CA speedups on both clocks -- which is the validation
loop the simulator's calibration ultimately answers to.

Two caveats the report states rather than hides:

* absolute wall-clock time matches the model only when the machine
  spec describes the actual host; against a cluster preset like NaCL
  the interesting quantity is the *ratio* structure (CA over base,
  scaling with workers), which is machine-portable;
* Python task-dispatch overhead is real and counted in the measured
  numbers -- exactly the per-task runtime overhead the paper's
  PaRSEC configuration also pays.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import MachineSpec, nacl
from ..stencil.problem import JacobiProblem


@dataclass(frozen=True)
class BackendComparison:
    """One implementation, simulated and measured."""

    impl: str
    sim: object  # RunResult (sim backend)
    real: object  # RunResult (threads or processes backend)
    jobs: int
    backend: str = "threads"

    @property
    def predicted_elapsed(self) -> float:
        return self.sim.elapsed

    @property
    def measured_elapsed(self) -> float:
        return self.real.elapsed

    @property
    def predicted_gflops(self) -> float:
        return self.sim.gflops

    @property
    def achieved_gflops(self) -> float:
        return self.real.gflops

    @property
    def predicted_occupancy(self) -> float:
        return self.sim.occupancy()

    @property
    def measured_occupancy(self) -> float:
        return self.real.occupancy()

    @property
    def prediction_error(self) -> float:
        """Relative elapsed-time error, signed: positive means the real
        run was slower than the model predicted."""
        if self.predicted_elapsed <= 0:
            return float("inf")
        return (self.measured_elapsed - self.predicted_elapsed) / self.predicted_elapsed

    def as_row(self) -> tuple:
        return (
            self.impl,
            f"{self.predicted_elapsed * 1e3:.2f}",
            f"{self.measured_elapsed * 1e3:.2f}",
            f"{self.predicted_gflops:.3f}",
            f"{self.achieved_gflops:.3f}",
            f"{self.predicted_occupancy:.2f}",
            f"{self.measured_occupancy:.2f}",
            f"{100 * self.prediction_error:+.1f}%",
        )


#: Table headers matching :meth:`BackendComparison.as_row`.
HEADERS = (
    "impl",
    "model ms",
    "wall ms",
    "model GF/s",
    "real GF/s",
    "model occ",
    "real occ",
    "elapsed err",
)


def compare_backends(
    problem: JacobiProblem,
    impl: str = "ca-parsec",
    machine: MachineSpec | None = None,
    jobs: int | None = None,
    policy: str = "priority",
    backend: str = "threads",
    procs: int | None = None,
    **kwargs,
) -> BackendComparison:
    """Run ``impl`` once on the simulator (execute mode, so the virtual
    clock covers the identical graph) and once for real on ``backend``
    (``"threads"`` or ``"processes"``; ``procs`` selects the process
    count of the latter and sizes the simulated machine to match)."""
    from ..core.runner import run  # local import: core depends on exec

    if machine is None:
        machine = nacl(procs) if (backend == "processes" and procs) else nacl(1)
    elif backend == "processes" and procs and procs != machine.nodes:
        machine = machine.with_nodes(procs)
    sim = run(
        problem, impl=impl, machine=machine, mode="execute", policy=policy, **kwargs
    )
    real = run(
        problem,
        impl=impl,
        machine=machine,
        backend=backend,
        jobs=jobs,
        policy=policy,
        **kwargs,
    )
    return BackendComparison(
        impl=impl, sim=sim, real=real, jobs=real.params["jobs"], backend=backend
    )


def compare_all(
    problem: JacobiProblem,
    machine: MachineSpec | None = None,
    jobs: int | None = None,
    tile: int | None = None,
    steps: int = 4,
    backend: str = "threads",
    procs: int | None = None,
) -> list[BackendComparison]:
    """The full three-implementation side-by-side."""
    out = []
    for impl, kw in (
        ("petsc", {}),
        ("base-parsec", {"tile": tile}),
        ("ca-parsec", {"tile": tile, "steps": steps}),
    ):
        out.append(compare_backends(problem, impl=impl, machine=machine, jobs=jobs,
                                    backend=backend, procs=procs, **kw))
    return out


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a measured strong-scaling curve."""

    jobs: int
    elapsed: float
    speedup: float
    efficiency: float


def speedup_curve(
    problem: JacobiProblem,
    impl: str = "ca-parsec",
    jobs_list: tuple[int, ...] = (1, 2, 4),
    machine: MachineSpec | None = None,
    repeats: int = 1,
    **kwargs,
) -> list[SpeedupPoint]:
    """Measured wall-clock speedup vs worker count (best of
    ``repeats`` per point, standard practice for wall-clock curves)."""
    from ..core.runner import run

    machine = machine or nacl(1)
    points: list[SpeedupPoint] = []
    base = None
    for jobs in jobs_list:
        elapsed = min(
            run(
                problem,
                impl=impl,
                machine=machine,
                backend="threads",
                jobs=jobs,
                **kwargs,
            ).elapsed
            for _ in range(max(1, repeats))
        )
        base = elapsed if base is None else base
        points.append(
            SpeedupPoint(
                jobs=jobs,
                elapsed=elapsed,
                speedup=base / elapsed if elapsed > 0 else float("inf"),
                efficiency=(base / elapsed) / jobs if elapsed > 0 else 0.0,
            )
        )
    return points


def format_comparison(comparisons: list[BackendComparison], title: str | None = None) -> str:
    """Render the side-by-side as the repo's standard ASCII table."""
    from ..analysis.tables import format_table

    return format_table(
        HEADERS, [c.as_row() for c in comparisons], title=title
    )


__all__ = [
    "BackendComparison",
    "HEADERS",
    "SpeedupPoint",
    "compare_all",
    "compare_backends",
    "format_comparison",
    "speedup_curve",
]
