"""Futures for real (wall-clock) task-graph execution.

The threaded backend is asynchronous by nature: :class:`RunHandle` is
the future of a whole run (wait / cancel / timeout, in the spirit of
``concurrent.futures``), and :class:`TaskFuture` is the future of one
task inside it.  A task future resolves to a :class:`TaskRecord` --
when and where the task ran -- not to its payload: payloads are
refcounted and freed as soon as their last consumer finishes, exactly
like PaRSEC reclaims data copies, so holding them alive per-future
would defeat the memory discipline.  Terminal outputs survive in the
report's ``results`` mapping as in the simulator.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..runtime.task import TaskKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecReport


class ExecutionTimeout(TimeoutError):
    """Waiting on a run or task future exceeded the given timeout."""


class RunCancelled(RuntimeError):
    """The run was cancelled before every task completed."""


@dataclass(frozen=True)
class TaskRecord:
    """Where and when one task executed (wall-clock seconds relative
    to the run start)."""

    key: TaskKey
    worker: int
    start: float
    end: float
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class TaskFuture:
    """Completion future of a single task in a running graph."""

    def __init__(self, key: TaskKey) -> None:
        self.key = key
        self._event = threading.Event()
        self._record: TaskRecord | None = None
        self._exception: BaseException | None = None

    # -- producer side (executor) --------------------------------------

    def _resolve(self, record: TaskRecord) -> None:
        self._record = record
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()

    # -- consumer side --------------------------------------------------

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> TaskRecord:
        """Block until the task completes; raises :class:`ExecutionTimeout`
        on expiry, or the run's error if the run died first."""
        if not self._event.wait(timeout):
            raise ExecutionTimeout(
                f"task {self.key!r} did not complete within {timeout} s"
            )
        if self._exception is not None:
            raise self._exception
        assert self._record is not None
        return self._record


class RunHandle:
    """Handle on an in-flight threaded run.

    Returned by :meth:`ThreadedExecutor.start`; :meth:`result` joins the
    run and returns its :class:`~repro.exec.executor.ExecReport`.
    """

    def __init__(self, cancel_callback: Callable[[], None]) -> None:
        self._cancel_callback = cancel_callback
        self._finished = threading.Event()
        self._report: "ExecReport | None" = None
        self._exception: BaseException | None = None
        self._cancel_requested = False
        self._futures: dict[TaskKey, TaskFuture] = {}
        self._records: dict[TaskKey, TaskRecord] = {}
        self._lock = threading.Lock()

    # -- producer side (executor) --------------------------------------

    def _finish(self, report: "ExecReport | None", exc: BaseException | None) -> None:
        self._report = report
        self._exception = exc
        with self._lock:
            pending = [f for f in self._futures.values() if not f.done()]
        failure = exc or RunCancelled("run finished without this task executing")
        for fut in pending:
            fut._fail(failure)
        self._finished.set()

    def _watch(self, key: TaskKey) -> TaskFuture:
        with self._lock:
            fut = self._futures.get(key)
            if fut is None:
                fut = self._futures[key] = TaskFuture(key)
                record = self._records.get(key)
                if record is not None:
                    fut._resolve(record)
                elif self._finished.is_set():
                    fut._fail(
                        self._exception
                        or RunCancelled("run finished without this task executing")
                    )
            return fut

    def _record_done(self, key: TaskKey, record: TaskRecord) -> None:
        with self._lock:
            self._records[key] = record
            fut = self._futures.get(key)
        if fut is not None:
            fut._resolve(record)

    # -- consumer side --------------------------------------------------

    def done(self) -> bool:
        return self._finished.is_set()

    def running(self) -> bool:
        return not self._finished.is_set()

    def cancel(self) -> bool:
        """Request cancellation.  Returns ``False`` if the run already
        finished; otherwise workers stop dequeuing tasks and
        :meth:`result` raises :class:`RunCancelled`."""
        if self._finished.is_set():
            return False
        self._cancel_requested = True
        self._cancel_callback()
        return True

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The run's error (or ``None``); waits for completion first."""
        if not self._finished.wait(timeout):
            raise ExecutionTimeout(f"run still executing after {timeout} s")
        return self._exception

    def future(self, key: TaskKey) -> TaskFuture:
        """A future resolving when task ``key`` completes.  May be
        requested before, during, or after the run."""
        return self._watch(key)

    def result(self, timeout: float | None = None) -> "ExecReport":
        """Wait for the run; returns the report or re-raises the first
        kernel error / :class:`RunCancelled`.

        A timeout does **not** cancel the run -- call :meth:`cancel`
        if the work should stop too.
        """
        if not self._finished.wait(timeout):
            raise ExecutionTimeout(f"run did not complete within {timeout} s")
        if self._exception is not None:
            raise self._exception
        assert self._report is not None
        return self._report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "running"
        return f"RunHandle({state})"


__all__ = [
    "ExecutionTimeout",
    "RunCancelled",
    "RunHandle",
    "TaskFuture",
    "TaskRecord",
]
