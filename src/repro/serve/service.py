"""The solver service: warm pools + queue + batching + cache, wired.

:class:`SolverService` is the façade the CLI (``repro serve`` /
``repro submit``) and :class:`~repro.serve.client.SolverClient` talk
to.  One service owns

* a :class:`~repro.serve.queue.JobQueue` (admission control, tenant
  fair share, priorities, queued-deadline enforcement),
* a :class:`~repro.serve.batch.BatchCollector` (window-fused
  dispatch with intra-batch dedup),
* a :class:`~repro.serve.pool.WorkerPool` of warm workers (threads
  or persistent forked children),
* an optional :class:`~repro.serve.cache.ResultCache` probed at
  admission -- a hit resolves the future immediately and executes
  **zero** tasks (the obs counters prove it), and
* a :class:`~repro.obs.metrics.MetricRegistry` every layer publishes
  into, so ``repro monitor`` and the regression gate work against a
  live service.

Threading model: ``workers`` runner threads each loop
``collect batch -> acquire worker -> execute -> finalize``; one
reaper thread enforces deadlines (queued jobs purged, running jobs
cancelled and their workers reclaimed) and shrinks the idle pool.
Per-batch metrics come back as snapshots and are merged into the
service registry under one lock, keeping every counter cell
single-writer.
"""

from __future__ import annotations

import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..obs.lifecycle import FlightRecorder, LifecycleTracer
from ..obs.metrics import MetricRegistry
from .batch import Batch, BatchCollector
from .cache import ResultCache
from .pool import WorkerPool
from .queue import Job, JobQueue
from .request import (
    DeadlineExpired,
    JobSkipped,
    ServeError,
    ServiceClosed,
    SolveRequest,
    WorkerDied,
)


@dataclass
class ServiceConfig:
    """Every serving knob in one place (the CLI mirrors these)."""

    #: pool kind: "threads" (warm in-process slots) or "processes"
    #: (persistent forked children)
    pool: str = "threads"
    #: concurrent batches in flight (= runner threads = pool capacity)
    workers: int = 2
    #: worker threads per solve (None -> the runner's default)
    jobs: int | None = None
    min_workers: int = 1
    idle_timeout_s: float | None = 30.0
    queue_depth: int = 64
    #: per-tenant in-flight cap (None -> unbounded)
    tenant_limit: int | None = 2
    #: per-tenant overrides of ``tenant_limit``
    tenant_limits: dict = field(default_factory=dict)
    batch_window_s: float = 0.005
    max_batch: int = 8
    #: result cache: a path, None for the default location, or False
    #: to disable caching entirely
    cache: object = None
    cache_entries: int = 256
    #: deadline applied to requests that do not carry one (None = none)
    default_deadline_s: float | None = None
    #: reaper cadence (deadlines, idle shrink)
    reap_interval_s: float = 0.05
    #: failed-job retries granted when the request does not set its
    #: own budget (0 = fail on first error, the historical behaviour);
    #: a retried chaos job resumes from its last checkpoint
    retry_budget: int = 0
    #: directory the chaos checkpoint/fault state lives under (None ->
    #: a per-signature directory beneath the system temp dir)
    checkpoint_dir: object = None
    #: request-scoped lifecycle tracing: spans, per-tenant SLO
    #: histograms and the flight recorder.  Always-on by design (the
    #: bench gates its overhead under 3%); False turns all three off.
    lifecycle: bool = True
    #: flight-recorder ring capacity (lifecycle events retained)
    recorder_events: int = 4096
    #: directory flight-recorder dumps land in (None ->
    #: ``<tempdir>/repro-postmortem``)
    dump_dir: object = None
    #: capture the execution-level Trace of each request so
    #: :meth:`SolverService.write_timeline` can export task kernels
    #: under their lifecycle spans (off by default: traces are big)
    trace_requests: bool = False
    #: telemetry sampling interval in seconds: a sampler thread
    #: snapshots the registry into a bounded
    #: :class:`~repro.obs.timeseries.TimeSeriesStore` and (with
    #: ``alert_rules``) evaluates alerts after each sample.  None
    #: disables the sampler, the store and alerting entirely -- the
    #: same zero-cost contract ``metrics=None`` set
    sampling_interval_s: float | None = None
    #: samples retained per series in the time-series store
    series_capacity: int = 512
    #: alert rules evaluated on each sample: a rules-file path, a
    #: parsed rule list (:func:`repro.obs.alerts.parse_rules` input,
    #: including pre-built :class:`~repro.obs.alerts.AlertRule`
    #: objects), or None for no alerting.  Requires sampling
    alert_rules: object = None
    #: JSONL file alert transitions append to (None = no file sink)
    alert_log: object = None
    #: retention cap on ``postmortem-*.json`` files in ``dump_dir``
    #: (oldest pruned after each dump; None = keep everything)
    max_postmortems: int | None = 32


class SolverService:
    """A persistent stencil-solver service (in-process).

    Use as a context manager or call :meth:`start` / :meth:`stop`::

        with SolverService(ServiceConfig(workers=2)) as svc:
            fut = svc.submit(SolveRequest(problem, tenant="alice"))
            outcome = fut.result(timeout=60)
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: MetricRegistry | None = None,
        **overrides,
    ) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.metrics = metrics if metrics is not None else MetricRegistry()

        self.recorder: FlightRecorder | None = None
        self.lifecycle: LifecycleTracer | None = None
        if config.lifecycle:
            self.recorder = FlightRecorder(
                capacity=config.recorder_events,
                max_dumps=config.max_postmortems,
            )
            self.lifecycle = LifecycleTracer(
                metrics=self.metrics, recorder=self.recorder
            )

        self.queue = JobQueue(
            max_depth=config.queue_depth,
            tenant_limit=config.tenant_limit,
            tenant_limits=config.tenant_limits,
            metrics=self.metrics,
            lifecycle=self.lifecycle,
        )
        self.collector = BatchCollector(
            self.queue,
            window_s=config.batch_window_s,
            max_batch=config.max_batch,
            metrics=self.metrics,
            lifecycle=self.lifecycle,
        )
        self.pool = WorkerPool(
            kind=config.pool,
            max_workers=config.workers,
            min_workers=config.min_workers,
            idle_timeout_s=config.idle_timeout_s,
            metrics=self.metrics,
            checkpoint_dir=config.checkpoint_dir,
            want_trace=config.trace_requests,
        )
        self.cache: ResultCache | None = None
        if config.cache is not False:
            self.cache = ResultCache(
                path=None if config.cache is None else config.cache,
                max_entries=config.cache_entries,
                metrics=self.metrics,
            )

        #: time-series store / sampler / alert engine -- all None when
        #: ``sampling_interval_s`` is None (nothing is built, nothing
        #: is paid; the zero-cost contract the bench gates)
        self.series = None
        self.alerts = None
        self._sampler = None
        if config.sampling_interval_s is not None:
            from ..obs.timeseries import TelemetrySampler, TimeSeriesStore
            self.series = TimeSeriesStore(capacity=config.series_capacity)
            if config.alert_rules is not None:
                from ..obs.alerts import AlertEngine, JsonlSink
                from ..obs.alerts import load_rules, parse_rules
                rules = config.alert_rules
                if isinstance(rules, (str, Path)):
                    rules = load_rules(rules)
                else:
                    rules = parse_rules(rules)
                sinks = []
                if config.alert_log is not None:
                    sinks.append(JsonlSink(config.alert_log))
                self.alerts = AlertEngine(
                    self.series, rules, sinks=sinks,
                    recorder=self.recorder, dump_dir=self._dump_dir(),
                    on_dump=self._note_dump,
                )
            self._sampler = TelemetrySampler(
                self.metrics, self.series,
                interval_s=config.sampling_interval_s,
                progress=self.progress, on_sample=self._on_sample,
            )

        # Registry mutations outside the queue/pool/cache/collector
        # locks happen under this one (merge + service counters).
        self._mlock = threading.Lock()
        self._c_submitted = self.metrics.counter(
            "serve_jobs_submitted_total", "requests admitted, by tenant",
            "jobs",
        )
        self._c_completed = self.metrics.counter(
            "serve_jobs_completed_total", "requests finished, by status",
            "jobs",
        )
        self._c_expired = self.metrics.counter(
            "serve_deadline_expired_total",
            "jobs cancelled by their deadline, by where it caught them",
        )
        self._c_retried = self.metrics.counter(
            "serve_jobs_retried_total",
            "failed jobs re-queued within their retry budget", "jobs",
        )
        self._c_node_lost = self.metrics.counter(
            "serve_node_lost_total",
            "batch attempts lost to a (simulated) node death", "attempts",
        )
        self._h_exec = self.metrics.histogram(
            "serve_exec_seconds", "wall time executing one batch", "seconds"
        )

        self._lock = threading.Lock()
        self._running: dict[int, tuple[Job, object]] = {}
        #: trace_id -> execution-level Trace (bounded; filled only
        #: under ``trace_requests`` for the combined timeline export)
        self.timelines: "OrderedDict[str, object]" = OrderedDict()
        #: flight-recorder dump paths written by this service
        self.dumps: list[Path] = []
        self._runners: list[threading.Thread] = []
        self._reaper: threading.Thread | None = None
        self._stop = threading.Event()
        self._started = False
        self._t_start = 0.0
        self._submitted = 0
        self._finished = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SolverService":
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        self._t_start = time.monotonic()
        self._runners = [
            threading.Thread(
                target=self._runner, name=f"repro-serve-runner-{i}",
                daemon=True,
            )
            for i in range(self.config.workers)
        ]
        for t in self._runners:
            t.start()
        self._reaper = threading.Thread(
            target=self._reap, name="repro-serve-reaper", daemon=True
        )
        self._reaper.start()
        if self._sampler is not None:
            self._sampler.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain nothing, fail everything queued, join every thread,
        close every worker.  Safe to call twice."""
        if not self._started:
            return
        self._started = False
        self._stop.set()
        self.queue.close()
        for t in self._runners:
            t.join(timeout)
        if self._reaper is not None:
            self._reaper.join(timeout)
        if self._sampler is not None:
            # Final sample (and alert pass) with every runner drained,
            # before the pool the progress() probe reads shuts down.
            self._sampler.stop(timeout)
            if self.alerts is not None:
                self.alerts.close()
        self.pool.shutdown()
        self._runners = []
        self._reaper = None

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        request: SolveRequest | None = None,
        **knobs,
    ) -> Future:
        """Admit one request; returns a future of its
        :class:`~repro.serve.request.SolveOutcome`.

        Raises :class:`QueueFullError` synchronously when admission
        control rejects (the fast-reject contract) and
        :class:`ServiceClosed` when the service is not running.  A
        result-cache hit resolves the future before this returns,
        executing nothing.
        """
        if request is None:
            request = SolveRequest(**knobs)
        elif knobs:
            request = replace(request, **knobs)
        if not self._started:
            raise ServiceClosed("service not started; call start() first")
        t_admit = time.monotonic()
        signature = request.signature()
        future: Future = Future()
        with self._mlock:
            self._submitted += 1
            admit_seq = self._submitted
            self._c_submitted.inc(tenant=request.tenant)
        trace_id = None
        if self.lifecycle is not None:
            trace_id = self.lifecycle.begin(
                signature, admit_seq, tenant=request.tenant, t_admit=t_admit
            )
        if self.cache is not None:
            t_probe = time.monotonic()
            hit = self.cache.get(signature)
            if self.lifecycle is not None:
                self.lifecycle.span(
                    trace_id, "cache_probe", t_probe, time.monotonic(),
                    hit=hit is not None,
                )
            if hit is not None:
                future.set_result(replace(
                    hit.with_tenant(request.tenant), trace_id=trace_id,
                ))
                with self._mlock:
                    self._finished += 1
                    self._c_completed.inc(status="cached")
                if self.lifecycle is not None:
                    self.lifecycle.finish(trace_id, "cached")
                return future
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        job = Job(
            request=request,
            future=future,
            signature=signature,
            seq=self.queue.next_seq(),
            enqueued=time.monotonic(),
            deadline=(
                None if deadline_s is None
                else time.monotonic() + deadline_s
            ),
        )
        if trace_id is not None:
            job.extra["trace_id"] = trace_id
        try:
            self.queue.submit(job)
        except ServeError as exc:
            with self._mlock:
                self._finished += 1
                self._c_completed.inc(status="rejected")
            if self.lifecycle is not None:
                self.lifecycle.span(
                    trace_id, "admit", t_admit, time.monotonic(),
                    status="rejected", seq=job.seq, error=repr(exc),
                )
                self.lifecycle.finish(trace_id, "rejected")
            raise
        if self.lifecycle is not None:
            self.lifecycle.span(
                trace_id, "admit", t_admit, time.monotonic(),
                seq=job.seq, deadline_s=deadline_s,
            )
        return future

    # -- execution -------------------------------------------------------

    def _runner(self) -> None:
        while not self._stop.is_set():
            batch = self.collector.take(timeout=0.1)
            if batch is None:
                continue
            t_dispatch = time.monotonic()
            worker = self.pool.acquire(timeout=5.0)
            try:
                if worker is None:
                    raise WorkerDied("no pool worker became available")
                if self.lifecycle is not None:
                    now = time.monotonic()
                    for job in batch.jobs:
                        trace_id = job.extra.get("trace_id")
                        if trace_id is not None:
                            self.lifecycle.span(
                                trace_id, "dispatch", t_dispatch, now,
                                worker=worker.name, seq=job.seq,
                            )
                self._execute_batch(batch, worker)
            except Exception as exc:  # noqa: BLE001 - fail the batch, keep serving
                self._fail_batch(batch, exc)
            finally:
                if worker is not None:
                    self.pool.release(worker)
                for job in batch.jobs:
                    self.queue.task_done(job.tenant)

    def _finish_trace(self, job: Job, status: str) -> None:
        if self.lifecycle is not None:
            self.lifecycle.finish(job.extra.get("trace_id"), status)

    def _stash_timeline(self, trace_id: str | None, trace) -> None:
        if trace_id is None or trace is None:
            return
        with self._lock:
            self.timelines[trace_id] = trace
            while len(self.timelines) > 32:
                self.timelines.popitem(last=False)

    def _execute_batch(self, batch: Batch, worker) -> None:
        groups = batch.groups()
        leaders = [jobs[0] for jobs in groups.values()]
        items = [
            (j.seq, j.request, j.deadline, j.extra.get("trace_id"))
            for j in leaders
        ]
        with self._lock:
            for job in leaders:
                self._running[job.seq] = (job, worker)
        t0 = time.monotonic()
        try:
            results, snapshot, wspans = worker.run_batch(items)
        finally:
            with self._lock:
                for job in leaders:
                    self._running.pop(job.seq, None)
        elapsed = time.monotonic() - t0
        if self.lifecycle is not None and wspans:
            # Fold the worker's spans in *before* finishing any trace,
            # so the SLO execute aggregate sees them.
            self.lifecycle.adopt(wspans)
        statuses: dict[str, int] = {}
        for (status, payload), jobs in zip(results, groups.values()):
            if status == "ok":
                outcome = payload
                self._stash_timeline(outcome.trace_id, outcome.trace)
                if self.cache is not None and outcome.grid is not None:
                    self.cache.put(outcome.signature, (
                        outcome if outcome.trace is None
                        else replace(outcome, trace=None)
                    ))
                for job in jobs:
                    job.complete(replace(
                        outcome.with_tenant(job.tenant),
                        retries=job.extra.get("attempts", 0),
                        queue_wait_s=job.extra.get("queue_wait_s", 0.0),
                        trace_id=job.extra.get("trace_id"),
                    ))
                    self._finish_trace(job, "ok")
                statuses["ok"] = statuses.get("ok", 0) + len(jobs)
            elif status == "expired":
                # Deadlines are final: a retry cannot un-expire a job.
                for job in jobs:
                    job.fail(payload)
                    self._finish_trace(job, "expired")
                statuses["expired"] = statuses.get("expired", 0) + len(jobs)
            else:
                self._retry_or_fail(jobs, payload, statuses)
        self._account(statuses, snapshot=snapshot, elapsed=elapsed)

    def _retry_or_fail(self, jobs, exc: Exception,
                       statuses: dict[str, int]) -> None:
        """Failure policy for one dedup group: within the retry
        budget, re-queue every job (a fresh seq, attempts + 1 -- a
        chaos job finds its checkpoint directory warm and resumes
        instead of starting over); past it, the group leader fails
        with the real error and downstream duplicates are *skipped*
        (:class:`~repro.serve.request.JobSkipped`) rather than
        re-running a solve that just failed repeatedly."""
        leader = jobs[0]
        budget = leader.request.retries
        if budget is None:
            budget = self.config.retry_budget
        attempts = leader.extra.get("attempts", 0)
        now = time.monotonic()
        if self._failure_cause(exc) == "node-lost":
            # The signal the node-lost alert rule watches: bumped on
            # every lost attempt, terminal or retried.
            with self._mlock:
                self._c_node_lost.inc()
        if budget > 0 and attempts < budget and not self._stop.is_set():
            for job in jobs:
                if job.expired(now):
                    job.fail(DeadlineExpired(
                        f"job {job.seq} deadline passed before its retry"
                    ))
                    statuses["expired"] = statuses.get("expired", 0) + 1
                    self._finish_trace(job, "expired")
                    continue
                retry = Job(
                    request=job.request,
                    future=job.future,
                    signature=job.signature,
                    seq=self.queue.next_seq(),
                    enqueued=job.enqueued,
                    deadline=job.deadline,
                    extra={
                        **job.extra,
                        "attempts": attempts + 1,
                        "requeued_at": now,
                    },
                )
                try:
                    self.queue.submit(retry)
                except ServeError as submit_exc:
                    job.fail(submit_exc)
                    statuses["error"] = statuses.get("error", 0) + 1
                    self._finish_trace(job, "error")
                    continue
                if self.lifecycle is not None:
                    trace_id = job.extra.get("trace_id")
                    if trace_id is not None:
                        self.lifecycle.span(
                            trace_id, "retry", now, now,
                            attempt=attempts + 1,
                            error=repr(exc)[:200],
                        )
                statuses["retried"] = statuses.get("retried", 0) + 1
            return
        err = (exc if isinstance(exc, ServeError)
               else WorkerDied(f"batch execution failed: {exc}"))
        # Finish the traces (their terminal spans land in the flight
        # recorder) and write the dump *before* failing any future: a
        # client woken by its failure must already see the dump in
        # stats()["postmortems"].
        trace_ids = []
        terminal = []
        for pos, job in enumerate(jobs):
            tid = job.extra.get("trace_id")
            if tid is not None:
                trace_ids.append(tid)
            if pos == 0 or budget == 0:
                terminal.append((job, err, "error"))
            else:
                terminal.append((job, JobSkipped(
                    f"job {job.seq} skipped: the leading attempt of this "
                    f"solve failed after {attempts + 1} attempt(s)"
                ), "skipped"))
            self._finish_trace(job, terminal[-1][2])
        self._dump_failure(err, trace_ids, attempts, budget)
        for job, job_err, status in terminal:
            job.fail(job_err)
            statuses[status] = statuses.get(status, 0) + 1

    def _dump_reason(self, exc: Exception, attempts: int,
                     budget: int) -> str:
        if budget > 0 and attempts >= budget:
            return "retry-budget-exhausted"
        return self._failure_cause(exc)

    @staticmethod
    def _failure_cause(exc: Exception) -> str:
        causes = [exc, getattr(exc, "__cause__", None)]
        try:
            from ..runtime.engine import NodeLostError
        except Exception:  # pragma: no cover - engine always importable
            NodeLostError = ()
        try:
            from ..ir.core import PassError
        except Exception:  # pragma: no cover - ir always importable
            PassError = ()
        for c in causes:
            if c is None:
                continue
            if NodeLostError and isinstance(c, NodeLostError):
                return "node-lost"
            if PassError and isinstance(c, PassError):
                return "pass-error"
            if isinstance(c, WorkerDied):
                return "worker-died"
        return "failure"

    def _dump_dir(self) -> Path:
        dump_dir = self.config.dump_dir
        if dump_dir is None:
            dump_dir = Path(tempfile.gettempdir()) / "repro-postmortem"
        return Path(dump_dir)

    def _note_dump(self, path: Path) -> None:
        """Track one flight-recorder dump; retention pruning may have
        deleted older ones, so drop entries that no longer exist."""
        with self._lock:
            self.dumps.append(path)
            self.dumps = [p for p in self.dumps if Path(p).exists()]

    def _on_sample(self, t: float) -> None:
        if self.alerts is not None:
            self.alerts.evaluate(t)

    def _dump_failure(self, exc: Exception, trace_ids, attempts: int,
                      budget: int) -> None:
        """Terminal failure: flush the flight recorder to disk so the
        post-mortem survives the service (and the process)."""
        if self.recorder is None:
            return
        try:
            path = self.recorder.dump(
                self._dump_dir(),
                reason=self._dump_reason(exc, attempts, budget),
                error=repr(exc),
                trace_ids=tuple(trace_ids),
                extra={"attempts": attempts, "retry_budget": budget},
            )
        except OSError:  # pragma: no cover - dump dir unwritable
            return
        self._note_dump(path)

    def _account(self, statuses: dict[str, int], snapshot=None,
                 elapsed: float | None = None) -> None:
        """Fold a batch's statuses into the service counters.  A
        ``retried`` job is still pending (its future unresolved), so
        it counts toward ``serve_jobs_retried_total`` but never toward
        ``_finished`` or the completion counter."""
        with self._mlock:
            if snapshot is not None:
                self.metrics.merge(snapshot)
            if elapsed is not None:
                self._h_exec.observe(elapsed)
            for status, count in statuses.items():
                if status == "retried":
                    self._c_retried.inc(count)
                    continue
                self._c_completed.inc(count, status=status)
                if status == "expired":
                    self._c_expired.inc(count, where="running")
            self._finished += sum(
                count for status, count in statuses.items()
                if status != "retried"
            )

    def _fail_batch(self, batch: Batch, exc: Exception) -> None:
        """A whole-batch failure (dead worker, no worker): expired
        jobs report their deadline, the rest go through the per-group
        retry-or-fail policy."""
        now = time.monotonic()
        statuses: dict[str, int] = {}
        groups: dict[str, list[Job]] = {}
        for job in batch.jobs:
            if job.expired(now):
                job.fail(DeadlineExpired(
                    f"job {job.seq} deadline passed; its worker was reclaimed"
                ))
                statuses["expired"] = statuses.get("expired", 0) + 1
                self._finish_trace(job, "expired")
            else:
                groups.setdefault(job.signature, []).append(job)
        for jobs in groups.values():
            self._retry_or_fail(jobs, exc, statuses)
        self._account(statuses)

    # -- reaper ----------------------------------------------------------

    def _reap(self) -> None:
        while not self._stop.wait(self.config.reap_interval_s):
            now = time.monotonic()
            self.queue.purge_expired(now)
            with self._lock:
                victims = [
                    (job, worker)
                    for job, worker in self._running.values()
                    if job.expired(now)
                ]
            for job, worker in victims:
                # Threads kind cancels exactly this job; processes
                # kind kills the child (reclaimed + replaced by the
                # pool's health check).
                worker.cancel(job.seq)
            self.pool.reap_idle(now)

    # -- introspection ---------------------------------------------------

    def progress(self) -> dict:
        """Live sample for :class:`repro.obs.monitor.RunMonitor`:
        jobs finished over jobs admitted, plus serving levels."""
        with self._mlock:
            done, total = self._finished, self._submitted
        return {
            "done": done,
            "total": total,
            "elapsed_s": (
                time.monotonic() - self._t_start if self._started else 0.0
            ),
            "workers": self.pool.size(),
            "queue_depth": self.queue.depth,
        }

    def sample_now(self) -> float | None:
        """Force one telemetry sample (and alert pass) immediately --
        ``repro top``'s final frame and deterministic tests use this
        instead of waiting out the sampling interval."""
        if self._sampler is None:
            raise ServeError(
                "sampling is disabled (ServiceConfig.sampling_interval_s)"
            )
        return self._sampler.sample()

    def stats(self) -> dict:
        with self._mlock:
            done, total = self._finished, self._submitted
        out = {
            "submitted": total,
            "finished": done,
            "queue": self.queue.stats(),
            "pool": self.pool.stats(),
            "cache_entries": len(self.cache) if self.cache is not None else 0,
        }
        if self.lifecycle is not None:
            with self._lock:
                dumps = [str(p) for p in self.dumps]
            out["traces"] = len(self.lifecycle)
            out["recorder_events"] = (
                len(self.recorder) if self.recorder is not None else 0
            )
            out["postmortems"] = dumps
        if self.series is not None:
            out["samples"] = self.series.samples
        if self.alerts is not None:
            out["alerts"] = {
                "active": self.alerts.active(),
                "transitions": len(self.alerts.transitions),
            }
        return out

    def write_timeline(
        self,
        chrome: object = None,
        otel: object = None,
        service_name: str = "repro-serve",
    ) -> dict:
        """Export every retained lifecycle span -- and, under
        ``trace_requests``, the task kernels of each traced solve
        parented beneath its ``execute`` span -- as Chrome
        ``chrome://tracing`` JSON and/or an OTel OTLP document.
        Returns ``{format: path}`` for whatever was written."""
        if self.lifecycle is None:
            raise ServeError(
                "lifecycle tracing is disabled (ServiceConfig.lifecycle)"
            )
        from ..obs.lifecycle import write_timeline as _write
        with self._lock:
            exec_traces = dict(self.timelines)
        return _write(
            self.lifecycle.all_spans(),
            exec_traces,
            chrome_path=chrome,
            otel_path=otel,
            service_name=service_name,
        )


__all__ = ["ServiceConfig", "SolverService"]
