"""Warm executor pools: reusable solve capacity surviving across jobs.

Two pool kinds, one contract:

* ``"threads"`` -- each worker is an in-process :class:`WarmSlot`
  holding a :class:`~repro.exec.executor.ThreadedExecutor` that is
  re-armed with :meth:`~repro.exec.executor.ThreadedExecutor.reset`
  between jobs instead of being reconstructed (the warm start the
  bench measures).  Concurrency comes from the service's runner
  threads; the pool hands out slots.
* ``"processes"`` -- each worker is a persistent forked child with a
  duplex pipe, in the style of Parsl's HTEX interchange loop: the
  parent ships a pickled batch of requests, the child solves them on
  its own warm slot and ships back reduced outcomes plus a metrics
  snapshot the parent merges (counter exactness across the process
  boundary, same scheme the procs backend uses).  Children survive
  across batches; a dead child is detected at acquire/release and
  replaced.

Shared lifecycle: ``acquire`` health-checks and replaces dead
workers, ``release`` returns them to the idle list, ``reap_idle``
retires workers idle beyond the timeout down to ``min_workers``
(called from the service's reaper loop), ``shutdown`` closes
everything.  All pool metrics are bumped inside the pool lock;
slot-level warm/cold counters go into the per-batch registry the
executing worker owns (single-writer discipline throughout).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from typing import Callable

from ..obs.lifecycle import SpanLog
from .request import (
    DeadlineExpired,
    SolveRequest,
    WorkerDied,
    outcome_from_result,
)

#: One unit of pool work: (job seq, request, absolute monotonic
#: deadline or None[, lifecycle trace id or None]).  Sequence numbers
#: let the reaper target the currently-running job; the trace id
#: (optional on the wire -- a 3-tuple runs untraced) carries the
#: request's lifecycle context into the worker, fork boundary
#: included.
WorkItem = tuple[int, SolveRequest, float | None, str | None]


class WarmSlot:
    """Per-worker reusable executor state, plugged into
    :func:`repro.core.runner.run` via its ``executor_factory`` hook.

    Threads-backend runs reuse one :class:`ThreadedExecutor` instance
    across jobs (``reset()`` re-arms it; an unhealthy survivor of a
    failed/cancelled run is replaced).  Processes-backend runs always
    construct cold: the node processes are per-run by design, so
    there is nothing to keep warm below the serve pool itself.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._executor = None
        self.last_was_warm = False
        self.warm_starts = 0
        self.cold_starts = 0

    def factory(
        self,
        graph,
        backend: str = "threads",
        jobs: int | None = None,
        procs: int | None = None,
        policy: str = "priority",
        trace: bool = False,
        metrics=None,
    ):
        self.last_was_warm = False
        if backend == "threads":
            from ..exec.executor import ThreadedExecutor, default_jobs

            ex = self._executor
            reusable = (
                ex is not None
                and ex.is_healthy()
                and not ex._run_in_flight()
            )
            if reusable:
                # reset() rebuilds all per-run state from these attrs.
                ex.jobs = jobs if jobs is not None else default_jobs()
                ex.policy = policy.lower()
                ex.want_trace = trace
                ex.metrics = metrics
                ex.reset(graph)
                self.last_was_warm = True
                self.warm_starts += 1
            else:
                if ex is not None:
                    self._executor = None  # unhealthy survivor dropped
                ex = ThreadedExecutor(
                    graph, jobs=jobs, policy=policy, trace=trace,
                    metrics=metrics,
                )
                self._executor = ex
                self.cold_starts += 1
        else:
            from ..exec.procs import ProcessExecutor

            ex = ProcessExecutor(
                graph, procs=procs, jobs=jobs, policy=policy, trace=trace,
                metrics=metrics,
            )
            self.cold_starts += 1
        if metrics is not None:
            # The executing worker owns this registry for the batch.
            kind = "warm" if self.last_was_warm else "cold"
            metrics.counter(
                f"serve_pool_{kind}_starts_total",
                f"executor {kind} starts", "starts",
            ).inc(slot=self.name)
        return ex


def execute_request(
    request: SolveRequest,
    slot: WarmSlot | None = None,
    metrics=None,
    on_executor: Callable | None = None,
    checkpoint_dir=None,
    lifecycle: SpanLog | None = None,
    trace_id: str | None = None,
    parent_span_id: str | None = None,
    want_trace: bool = False,
):
    """Run one request to a reduced
    :class:`~repro.serve.request.SolveOutcome`.

    Serving always runs ``mode="execute"`` -- the product is the
    solution grid.  The warm ``slot`` is threaded through the runner's
    ``executor_factory`` hook for the real backends; the simulator
    builds no pool, so sim requests skip it.

    A request carrying a ``chaos_plan`` takes the resumable path
    instead: one cold attempt under the plan, restarting from the
    signature's latest checkpoint under ``checkpoint_dir`` if an
    earlier attempt died (the service's retry budget drives the
    re-submission; this function never loops).

    ``lifecycle``/``trace_id`` record request-scoped spans (an
    ``ir_passes`` child when the request carried a rewrite pipeline)
    under ``parent_span_id``; ``want_trace`` captures the
    execution-level trace on the outcome for the combined timeline.
    """
    from ..core.runner import run

    if request.chaos_plan is not None:
        from ..chaos.harness import execute_with_resume

        return execute_with_resume(
            request, metrics=metrics, on_executor=on_executor,
            checkpoint_dir=checkpoint_dir, lifecycle=lifecycle,
            trace_id=trace_id, parent_span_id=parent_span_id,
            want_trace=want_trace,
        )

    factory = None
    if slot is not None and request.backend != "sim":
        factory = slot.factory
    t0 = time.monotonic()
    result = run(
        request.problem,
        impl=request.impl,
        machine=request.machine,
        tile=request.tile,
        steps=request.steps,
        ratio=request.ratio,
        mode="execute",
        policy=request.policy,
        backend=request.backend,
        jobs=request.jobs,
        trace=want_trace,
        metrics=metrics,
        on_executor=on_executor,
        executor_factory=factory,
        passes=request.passes,
    )
    if (
        lifecycle is not None and trace_id is not None
        and result.pass_reports is not None
    ):
        # The rewrite happened first inside run(); its measured wall
        # time anchors the span at the front of the execute window.
        pr = result.pass_reports
        lifecycle.span(
            trace_id, "ir_passes", t0, t0 + pr.elapsed_s,
            tenant=request.tenant, parent_span_id=parent_span_id,
            spec=pr.spec, tasks_removed=pr.tasks_removed,
            messages_saved=pr.messages_saved,
        )
    outcome = outcome_from_result(
        result,
        signature=request.signature(),
        tenant=request.tenant,
        warm=slot.last_was_warm if slot is not None else False,
    )
    outcome.trace_id = trace_id
    if want_trace:
        outcome.trace = result.trace
    return outcome


def _run_items(items: list[WorkItem], slot: WarmSlot, capture=None,
               checkpoint_dir=None, origin: str = "worker",
               want_trace: bool = False):
    """Shared worker loop: solve each item on ``slot``, honouring
    per-item deadlines, into ``(status, payload)`` pairs plus the
    batch's metrics snapshot and its lifecycle spans (an ``execute``
    span per traced item, parenting any ``ir_passes``/``recover``
    children the run recorded).  Items may be 3-tuples (untraced) or
    4-tuples carrying the request's trace id."""
    from ..exec.futures import RunCancelled
    from ..obs.metrics import MetricRegistry

    reg = MetricRegistry()
    log = SpanLog(origin=origin)
    out: list[tuple[str, object]] = []
    for item in items:
        seq, request, deadline = item[:3]
        trace_id = item[3] if len(item) > 3 else None
        if deadline is not None and time.monotonic() >= deadline:
            out.append(("expired", DeadlineExpired(
                f"job {seq} expired before execution started"
            )))
            continue
        exec_id = (
            log.allocate(trace_id, "execute")
            if trace_id is not None else None
        )
        t0 = time.monotonic()
        status, error = "ok", None
        try:
            if capture is not None:
                capture.arm(seq)
            outcome = execute_request(
                request, slot=slot, metrics=reg,
                on_executor=capture.seen if capture is not None else None,
                checkpoint_dir=checkpoint_dir,
                lifecycle=log if trace_id is not None else None,
                trace_id=trace_id, parent_span_id=exec_id,
                want_trace=want_trace,
            )
            out.append(("ok", outcome))
        except RunCancelled:
            status, error = "expired", "cancelled at deadline"
            out.append(("expired", DeadlineExpired(
                f"job {seq} cancelled at its deadline mid-run"
            )))
        except Exception as exc:  # noqa: BLE001 - forwarded to the future
            status, error = "error", repr(exc)
            out.append(("error", exc))
        finally:
            if capture is not None:
                capture.disarm()
        if trace_id is not None:
            attrs = {"seq": seq, "worker": slot.name,
                     "warm": slot.last_was_warm}
            if error is not None:
                attrs["error"] = error
            log.span(
                trace_id, "execute", t0, time.monotonic(),
                status="ok" if status == "ok" else "error",
                tenant=request.tenant, span_id=exec_id, **attrs,
            )
    return out, reg.snapshot(), log.spans


class _CancelScope:
    """Tracks the executor of the currently-running item so the
    service reaper can cancel exactly that job."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq: int | None = None
        self._executor = None

    def arm(self, seq: int) -> None:
        with self._lock:
            self._seq = seq
            self._executor = None

    def seen(self, executor) -> None:
        with self._lock:
            self._executor = executor

    def disarm(self) -> None:
        with self._lock:
            self._seq = None
            self._executor = None

    def cancel(self, seq: int | None = None) -> bool:
        """Cancel the current run if it is (or ``seq`` is None) the
        targeted job.  Races benignly with run start: the reaper
        retries on its next tick once the handle exists."""
        with self._lock:
            if seq is not None and seq != self._seq:
                return False
            ex = self._executor
        if ex is None:
            return False
        handle = getattr(ex, "_handle", None)
        if handle is not None:
            handle.cancel()
            return True
        request_cancel = getattr(ex, "_request_cancel", None)
        if request_cancel is not None:
            request_cancel()
            return True
        return False


class InProcessWorker:
    """Pool worker living in the service process (threads kind)."""

    kind = "threads"

    def __init__(self, name: str, checkpoint_dir=None,
                 want_trace: bool = False) -> None:
        self.name = name
        self.slot = WarmSlot(name)
        self.idle_since = time.monotonic()
        self._scope = _CancelScope()
        self._checkpoint_dir = checkpoint_dir
        self._want_trace = want_trace

    def alive(self) -> bool:
        return True

    def run_batch(self, items: list[WorkItem]):
        return _run_items(items, self.slot, capture=self._scope,
                          checkpoint_dir=self._checkpoint_dir,
                          origin=self.name, want_trace=self._want_trace)

    def cancel(self, seq: int | None = None) -> bool:
        return self._scope.cancel(seq)

    def close(self) -> None:
        self.slot._executor = None  # free the warm executor's memory


def _pool_child_main(conn, name: str, checkpoint_dir=None,
                     want_trace: bool = False) -> None:
    """Entry point of one persistent forked child: loop on the pipe,
    solve batches on a child-local warm slot, ship reduced outcomes,
    the batch's metrics snapshot and its lifecycle spans back.  Span
    timestamps need no adjustment: ``time.monotonic`` is
    CLOCK_MONOTONIC, shared with the forking parent on Linux."""
    slot = WarmSlot(name)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            conn.close()
            return
        _, items = msg
        # Relative deadlines -> this process's monotonic clock.
        now = time.monotonic()
        local = []
        for item in items:
            seq, req, remaining = item[:3]
            trace_id = item[3] if len(item) > 3 else None
            local.append((
                seq, req,
                None if remaining is None else now + remaining,
                trace_id,
            ))
        results, snapshot, spans = _run_items(
            local, slot, checkpoint_dir=checkpoint_dir, origin=name,
            want_trace=want_trace,
        )
        try:
            conn.send(("done", results, snapshot, spans))
        except (BrokenPipeError, OSError):
            return


class ProcessWorker:
    """Pool worker backed by a persistent forked child process."""

    kind = "processes"

    def __init__(self, name: str, checkpoint_dir=None,
                 want_trace: bool = False) -> None:
        self.name = name
        self.idle_since = time.monotonic()
        ctx = mp.get_context("fork")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_pool_child_main,
            args=(child_conn, name, checkpoint_dir, want_trace),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def alive(self) -> bool:
        return self._proc.is_alive()

    def run_batch(self, items: list[WorkItem]):
        now = time.monotonic()
        wire = []
        for item in items:
            seq, req, dl = item[:3]
            trace_id = item[3] if len(item) > 3 else None
            wire.append((
                seq, req,
                None if dl is None else max(0.0, dl - now),
                trace_id,
            ))
        try:
            self._conn.send(("batch", wire))
            msg = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerDied(
                f"pool worker {self.name} died mid-batch: {exc!r}"
            ) from exc
        results, snapshot = msg[1], msg[2]
        spans = msg[3] if len(msg) > 3 else []
        return results, snapshot, spans

    def cancel(self, seq: int | None = None) -> bool:
        """Deadline enforcement for a child is the blunt instrument:
        kill it (the batch fails, the pool replaces the worker)."""
        if not self._proc.is_alive():
            return False
        self._proc.terminate()
        return True

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._proc.join(timeout=0.5)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=0.5)
        try:
            self._conn.close()
        except OSError:
            pass


class WorkerPool:
    """Fixed-capacity pool of warm workers with idle shrink and
    health-checked replacement."""

    def __init__(
        self,
        kind: str = "threads",
        max_workers: int = 2,
        min_workers: int = 1,
        idle_timeout_s: float | None = 30.0,
        metrics=None,
        name: str = "pool",
        checkpoint_dir=None,
        want_trace: bool = False,
    ) -> None:
        if kind not in ("threads", "processes"):
            raise ValueError(
                f"unknown pool kind {kind!r}; choices: ('threads', 'processes')"
            )
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.kind = kind
        self.max_workers = max_workers
        self.min_workers = max(0, min(min_workers, max_workers))
        self.idle_timeout_s = idle_timeout_s
        self.name = name
        self.checkpoint_dir = checkpoint_dir
        self.want_trace = want_trace
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._idle: list = []
        self._busy: set = set()
        self._spawned = 0
        self._closed = False

        self._metrics = metrics
        if metrics is not None:
            self._g_workers = metrics.gauge(
                "serve_pool_workers", "live pool workers", "workers"
            )
            self._c_replaced = metrics.counter(
                "serve_pool_replaced_total",
                "dead workers replaced by health checks", "workers",
            )
            self._c_retired = metrics.counter(
                "serve_pool_retired_total",
                "workers retired by the idle timeout", "workers",
            )

    # -- internals -------------------------------------------------------

    def _spawn_locked(self):
        self._spawned += 1
        name = f"{self.name}-{self.kind}-{self._spawned}"
        worker = (
            InProcessWorker(name, checkpoint_dir=self.checkpoint_dir,
                            want_trace=self.want_trace)
            if self.kind == "threads"
            else ProcessWorker(name, checkpoint_dir=self.checkpoint_dir,
                               want_trace=self.want_trace)
        )
        if self._metrics is not None:
            self._g_workers.set(len(self._idle) + len(self._busy) + 1)
        return worker

    def _note_size_locked(self) -> None:
        if self._metrics is not None:
            self._g_workers.set(len(self._idle) + len(self._busy))

    # -- API -------------------------------------------------------------

    def acquire(self, timeout: float | None = None):
        """A healthy worker, or None on timeout.  Dead idle workers
        found here are closed and replaced transparently."""
        limit = None if timeout is None else time.monotonic() + timeout
        with self._free:
            while True:
                if self._closed:
                    raise WorkerDied("pool is shut down")
                while self._idle:
                    worker = self._idle.pop()
                    if worker.alive():
                        self._busy.add(worker)
                        return worker
                    worker.close()
                    if self._metrics is not None:
                        self._c_replaced.inc(kind=self.kind)
                    # fall through: spawn (or wait) below
                if len(self._busy) < self.max_workers:
                    worker = self._spawn_locked()
                    self._busy.add(worker)
                    return worker
                if limit is not None:
                    remaining = limit - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._free.wait(remaining)
                else:
                    self._free.wait()

    def release(self, worker) -> None:
        """Return a worker; a dead one is dropped (and counted as
        replaced -- the next acquire spawns its successor)."""
        with self._free:
            self._busy.discard(worker)
            if self._closed:
                worker.close()
            elif worker.alive():
                worker.idle_since = time.monotonic()
                self._idle.append(worker)
            else:
                worker.close()
                if self._metrics is not None:
                    self._c_replaced.inc(kind=self.kind)
            self._note_size_locked()
            self._free.notify()

    def reap_idle(self, now: float | None = None) -> int:
        """Retire workers idle beyond ``idle_timeout_s`` down to
        ``min_workers``; returns how many were retired."""
        if self.idle_timeout_s is None:
            return 0
        now = time.monotonic() if now is None else now
        retired = []
        with self._free:
            keep = []
            total = len(self._idle) + len(self._busy)
            for worker in self._idle:
                if (
                    total > self.min_workers
                    and now - worker.idle_since > self.idle_timeout_s
                ):
                    retired.append(worker)
                    total -= 1
                else:
                    keep.append(worker)
            self._idle = keep
            if retired and self._metrics is not None:
                self._c_retired.inc(len(retired), kind=self.kind)
            self._note_size_locked()
        for worker in retired:
            worker.close()
        return len(retired)

    def shutdown(self) -> None:
        with self._free:
            self._closed = True
            workers = self._idle + list(self._busy)
            self._idle = []
            self._busy = set()
            self._note_size_locked()
            self._free.notify_all()
        for worker in workers:
            worker.close()

    # -- introspection ---------------------------------------------------

    def size(self) -> int:
        with self._lock:
            return len(self._idle) + len(self._busy)

    def stats(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "idle": len(self._idle),
                "busy": len(self._busy),
                "spawned": self._spawned,
                "max_workers": self.max_workers,
                "min_workers": self.min_workers,
            }


__all__ = [
    "InProcessWorker",
    "ProcessWorker",
    "WarmSlot",
    "WorkerPool",
    "WorkItem",
    "execute_request",
]
