"""``repro.serve``: a persistent stencil-solver service.

Instead of paying graph construction, pool spin-up and executor
tear-down per ``run()`` call, a :class:`SolverService` keeps warm
executor pools alive across jobs, batches compatible small solves
into single submissions, admits work through a bounded multi-tenant
queue, and serves repeated requests straight from a content-keyed
result cache -- with every stage instrumented through
:mod:`repro.obs`.

Quick start::

    from repro.serve import ServiceConfig, SolverClient, SolverService

    with SolverService(ServiceConfig(workers=2)) as svc:
        client = SolverClient(svc, tenant="alice")
        outcome = client.solve(problem, impl="ca-parsec", tile=64)

See ``docs/serving.md`` for the architecture and the ops runbook.
"""

from .batch import Batch, BatchCollector
from .cache import ResultCache, default_cache_dir
from .client import SolverClient
from .pool import WarmSlot, WorkerPool, execute_request
from .queue import Job, JobQueue
from .request import (
    DeadlineExpired,
    JobSkipped,
    QueueFullError,
    ServeError,
    ServiceClosed,
    SolveOutcome,
    SolveRequest,
    WorkerDied,
    outcome_from_result,
)
from .service import ServiceConfig, SolverService

__all__ = [
    "Batch",
    "BatchCollector",
    "DeadlineExpired",
    "Job",
    "JobQueue",
    "JobSkipped",
    "QueueFullError",
    "ResultCache",
    "ServeError",
    "ServiceClosed",
    "ServiceConfig",
    "SolveOutcome",
    "SolveRequest",
    "SolverClient",
    "SolverService",
    "WarmSlot",
    "WorkerDied",
    "WorkerPool",
    "default_cache_dir",
    "execute_request",
    "outcome_from_result",
]
