"""Batching window: fuse compatible small solves into one submission.

Small solves are dominated by dispatch overhead (graph hand-off, pool
wake-up, executor arming), so the dispatcher does not take jobs one
by one: after dequeuing a *leader* it holds a short window open and
pulls every queued job of the same tenant whose
:meth:`~repro.serve.request.SolveRequest.batch_key` matches -- same
machine model, implementation, grid extents, tile shape and execution
config -- up to ``max_batch``.  The whole batch rides one pool
submission and executes back-to-back on one warm worker, which is
where the warm-start reuse pays off.

Within a batch, jobs with *equal signatures* are deduplicated: the
group's leader is solved once and every duplicate's future resolves
to the same outcome (the signature guarantees bit-identical answers,
so this is free throughput, not an approximation).

Batching never crosses tenants: fair share and per-tenant caps are
the queue's story, and a batch counts each of its jobs against its
tenant's in-flight cap.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from .queue import Job, JobQueue


@dataclass
class Batch:
    """Jobs fused into one pool submission (all one tenant, all one
    batch key)."""

    jobs: list[Job]
    key: tuple

    @property
    def tenant(self) -> str:
        return self.jobs[0].tenant

    def groups(self) -> "OrderedDict[str, list[Job]]":
        """Jobs grouped by solve signature, leader-first submission
        order: each group is solved once."""
        groups: OrderedDict[str, list[Job]] = OrderedDict()
        for job in self.jobs:
            groups.setdefault(job.signature, []).append(job)
        return groups

    @property
    def duplicates(self) -> int:
        return len(self.jobs) - len(self.groups())


class BatchCollector:
    """Turns the job queue's single-job dequeue into batch dequeue.

    ``window_s`` bounds the extra latency batching may add to the
    leader: the collector polls for compatible arrivals until the
    window closes or the batch fills.  ``window_s=0`` degenerates to
    purely opportunistic batching (whatever is already queued), and
    ``max_batch=1`` disables fusion entirely.
    """

    def __init__(
        self,
        queue: JobQueue,
        window_s: float = 0.005,
        max_batch: int = 8,
        metrics=None,
        lifecycle=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s cannot be negative, got {window_s}")
        self.queue = queue
        self.window_s = window_s
        self.max_batch = max_batch
        #: Optional :class:`~repro.obs.lifecycle.LifecycleTracer` the
        #: fusion window reports ``batch_fuse`` spans to.
        self._lifecycle = lifecycle
        # Several runner threads collect concurrently; the lock keeps
        # the metric cells single-writer.
        self._mlock = threading.Lock()
        self._metrics = metrics
        if metrics is not None:
            self._c_batches = metrics.counter(
                "serve_batches_total", "pool submissions dispatched", "batches"
            )
            self._c_jobs = metrics.counter(
                "serve_batched_jobs_total", "jobs dispatched inside batches",
                "jobs",
            )
            self._c_dedup = metrics.counter(
                "serve_dedup_total",
                "duplicate jobs served from their batch leader", "jobs",
            )
            self._h_size = metrics.histogram(
                "serve_batch_size", "jobs fused per submission", "jobs",
                buckets=(1, 2, 4, 8, 16, 32),
            )

    def take(self, timeout: float | None = None) -> Batch | None:
        """The next batch: a leader from the fair-share queue plus
        every compatible same-tenant job the window catches."""
        leader = self.queue.take(timeout)
        if leader is None:
            return None
        t_window = time.monotonic()
        jobs = [leader]
        key = leader.request.batch_key()
        if self.max_batch > 1:
            window_end = time.monotonic() + self.window_s
            while len(jobs) < self.max_batch:
                jobs.extend(self.queue.take_more(
                    leader.tenant,
                    lambda j: j.request.batch_key() == key,
                    self.max_batch - len(jobs),
                ))
                if len(jobs) >= self.max_batch:
                    break
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(remaining, 0.001))
        batch = Batch(jobs=jobs, key=key)
        if self._metrics is not None:
            with self._mlock:
                self._c_batches.inc()
                self._c_jobs.inc(len(jobs))
                self._h_size.observe(len(jobs))
                if batch.duplicates:
                    self._c_dedup.inc(batch.duplicates)
        if self._lifecycle is not None:
            trace_id = leader.extra.get("trace_id")
            if trace_id is not None:
                self._lifecycle.span(
                    trace_id, "batch_fuse", t_window, time.monotonic(),
                    jobs=len(jobs), dedup=batch.duplicates,
                )
        return batch


__all__ = ["Batch", "BatchCollector"]
