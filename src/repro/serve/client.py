"""Thin in-process client of a :class:`SolverService`.

The client binds tenant identity (plus default priority/deadline) so
call sites submit problems, not plumbing::

    svc = SolverService(ServiceConfig(workers=2)).start()
    alice = SolverClient(svc, tenant="alice", deadline_s=30.0)
    fut = alice.submit(problem, impl="ca-parsec", tile=12)
    outcome = fut.result()          # SolveOutcome: grid + report scalars
    grids = [f.result().grid for f in alice.map(problems)]

Futures are plain :class:`concurrent.futures.Future` objects, so the
standard ``as_completed`` / ``wait`` combinators apply.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import replace

from .request import SolveOutcome, SolveRequest
from .service import SolverService


class SolverClient:
    """One tenant's handle on a running service."""

    def __init__(
        self,
        service: SolverService,
        tenant: str = "default",
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> None:
        self.service = service
        self.tenant = tenant
        self.priority = priority
        self.deadline_s = deadline_s

    def _request(self, problem=None, request=None, **knobs) -> SolveRequest:
        defaults = {
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
        }
        if request is not None:
            merged = {
                k: v for k, v in defaults.items()
                if k not in knobs and getattr(request, k) in (None, "default", 0)
            }
            return replace(request, **merged, **knobs)
        if problem is None:
            raise TypeError("submit() needs a problem or a request")
        return SolveRequest(problem=problem, **{**defaults, **knobs})

    def submit(self, problem=None, *, request=None, **knobs) -> Future:
        """Admit one solve; returns the future of its
        :class:`~repro.serve.request.SolveOutcome`.  Raises the
        service's typed admission errors synchronously."""
        return self.service.submit(self._request(problem, request, **knobs))

    def solve(self, problem=None, *, request=None, timeout=None, **knobs) -> SolveOutcome:
        """Blocking convenience: submit and wait."""
        return self.submit(problem, request=request, **knobs).result(timeout)

    def map(self, problems, **knobs) -> list[Future]:
        """Submit many problems with shared knobs (order preserved)."""
        return [self.submit(p, **knobs) for p in problems]


__all__ = ["SolverClient"]
