"""Content-keyed result cache: solve signature -> grid + report.

Generalises the :mod:`repro.tuning.cache` persistence pattern (one
schema-versioned JSON index, atomic temp-file + ``os.replace`` writes,
re-read-before-replace merge) from "best-known knobs" to "the answer
itself":

* the key is :meth:`SolveRequest.signature` -- a content hash over
  everything that shapes the solution grid (problem data, machine
  fingerprint, impl, tile/steps/ratio), so a hit is *guaranteed*
  bit-identical to recomputing (the conformance suite proves schedule
  knobs cannot change the answer);
* grids live beside the index as compressed ``.npz`` payloads, one
  file per entry, also written atomically, so the index stays small
  and corruption of one payload loses one entry, not the store;
* the store is LRU-bounded (``max_entries``): inserts evict the
  least-recently-used entries and unlink their payloads.  Recency
  from ``get`` is tracked in memory and folded into the index on the
  next ``put`` (best-effort: a read-only session does not persist
  recency, which costs at worst a suboptimal eviction, never a wrong
  answer);
* a small in-memory layer keeps the hottest grids loaded so repeat
  submissions in one service process skip the disk entirely.

Unknown schema versions are ignored wholesale, never migrated.
All hit/miss/eviction counters are bumped inside the cache lock
(single-writer discipline of :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .request import SolveOutcome

#: Bump when the entry layout changes; old stores are treated as empty.
SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_SERVE_CACHE`` or ``~/.cache/repro/serve``."""
    env = os.environ.get("REPRO_SERVE_CACHE")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "serve"


def _atomic_write(path: Path, write) -> None:
    """Write via a sibling temp file + ``os.replace`` (same discipline
    as the tuning cache: a killed writer corrupts nothing)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            write(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """Disk-backed LRU map from solve signature to
    :class:`~repro.serve.request.SolveOutcome`."""

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int = 256,
        memory_entries: int = 32,
        metrics=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.root = Path(path) if path is not None else default_cache_dir()
        self.index_path = self.root / "index.json"
        self.max_entries = max_entries
        self.memory_entries = memory_entries
        self._lock = threading.Lock()
        self._mem: OrderedDict[str, SolveOutcome] = OrderedDict()
        #: get-side recency not yet persisted (folded in on put)
        self._touched: dict[str, float] = {}

        self._metrics = metrics
        if metrics is not None:
            self._c_hits = metrics.counter(
                "serve_cache_hits_total", "result-cache hits", "requests"
            )
            self._c_misses = metrics.counter(
                "serve_cache_misses_total", "result-cache misses", "requests"
            )
            self._c_stores = metrics.counter(
                "serve_cache_stores_total", "result-cache inserts", "entries"
            )
            self._c_evictions = metrics.counter(
                "serve_cache_evictions_total", "LRU evictions", "entries"
            )

    # -- IO --------------------------------------------------------------

    def _load(self) -> dict:
        try:
            doc = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
            return {}
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _store(self, entries: dict) -> None:
        doc = {"schema": SCHEMA_VERSION, "entries": entries}
        blob = json.dumps(doc, indent=2, sort_keys=True).encode()
        _atomic_write(self.index_path, lambda fh: fh.write(blob))

    def _grid_path(self, signature: str) -> Path:
        return self.root / f"{signature[:24]}.npz"

    # -- API -------------------------------------------------------------

    def get(self, signature: str) -> SolveOutcome | None:
        """The cached outcome (marked ``cached=True``) or None.  A hit
        means the stored grid is bit-identical to recomputing the
        request: the signature covers every answer-shaping input."""
        with self._lock:
            hot = self._mem.get(signature)
            if hot is not None:
                self._mem.move_to_end(signature)
                self._touched[signature] = time.time()
                if self._metrics is not None:
                    self._c_hits.inc()
                return self._copy_hit(hot)

            entry = self._load().get(signature)
            grid = None
            if entry is not None and entry.get("grid"):
                try:
                    with np.load(self.root / entry["grid"]) as payload:
                        grid = payload["grid"]
                except (OSError, ValueError, KeyError):
                    entry = None  # payload lost -> treat as a miss
            if entry is None:
                if self._metrics is not None:
                    self._c_misses.inc()
                return None
            outcome = SolveOutcome.from_doc(entry["meta"], grid)
            self._remember(signature, outcome)
            self._touched[signature] = time.time()
            if self._metrics is not None:
                self._c_hits.inc()
            return self._copy_hit(outcome)

    def put(self, signature: str, outcome: SolveOutcome) -> None:
        """Insert (or refresh) one outcome; evicts LRU entries beyond
        ``max_entries``.  The index is re-read immediately before the
        atomic replace, so concurrent services merge rather than
        clobber each other."""
        with self._lock:
            grid_name = None
            if outcome.grid is not None:
                grid_name = self._grid_path(signature).name
                grid = np.ascontiguousarray(outcome.grid)
                _atomic_write(
                    self._grid_path(signature),
                    lambda fh: np.savez_compressed(fh, grid=grid),
                )
            now = time.time()
            entries = self._load()
            for sig, ts in self._touched.items():
                if sig in entries and ts > entries[sig].get("used", 0):
                    entries[sig]["used"] = ts
            self._touched.clear()
            entries[signature] = {
                "meta": outcome.to_doc(),
                "grid": grid_name,
                "created": now,
                "used": now,
            }
            evicted = self._evict_locked(entries)
            self._store(entries)
            self._remember(signature, outcome)
            if self._metrics is not None:
                self._c_stores.inc()
                if evicted:
                    self._c_evictions.inc(evicted)

    def clear(self) -> None:
        with self._lock:
            entries = self._load()
            for entry in entries.values():
                self._unlink_grid(entry)
            self._store({})
            self._mem.clear()
            self._touched.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())

    def entries(self) -> dict:
        """A copy of the on-disk index (metadata only, no grids)."""
        with self._lock:
            return self._load()

    # -- internals -------------------------------------------------------

    def _copy_hit(self, outcome: SolveOutcome) -> SolveOutcome:
        from dataclasses import replace

        return replace(outcome, cached=True)

    def _remember(self, signature: str, outcome: SolveOutcome) -> None:
        if outcome.grid is not None:
            try:
                outcome.grid.setflags(write=False)  # hits share this array
            except ValueError:
                pass
        self._mem[signature] = outcome
        self._mem.move_to_end(signature)
        while len(self._mem) > self.memory_entries:
            self._mem.popitem(last=False)

    def _evict_locked(self, entries: dict) -> int:
        overflow = len(entries) - self.max_entries
        if overflow <= 0:
            return 0
        victims = sorted(entries, key=lambda s: entries[s].get("used", 0))
        for sig in victims[:overflow]:
            self._unlink_grid(entries.pop(sig))
            self._mem.pop(sig, None)
        return overflow

    def _unlink_grid(self, entry: dict) -> None:
        name = entry.get("grid")
        if name:
            try:
                os.unlink(self.root / name)
            except OSError:
                pass


__all__ = ["ResultCache", "SCHEMA_VERSION", "default_cache_dir"]
