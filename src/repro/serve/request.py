"""Requests, outcomes and the typed errors of the solver service.

A :class:`SolveRequest` is the serving-layer unit of work: a
:class:`~repro.stencil.problem.JacobiProblem` plus the solver knobs
that shape its *answer* (impl, machine, tile, steps, ratio) and the
knobs that shape its *treatment* (tenant, priority, deadline).  The
request knows its own

* :meth:`~SolveRequest.signature` -- the content key the result cache
  stores under (see :func:`repro.core.signature.solve_signature`):
  two requests with equal signatures must produce bit-identical
  solution grids, which the backend-conformance suite guarantees;
* :meth:`~SolveRequest.batch_key` -- the coarser compatibility key the
  batching window fuses on: requests sharing it run on the same
  machine model, implementation and tile shape, so dispatching them
  as one pool submission amortises per-job overhead without changing
  any answer.

A :class:`SolveOutcome` is the reduced, pickle-friendly result the
service hands back: the solution grid plus the report scalars, *not*
the full :class:`~repro.core.report.RunResult` (graphs and kernels do
not cross process boundaries and would pin memory in the cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..machine.machine import MachineSpec, nacl
from ..stencil.problem import JacobiProblem

#: Implementations a request may name (mirrors the runner's list; kept
#: here so request validation does not import the runner eagerly).
IMPLEMENTATIONS = ("petsc", "base-parsec", "ca-parsec")

#: Backends a request may name.
BACKENDS = ("sim", "threads", "processes")


# -- typed errors --------------------------------------------------------


class ServeError(RuntimeError):
    """Base class of every serving-layer error."""


class QueueFullError(ServeError):
    """Admission control rejected the request: the queue is at its
    depth bound.  Raised synchronously by ``submit`` -- the fast-reject
    contract: a full service says no immediately instead of building
    unbounded backlog."""


class DeadlineExpired(ServeError):
    """The job's deadline passed before it finished; if it was
    running, the worker was cancelled and reclaimed."""


class ServiceClosed(ServeError):
    """The service is not accepting work (not started, or stopping)."""


class WorkerDied(ServeError):
    """A pool worker died mid-batch (killed, crashed, or reaped)."""


class JobSkipped(ServeError):
    """The job was skipped because an upstream attempt of the same
    work exhausted its retry budget: rather than re-running a solve
    that just failed N times, downstream duplicates fail fast with
    this marker (the skip-downstream model of ParallelX-style retry
    semantics)."""


# -- requests ------------------------------------------------------------


@dataclass(frozen=True)
class SolveRequest:
    """One solve the service should perform.

    ``tenant`` / ``priority`` / ``deadline_s`` are the multi-tenant
    knobs: fair-share dequeue interleaves tenants, higher priority
    wins within a tenant, and a deadline (seconds from submission)
    bounds how long the job may queue *plus* run before it is
    cancelled with :class:`DeadlineExpired`.
    """

    problem: JacobiProblem
    impl: str = "base-parsec"
    machine: MachineSpec = field(default_factory=lambda: nacl(4))
    tile: int | None = None
    steps: int = 15
    ratio: float = 1.0
    policy: str = "priority"
    backend: str = "threads"
    jobs: int | None = None
    tenant: str = "default"
    priority: int = 0
    deadline_s: float | None = None
    #: fault plan spec (see :func:`repro.chaos.parse_plan`) injected
    #: into the run -- a chaos job; None runs fault-free.
    chaos_plan: str | None = None
    #: IR rewrite pipeline (see :mod:`repro.ir`), canonicalised at
    #: admission; None runs the builder's graph unrewritten.
    passes: str | None = None
    #: per-request retry budget override (None -> the service's
    #: ``retry_budget``); a failed attempt re-queues the job until the
    #: budget is spent, resuming from its signature's last checkpoint.
    retries: int | None = None

    def __post_init__(self) -> None:
        if self.impl not in IMPLEMENTATIONS:
            raise ValueError(
                f"unknown impl {self.impl!r}; choices: {IMPLEMENTATIONS}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choices: {BACKENDS}"
            )
        if self.impl == "petsc" and self.ratio != 1.0:
            raise ValueError(
                "the kernel adjustment ratio applies to the PaRSEC "
                "versions only"
            )
        if isinstance(self.tile, str):
            raise ValueError(
                "serve requests take a concrete tile (or None for the "
                "model default); run the autotuner ahead of submission"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive seconds, got {self.deadline_s}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.retries is not None and self.retries < 0:
            raise ValueError(f"retries cannot be negative, got {self.retries}")
        if self.chaos_plan is not None:
            # Validate at admission, not deep inside a worker.
            from ..chaos.plan import parse_plan

            parse_plan(self.chaos_plan)
        if self.passes is not None:
            if self.chaos_plan is not None:
                raise ValueError(
                    "passes and chaos_plan cannot combine (the rewrite "
                    "may merge the kernels chaos instruments)"
                )
            # Canonicalise at admission so equivalent spellings share
            # one signature and one batch.
            from ..ir import canonical_pipeline

            object.__setattr__(
                self, "passes", canonical_pipeline(self.passes) or None
            )

    # -- identity --------------------------------------------------------

    def resolved_tile(self) -> int | None:
        """The tile the run will actually use (``None`` stays the
        runner's model-default pick, resolved here so that an explicit
        request for the default tile hashes identically)."""
        if self.impl == "petsc":
            return None
        if self.tile is not None:
            return int(self.tile)
        from ..core.runner import default_tile

        return default_tile(self.problem, self.machine)

    def solve_params(self) -> dict[str, Any]:
        """The knobs that shape the *answer*, normalised: petsc has no
        tile/steps/ratio; base-parsec ignores the CA step count."""
        if self.impl == "petsc":
            return {"passes": self.passes} if self.passes else {}
        params: dict[str, Any] = {
            "tile": self.resolved_tile(),
            "ratio": self.ratio,
        }
        if self.impl == "ca-parsec":
            params["steps"] = self.steps
        if self.passes:
            # Conservative: structural passes provably keep the grid
            # bit-identical, but a rewritten request never shares a
            # cache entry with an unrewritten one.
            params["passes"] = self.passes
        return params

    def signature(self) -> str:
        """Content key of this solve: equal signatures guarantee
        bit-identical solution grids (schedule knobs -- policy, jobs,
        backend -- are deliberately excluded; the conformance suite
        proves they cannot change the answer)."""
        from ..core.signature import solve_signature

        return solve_signature(
            self.problem, self.machine, self.impl, **self.solve_params()
        )

    def batch_key(self) -> tuple:
        """Compatibility key for the batching window: requests sharing
        it use the same machine model, implementation, grid extents,
        tile shape and execution config, so they can ride one pool
        submission."""
        return (
            self.impl,
            self.machine.fingerprint(),
            self.problem.shape,
            self.resolved_tile(),
            self.steps if self.impl == "ca-parsec" else None,
            self.ratio,
            self.backend,
            self.jobs,
            self.policy,
            # Chaos jobs never fuse (or dedup) with fault-free jobs of
            # the same solve: faults and retries are per-plan state.
            self.chaos_plan,
            self.passes,
        )


# -- outcomes ------------------------------------------------------------


@dataclass
class SolveOutcome:
    """Reduced result of one served solve: the grid plus the report
    scalars, safe to pickle across the pool's pipes and to persist in
    the result cache."""

    signature: str
    impl: str
    elapsed: float
    gflops: float
    messages: int
    message_bytes: int
    params: dict[str, Any]
    grid: np.ndarray | None = None
    tenant: str = "default"
    #: Served straight from the result cache (no tasks executed).
    cached: bool = False
    #: Executed on a warm (reset-reused) executor rather than a cold one.
    warm: bool = False
    #: Resumed from a checkpoint left by a failed earlier attempt.
    recovered: bool = False
    #: How many retries the job consumed before this outcome.
    retries: int = 0
    #: Faults the chaos plan fired across the job's attempts.
    faults_injected: int = 0
    #: Seconds the job spent queued before dispatch, summed across
    #: retry re-queues (0.0 for cache hits and direct execution).
    queue_wait_s: float = 0.0
    #: Lifecycle trace id of the serving request (None outside the
    #: service, or with lifecycle tracing disabled).
    trace_id: str | None = None
    #: Execution-level :class:`~repro.runtime.trace.Trace`, captured
    #: only when the service runs with ``trace_requests`` -- stripped
    #: before the outcome enters the result cache.
    trace: Any = None

    def with_tenant(self, tenant: str) -> "SolveOutcome":
        return replace(self, tenant=tenant)

    def to_doc(self) -> dict[str, Any]:
        """JSON-safe record *without* the grid (the cache stores grids
        as separate ``.npz`` payloads)."""
        return {
            "signature": self.signature,
            "impl": self.impl,
            "elapsed": self.elapsed,
            "gflops": self.gflops,
            "messages": self.messages,
            "message_bytes": self.message_bytes,
            "params": {
                k: v for k, v in self.params.items()
                if isinstance(v, (bool, int, float, str)) or v is None
            },
            "recovered": self.recovered,
            "retries": self.retries,
            "faults_injected": self.faults_injected,
        }

    @classmethod
    def from_doc(cls, doc: dict, grid: np.ndarray | None) -> "SolveOutcome":
        return cls(
            signature=str(doc["signature"]),
            impl=str(doc["impl"]),
            elapsed=float(doc["elapsed"]),
            gflops=float(doc["gflops"]),
            messages=int(doc["messages"]),
            message_bytes=int(doc["message_bytes"]),
            params=dict(doc.get("params", {})),
            grid=grid,
            recovered=bool(doc.get("recovered", False)),
            retries=int(doc.get("retries", 0)),
            faults_injected=int(doc.get("faults_injected", 0)),
        )


def outcome_from_result(
    result,
    signature: str,
    tenant: str = "default",
    warm: bool = False,
) -> SolveOutcome:
    """Reduce a :class:`~repro.core.report.RunResult` to the
    serving-layer outcome."""
    return SolveOutcome(
        signature=signature,
        impl=result.impl,
        elapsed=result.elapsed,
        gflops=result.gflops,
        messages=result.messages,
        message_bytes=result.message_bytes,
        params=dict(result.params),
        grid=result.grid,
        tenant=tenant,
        warm=warm,
    )


__all__ = [
    "BACKENDS",
    "DeadlineExpired",
    "IMPLEMENTATIONS",
    "JobSkipped",
    "QueueFullError",
    "ServeError",
    "ServiceClosed",
    "SolveOutcome",
    "SolveRequest",
    "WorkerDied",
    "outcome_from_result",
]
