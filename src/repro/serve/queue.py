"""Job queue with admission control and multi-tenant fair share.

The queue is the service's only waiting room, and its three rules are
the serving policy:

* **Admission control.**  Depth is bounded; a submit against a full
  queue raises :class:`~repro.serve.request.QueueFullError`
  *synchronously* -- back-pressure reaches the client immediately
  instead of accumulating as latency (the classic bounded-queue
  lesson from SEDA-style services).
* **Fair share across tenants.**  Each tenant has its own priority
  heap and the dispatcher round-robins over tenants that are both
  non-empty and under their in-flight cap, so a tenant flooding the
  queue delays itself, not its neighbours; within a tenant, higher
  ``priority`` dequeues first, FIFO among equals.
* **Per-tenant concurrency caps.**  A tenant at its cap keeps its
  jobs queued (they are admitted, not rejected); capacity freed by
  :meth:`JobQueue.task_done` wakes the dispatcher.

Deadlines are enforced at the queue boundary too: a job whose
deadline passes while it waits is completed with
:class:`~repro.serve.request.DeadlineExpired` and never dispatched
(:meth:`JobQueue.purge_expired`, also called opportunistically on
every dequeue).

Every metric update happens inside the queue lock, preserving the
registry's single-writer discipline (see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from concurrent.futures import Future, InvalidStateError

from .request import (
    DeadlineExpired,
    QueueFullError,
    ServiceClosed,
    SolveOutcome,
    SolveRequest,
)


@dataclass
class Job:
    """One admitted request: the request plus its future and timing."""

    request: SolveRequest
    future: Future
    signature: str
    seq: int
    enqueued: float
    #: absolute ``time.monotonic()`` deadline, or None
    deadline: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def priority(self) -> int:
        return self.request.priority

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    # Completion is idempotent: a future the client cancelled (or a
    # job failed twice on independent paths) must not blow up the
    # dispatcher.

    def complete(self, outcome: SolveOutcome) -> None:
        try:
            self.future.set_result(outcome)
        except InvalidStateError:
            pass

    def fail(self, exc: BaseException) -> None:
        try:
            self.future.set_exception(exc)
        except InvalidStateError:
            pass


class JobQueue:
    """Bounded, tenant-fair, priority-ordered job queue."""

    def __init__(
        self,
        max_depth: int = 64,
        tenant_limit: int | None = 2,
        tenant_limits: dict[str, int] | None = None,
        metrics=None,
        lifecycle=None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        #: Optional :class:`~repro.obs.lifecycle.LifecycleTracer`; jobs
        #: whose ``extra`` carries a ``trace_id`` get ``queued`` spans
        #: (and terminal finishes on purge/close) recorded against it.
        self._lifecycle = lifecycle
        self._cap_default = tenant_limit
        self._caps = dict(tenant_limits or {})
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        #: tenant -> heap of (-priority, seq, job)
        self._heaps: dict[str, list] = {}
        #: round-robin order over tenants with queued work
        self._rotation: deque[str] = deque()
        self._inflight: dict[str, int] = {}
        self._seq = itertools.count()
        self._depth = 0
        self._closed = False

        self._metrics = metrics
        if metrics is not None:
            self._g_depth = metrics.gauge(
                "serve_queue_depth", "jobs waiting for dispatch", "jobs"
            )
            self._g_inflight = metrics.gauge(
                "serve_tenant_inflight", "dispatched jobs per tenant", "jobs"
            )
            self._c_rejects = metrics.counter(
                "serve_admission_rejects_total",
                "submissions rejected at admission, by reason",
            )
            self._c_expired = metrics.counter(
                "serve_deadline_expired_total",
                "jobs cancelled by their deadline, by where it caught them",
            )
            self._h_wait = metrics.histogram(
                "serve_wait_seconds", "queue wait before dispatch", "seconds"
            )

    # -- configuration ---------------------------------------------------

    def cap(self, tenant: str) -> int | None:
        """In-flight cap of ``tenant`` (None means unbounded)."""
        return self._caps.get(tenant, self._cap_default)

    def next_seq(self) -> int:
        return next(self._seq)

    # -- lifecycle spans -------------------------------------------------

    def _record_queued(self, job: Job, now: float, status: str = "ok") -> None:
        """One ``queued`` span covering this stay in the queue (a
        retry re-queue stamps ``requeued_at`` so each stay gets its
        own span); accumulates the job's total queue wait in
        ``extra`` for the outcome's ``queue_wait_s``."""
        if self._lifecycle is None:
            return
        trace_id = job.extra.get("trace_id")
        if trace_id is None:
            return
        start = job.extra.get("requeued_at", job.enqueued)
        job.extra["queue_wait_s"] = (
            job.extra.get("queue_wait_s", 0.0) + max(0.0, now - start)
        )
        self._lifecycle.span(
            trace_id, "queued", start, now, status=status,
            seq=job.seq, attempt=job.extra.get("attempts", 0),
        )

    # -- submission ------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Admit ``job`` or raise (:class:`QueueFullError` on depth,
        :class:`ServiceClosed` after :meth:`close`)."""
        with self._ready:
            if self._closed:
                raise ServiceClosed("the service is not accepting work")
            if self._depth >= self.max_depth:
                if self._metrics is not None:
                    self._c_rejects.inc(reason="queue-full")
                raise QueueFullError(
                    f"queue full ({self._depth}/{self.max_depth} jobs); "
                    "retry later or raise queue_depth"
                )
            heap = self._heaps.setdefault(job.tenant, [])
            if not heap:
                self._rotation.append(job.tenant)
            heapq.heappush(heap, (-job.priority, job.seq, job))
            self._depth += 1
            if self._metrics is not None:
                self._g_depth.set(self._depth)
            self._ready.notify()

    # -- dispatch --------------------------------------------------------

    def _pick_locked(self, now: float) -> Job | None:
        """Next dispatchable job under fair share, or None.  Visits
        each rotation slot at most once; tenants drained empty leave
        the rotation, tenants at their cap rotate to the back."""
        for _ in range(len(self._rotation)):
            tenant = self._rotation.popleft()
            heap = self._heaps.get(tenant)
            if not heap:
                continue  # drained (or purged) -- drop from rotation
            cap = self.cap(tenant)
            if cap is not None and self._inflight.get(tenant, 0) >= cap:
                self._rotation.append(tenant)
                continue
            _, _, job = heapq.heappop(heap)
            if heap:
                self._rotation.append(tenant)
            self._depth -= 1
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
            if self._metrics is not None:
                self._g_depth.set(self._depth)
                self._g_inflight.set(
                    self._inflight[tenant], tenant=tenant
                )
                self._h_wait.observe(now - job.enqueued)
            self._record_queued(job, now)
            return job
        return None

    def take(self, timeout: float | None = None) -> Job | None:
        """Block for the next dispatchable job (None on timeout or
        when the queue is closed)."""
        limit = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while True:
                now = time.monotonic()
                self._purge_expired_locked(now)
                job = self._pick_locked(now)
                if job is not None:
                    return job
                if self._closed:
                    return None
                if limit is not None:
                    remaining = limit - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._ready.wait(remaining)
                else:
                    self._ready.wait()

    def take_more(
        self,
        tenant: str,
        match: Callable[[Job], bool],
        limit: int,
    ) -> list[Job]:
        """Non-blocking companion of :meth:`take` for the batching
        window: up to ``limit`` additional jobs of the *same tenant*
        satisfying ``match`` (in priority order), each counted against
        the tenant's in-flight cap.  Batching stays within a tenant so
        the fairness story stays one queue's."""
        taken: list[Job] = []
        with self._ready:
            now = time.monotonic()
            heap = self._heaps.get(tenant)
            if not heap:
                return taken
            cap = self.cap(tenant)
            keep: list = []
            for entry in sorted(heap):
                job = entry[2]
                room = cap is None or self._inflight.get(tenant, 0) < cap
                if len(taken) < limit and room and match(job) and not job.expired(now):
                    taken.append(job)
                    self._depth -= 1
                    self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
                else:
                    keep.append(entry)
            heapq.heapify(keep)
            self._heaps[tenant] = keep
            if self._metrics is not None and taken:
                self._g_depth.set(self._depth)
                self._g_inflight.set(self._inflight[tenant], tenant=tenant)
                for job in taken:
                    self._h_wait.observe(now - job.enqueued)
            for job in taken:
                self._record_queued(job, now)
        return taken

    def task_done(self, tenant: str) -> None:
        """A dispatched job of ``tenant`` finished; frees one slot of
        its cap and wakes the dispatcher."""
        with self._ready:
            self._inflight[tenant] = max(0, self._inflight.get(tenant, 0) - 1)
            if self._metrics is not None:
                self._g_inflight.set(self._inflight[tenant], tenant=tenant)
            self._ready.notify_all()

    # -- deadlines -------------------------------------------------------

    def _purge_expired_locked(self, now: float) -> int:
        purged = 0
        for tenant, heap in self._heaps.items():
            if not heap or not any(e[2].expired(now) for e in heap):
                continue
            keep = []
            for entry in heap:
                job = entry[2]
                if job.expired(now):
                    job.fail(DeadlineExpired(
                        f"job {job.seq} expired after "
                        f"{now - job.enqueued:.3f}s in queue"
                    ))
                    self._depth -= 1
                    purged += 1
                    if self._metrics is not None:
                        self._c_expired.inc(where="queued")
                    self._record_queued(job, now, status="expired")
                    if self._lifecycle is not None:
                        self._lifecycle.finish(
                            job.extra.get("trace_id"), "expired", now=now
                        )
                else:
                    keep.append(entry)
            heapq.heapify(keep)
            self._heaps[tenant] = keep
        if purged and self._metrics is not None:
            self._g_depth.set(self._depth)
        return purged

    def purge_expired(self, now: float | None = None) -> int:
        """Fail every queued job whose deadline has passed; returns
        how many were purged (the service reaper calls this
        periodically; dequeue paths call it opportunistically)."""
        with self._ready:
            return self._purge_expired_locked(
                time.monotonic() if now is None else now
            )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> int:
        """Stop admitting work and fail everything still queued with
        :class:`ServiceClosed`; returns the number of failed jobs."""
        with self._ready:
            self._closed = True
            failed = 0
            now = time.monotonic()
            for heap in self._heaps.values():
                for _, _, job in heap:
                    job.fail(ServiceClosed("service shut down before dispatch"))
                    failed += 1
                    self._record_queued(job, now, status="closed")
                    if self._lifecycle is not None:
                        self._lifecycle.finish(
                            job.extra.get("trace_id"), "closed", now=now
                        )
                heap.clear()
            self._depth = 0
            self._rotation.clear()
            if self._metrics is not None:
                self._g_depth.set(0)
            self._ready.notify_all()
            return failed

    # -- introspection ---------------------------------------------------

    @property
    def depth(self) -> int:
        return self._depth

    def inflight(self, tenant: str | None = None) -> int | dict[str, int]:
        with self._lock:
            if tenant is not None:
                return self._inflight.get(tenant, 0)
            return dict(self._inflight)

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": self._depth,
                "max_depth": self.max_depth,
                "queued": {
                    t: len(h) for t, h in self._heaps.items() if h
                },
                "inflight": {
                    t: n for t, n in self._inflight.items() if n
                },
                "closed": self._closed,
            }


__all__ = ["Job", "JobQueue"]
