"""Unit helpers and constants used throughout the machine models.

All internal quantities use SI base units: seconds, bytes, bytes/second,
FLOP, FLOP/second.  The paper mixes Gb/s (network), MB/s (STREAM) and
GFLOP/s (kernels); these helpers keep conversions explicit and in one
place so model code never multiplies by bare ``1e9``.
"""

from __future__ import annotations

#: Bytes in one double-precision floating point number.
DOUBLE = 8

#: Bytes in one 64-bit integer (PETSc was compiled with 64-bit indices).
INT64 = 8

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Decimal multipliers -- network vendors (and NetPIPE) use powers of ten.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def gbit_s(x: float) -> float:
    """Convert a rate expressed in Gbit/s into bytes/s."""
    return x * GIGA / 8.0


def to_gbit_s(bytes_per_s: float) -> float:
    """Convert bytes/s into Gbit/s (the unit Fig. 5 uses)."""
    return bytes_per_s * 8.0 / GIGA


def mb_s(x: float) -> float:
    """Convert a STREAM-style MB/s figure (decimal MB) into bytes/s."""
    return x * MEGA


def to_mb_s(bytes_per_s: float) -> float:
    """Convert bytes/s into decimal MB/s (the unit Table I uses)."""
    return bytes_per_s / MEGA


def gb_s(x: float) -> float:
    """Convert a decimal GB/s figure into bytes/s."""
    return x * GIGA


def to_gb_s(bytes_per_s: float) -> float:
    """Convert bytes/s into decimal GB/s."""
    return bytes_per_s / GIGA


def gflops(x: float) -> float:
    """Convert GFLOP/s into FLOP/s."""
    return x * GIGA


def to_gflops(flop_per_s: float) -> float:
    """Convert FLOP/s into GFLOP/s."""
    return flop_per_s / GIGA


def usec(x: float) -> float:
    """Convert microseconds into seconds."""
    return x * MICROSECOND
