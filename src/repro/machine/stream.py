"""STREAM memory-bandwidth benchmark (McCalpin) -- measured and modelled.

Two entry points:

* :func:`run_host` -- actually run the four STREAM kernels (COPY, SCALE,
  ADD, TRIAD) with numpy on the current host and report MB/s, the way
  the paper ran STREAM on NaCL and Stampede2.
* :func:`model` -- regenerate Table I for a machine model.  For the two
  paper presets the per-mode numbers are the calibrated measurements
  from the paper; for other nodes the modes are scaled from COPY with
  the average mode ratios observed in Table I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from . import units
from .node import NodeSpec

MODES = ("COPY", "SCALE", "ADD", "TRIAD")

#: Canonical bytes moved per array element for each mode (reads +
#: writes of 8-byte doubles): COPY/SCALE touch 2 arrays, ADD/TRIAD 3.
BYTES_PER_ELEMENT = {"COPY": 16, "SCALE": 16, "ADD": 24, "TRIAD": 24}

#: Bytes the *numpy* implementation actually moves.  numpy cannot fuse
#: TRIAD's multiply-add into one sweep, so our TRIAD makes two passes
#: (read c, write b; read a+b, write b) = 40 B/element.
HOST_BYTES_PER_ELEMENT = {"COPY": 16, "SCALE": 16, "ADD": 24, "TRIAD": 40}

#: Table I of the paper, in MB/s: {(machine, scale): {mode: value}}.
PAPER_TABLE1 = {
    ("NaCL", "1-core"): {
        "COPY": 9814.2,
        "SCALE": 10080.3,
        "ADD": 10289.3,
        "TRIAD": 10271.6,
    },
    ("NaCL", "1-node"): {
        "COPY": 40091.3,
        "SCALE": 26335.8,
        "ADD": 28992.0,
        "TRIAD": 28547.2,
    },
    ("Stampede2", "1-core"): {
        "COPY": 10632.6,
        "SCALE": 10772.0,
        "ADD": 13427.1,
        "TRIAD": 13440.0,
    },
    ("Stampede2", "1-node"): {
        "COPY": 176701.1,
        "SCALE": 178718.7,
        "ADD": 192560.3,
        "TRIAD": 193216.3,
    },
}


@dataclass(frozen=True)
class StreamResult:
    """Bandwidths for the four STREAM modes, in MB/s (decimal, like the
    original benchmark and Table I)."""

    system: str
    scale: str
    copy: float
    scale_mode: float
    add: float
    triad: float

    def as_row(self) -> tuple:
        """The Table I row: (system, scale, COPY, SCALE, ADD, TRIAD)."""
        return (self.system, self.scale, self.copy, self.scale_mode, self.add, self.triad)

    def __getitem__(self, mode: str) -> float:
        return {
            "COPY": self.copy,
            "SCALE": self.scale_mode,
            "ADD": self.add,
            "TRIAD": self.triad,
        }[mode.upper()]


def _stream_pass(a: np.ndarray, b: np.ndarray, c: np.ndarray, mode: str, s: float) -> None:
    """One timed STREAM sweep.  Uses ``np.multiply``/``np.add`` with
    explicit ``out=`` so no temporaries are allocated (the in-place
    idiom the optimisation guides insist on)."""
    if mode == "COPY":
        np.copyto(c, a)
    elif mode == "SCALE":
        np.multiply(c, s, out=b)
    elif mode == "ADD":
        np.add(a, b, out=c)
    elif mode == "TRIAD":
        np.multiply(c, s, out=b)
        np.add(a, b, out=b)
    else:  # pragma: no cover
        raise ValueError(f"unknown STREAM mode {mode!r}")


def run_host(
    elements: int = 5_000_000, repeats: int = 5, system: str = "host"
) -> StreamResult:
    """Run STREAM on the current host and report best-of-``repeats``
    bandwidths, like the reference implementation.

    ``elements`` defaults to arrays much larger than any L3 so the
    measurement reflects DRAM, not cache.
    """
    if elements < 1000:
        raise ValueError("STREAM arrays must be non-trivial (>= 1000 elements)")
    if repeats < 1:
        raise ValueError("need at least one repeat")
    a = np.full(elements, 1.0)
    b = np.full(elements, 2.0)
    c = np.zeros(elements)
    s = 3.0
    best: dict[str, float] = {}
    for mode in MODES:
        best_t = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            _stream_pass(a, b, c, mode, s)
            best_t = min(best_t, time.perf_counter() - t0)
        nbytes = elements * HOST_BYTES_PER_ELEMENT[mode]
        best[mode] = units.to_mb_s(nbytes / best_t)
    return StreamResult(
        system=system,
        scale="1-core",
        copy=best["COPY"],
        scale_mode=best["SCALE"],
        add=best["ADD"],
        triad=best["TRIAD"],
    )


def _mode_ratios(system: str, scale: str) -> dict[str, float]:
    """Per-mode ratio to COPY.  Calibrated rows use Table I exactly;
    anything else uses the average of the four Table I rows."""
    key = (system, scale)
    if key in PAPER_TABLE1:
        row = PAPER_TABLE1[key]
        return {m: row[m] / row["COPY"] for m in MODES}
    rows = PAPER_TABLE1.values()
    return {m: float(np.mean([r[m] / r["COPY"] for r in rows])) for m in MODES}


def model(node: NodeSpec, scale: str, system: str | None = None) -> StreamResult:
    """Model a Table I row for ``node`` at ``scale`` ("1-core" or
    "1-node").

    COPY comes straight from the node spec; the other three modes are
    scaled with the mode ratios of the matching paper machine (or the
    Table I average for non-preset nodes).
    """
    if scale not in ("1-core", "1-node"):
        raise ValueError('scale must be "1-core" or "1-node"')
    system = system or node.name
    base = node.core_stream_bw if scale == "1-core" else node.node_stream_bw
    for paper_system in ("NaCL", "Stampede2"):
        if paper_system.lower() in system.lower():
            system_key = paper_system
            break
    else:
        system_key = system
    ratios = _mode_ratios(system_key, scale)
    mb = units.to_mb_s(base)
    return StreamResult(
        system=system_key,
        scale=scale,
        copy=mb * ratios["COPY"],
        scale_mode=mb * ratios["SCALE"],
        add=mb * ratios["ADD"],
        triad=mb * ratios["TRIAD"],
    )


def scaling_curve(node: NodeSpec, max_cores: int | None = None) -> list[tuple[int, float]]:
    """Modelled COPY bandwidth (bytes/s) vs active core count: linear in
    core bandwidth until the node interface saturates.  Documents the
    paper's observation that "a single core cannot saturate the memory
    interface"."""
    n = max_cores or node.cores
    return [
        (p, min(p * node.core_stream_bw, node.node_stream_bw)) for p in range(1, n + 1)
    ]
