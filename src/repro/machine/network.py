"""Interconnect model: latency, effective bandwidth, message time.

The model is the classic alpha-beta (Hockney) model with a
NetPIPE-shaped effective-bandwidth curve: achieved bandwidth for an
``n``-byte message is ``n / (alpha + n / beta_eff)``, which ramps from
latency-dominated (~0 for tiny messages) to ``beta_eff`` for large ones
-- exactly the S-curve of Fig. 5.  On top of the wire model we charge a
per-message *software* overhead (MPI stack + runtime activation), which
is the quantity communication-avoiding actually amortises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from . import units


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of the interconnect between nodes.

    Parameters
    ----------
    name:
        e.g. ``"InfiniBand QDR"``.
    peak_bw:
        Theoretical peak link bandwidth, bytes/s (marketing number:
        32 Gb/s QDR, 100 Gb/s Omni-Path).
    effective_bw:
        Peak *achieved* bandwidth from NetPIPE, bytes/s (27 Gb/s on
        NaCL, 86 Gb/s on Stampede2).
    latency:
        One-way wire latency in seconds (~1 us on both machines).
    software_overhead:
        Per-message CPU-side cost (matching, progress, task activation)
        in seconds, charged to the communication thread.  This is the
        dominant per-message cost for the small ghost messages of the
        base version and the knob the CA scheme wins on.
    half_bw_size:
        Message size (bytes) at which achieved bandwidth is half of
        ``effective_bw`` (NetPIPE's ``n_1/2``).  Sets the curvature of
        the Fig. 5 S-curve; derived from latency if left at 0.
    """

    name: str
    peak_bw: float
    effective_bw: float
    latency: float
    software_overhead: float = 20 * units.MICROSECOND
    half_bw_size: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_bw <= 0 or self.effective_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.effective_bw > self.peak_bw:
            raise ValueError("effective bandwidth cannot exceed peak")
        if self.latency < 0 or self.software_overhead < 0:
            raise ValueError("latency/overhead cannot be negative")

    @property
    def alpha(self) -> float:
        """Start-up cost per message (seconds) in the Hockney model."""
        if self.half_bw_size > 0:
            # By definition of n_1/2: n/2beta = alpha at n = half_bw_size.
            return self.half_bw_size / self.effective_bw
        return self.latency

    def wire_time(self, nbytes: float) -> float:
        """Pure on-the-wire time of an ``nbytes`` message (seconds)."""
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return self.alpha + nbytes / self.effective_bw

    def message_time(self, nbytes: float) -> float:
        """End-to-end time of one message including software overhead."""
        return self.software_overhead + self.wire_time(nbytes)

    def achieved_bandwidth(self, nbytes: float) -> float:
        """Achieved bandwidth (bytes/s) for an ``nbytes`` message, as
        NetPIPE would report it."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.wire_time(nbytes)

    def fraction_of_peak(self, nbytes: float) -> float:
        """Achieved bandwidth as a fraction of the theoretical peak --
        the y-axis of Fig. 5."""
        return self.achieved_bandwidth(nbytes) / self.peak_bw

    def saturation_size(self, fraction: float = 0.9) -> float:
        """Smallest message size achieving ``fraction`` of the effective
        bandwidth.  Solving n/(alpha + n/beta) = f*beta gives
        n = f*alpha*beta / (1-f)."""
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        return fraction * self.alpha * self.effective_bw / (1.0 - fraction)


def bisect_size_for_fraction(net: NetworkSpec, fraction: float) -> float:
    """Numerically invert :meth:`NetworkSpec.fraction_of_peak`.

    Used by analysis code that asks "how big must a message be to reach
    X % of *peak* (not effective) bandwidth"; returns ``inf`` when the
    fraction is unreachable (effective < fraction * peak).
    """
    target = fraction * net.peak_bw
    if target >= net.effective_bw:
        return math.inf
    lo, hi = 1.0, 1.0
    while net.achieved_bandwidth(hi) < target:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - guarded by the inf check above
            return math.inf
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if net.achieved_bandwidth(mid) < target:
            lo = mid
        else:
            hi = mid
    return hi
