"""Compute-node model.

A node is described by the handful of parameters the paper's roofline
analysis actually uses: core count, per-core and whole-node sustainable
memory bandwidth (STREAM), peak floating-point rate, and the per-task
software overhead of the runtime.  Everything downstream (kernel cost
model, discrete-event engine) consumes a :class:`NodeSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import units


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"NaCL node"``).
    cores:
        Total cores across all sockets.
    core_stream_bw:
        Sustainable single-core memory bandwidth in bytes/s (STREAM COPY
        with one thread).  A single core cannot saturate the memory
        interface on either paper machine.
    node_stream_bw:
        Sustainable whole-node memory bandwidth in bytes/s (STREAM COPY
        with all cores).
    core_peak_flops:
        Peak double-precision FLOP/s of one core.  Only used as the
        compute roofline ceiling; the 5-point stencil never gets near it.
    memory_bytes:
        Installed DRAM, used for capacity sanity checks.
    task_overhead:
        Runtime software overhead charged per task (selection, dependency
        resolution, completion propagation), in seconds.  This is what
        makes very small tiles slow in Fig. 6.
    l3_bytes:
        Total last-level cache per node, used by the kernel cost model
        to detect when a tile's working set spills to DRAM; 0 disables
        the spill model for machines whose sweeps stream at DRAM rate
        regardless of tile size.
    kernel_efficiency:
        Fraction of the STREAM roofline the *unoptimised* stencil kernel
        achieves.  The paper observes ~11 of 14.5--21.9 GFLOP/s on NaCL
        and ~43.5 of 63.8--96.6 GFLOP/s on Stampede2, i.e. the plain
        loop-over-tile kernel does not reach the STREAM bound.
    """

    name: str
    cores: int
    core_stream_bw: float
    node_stream_bw: float
    core_peak_flops: float
    memory_bytes: float = 32 * units.GB
    l3_bytes: float = 32 * units.MB
    task_overhead: float = 10 * units.MICROSECOND
    kernel_efficiency: float = 0.65

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"node needs at least one core, got {self.cores}")
        if self.core_stream_bw <= 0 or self.node_stream_bw <= 0:
            raise ValueError("STREAM bandwidths must be positive")
        if self.node_stream_bw < self.core_stream_bw:
            raise ValueError(
                "whole-node STREAM bandwidth cannot be below single-core "
                f"bandwidth ({self.node_stream_bw} < {self.core_stream_bw})"
            )
        if not 0.0 < self.kernel_efficiency <= 1.0:
            raise ValueError("kernel_efficiency must be in (0, 1]")

    @property
    def compute_cores(self) -> int:
        """Cores available for computation when one is reserved for
        communication (the PaRSEC configuration used in the paper)."""
        return max(1, self.cores - 1)

    @property
    def node_peak_flops(self) -> float:
        """Aggregate peak FLOP/s of the node."""
        return self.cores * self.core_peak_flops

    def worker_stream_bw(self, concurrent_workers: int) -> float:
        """Memory bandwidth one worker sees with ``concurrent_workers``
        cores streaming at once.

        The node interface saturates: each worker gets an equal share of
        the node bandwidth, but never more than a single core can draw.
        """
        if concurrent_workers < 1:
            raise ValueError("need at least one worker")
        return min(self.core_stream_bw, self.node_stream_bw / concurrent_workers)
