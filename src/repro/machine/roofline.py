"""Roofline model (Williams et al.) as used in section VI-A of the paper.

The paper estimates the 5-point stencil's arithmetic intensity at 0.37
to 0.56 FLOP/byte (9 FLOP per point; 16--24 bytes moved depending on
cache residency of the neighbour loads) and derives effective peaks of
14.5--21.9 GFLOP/s (NaCL) and 63.8--96.6 GFLOP/s (Stampede2) from the
STREAM COPY bandwidths.  This module reproduces those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import NodeSpec

#: FLOP per grid-point update in the general-weights formulation used by
#: all three implementations: 5 multiplies + 4 adds.
FLOP_PER_POINT = 9

#: Bytes moved per update when every neighbour load hits in cache: one
#: read of the point itself and one write of the result.
BYTES_PER_POINT_CACHED = 16

#: Bytes moved per update when the top/bottom neighbour rows also miss:
#: read x(i,j), x(i-1,j), write y(i,j) -- 24 bytes.  Left/right
#: neighbours are always cache-resident for row-major sweeps.
BYTES_PER_POINT_UNCACHED = 24

#: The paper's quoted arithmetic-intensity range.
AI_LOW = FLOP_PER_POINT / BYTES_PER_POINT_UNCACHED  # 0.375
AI_HIGH = FLOP_PER_POINT / BYTES_PER_POINT_CACHED  # 0.5625


@dataclass(frozen=True)
class RooflinePoint:
    """One evaluation of the roofline: attainable FLOP/s and which
    ceiling binds."""

    attainable_flops: float
    memory_bound: bool
    arithmetic_intensity: float
    bandwidth: float
    peak_flops: float


def attainable(ai: float, bandwidth: float, peak_flops: float) -> RooflinePoint:
    """Classic roofline: ``min(peak, ai * bw)``.

    Parameters are arithmetic intensity (FLOP/byte), sustainable memory
    bandwidth (bytes/s) and peak compute (FLOP/s).
    """
    if ai <= 0:
        raise ValueError("arithmetic intensity must be positive")
    if bandwidth <= 0 or peak_flops <= 0:
        raise ValueError("bandwidth and peak must be positive")
    mem_roof = ai * bandwidth
    if mem_roof < peak_flops:
        return RooflinePoint(mem_roof, True, ai, bandwidth, peak_flops)
    return RooflinePoint(peak_flops, False, ai, bandwidth, peak_flops)


def node_attainable(node: NodeSpec, ai: float) -> RooflinePoint:
    """Roofline of a whole node using its STREAM COPY bandwidth, the
    configuration the paper analyses."""
    return attainable(ai, node.node_stream_bw, node.node_peak_flops)


def stencil_peak_range(node: NodeSpec) -> tuple[float, float]:
    """The paper's "effective peak performance" bracket for the 5-point
    stencil on one node: (low, high) FLOP/s at AI 0.375 and 0.5625."""
    lo = node_attainable(node, AI_LOW).attainable_flops
    hi = node_attainable(node, AI_HIGH).attainable_flops
    return lo, hi


def ridge_point(bandwidth: float, peak_flops: float) -> float:
    """Arithmetic intensity at which a kernel stops being memory bound."""
    if bandwidth <= 0 or peak_flops <= 0:
        raise ValueError("bandwidth and peak must be positive")
    return peak_flops / bandwidth
