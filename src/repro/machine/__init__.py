"""Machine models: nodes, networks, rooflines, STREAM and NetPIPE.

The paper reduces its two clusters to a handful of measured parameters
(Table I, Fig. 5); this package captures those parameters as
:class:`~repro.machine.machine.MachineSpec` presets and provides the
models (roofline, alpha-beta network) the evaluation is built on.
"""

from . import units
from .machine import MachineSpec, nacl, preset, stampede2, summit_like
from .network import NetworkSpec
from .node import NodeSpec
from .roofline import (
    AI_HIGH,
    AI_LOW,
    FLOP_PER_POINT,
    RooflinePoint,
    attainable,
    node_attainable,
    ridge_point,
    stencil_peak_range,
)
from .stream import StreamResult, model as stream_model, run_host as stream_run_host
from .netpipe import NetpipePoint, model_curve as netpipe_model, run_host_loopback

__all__ = [
    "AI_HIGH",
    "AI_LOW",
    "FLOP_PER_POINT",
    "MachineSpec",
    "NetpipePoint",
    "NetworkSpec",
    "NodeSpec",
    "RooflinePoint",
    "StreamResult",
    "attainable",
    "nacl",
    "netpipe_model",
    "node_attainable",
    "preset",
    "ridge_point",
    "run_host_loopback",
    "stampede2",
    "stencil_peak_range",
    "stream_model",
    "stream_run_host",
    "summit_like",
    "units",
]
