"""Whole-machine description and the two paper machines as presets.

A :class:`MachineSpec` bundles a node model, a network model and a node
count.  The two presets, :func:`nacl` and :func:`stampede2`, are
calibrated exclusively from numbers printed in the paper (Table I,
Fig. 5, section VI hardware description) so that the benchmark harness
regenerates the paper's environment rather than this host's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import units
from .network import NetworkSpec
from .node import NodeSpec


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: ``nodes`` identical :class:`NodeSpec` nodes connected
    by a :class:`NetworkSpec` interconnect."""

    name: str
    nodes: int
    node: NodeSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a machine needs at least one node")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """Same machine restricted/extended to ``nodes`` nodes (strong
        scaling sweeps)."""
        return replace(self, nodes=nodes)

    def fingerprint(self) -> str:
        """Short stable hash over *every* calibrated constant of this
        spec (node, network, node count).  The tuning cache and the
        serve result cache key entries by it, so editing any
        bandwidth, overhead or cache size invalidates every dependent
        entry instead of silently serving a stale result.  (Lazy
        import: ``core.signature`` is the shared hashing scheme, and
        this module must stay importable before ``repro.core``.)"""
        from ..core.signature import fingerprint_dataclass

        return fingerprint_dataclass(self)

    def local_copy_time(self, nbytes: float) -> float:
        """Time to memcpy ``nbytes`` within a node (ghost exchange
        between two tiles on the same node).  A copy reads and writes
        every byte, hence the factor 2 over the STREAM COPY rate."""
        if nbytes < 0:
            raise ValueError("copy size cannot be negative")
        return 2.0 * nbytes / self.node.core_stream_bw


def nacl(nodes: int = 64) -> MachineSpec:
    """The NaCL cluster: 64 nodes, 2x Intel Xeon X5660 (Westmere,
    2.8 GHz, 6 cores each), 23 GB/node, InfiniBand QDR.

    STREAM COPY: 9 814.2 MB/s (1 core), 40 091.3 MB/s (1 node)
    (Table I); NetPIPE effective peak ~27 Gb/s of 32 Gb/s theoretical,
    ~1 us latency (Fig. 5 and section VI-A).
    """
    node = NodeSpec(
        name="NaCL node (2x Xeon X5660)",
        cores=12,
        core_stream_bw=units.mb_s(9814.2),
        node_stream_bw=units.mb_s(40091.3),
        # Westmere: 2 FLOP/cycle SSE2 FMA-less double pipe x 2 ports.
        core_peak_flops=units.gflops(2.8 * 4),
        memory_bytes=23 * units.GB,
        l3_bytes=2 * 12 * units.MB,
        task_overhead=12 * units.MICROSECOND,
        kernel_efficiency=0.61,
    )
    network = NetworkSpec(
        name="InfiniBand QDR",
        peak_bw=units.gbit_s(32.0),
        effective_bw=units.gbit_s(27.0),
        latency=units.usec(1.0),
        # Calibrated so the CA gain at 16 nodes / ratio 0.2 lands on the
        # paper's 57% (section VI-D); see EXPERIMENTS.md for the fit.
        software_overhead=units.usec(20.0),
        half_bw_size=8 * units.KB,
    )
    return MachineSpec(name="NaCL", nodes=nodes, node=node, network=network)


def stampede2(nodes: int = 64) -> MachineSpec:
    """The TACC Stampede2 SKX partition: 2x Intel Xeon Platinum 8160
    (Skylake, 2.1 GHz, 24 cores each), 192 GB/node, 100 Gb/s Omni-Path.

    STREAM COPY: 10 632.6 MB/s (1 core), 176 701.1 MB/s (1 node)
    (Table I); NetPIPE effective peak ~86 Gb/s, ~1 us latency.
    """
    node = NodeSpec(
        name="Stampede2 SKX node (2x Xeon Platinum 8160)",
        cores=48,
        core_stream_bw=units.mb_s(10632.6),
        node_stream_bw=units.mb_s(176701.1),
        # Skylake-SP: AVX-512, 2 FMA units -> 32 FLOP/cycle.
        core_peak_flops=units.gflops(2.1 * 32),
        memory_bytes=192 * units.GB,
        # Spill model disabled (l3=0): SKX sustains its STREAM-rate sweep
        # for every tile size in the paper's range -- Fig. 6 shows a flat
        # 43.5 GFLOP/s plateau from 400 to 2000, with the right-side drop
        # coming from task starvation (27k/3000 -> 81 tiles < 48 cores).
        l3_bytes=0.0,
        task_overhead=8 * units.MICROSECOND,
        kernel_efficiency=0.55,
    )
    network = NetworkSpec(
        name="Intel Omni-Path",
        peak_bw=units.gbit_s(100.0),
        effective_bw=units.gbit_s(86.0),
        latency=units.usec(1.0),
        # Calibrated so the CA gain at 64 nodes / ratio 0.2 lands near the
        # paper's 33% (abstract); see EXPERIMENTS.md for the fit.
        software_overhead=units.usec(16.0),
        half_bw_size=16 * units.KB,
    )
    return MachineSpec(name="Stampede2", nodes=nodes, node=node, network=network)


def summit_like(nodes: int = 64) -> MachineSpec:
    """A Summit-flavoured projection used by the paper's conclusion:
    ~900 GB/s memory bandwidth per GPU-class device, ~1 us network
    latency.  Included to let users explore the regime where the node is
    so fast that everything is network-bound and CA dominates."""
    node = NodeSpec(
        name="Summit-like node",
        cores=42,
        core_stream_bw=units.gb_s(120.0),
        node_stream_bw=units.gb_s(900.0),
        core_peak_flops=units.gflops(500.0),
        memory_bytes=512 * units.GB,
        l3_bytes=96 * units.MB,
        task_overhead=5 * units.MICROSECOND,
        kernel_efficiency=0.8,
    )
    network = NetworkSpec(
        name="EDR InfiniBand (dual-rail)",
        peak_bw=units.gbit_s(200.0),
        effective_bw=units.gbit_s(165.0),
        latency=units.usec(1.0),
        software_overhead=units.usec(15.0),
        half_bw_size=32 * units.KB,
    )
    return MachineSpec(name="Summit-like", nodes=nodes, node=node, network=network)


PRESETS = {
    "nacl": nacl,
    "stampede2": stampede2,
    "summit-like": summit_like,
}


def preset(name: str, nodes: int | None = None) -> MachineSpec:
    """Look a machine preset up by name (case-insensitive)."""
    key = name.lower()
    if key not in PRESETS:
        raise KeyError(f"unknown machine preset {name!r}; choices: {sorted(PRESETS)}")
    spec = PRESETS[key]() if nodes is None else PRESETS[key](nodes)
    return spec
