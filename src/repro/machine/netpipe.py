"""NetPIPE ping-pong benchmark -- modelled (Fig. 5) and host loopback.

NetPIPE measures achieved bandwidth for a geometric ladder of message
sizes with a ping-pong between two processes.  :func:`model_curve`
evaluates the :class:`~repro.machine.network.NetworkSpec` bandwidth
curve at NetPIPE's sizes, producing the Fig. 5 series (fraction of
theoretical peak vs message size).  :func:`run_host_loopback` performs
a real memcpy-based "loopback NetPIPE" so users can characterise the
host the same way, without MPI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .network import NetworkSpec


@dataclass(frozen=True)
class NetpipePoint:
    """One NetPIPE sample."""

    nbytes: int
    bandwidth: float  # bytes/s achieved
    fraction_of_peak: float
    time: float  # one-way message time, seconds


def message_sizes(min_bytes: int = 64, max_bytes: int = 4 * 1024 * 1024) -> list[int]:
    """NetPIPE's geometric ladder of message sizes (factor 2)."""
    if min_bytes < 1 or max_bytes < min_bytes:
        raise ValueError("need 1 <= min_bytes <= max_bytes")
    sizes = []
    n = min_bytes
    while n <= max_bytes:
        sizes.append(n)
        n *= 2
    return sizes


def model_curve(
    net: NetworkSpec,
    min_bytes: int = 64,
    max_bytes: int = 4 * 1024 * 1024,
) -> list[NetpipePoint]:
    """Evaluate the network model at NetPIPE's message sizes.

    This regenerates the Fig. 5 series for a machine: achieved
    bandwidth ramps with message size and saturates at the effective
    peak (27 Gb/s NaCL, 86 Gb/s Stampede2), i.e. below the theoretical
    peak plotted as 100 %.
    """
    points = []
    for n in message_sizes(min_bytes, max_bytes):
        bw = net.achieved_bandwidth(n)
        points.append(
            NetpipePoint(
                nbytes=n,
                bandwidth=bw,
                fraction_of_peak=net.fraction_of_peak(n),
                time=net.wire_time(n),
            )
        )
    return points


def run_host_loopback(
    min_bytes: int = 64,
    max_bytes: int = 1024 * 1024,
    repeats: int = 7,
) -> list[NetpipePoint]:
    """A loopback NetPIPE: time round-trip memcpys between two buffers.

    There is no network here -- the point is to exercise the same
    measurement methodology (ping-pong, best of ``repeats``, bandwidth
    = bytes / one-way time) against host memory so the harness works on
    a laptop.  Peak fraction is reported against the largest observed
    bandwidth.
    """
    samples: list[tuple[int, float]] = []
    for n in message_sizes(min_bytes, max_bytes):
        src = np.ones(n, dtype=np.uint8)
        dst = np.empty_like(src)
        # More iterations for tiny messages, like NetPIPE does.
        iters = max(3, min(1000, (64 * 1024) // n))
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(iters):
                np.copyto(dst, src)  # ping
                np.copyto(src, dst)  # pong
            dt = (time.perf_counter() - t0) / (2 * iters)
            best = min(best, dt)
        samples.append((n, best))
    peak = max(n / t for n, t in samples)
    return [
        NetpipePoint(nbytes=n, bandwidth=n / t, fraction_of_peak=(n / t) / peak, time=t)
        for n, t in samples
    ]
